/// RANDNET — synthetic random networks vs the emergent collocation network
/// (paper §VI).
///
/// "Various methods exist for generating random scale-free networks that
/// may be superficially similar in structure to those displayed by the
/// chiSIM model. Random synthetic networks could be a starting point ...
/// but would need to be tailored to capture the more complex structure in
/// the vertex degree distribution graphs."
///
/// This bench builds Barabási-Albert, Erdős-Rényi and Watts-Strogatz
/// networks matched on vertex count and (approximately) mean degree, and
/// compares degree-distribution shape, clustering and fit quality against
/// the emergent network.

#include "bench_common.hpp"

namespace {

struct NetSummary {
  std::string name;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  double meanDegree = 0.0;
  double meanClustering = 0.0;
  double plawAlpha = 0.0;
  double plawSse = 0.0;
  double headFlatness = 0.0;  // max/min population over degrees 1..7
};

NetSummary summarize(const std::string& name,
                     const chisimnet::graph::Graph& network) {
  using namespace chisimnet;
  NetSummary summary;
  summary.name = name;
  summary.vertices = network.vertexCount();
  summary.edges = network.edgeCount();
  summary.meanDegree = graph::meanDegree(network);
  const auto coefficients = graph::localClusteringCoefficients(network);
  summary.meanClustering = stats::mean(coefficients);
  const auto degrees = graph::degreeSequence(network);
  const auto distribution = stats::frequencyDistribution(degrees);
  if (distribution.size() >= 2) {
    const auto fit = stats::fitPowerLaw(distribution);
    summary.plawAlpha = fit.alpha;
    summary.plawSse = fit.sseLog / static_cast<double>(fit.points);
  }
  double headMin = 1e18;
  double headMax = 0.0;
  for (const auto& point : distribution) {
    if (point.value >= 1 && point.value <= 7) {
      headMin = std::min(headMin, static_cast<double>(point.count));
      headMax = std::max(headMax, static_cast<double>(point.count));
    }
  }
  summary.headFlatness = headMin < 1e17 ? headMax / headMin : 0.0;
  return summary;
}

}  // namespace

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("RANDNET random generators vs emergent network",
              "§VI: generated scale-free nets are superficially similar but "
              "miss the structure");

  const auto population = makePopulation(scaledPersons(15'000));
  const SimulatedLogs logs = simulate(population);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph emergent = synthesizer.synthesizeGraph(logs.files);

  const auto n = emergent.vertexCount();
  const auto m = emergent.edgeCount();
  const auto mOver = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(graph::meanDegree(emergent) / 2.0));

  util::Rng rng(1234);
  std::vector<NetSummary> summaries;
  summaries.push_back(summarize("emergent (chiSIM-like)", emergent));
  summaries.push_back(summarize(
      "barabasi-albert",
      graph::barabasiAlbert(n, static_cast<unsigned>(std::min<std::uint64_t>(
                                   mOver, 64)),
                            rng)));
  summaries.push_back(summarize("erdos-renyi", graph::erdosRenyi(n, m, rng)));
  summaries.push_back(summarize(
      "watts-strogatz",
      graph::wattsStrogatz(n, static_cast<unsigned>(std::min<std::uint64_t>(
                                  std::max<std::uint64_t>(mOver, 1), 64)),
                           0.1, rng)));
  // The §VI "tailored" generator: match the emergent degree sequence
  // exactly, then see what structure degree alone fails to carry.
  summaries.push_back(summarize(
      "config-model (degree-matched)",
      graph::configurationModel(graph::degreeSequence(emergent), rng)));

  std::cout << "network               vertices   edges       mean-deg  "
               "clustering  plaw-alpha  plaw-SSE/pt  head-max/min\n";
  for (const NetSummary& s : summaries) {
    std::cout << "  " << s.name;
    for (std::size_t i = s.name.size(); i < 20; ++i) {
      std::cout << ' ';
    }
    std::cout << fmtCount(s.vertices) << "     " << fmtCount(s.edges)
              << "    " << fmt(s.meanDegree, 1) << "     "
              << fmt(s.meanClustering, 3) << "       " << fmt(s.plawAlpha, 2)
              << "        " << fmt(s.plawSse, 3) << "        "
              << fmt(s.headFlatness, 1) << "\n";
  }

  const NetSummary& real = summaries[0];
  const NetSummary& ba = summaries[1];
  const NetSummary& er = summaries[2];
  const NetSummary& matched = summaries[4];
  std::cout << "\n";
  printRow("degree-matched null: degree shape", "identical by construction",
           "alpha " + fmt(matched.plawAlpha, 2) + " vs " +
               fmt(real.plawAlpha, 2));
  printRow("degree-matched null: clustering", "collapses without place cliques",
           fmt(matched.meanClustering, 3) + " vs " +
               fmt(real.meanClustering, 3));
  printRow("emergent clustering vs BA", "real net far more clustered",
           fmt(real.meanClustering, 3) + " vs " + fmt(ba.meanClustering, 3));
  printRow("emergent clustering vs ER", "real net far more clustered",
           fmt(real.meanClustering, 3) + " vs " + fmt(er.meanClustering, 3));
  printRow("power-law residual, emergent", "poor fit (complex structure)",
           fmt(real.plawSse, 3));
  printRow("power-law residual, BA", "good fit (by construction)",
           fmt(ba.plawSse, 3));

  const bool clusteringGap = real.meanClustering > 3.0 * ba.meanClustering &&
                             real.meanClustering > 3.0 * er.meanClustering;
  const bool fitGap = real.plawSse > ba.plawSse;
  std::cout << "\nshape checks: emergent net clusters far above generators: "
            << (clusteringGap ? "YES" : "NO")
            << "; emergent degree shape deviates from power law more than "
               "BA does: "
            << (fitGap ? "YES (matches paper)" : "NO") << "\n";
  return clusteringGap ? 0 : 1;
}
