/// FAULT-SOAK — randomized fault-injection soak across backends and
/// transports.
///
/// The paper's synthesis runs are long batch jobs on shared clusters where
/// stragglers, torn messages, and killed processes are routine; the repo's
/// recovery machinery (retry, quarantine, respawn, reassignment,
/// checkpointing) exists to make those runs finish with the *same* network.
/// This soak generates a seeded probabilistic fault plan per iteration,
/// cycles through the shared-memory backend, the in-process message-passing
/// transport, and the process-isolated transport, and requires every
/// faulted run to produce adjacency triplets bit-identical to a clean run.
///
/// Per-column recoverability rules (a plan must only inject faults the
/// column can survive):
///   shared      delays only — the shared-memory pool has no retry layer
///   mp-inproc   delays + command throws + torn frames + scripted rank
///               kills, under degrade policy with a command timeout
///   mp-process  the above plus real SIGKILLs (root-scripted and
///               worker-side kill-process), absorbed by respawn or
///               loss reassignment
///
/// Runs nightly in CI (not tier-1): ~24 seeds by default, --seeds N to
/// change, --smoke for a 6-seed PR-sized pass. Honors CHISIMNET_SCALE for
/// the input size only; the seed count is explicit so the nightly plan
/// stays >= 20 seeds regardless of scale.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/runtime/fault.hpp"

namespace {

using namespace chisimnet;
using runtime::FaultAction;
using runtime::FaultPlan;
using runtime::FaultSpec;

enum class Column { kShared, kMpInproc, kMpProcess };

const char* columnName(Column column) {
  switch (column) {
    case Column::kShared:
      return "shared";
    case Column::kMpInproc:
      return "mp-inproc";
    case Column::kMpProcess:
      return "mp-process";
  }
  return "?";
}

/// Fills a seeded probabilistic plan obeying the column's recoverability
/// rules. (FaultPlan owns a mutex, so it is filled in place, not returned.)
void makePlan(FaultPlan& plan, Column column, util::Rng& rng) {
  // Stragglers are survivable everywhere: short probabilistic delays on
  // the driver stages and the prefetch producer.
  for (const char* site : {"driver.load", "driver.collocation",
                           "driver.adjacency", "prefetch.decode"}) {
    if (rng.bernoulli(0.5)) {
      plan.at(site,
              FaultSpec{.action = FaultAction::kDelay,
                        .probability = rng.uniformReal(0.05, 0.3),
                        .delayMs = static_cast<std::uint32_t>(
                            1 + rng.uniformBelow(15))});
    }
  }
  if (column == Column::kShared) {
    return;  // delays only
  }
  // Message-passing columns: command failures and torn frames feed the
  // retry loop; scripted rank kills feed loss reassignment.
  if (rng.bernoulli(0.6)) {
    plan.at("mp.service.command",
            FaultSpec{.action = FaultAction::kThrow,
                      .probability = rng.uniformReal(0.02, 0.15)});
  }
  if (rng.bernoulli(0.5)) {
    plan.at("mp.send",
            FaultSpec{.action = FaultAction::kTruncate,
                      .probability = rng.uniformReal(0.02, 0.1),
                      .truncateTo = rng.uniformBelow(12)});
  }
  if (column == Column::kMpInproc) {
    if (rng.bernoulli(0.4)) {
      // Silent death of one scripted service rank (simulated in-process).
      plan.at("mp.service.command",
              FaultSpec{.action = FaultAction::kKillRank,
                        .hit = 1 + rng.uniformBelow(6),
                        .rank = static_cast<int>(1 + rng.uniformBelow(3))});
    }
    return;
  }
  // Process column: real process deaths. The root-side variant SIGKILLs
  // the destination of one scripted frame; the worker-side variant makes
  // one rank SIGKILL itself with low probability (the plan is replayed
  // into respawns, so a hot streak can exhaust the budget — that is the
  // reassignment path, still recoverable).
  if (rng.bernoulli(0.5)) {
    plan.at("proc.send",
            FaultSpec{.action = FaultAction::kKillRank,
                      .hit = 1 + rng.uniformBelow(8)});
  }
  if (rng.bernoulli(0.4)) {
    plan.at("mp.service.command",
            FaultSpec{.action = FaultAction::kKillProcess,
                      .probability = rng.uniformReal(0.05, 0.25),
                      .rank = static_cast<int>(1 + rng.uniformBelow(3))});
  }
}

net::SynthesisConfig makeConfig(Column column, util::Rng& rng) {
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 4;
  config.filesPerBatch = rng.bernoulli(0.5) ? 0 : 2 + rng.uniformBelow(3);
  config.prefetch = rng.bernoulli(0.7);
  if (column == Column::kShared) {
    return config;
  }
  config.backend = net::SynthesisBackend::kMessagePassing;
  config.faultPolicy = net::FaultPolicy::kDegrade;
  config.commandTimeoutMs = 600;
  config.commandMaxAttempts = 8;
  config.commandBackoffMs = 1;
  if (column == Column::kMpProcess) {
    config.transport = net::MpTransport::kProcess;
    config.heartbeatMs = 100;
    config.maxRespawns = 1 + static_cast<int>(rng.uniformBelow(2));
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  // The process column re-enters this binary for its workers.
  if (const auto workerExit = chisimnet::net::maybeRunSynthesisWorker()) {
    return *workerExit;
  }
  using namespace chisimnet;
  using namespace chisimnet::bench;

  std::uint64_t seedCount = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      seedCount = 6;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seedCount = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: bench_fault_soak [--seeds N] [--smoke]\n";
      return 2;
    }
  }

  printHeader("FAULT-SOAK randomized fault injection",
              "§V: batch jobs on shared clusters must yield one network");

  const auto population = makePopulation(scaledPersons(4000));
  const SimulatedLogs logs = simulate(population, 6);
  std::cout << "log files: " << logs.files.size() << ", "
            << fmtCount(logs.stats.eventsLogged) << " entries, "
            << seedCount << " soak seeds\n\n";

  // Clean reference — every backend/transport/batching must match it
  // exactly (differential-tested in tier-1), so one run suffices.
  net::SynthesisConfig cleanConfig;
  cleanConfig.windowEnd = pop::kHoursPerWeek;
  cleanConfig.workers = 4;
  net::NetworkSynthesizer clean(cleanConfig);
  const auto reference = clean.synthesizeAdjacency(logs.files);
  const auto referenceTriplets = reference.toTriplets();
  std::cout << "clean reference: " << reference.edgeCount() << " edges\n\n";

  JsonReport json("fault_soak");
  json.put("bench", "fault_soak");
  json.put("seeds", seedCount);
  json.put("reference_edges", reference.edgeCount());

  std::uint64_t failures = 0;
  std::uint64_t totalRetries = 0;
  std::uint64_t totalRespawns = 0;
  std::uint64_t totalRanksLost = 0;
  std::cout << "  seed  column      result     retries  respawns  lost\n";
  for (std::uint64_t seed = 0; seed < seedCount; ++seed) {
    const Column column = static_cast<Column>(seed % 3);
    util::Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);
    FaultPlan plan(seed);
    makePlan(plan, column, rng);
    net::SynthesisConfig config = makeConfig(column, rng);

    std::string result = "identical";
    std::uint64_t retries = 0;
    std::uint64_t respawns = 0;
    int ranksLost = 0;
    try {
      runtime::fault::ScopedFaultPlan scoped(plan);
      net::NetworkSynthesizer synthesizer(config);
      const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
      const auto& report = synthesizer.report();
      retries = report.commandRetries;
      respawns = report.workersRespawned;
      ranksLost = report.ranksLost;
      if (adjacency.toTriplets() != referenceTriplets) {
        result = "MISMATCH";
        ++failures;
      }
    } catch (const std::exception& error) {
      result = std::string("THROW: ") + error.what();
      ++failures;
    }
    totalRetries += retries;
    totalRespawns += respawns;
    totalRanksLost += static_cast<std::uint64_t>(ranksLost);
    std::cout << "  " << seed << "     " << columnName(column) << "  "
              << result << "  " << retries << "  " << respawns << "  "
              << ranksLost << "\n";
  }

  json.put("failures", failures);
  json.put("total_command_retries", totalRetries);
  json.put("total_workers_respawned", totalRespawns);
  json.put("total_ranks_lost", totalRanksLost);
  const auto jsonPath = json.write();
  std::cout << "\nsoak: " << seedCount << " seeds, " << failures
            << " failures, " << totalRetries << " retries, " << totalRespawns
            << " respawns, " << totalRanksLost << " ranks lost\n"
            << "json: " << jsonPath.string() << "\n";
  if (failures > 0) {
    std::cout << "FAULT-SOAK FAILED\n";
    return 1;
  }
  std::cout << "all faulted runs bit-identical to the clean reference\n";
  return 0;
}
