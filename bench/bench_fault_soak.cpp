/// FAULT-SOAK — randomized fault-injection soak across backends and
/// transports.
///
/// The paper's synthesis runs are long batch jobs on shared clusters where
/// stragglers, torn messages, and killed processes are routine; the repo's
/// recovery machinery (retry, quarantine, respawn, reassignment,
/// checkpointing) exists to make those runs finish with the *same* network.
/// This soak generates a seeded probabilistic fault plan per iteration,
/// cycles through the shared-memory backend, the in-process message-passing
/// transport, and the process-isolated transport, and requires every
/// faulted run to produce adjacency triplets bit-identical to a clean run.
///
/// Per-column recoverability rules (a plan must only inject faults the
/// column can survive):
///   shared      delays only — the shared-memory pool has no retry layer
///   mp-inproc   delays + command throws + torn frames + scripted rank
///               kills, under degrade policy with a command timeout
///   mp-process  the above plus real SIGKILLs (root-scripted and
///               worker-side kill-process), absorbed by respawn or
///               loss reassignment
///   mp-tcp      the mp-inproc set plus real connection drops and torn
///               wire frames (the worker re-dials — the reconnect path)
///               and worker-side kill-process, absorbed by loss
///               reassignment (no respawn over TCP)
///   abm-ckpt    the simulation side: a checkpointing ABM run killed at a
///               seeded random simulated hour (abm.step throw), resumed
///               from the last committed checkpoint, and required to
///               produce CLG5/CLX5 logs bit-identical to an uninterrupted
///               run — randomized over core, rank count and disease layer
///
/// Runs nightly in CI (not tier-1): ~24 seeds by default, --seeds N to
/// change, --smoke for a 6-seed PR-sized pass. Honors CHISIMNET_SCALE for
/// the input size only; the seed count is explicit so the nightly plan
/// stays >= 20 seeds regardless of scale.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chisimnet/abm/sim_checkpoint.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/runtime/fault.hpp"

namespace {

using namespace chisimnet;
using runtime::FaultAction;
using runtime::FaultPlan;
using runtime::FaultSpec;

enum class Column { kShared, kMpInproc, kMpProcess, kMpTcp, kAbmCkpt };
inline constexpr std::uint64_t kColumnCount = 5;

const char* columnName(Column column) {
  switch (column) {
    case Column::kShared:
      return "shared";
    case Column::kMpInproc:
      return "mp-inproc";
    case Column::kMpProcess:
      return "mp-process";
    case Column::kMpTcp:
      return "mp-tcp";
    case Column::kAbmCkpt:
      return "abm-ckpt";
  }
  return "?";
}

/// Fills a seeded probabilistic plan obeying the column's recoverability
/// rules. (FaultPlan owns a mutex, so it is filled in place, not returned.)
void makePlan(FaultPlan& plan, Column column, util::Rng& rng) {
  // Stragglers are survivable everywhere: short probabilistic delays on
  // the driver stages and the prefetch producer.
  for (const char* site : {"driver.load", "driver.collocation",
                           "driver.adjacency", "prefetch.decode"}) {
    if (rng.bernoulli(0.5)) {
      plan.at(site,
              FaultSpec{.action = FaultAction::kDelay,
                        .probability = rng.uniformReal(0.05, 0.3),
                        .delayMs = static_cast<std::uint32_t>(
                            1 + rng.uniformBelow(15))});
    }
  }
  if (column == Column::kShared) {
    return;  // delays only
  }
  // Message-passing columns: command failures and torn frames feed the
  // retry loop; scripted rank kills feed loss reassignment.
  if (rng.bernoulli(0.6)) {
    plan.at("mp.service.command",
            FaultSpec{.action = FaultAction::kThrow,
                      .probability = rng.uniformReal(0.02, 0.15)});
  }
  if (rng.bernoulli(0.5)) {
    plan.at("mp.send",
            FaultSpec{.action = FaultAction::kTruncate,
                      .probability = rng.uniformReal(0.02, 0.1),
                      .truncateTo = rng.uniformBelow(12)});
  }
  if (column == Column::kMpInproc) {
    if (rng.bernoulli(0.4)) {
      // Silent death of one scripted service rank (simulated in-process).
      plan.at("mp.service.command",
              FaultSpec{.action = FaultAction::kKillRank,
                        .hit = 1 + rng.uniformBelow(6),
                        .rank = static_cast<int>(1 + rng.uniformBelow(3))});
    }
    return;
  }
  if (column == Column::kMpProcess) {
    // Process column: real process deaths. The root-side variant SIGKILLs
    // the destination of one scripted frame; the worker-side variant makes
    // one rank SIGKILL itself with low probability (the plan is replayed
    // into respawns, so a hot streak can exhaust the budget — that is the
    // reassignment path, still recoverable).
    if (rng.bernoulli(0.5)) {
      plan.at("proc.send",
              FaultSpec{.action = FaultAction::kKillRank,
                        .hit = 1 + rng.uniformBelow(8)});
    }
    if (rng.bernoulli(0.4)) {
      plan.at("mp.service.command",
              FaultSpec{.action = FaultAction::kKillProcess,
                        .probability = rng.uniformReal(0.05, 0.25),
                        .rank = static_cast<int>(1 + rng.uniformBelow(3))});
    }
    return;
  }
  // TCP column: real connection drops. A scripted kKillRank at tcp.drop
  // severs one live connection (the worker re-dials — the reconnect
  // path); probabilistic frame tears poison the worker's read side into a
  // re-dial as well; and a worker-side kill-process drains straight into
  // loss reassignment, since there is no respawn over TCP.
  if (rng.bernoulli(0.6)) {
    plan.at("tcp.drop",
            FaultSpec{.action = FaultAction::kKillRank,
                      .hit = 1 + rng.uniformBelow(8)});
  }
  if (rng.bernoulli(0.4)) {
    plan.at("tcp.drop",
            FaultSpec{.action = FaultAction::kTruncate,
                      .probability = rng.uniformReal(0.01, 0.05),
                      .truncateTo = rng.uniformBelow(12)});
  }
  if (rng.bernoulli(0.3)) {
    plan.at("mp.service.command",
            FaultSpec{.action = FaultAction::kKillProcess,
                      .probability = rng.uniformReal(0.02, 0.1),
                      .rank = static_cast<int>(1 + rng.uniformBelow(3))});
  }
}

net::SynthesisConfig makeConfig(Column column, util::Rng& rng) {
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 4;
  config.filesPerBatch = rng.bernoulli(0.5) ? 0 : 2 + rng.uniformBelow(3);
  config.prefetch = rng.bernoulli(0.7);
  if (column == Column::kShared) {
    return config;
  }
  config.backend = net::SynthesisBackend::kMessagePassing;
  config.faultPolicy = net::FaultPolicy::kDegrade;
  config.commandTimeoutMs = 600;
  config.commandMaxAttempts = 8;
  config.commandBackoffMs = 1;
  if (column == Column::kMpProcess) {
    config.transport = net::MpTransport::kProcess;
    config.heartbeatMs = 100;
    config.maxRespawns = 1 + static_cast<int>(rng.uniformBelow(2));
  } else if (column == Column::kMpTcp) {
    config.transport = net::MpTransport::kTcp;
    config.heartbeatMs = 100;
    config.connectTimeoutMs = 2000;
    config.connectRetries = 3;
    config.reconnectGraceMs = 1500;
  }
  return config;
}

/// Every regular file in `dir`, name -> raw bytes.
std::map<std::string, std::string> readRawFiles(
    const std::filesystem::path& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    out[entry.path().filename().string()] = bytes.str();
  }
  return out;
}

/// One abm-ckpt soak iteration: clean run, killed-and-checkpointed run,
/// resume, byte compare. Returns "identical" or a failure description.
std::string soakAbmCheckpoint(const pop::SyntheticPopulation& population,
                              std::uint64_t seed, util::Rng& rng) {
  const auto scratch = std::filesystem::temp_directory_path() /
                       ("chisimnet_soak_abm_" + std::to_string(seed));
  std::filesystem::remove_all(scratch);
  struct Cleanup {
    std::filesystem::path dir;
    ~Cleanup() {
      std::error_code ignored;
      std::filesystem::remove_all(dir, ignored);
    }
  } cleanup{scratch};

  abm::ModelConfig config;
  config.logDirectory = scratch / "clean";
  config.rankCount = 1 << rng.uniformBelow(3);  // 1, 2 or 4
  config.weeks = 1;
  config.scheduleSeed = 1000 + seed;
  config.core = rng.bernoulli(0.5) ? abm::ModelCore::kEventDriven
                                   : abm::ModelCore::kHourly;
  const bool disease = rng.bernoulli(0.5);
  const table::Hour killHour =
      static_cast<table::Hour>(20 + rng.uniformBelow(140));
  abm::DiseaseConfig diseaseConfig;
  diseaseConfig.seed = seed * 31 + 7;

  const auto run = [&](const abm::ModelConfig& modelConfig) {
    if (disease) {
      abm::DiseaseStats stats;
      return abm::runModel(population, modelConfig, diseaseConfig, stats);
    }
    return abm::runModel(population, modelConfig);
  };

  run(config);  // uninterrupted reference

  abm::ModelConfig crash = config;
  crash.logDirectory = scratch / "crash";
  crash.checkpointDir = scratch / "ckpt";
  crash.checkpointEveryHours = 12 + rng.uniformBelow(36);
  bool killed = false;
  try {
    FaultPlan plan(seed);
    plan.at("abm.step", FaultSpec{.action = FaultAction::kThrow,
                                  .hit = killHour});
    runtime::fault::ScopedFaultPlan scoped(plan);
    run(crash);
  } catch (const std::exception&) {
    killed = true;  // the injected kill; resume below
  }
  // The event core may skip the kill hour entirely when it is globally
  // quiet; the run then completes and the resume replays its tail from
  // the last checkpoint — still a valid byte-identity check.
  crash.resume = true;
  const abm::ModelStats stats = run(crash);
  if (killed && !stats.resumed) {
    return "NO-RESUME: killed run left no committed checkpoint";
  }

  const auto got = readRawFiles(crash.logDirectory);
  const auto want = readRawFiles(config.logDirectory);
  if (got.size() != want.size()) {
    return "MISMATCH: file count";
  }
  for (const auto& [name, bytes] : want) {
    const auto it = got.find(name);
    if (it == got.end() || it->second != bytes) {
      return "MISMATCH: " + name;
    }
  }
  return "identical";
}

}  // namespace

int main(int argc, char** argv) {
  // The process column re-enters this binary for its workers.
  if (const auto workerExit = chisimnet::net::maybeRunSynthesisWorker()) {
    return *workerExit;
  }
  using namespace chisimnet;
  using namespace chisimnet::bench;

  std::uint64_t seedCount = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      seedCount = 6;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seedCount = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: bench_fault_soak [--seeds N] [--smoke]\n";
      return 2;
    }
  }

  printHeader("FAULT-SOAK randomized fault injection",
              "§V: batch jobs on shared clusters must yield one network");

  const auto population = makePopulation(scaledPersons(4000));
  const SimulatedLogs logs = simulate(population, 6);
  std::cout << "log files: " << logs.files.size() << ", "
            << fmtCount(logs.stats.eventsLogged) << " entries, "
            << seedCount << " soak seeds\n\n";

  // Clean reference — every backend/transport/batching must match it
  // exactly (differential-tested in tier-1), so one run suffices.
  net::SynthesisConfig cleanConfig;
  cleanConfig.windowEnd = pop::kHoursPerWeek;
  cleanConfig.workers = 4;
  net::NetworkSynthesizer clean(cleanConfig);
  const auto reference = clean.synthesizeAdjacency(logs.files);
  const auto referenceTriplets = reference.toTriplets();
  std::cout << "clean reference: " << reference.edgeCount() << " edges\n\n";

  JsonReport json("fault_soak");
  json.put("bench", "fault_soak");
  json.put("seeds", seedCount);
  json.put("reference_edges", reference.edgeCount());

  std::uint64_t failures = 0;
  std::uint64_t abmSeeds = 0;
  std::uint64_t abmFailures = 0;
  std::uint64_t totalRetries = 0;
  std::uint64_t totalRespawns = 0;
  std::uint64_t totalReconnects = 0;
  std::uint64_t totalRanksLost = 0;
  std::cout
      << "  seed  column      result     retries  respawns  reconn  lost\n";
  for (std::uint64_t seed = 0; seed < seedCount; ++seed) {
    const Column column = static_cast<Column>(seed % kColumnCount);
    util::Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);

    std::string result = "identical";
    std::uint64_t retries = 0;
    std::uint64_t respawns = 0;
    std::uint64_t reconnects = 0;
    int ranksLost = 0;
    if (column == Column::kAbmCkpt) {
      // The simulation column exercises its own kill/checkpoint/resume
      // cycle instead of the synthesis fault plan.
      try {
        result = soakAbmCheckpoint(population, seed, rng);
      } catch (const std::exception& error) {
        result = std::string("THROW: ") + error.what();
      }
      ++abmSeeds;
      if (result != "identical") {
        ++failures;
        ++abmFailures;
      }
      std::cout << "  " << seed << "     " << columnName(column) << "  "
                << result << "  0  0  0  0\n";
      continue;
    }
    FaultPlan plan(seed);
    makePlan(plan, column, rng);
    net::SynthesisConfig config = makeConfig(column, rng);

    try {
      runtime::fault::ScopedFaultPlan scoped(plan);
      net::NetworkSynthesizer synthesizer(config);
      const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
      const auto& report = synthesizer.report();
      retries = report.commandRetries;
      respawns = report.workersRespawned;
      reconnects = report.workersReconnected;
      ranksLost = report.ranksLost;
      if (adjacency.toTriplets() != referenceTriplets) {
        result = "MISMATCH";
        ++failures;
      }
    } catch (const std::exception& error) {
      result = std::string("THROW: ") + error.what();
      ++failures;
    }
    totalRetries += retries;
    totalRespawns += respawns;
    totalReconnects += reconnects;
    totalRanksLost += static_cast<std::uint64_t>(ranksLost);
    std::cout << "  " << seed << "     " << columnName(column) << "  "
              << result << "  " << retries << "  " << respawns << "  "
              << reconnects << "  " << ranksLost << "\n";
  }

  json.put("failures", failures);
  json.put("abm_ckpt_seeds", abmSeeds);
  json.put("abm_ckpt_failures", abmFailures);
  json.put("total_command_retries", totalRetries);
  json.put("total_workers_respawned", totalRespawns);
  json.put("total_workers_reconnected", totalReconnects);
  json.put("total_ranks_lost", totalRanksLost);
  const auto jsonPath = json.write();
  std::cout << "\nsoak: " << seedCount << " seeds, " << failures
            << " failures, " << totalRetries << " retries, " << totalRespawns
            << " respawns, " << totalReconnects << " reconnects, "
            << totalRanksLost << " ranks lost\n"
            << "json: " << jsonPath.string() << "\n";
  if (failures > 0) {
    std::cout << "FAULT-SOAK FAILED\n";
    return 1;
  }
  std::cout << "all faulted runs bit-identical to the clean reference\n";
  return 0;
}
