/// EXT-COMM — community detection on the collocation network (paper §I:
/// community detection "can capture emergent macro level characteristics
/// of the network"; an extension beyond the paper's §V analyses).
///
/// Runs label propagation and Louvain on the synthesized network and
/// checks that the discovered communities are real macro structure:
/// modularity well above zero, and strong alignment between communities
/// and the spatial neighborhoods the population was generated with —
/// emergent from collocation alone, since the synthesis never sees
/// neighborhood ids.

#include <unordered_map>

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("EXT-COMM community detection",
              "§I: community detection captures emergent macro structure "
              "(extension)");

  const auto population = makePopulation(scaledPersons(15'000));
  const SimulatedLogs logs = simulate(population);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph network = synthesizer.synthesizeGraph(logs.files);
  std::cout << "network: " << fmtCount(network.vertexCount()) << " vertices, "
            << fmtCount(network.edgeCount()) << " edges, "
            << population.neighborhoodCount() << " planted neighborhoods\n\n";

  util::WallTimer timer;
  util::Rng lpRng(1);
  const graph::CommunityAssignment lp = graph::labelPropagation(network, lpRng);
  const double lpSeconds = timer.seconds();
  timer.reset();
  util::Rng louvainRng(1);
  const graph::CommunityAssignment lv = graph::louvain(network, louvainRng);
  const double lvSeconds = timer.seconds();

  std::cout << "label propagation: " << lp.communityCount
            << " communities, modularity " << fmt(lp.modularity, 3) << " ("
            << fmt(lpSeconds, 1) << " s, " << lp.iterations << " sweeps)\n";
  std::cout << "louvain:           " << lv.communityCount
            << " communities, modularity " << fmt(lv.modularity, 3) << " ("
            << fmt(lvSeconds, 1) << " s, " << lv.iterations << " levels)\n\n";

  // Alignment with planted neighborhoods: for each community, the fraction
  // of members sharing the community's dominant neighborhood (purity).
  const auto purityOf = [&](const graph::CommunityAssignment& assignment) {
    std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> counts(
        assignment.communityCount);
    for (graph::Vertex v = 0; v < network.vertexCount(); ++v) {
      const pop::Person& person = population.person(network.label(v));
      ++counts[assignment.communityOf[v]][person.neighborhood];
    }
    std::uint64_t dominant = 0;
    for (const auto& communityCounts : counts) {
      std::uint64_t best = 0;
      for (const auto& [hood, count] : communityCounts) {
        best = std::max(best, count);
      }
      dominant += best;
    }
    return static_cast<double>(dominant) /
           static_cast<double>(network.vertexCount());
  };

  const double lpPurity = purityOf(lp);
  const double lvPurity = purityOf(lv);
  printRow("louvain modularity", "> 0.3 (strong structure)",
           fmt(lv.modularity, 3));
  printRow("community/neighborhood purity (LP)", "informational",
           fmt(100.0 * lpPurity, 1) + "%");
  printRow("community/neighborhood purity (Louvain)", "informational",
           fmt(100.0 * lvPurity, 1) + "%",
           "workplaces are citywide, so communities legitimately mix hoods");

  // Cohesion of real social units: fraction of same-unit person pairs that
  // the community assignment keeps together. The macro structure the
  // paper's §I points at is exactly these emergent social groupings.
  const auto cohesion = [&](const graph::CommunityAssignment& assignment,
                            auto anchorOf) {
    std::unordered_map<std::uint32_t, std::vector<graph::Vertex>> groups;
    for (graph::Vertex v = 0; v < network.vertexCount(); ++v) {
      const pop::Person& person = population.person(network.label(v));
      const pop::PlaceId anchor = anchorOf(person);
      if (anchor != pop::kNoPlace) {
        groups[anchor].push_back(v);
      }
    }
    std::uint64_t together = 0;
    std::uint64_t pairs = 0;
    for (const auto& [anchor, members] : groups) {
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          together += assignment.communityOf[members[a]] ==
                              assignment.communityOf[members[b]]
                          ? 1
                          : 0;
          ++pairs;
        }
      }
    }
    return pairs == 0 ? 0.0
                      : static_cast<double>(together) /
                            static_cast<double>(pairs);
  };
  const double classroomCohesion = cohesion(
      lv, [](const pop::Person& person) { return person.classroom; });
  const double householdCohesion =
      cohesion(lv, [](const pop::Person& person) { return person.home; });
  const double workplaceCohesion = cohesion(
      lv, [](const pop::Person& person) { return person.workplace; });
  printRow("classroom pairs kept together", "high (emergent unit)",
           fmt(100.0 * classroomCohesion, 1) + "%");
  printRow("household pairs kept together", "high (emergent unit)",
           fmt(100.0 * householdCohesion, 1) + "%");
  printRow("workplace pairs kept together", "high (emergent unit)",
           fmt(100.0 * workplaceCohesion, 1) + "%");

  // Null check: the same algorithm on a degree-matched random graph finds
  // no comparable structure.
  util::Rng cmRng(2);
  const graph::Graph matched = graph::configurationModel(
      graph::degreeSequence(network), cmRng);
  util::Rng nullRng(1);
  const graph::CommunityAssignment nullAssignment =
      graph::louvain(matched, nullRng);
  printRow("louvain modularity, degree-matched null",
           "far below the real network", fmt(nullAssignment.modularity, 3));

  const bool structured = lv.modularity > 0.3;
  // Classrooms are the strongest unit; workplaces next; households split
  // most often because members anchor to different daytime communities
  // (child -> school community, parent -> workplace community).
  const bool cohesive = classroomCohesion > 0.9 && workplaceCohesion > 0.6 &&
                        householdCohesion > 0.5;
  const bool beatsNull = lv.modularity > nullAssignment.modularity + 0.1;
  std::cout << "\nshape checks: strong modularity: "
            << (structured ? "YES" : "NO")
            << "; communities keep social units intact: "
            << (cohesive ? "YES" : "NO")
            << "; real network beats degree-matched null: "
            << (beatsNull ? "YES" : "NO") << "\n";
  return structured && cohesive && beatsNull ? 0 : 1;
}
