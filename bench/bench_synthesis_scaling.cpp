/// SYNTH-SCALE — network synthesis pipeline scaling and batching (§IV-V).
///
/// Paper workflow reproduced: synthesis ran as batch jobs of 16 files on a
/// 64-process cluster (~30 min/batch at 2.9 M persons); batches are
/// independent and their adjacency matrices sum to the final network. This
/// bench sweeps the worker count, reports the per-stage breakdown, and
/// verifies batch additivity.

#include <algorithm>
#include <optional>

#include "bench_common.hpp"
#include "chisimnet/runtime/fault.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("SYNTH-SCALE pipeline scaling",
              "§V: 16-file batches on 64 processes, ~30 min/batch @2.9M");

  const auto population = makePopulation(scaledPersons(15'000));
  const SimulatedLogs logs = simulate(population, 16);
  std::cout << "log files: " << logs.files.size() << ", "
            << fmtCount(logs.stats.eventsLogged) << " entries\n\n";

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;

  std::cout << "worker sweep (single-core host: expect flat wall time; the "
               "decomposition itself is what scales on a cluster):\n";
  std::cout << "  workers  total(s)  load(s)  colloc(s)  adjacency(s)  "
               "reduce(s)  busy-imbalance\n";
  std::uint64_t referenceEdges = 0;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    config.workers = workers;
    net::NetworkSynthesizer synthesizer(config);
    const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
    const auto& report = synthesizer.report();
    if (workers == 1) {
      referenceEdges = adjacency.edgeCount();
    } else if (adjacency.edgeCount() != referenceEdges) {
      std::cout << "ERROR: result depends on worker count!\n";
      return 1;
    }
    std::cout << "  " << workers << "        " << fmt(report.totalSeconds, 2)
              << "      " << fmt(report.loadSeconds, 2) << "     "
              << fmt(report.collocationSeconds, 2) << "       "
              << fmt(report.adjacencySeconds, 2) << "          "
              << fmt(report.reduceSeconds, 2) << "       "
              << fmt(report.adjacencyBusyImbalance, 2) << "\n";
  }

  // Backend axis: the same stage driver through both dispatch substrates —
  // SNOW-style shared-memory workers vs Rmpi-style message-passing ranks
  // (paper §IV.A ran both; message passing pays serialization for the
  // ability to leave one address space).
  std::cout << "\nbackend comparison (4 workers, same logs):\n"
            << "  backend  total(s)  colloc(s)  adjacency(s)  "
               "scattered(MiB)  returned(MiB)  busy-imbalance\n";
  bool backendsAgree = true;
  {
    config.workers = 4;
    std::vector<sparse::AdjacencyTriplet> sharedTriplets;
    for (const net::SynthesisBackend backend :
         {net::SynthesisBackend::kSharedMemory,
          net::SynthesisBackend::kMessagePassing}) {
      config.backend = backend;
      net::NetworkSynthesizer synthesizer(config);
      const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
      const auto& report = synthesizer.report();
      std::string name = net::backendName(backend);
      name.resize(6, ' ');
      std::cout << "  " << name << "  " << fmt(report.totalSeconds, 2)
                << "      "
                << fmt(report.collocationSeconds, 2) << "       "
                << fmt(report.adjacencySeconds, 2) << "          "
                << fmt(static_cast<double>(report.bytesScattered) /
                           (1024.0 * 1024.0), 1)
                << "             "
                << fmt(static_cast<double>(report.bytesReturned) /
                           (1024.0 * 1024.0), 1)
                << "            " << fmt(report.adjacencyBusyImbalance, 2)
                << "\n";
      if (backend == net::SynthesisBackend::kSharedMemory) {
        sharedTriplets = adjacency.toTriplets();
      } else {
        backendsAgree = adjacency.toTriplets() == sharedTriplets;
      }
    }
    config.backend = net::SynthesisBackend::kSharedMemory;
  }
  printRow("shared vs message-passing edges", "bit-identical adjacency",
           backendsAgree ? "EXACT" : "MISMATCH");

  // Batch additivity over files (the paper's independent batch jobs).
  config.workers = 4;
  config.filesPerBatch = 0;
  net::NetworkSynthesizer whole(config);
  const auto wholeAdjacency = whole.synthesizeAdjacency(logs.files);

  // Time-slice batching: the paper also slices by time window and sums.
  net::SynthesisConfig half1 = config;
  half1.windowEnd = pop::kHoursPerWeek / 2;
  net::SynthesisConfig half2 = config;
  half2.windowStart = pop::kHoursPerWeek / 2;
  half2.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer a(half1);
  net::NetworkSynthesizer b(half2);
  auto summed = a.synthesizeAdjacency(logs.files);
  summed.merge(b.synthesizeAdjacency(logs.files));
  const bool additive = summed.toTriplets() == wholeAdjacency.toTriplets();
  printRow("batch additivity (2 half-week slices)",
           "adjacency matrices simply sum", additive ? "EXACT" : "MISMATCH");

  // Two-stage pipeline: background prefetch decodes batch k+1 while batch k
  // is in stages 2-6, so only the first batch's decode stays exposed on the
  // compute critical path.
  std::cout << "\nbatched load pipeline (16 files, 1 per batch -> 16 batches):\n";
  net::SynthesisConfig pipelined = config;
  pipelined.filesPerBatch = 1;
  pipelined.prefetch = false;
  net::NetworkSynthesizer serialLoad(pipelined);
  const auto serialAdjacency = serialLoad.synthesizeAdjacency(logs.files);
  pipelined.prefetch = true;
  pipelined.prefetchDepth = 2;
  net::NetworkSynthesizer prefetched(pipelined);
  const auto prefetchedAdjacency = prefetched.synthesizeAdjacency(logs.files);

  const auto& serialReport = serialLoad.report();
  const auto& prefetchReport = prefetched.report();
  const bool sameEdges =
      serialAdjacency.toTriplets() == prefetchedAdjacency.toTriplets();
  const double exposedFraction =
      prefetchReport.loadExposedSeconds /
      std::max(prefetchReport.loadSeconds, 1e-12);
  std::cout << "  serial load:    " << fmt(serialReport.loadSeconds, 3)
            << " s decoded, all of it exposed (total "
            << fmt(serialReport.totalSeconds, 2) << " s)\n";
  std::cout << "  prefetch load:  " << fmt(prefetchReport.loadSeconds, 3)
            << " s decoded, " << fmt(prefetchReport.loadExposedSeconds, 3)
            << " s exposed (" << fmt(100.0 * exposedFraction, 1)
            << "% of decode; buffer mean/peak "
            << fmt(prefetchReport.prefetchMeanOccupancy, 2) << "/"
            << prefetchReport.prefetchPeakOccupancy << "; total "
            << fmt(prefetchReport.totalSeconds, 2) << " s)\n";
  printRow("prefetch on/off edge sets", "identical adjacency",
           sameEdges ? "EXACT" : "MISMATCH");
  printRow("exposed load with prefetch", "< 25% of decode time",
           fmt(100.0 * exposedFraction, 1) + "%",
           exposedFraction < 0.25 ? "PASS" : "FAIL");

  // Idle fault-hook cost: the injection sites are compiled in permanently
  // (never a build flavor), so when no fault plan is active a whole run
  // must cost the same to within noise. Compare min-of-3 wall time with no
  // plan installed against an installed-but-empty plan (the strictly more
  // expensive state: every site takes the plan's lock and map lookup).
  net::SynthesisConfig hookConfig = config;
  hookConfig.filesPerBatch = 2;  // 8 batches -> plenty of site hits
  const auto minOf3Seconds = [&](bool armed) {
    chisimnet::runtime::FaultPlan empty;
    std::optional<chisimnet::runtime::fault::ScopedFaultPlan> scoped;
    if (armed) {
      scoped.emplace(empty);
    }
    double best = 1e300;
    for (int repeat = 0; repeat < 3; ++repeat) {
      net::NetworkSynthesizer synthesizer(hookConfig);
      synthesizer.synthesizeAdjacency(logs.files);
      best = std::min(best, synthesizer.report().totalSeconds);
    }
    return best;
  };
  const double idleSeconds = minOf3Seconds(false);
  const double armedSeconds = minOf3Seconds(true);
  const double hookOverhead = armedSeconds / std::max(idleSeconds, 1e-12) - 1.0;
  printRow("idle fault-hook overhead",
           "< 2% wall time (sites always compiled in)",
           fmt(100.0 * hookOverhead, 2) + "%",
           hookOverhead < 0.02 ? "PASS" : "FAIL");

  // Throughput extrapolation row.
  const double entriesPerSecond =
      static_cast<double>(whole.report().logEntriesLoaded) /
      whole.report().totalSeconds;
  const double paperEntriesWeek = kPaperPersons * kPaperChangesPerDay * 7.0;
  printRow("single-core time @2.9M, 1 week",
           "1-1.5 h on 1024 processes (64x16)",
           fmt(paperEntriesWeek / entriesPerSecond / 3600.0, 1) + " h",
           "extrapolated at measured entries/s; a cluster divides this");

  return additive && sameEdges && backendsAgree && exposedFraction < 0.25 &&
                 hookOverhead < 0.02
             ? 0
             : 1;
}
