/// SYNTH-SCALE — network synthesis pipeline scaling and batching (§IV-V).
///
/// Paper workflow reproduced: synthesis ran as batch jobs of 16 files on a
/// 64-process cluster (~30 min/batch at 2.9 M persons); batches are
/// independent and their adjacency matrices sum to the final network. This
/// bench sweeps the worker count, reports the per-stage breakdown, and
/// verifies batch additivity.

#include <algorithm>
#include <optional>

#include "bench_common.hpp"
#include "chisimnet/runtime/fault.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("SYNTH-SCALE pipeline scaling",
              "§V: 16-file batches on 64 processes, ~30 min/batch @2.9M");

  const auto population = makePopulation(scaledPersons(15'000));
  const SimulatedLogs logs = simulate(population, 16);
  std::cout << "log files: " << logs.files.size() << ", "
            << fmtCount(logs.stats.eventsLogged) << " entries\n\n";

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;

  JsonReport json("synthesis_scaling");
  json.put("bench", "synthesis_scaling");
  json.put("persons", static_cast<std::uint64_t>(population.persons().size()));
  json.put("log_files", static_cast<std::uint64_t>(logs.files.size()));

  std::cout << "worker sweep (single-core host: expect flat wall time; the "
               "decomposition itself is what scales on a cluster):\n";
  std::cout << "  workers  total(s)  load(s)  colloc(s)  adjacency(s)  "
               "reduce(s)  busy-imbalance\n";
  std::uint64_t referenceEdges = 0;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    config.workers = workers;
    net::NetworkSynthesizer synthesizer(config);
    const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
    const auto& report = synthesizer.report();
    if (workers == 1) {
      referenceEdges = adjacency.edgeCount();
    } else if (adjacency.edgeCount() != referenceEdges) {
      std::cout << "ERROR: result depends on worker count!\n";
      return 1;
    }
    std::cout << "  " << workers << "        " << fmt(report.totalSeconds, 2)
              << "      " << fmt(report.loadSeconds, 2) << "     "
              << fmt(report.collocationSeconds, 2) << "       "
              << fmt(report.adjacencySeconds, 2) << "          "
              << fmt(report.reduceSeconds, 2) << "       "
              << fmt(report.adjacencyBusyImbalance, 2) << "\n";
    if (workers == 4) {
      // Per-stage breakdown of the representative 4-worker run for CI.
      json.put("kernel_variant",
               config.method == sparse::AdjacencyMethod::kLocalAccumulate
                   ? "local"
                   : "spgemm");
      json.put("workers", static_cast<std::uint64_t>(workers));
      json.put("edges", report.edges);
      json.put("load_seconds", report.loadSeconds);
      json.put("subset_seconds", report.subsetSeconds);
      json.put("collocation_seconds", report.collocationSeconds);
      json.put("partition_seconds", report.partitionSeconds);
      json.put("adjacency_seconds", report.adjacencySeconds);
      json.put("reduce_seconds", report.reduceSeconds);
      json.put("total_seconds", report.totalSeconds);
      json.put("edges_per_sec", static_cast<double>(report.edges) /
                                    std::max(report.totalSeconds, 1e-12));
      json.put("kernel_dense_places", report.kernelDensePlaces);
      json.put("kernel_hash_places", report.kernelHashPlaces);
      json.put("kernel_pair_hour_updates", report.kernelPairHourUpdates);
      json.put("kernel_global_emits", report.kernelGlobalEmits);
    }
  }

  // Stage-6 reduce shape on the real pipeline: the serial root merge folds
  // n worker sums one at a time, the tree folds them pairwise in
  // ceil(log2 n) levels. Per-batch worker sums are place-partitioned and
  // hence nearly disjoint, and a hash merge costs what it inserts — so in
  // THIS regime the tree cannot beat serial on the modeled critical path
  // (its final merge alone moves half the data); the table documents that
  // honestly. The regime the tree is for is measured right below.
  std::cout << "\nreduce shape on the pipeline (nearly disjoint sums; "
               "modeled parallel critical path):\n"
            << "  workers  serial(s)  tree-critical(s)  depth  merges\n";
  for (unsigned workers : {2u, 4u, 8u, 16u}) {
    config.workers = workers;
    config.treeReduce = false;
    net::NetworkSynthesizer serialRun(config);
    serialRun.synthesizeAdjacency(logs.files);
    const double serialSeconds = serialRun.report().reduceCriticalSeconds;
    config.treeReduce = true;
    net::NetworkSynthesizer treeRun(config);
    treeRun.synthesizeAdjacency(logs.files);
    const auto& treeReport = treeRun.report();
    const double treeSeconds = treeReport.reduceCriticalSeconds;
    std::cout << "  " << workers << "        " << fmt(serialSeconds, 4)
              << "     " << fmt(treeSeconds, 4) << "            "
              << treeReport.reduceTreeDepth << "      "
              << treeReport.reduceMergedSums - 1 << "\n";
    json.put("reduce_serial_seconds_w" + std::to_string(workers),
             serialSeconds);
    json.put("reduce_tree_critical_seconds_w" + std::to_string(workers),
             treeSeconds);
    json.put("reduce_tree_depth_w" + std::to_string(workers),
             static_cast<std::uint64_t>(treeReport.reduceTreeDepth));
  }
  config.treeReduce = true;

  // The regime the tree reduce is built for: worker sums that share their
  // pair set. At scale the heavy pairs (households, classrooms seen in
  // every batch and on every rank) appear in every worker's sum, so the
  // serial root pays n x D hash inserts while the tree's critical path is
  // only ceil(log2 n) x D — sub-linear in the worker count.
  std::cout << "\nreduce microbench (n sums over the SAME 200k hot pairs; "
               "serial root cost n*D, tree critical ceil(log2 n)*D):\n"
            << "  sums  serial(s)  tree-critical(s)  depth  speedup\n";
  double microSpeedupAtMax = 0.0;
  {
    util::Rng rng(7);
    sparse::SymmetricAdjacency hot(200'000);
    for (std::size_t i = 0; i < 200'000; ++i) {
      hot.add(static_cast<std::uint32_t>(rng.uniformBelow(100'000)),
              static_cast<std::uint32_t>(100'000 + rng.uniformBelow(100'000)),
              1);
    }
    for (const unsigned sums : {2u, 4u, 8u, 16u, 32u}) {
      util::WallTimer serialTimer;
      sparse::SymmetricAdjacency serialResult(0);
      for (unsigned i = 0; i < sums; ++i) {
        serialResult.merge(hot);
      }
      const double serialSeconds = serialTimer.seconds();

      std::vector<sparse::SymmetricAdjacency> items(sums, hot);
      const runtime::TreeReduceStats stats = runtime::treeReduce(
          items, sums,
          [](sparse::SymmetricAdjacency& into,
             sparse::SymmetricAdjacency& from) {
            into.merge(from);
            from = sparse::SymmetricAdjacency(0);
          });
      std::cout << "  " << sums << "     " << fmt(serialSeconds, 4) << "     "
                << fmt(stats.criticalSeconds, 4) << "            "
                << stats.depth << "      "
                << fmt(serialSeconds / std::max(stats.criticalSeconds, 1e-12),
                       2)
                << "x\n";
      json.put("reduce_hot_serial_seconds_n" + std::to_string(sums),
               serialSeconds);
      json.put("reduce_hot_tree_critical_seconds_n" + std::to_string(sums),
               stats.criticalSeconds);
      microSpeedupAtMax =
          serialSeconds / std::max(stats.criticalSeconds, 1e-12);
    }
  }
  const bool treeSubLinear = microSpeedupAtMax > 2.0;
  printRow("tree reduce on shared hot pairs @32 sums",
           "critical path sub-linear (log-depth)",
           fmt(microSpeedupAtMax, 2) + "x vs serial",
           treeSubLinear ? "PASS" : "FAIL");

  // Backend axis: the same stage driver through both dispatch substrates —
  // SNOW-style shared-memory workers vs Rmpi-style message-passing ranks
  // (paper §IV.A ran both; message passing pays serialization for the
  // ability to leave one address space).
  std::cout << "\nbackend comparison (4 workers, same logs):\n"
            << "  backend  total(s)  colloc(s)  adjacency(s)  "
               "scattered(MiB)  returned(MiB)  busy-imbalance\n";
  bool backendsAgree = true;
  {
    config.workers = 4;
    std::vector<sparse::AdjacencyTriplet> sharedTriplets;
    for (const net::SynthesisBackend backend :
         {net::SynthesisBackend::kSharedMemory,
          net::SynthesisBackend::kMessagePassing}) {
      config.backend = backend;
      net::NetworkSynthesizer synthesizer(config);
      const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
      const auto& report = synthesizer.report();
      std::string name = net::backendName(backend);
      name.resize(6, ' ');
      std::cout << "  " << name << "  " << fmt(report.totalSeconds, 2)
                << "      "
                << fmt(report.collocationSeconds, 2) << "       "
                << fmt(report.adjacencySeconds, 2) << "          "
                << fmt(static_cast<double>(report.bytesScattered) /
                           (1024.0 * 1024.0), 1)
                << "             "
                << fmt(static_cast<double>(report.bytesReturned) /
                           (1024.0 * 1024.0), 1)
                << "            " << fmt(report.adjacencyBusyImbalance, 2)
                << "\n";
      if (backend == net::SynthesisBackend::kSharedMemory) {
        sharedTriplets = adjacency.toTriplets();
      } else {
        backendsAgree = adjacency.toTriplets() == sharedTriplets;
      }
    }
    config.backend = net::SynthesisBackend::kSharedMemory;
  }
  printRow("shared vs message-passing edges", "bit-identical adjacency",
           backendsAgree ? "EXACT" : "MISMATCH");

  // Batch additivity over files (the paper's independent batch jobs).
  config.workers = 4;
  config.filesPerBatch = 0;
  net::NetworkSynthesizer whole(config);
  const auto wholeAdjacency = whole.synthesizeAdjacency(logs.files);

  // Time-slice batching: the paper also slices by time window and sums.
  net::SynthesisConfig half1 = config;
  half1.windowEnd = pop::kHoursPerWeek / 2;
  net::SynthesisConfig half2 = config;
  half2.windowStart = pop::kHoursPerWeek / 2;
  half2.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer a(half1);
  net::NetworkSynthesizer b(half2);
  auto summed = a.synthesizeAdjacency(logs.files);
  summed.merge(b.synthesizeAdjacency(logs.files));
  const bool additive = summed.toTriplets() == wholeAdjacency.toTriplets();
  printRow("batch additivity (2 half-week slices)",
           "adjacency matrices simply sum", additive ? "EXACT" : "MISMATCH");

  // Two-stage pipeline: background prefetch decodes batch k+1 while batch k
  // is in stages 2-6, so only the first batch's decode stays exposed on the
  // compute critical path.
  std::cout << "\nbatched load pipeline (16 files, 1 per batch -> 16 batches):\n";
  net::SynthesisConfig pipelined = config;
  pipelined.filesPerBatch = 1;
  pipelined.prefetch = false;
  net::NetworkSynthesizer serialLoad(pipelined);
  const auto serialAdjacency = serialLoad.synthesizeAdjacency(logs.files);
  pipelined.prefetch = true;
  pipelined.prefetchDepth = 2;
  net::NetworkSynthesizer prefetched(pipelined);
  const auto prefetchedAdjacency = prefetched.synthesizeAdjacency(logs.files);

  const auto& serialReport = serialLoad.report();
  const auto& prefetchReport = prefetched.report();
  const bool sameEdges =
      serialAdjacency.toTriplets() == prefetchedAdjacency.toTriplets();
  const double exposedFraction =
      prefetchReport.loadExposedSeconds /
      std::max(prefetchReport.loadSeconds, 1e-12);
  std::cout << "  serial load:    " << fmt(serialReport.loadSeconds, 3)
            << " s decoded, all of it exposed (total "
            << fmt(serialReport.totalSeconds, 2) << " s)\n";
  std::cout << "  prefetch load:  " << fmt(prefetchReport.loadSeconds, 3)
            << " s decoded, " << fmt(prefetchReport.loadExposedSeconds, 3)
            << " s exposed (" << fmt(100.0 * exposedFraction, 1)
            << "% of decode; buffer mean/peak "
            << fmt(prefetchReport.prefetchMeanOccupancy, 2) << "/"
            << prefetchReport.prefetchPeakOccupancy << "; total "
            << fmt(prefetchReport.totalSeconds, 2) << " s)\n";
  printRow("prefetch on/off edge sets", "identical adjacency",
           sameEdges ? "EXACT" : "MISMATCH");
  printRow("exposed load with prefetch", "< 25% of decode time",
           fmt(100.0 * exposedFraction, 1) + "%",
           exposedFraction < 0.25 ? "PASS" : "FAIL");

  // Idle fault-hook cost: the injection sites are compiled in permanently
  // (never a build flavor), so when no fault plan is active a whole run
  // must cost the same to within noise. Compare min-of-3 wall time with no
  // plan installed against an installed-but-empty plan (the strictly more
  // expensive state: every site takes the plan's lock and map lookup).
  net::SynthesisConfig hookConfig = config;
  hookConfig.filesPerBatch = 2;  // 8 batches -> plenty of site hits
  const auto minOf3Seconds = [&](bool armed) {
    chisimnet::runtime::FaultPlan empty;
    std::optional<chisimnet::runtime::fault::ScopedFaultPlan> scoped;
    if (armed) {
      scoped.emplace(empty);
    }
    double best = 1e300;
    for (int repeat = 0; repeat < 3; ++repeat) {
      net::NetworkSynthesizer synthesizer(hookConfig);
      synthesizer.synthesizeAdjacency(logs.files);
      best = std::min(best, synthesizer.report().totalSeconds);
    }
    return best;
  };
  const double idleSeconds = minOf3Seconds(false);
  const double armedSeconds = minOf3Seconds(true);
  const double hookOverhead = armedSeconds / std::max(idleSeconds, 1e-12) - 1.0;
  printRow("idle fault-hook overhead",
           "< 2% wall time (sites always compiled in)",
           fmt(100.0 * hookOverhead, 2) + "%",
           hookOverhead < 0.02 ? "PASS" : "FAIL");

  // Throughput extrapolation row.
  const double entriesPerSecond =
      static_cast<double>(whole.report().logEntriesLoaded) /
      whole.report().totalSeconds;
  const double paperEntriesWeek = kPaperPersons * kPaperChangesPerDay * 7.0;
  printRow("single-core time @2.9M, 1 week",
           "1-1.5 h on 1024 processes (64x16)",
           fmt(paperEntriesWeek / entriesPerSecond / 3600.0, 1) + " h",
           "extrapolated at measured entries/s; a cluster divides this");

  json.put("entries_per_sec", entriesPerSecond);
  json.put("backends_agree", backendsAgree);
  json.put("batch_additive", additive);
  json.put("reduce_hot_speedup_n32", microSpeedupAtMax);
  std::cout << "wrote " << json.write().string() << "\n";

  return additive && sameEdges && backendsAgree && exposedFraction < 0.25 &&
                 hookOverhead < 0.02 && treeSubLinear
             ? 0
             : 1;
}
