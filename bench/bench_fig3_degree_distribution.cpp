/// FIG3 — vertex degree frequency distribution of the full collocation
/// network for one simulated week (paper Fig 3).
///
/// The paper overlays three model curves on the log-log degree plot:
///   power law        p(k) ~ k^-1.5
///   truncated plaw   p(k) ~ k^-1.25 exp(-k/1000)
///   exponential      p(k) ~ exp(-k/kc)
/// and observes that none captures the full structure, with the truncated
/// form fitting the tail roll-off best. This bench reproduces the
/// distribution at scale-down, fits all three forms and ranks them by
/// log-space SSE.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("FIG3 degree distribution",
              "Fig 3: log-log degree distribution, 2.9M persons, 1 week");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph network = synthesizer.synthesizeGraph(logs.files);
  std::cout << "network: " << fmtCount(network.vertexCount()) << " vertices, "
            << fmtCount(network.edgeCount()) << " edges (synthesis "
            << fmt(synthesizer.report().totalSeconds, 1) << " s)\n\n";

  const auto degrees = graph::degreeSequence(network);
  const auto distribution = stats::frequencyDistribution(degrees);

  // Head of the distribution: the paper notes degrees 1-7 are each held by
  // roughly equal population mass (flat head) before the drop.
  std::cout << "distribution head (k : persons):\n";
  for (const stats::FrequencyPoint& point : distribution) {
    if (point.value >= 1 && point.value <= 10) {
      std::cout << "  k=" << point.value << " : " << fmtCount(point.count)
                << "\n";
    }
  }
  double headMin = 1e18;
  double headMax = 0;
  for (const stats::FrequencyPoint& point : distribution) {
    if (point.value >= 1 && point.value <= 7) {
      headMin = std::min(headMin, static_cast<double>(point.count));
      headMax = std::max(headMax, static_cast<double>(point.count));
    }
  }
  printRow("head flatness max/min (k=1..7)", "~1 (flat head)",
           fmt(headMax / headMin, 2));

  // Log-binned tail for the log-log shape.
  std::cout << "\nlog-binned distribution (bin center : density):\n";
  for (const stats::FrequencyPoint& point :
       stats::logBinnedDistribution(degrees, 2.0)) {
    std::cout << "  k~" << point.value << " : " << point.fraction << "\n";
  }

  // The three fits of Fig 3.
  const auto powerLaw = stats::fitPowerLaw(distribution);
  const auto truncated = stats::fitTruncatedPowerLaw(distribution);
  const auto exponential = stats::fitExponential(distribution);
  std::cout << "\n";
  printRow("power-law alpha", "1.5 (overlay)", fmt(powerLaw.alpha, 3));
  printRow("truncated-plaw alpha", "1.25 (overlay)", fmt(truncated.alpha, 3));
  printRow("truncated-plaw k_c", "1000 (overlay)", fmt(truncated.cutoff, 0),
           "cutoff scales with largest congregate place");
  printRow("exponential k_c", "(plotted, no value)",
           fmt(exponential.cutoff, 1));

  std::cout << "\nfit quality (log-space SSE; paper: no single form fits):\n";
  printRow("SSE power law", "worst tail fit", fmt(powerLaw.sseLog, 1));
  printRow("SSE truncated power law", "best tail fit", fmt(truncated.sseLog, 1));
  printRow("SSE exponential", "captures roll-off only",
           fmt(exponential.sseLog, 1));
  printRow("KS power law", "-", fmt(stats::ksStatistic(powerLaw, distribution), 3));
  printRow("KS truncated", "-", fmt(stats::ksStatistic(truncated, distribution), 3));
  printRow("KS exponential", "-",
           fmt(stats::ksStatistic(exponential, distribution), 3));

  // Regenerate the figure itself: degree frequency scatter with the three
  // model overlays, log-log axes — the paper's Fig 3 layout.
  {
    stats::ScatterPlot plot("Fig 3 — vertex degree frequency distribution",
                            "vertex degree k", "frequency p(k)");
    plot.setLogX(true);
    plot.setLogY(true);
    stats::PlotSeries data;
    data.label = "collocation network";
    data.color = "#1f6fb4";
    for (const stats::FrequencyPoint& point : distribution) {
      data.points.push_back(stats::PlotPoint{
          static_cast<double>(point.value), point.fraction});
    }
    plot.addSeries(std::move(data));
    const auto curve = [&](const stats::FitResult& fit, const char* label,
                           const char* color, const char* dash) {
      stats::PlotSeries series;
      series.label = label;
      series.color = color;
      series.drawLine = true;
      series.drawMarkers = false;
      series.dash = dash;
      for (double k = 1.0; k <= static_cast<double>(distribution.back().value);
           k *= 1.25) {
        series.points.push_back(stats::PlotPoint{k, fit.evaluate(k)});
      }
      plot.addSeries(std::move(series));
    };
    curve(powerLaw, "power law", "#c23b22", "6,3");
    curve(truncated, "truncated power law", "#2e8540", "");
    curve(exponential, "exponential", "#333333", "2,3");
    const auto figurePath = resultsDir() / "fig3_degree_distribution.svg";
    plot.writeSvg(figurePath);
    std::cout << "\nwrote " << figurePath.string() << "\n";
  }

  const bool truncatedBest = truncated.sseLog <= powerLaw.sseLog;
  std::cout << "\nshape check: truncated power law fits better than pure "
               "power law: "
            << (truncatedBest ? "YES (matches paper)" : "NO") << "\n";
  return truncatedBest ? 0 : 1;
}
