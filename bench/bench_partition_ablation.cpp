/// BALANCE — the nnz-based load-balancing ablation (paper §IV.A.3).
///
/// "This step is crucial to achieve even load balancing across workers ...
/// Without this balancing step, some workers would sit idle while others
/// would be working for extended periods of time due to the variance in the
/// number of collocated persons at different locations, which can range
/// from a single individual to tens of thousands of individuals."
///
/// This bench runs the adjacency stage with (a) greedy-LPT-by-nnz (the
/// paper's scheme), (b) contiguous equal-count lists, and (c) round-robin,
/// and reports weight imbalance, observed worker busy-time imbalance, and
/// stage wall time.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("BALANCE partition ablation",
              "§IV.A.3: nnz re-partitioning is crucial for even balance");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);
  const table::EventTable events =
      elog::loadEvents(logs.files, 0, pop::kHoursPerWeek);

  // Build the collocation matrices once; the ablation varies only the
  // partitioning of the adjacency stage.
  const auto matrices =
      sparse::buildCollocationMatrices(events, 0, pop::kHoursPerWeek);
  std::vector<std::uint64_t> weights;
  std::vector<std::uint64_t> occupancyWeights;
  weights.reserve(matrices.size());
  occupancyWeights.reserve(matrices.size());
  std::uint64_t maxNnz = 0;
  std::uint64_t minNnz = ~0ull;
  for (const auto& matrix : matrices) {
    weights.push_back(matrix.nnz());
    // SynthesisConfig::occupancyWeight's cost model: nnz scaled by mean
    // simultaneous occupancy (nnz / occupied hours), tracking the pairwise
    // x-xT work of hub places better than raw person-hours.
    occupancyWeights.push_back(std::max<std::uint64_t>(
        1, matrix.nnz() * matrix.nnz() /
               std::max<std::uint64_t>(1, matrix.occupiedHours())));
    maxNnz = std::max(maxNnz, matrix.nnz());
    minNnz = std::min(minNnz, matrix.nnz());
  }
  std::cout << "collocation matrices: " << fmtCount(matrices.size())
            << " places, nnz range [" << minNnz << ", " << fmtCount(maxNnz)
            << "] (paper: 1 .. tens of thousands)\n\n";

  const unsigned workers = 8;
  struct Result {
    std::string name;
    double weightImbalance = 0.0;
    double busyImbalance = 0.0;
    double wallSeconds = 0.0;
    double busyMax = 0.0;
  };
  std::vector<Result> results;

  for (const auto& [name, partition] :
       std::vector<std::pair<std::string, runtime::Partition>>{
           {"lpt-by-nnz (paper)", runtime::partitionGreedyLpt(weights, workers)},
           {"contiguous (naive)", runtime::partitionContiguous(weights, workers)},
           {"round-robin (naive)", runtime::partitionRoundRobin(weights, workers)},
           {"lpt-by-occupancy", runtime::partitionGreedyLpt(occupancyWeights, workers)},
       }) {
    runtime::Cluster cluster(workers);
    std::vector<sparse::SymmetricAdjacency> sums;
    for (unsigned w = 0; w < workers; ++w) {
      sums.emplace_back(1024);
    }
    cluster.applyPartitioned(partition, [&](std::size_t item, unsigned worker) {
      sums[worker].addCollocation(matrices[item]);
    });
    Result result;
    result.name = name;
    result.weightImbalance = partition.imbalance();
    result.busyImbalance = cluster.busyImbalance();
    result.wallSeconds = cluster.lastWallSeconds();
    for (double busy : cluster.workerBusySeconds()) {
      result.busyMax = std::max(result.busyMax, busy);
    }
    results.push_back(result);
    std::cout << "  " << name << ": weight-imbalance "
              << fmt(result.weightImbalance, 2) << ", busy-imbalance "
              << fmt(result.busyImbalance, 2) << ", makespan(busy) "
              << fmt(result.busyMax, 2) << " s, wall " << fmt(result.wallSeconds, 2)
              << " s\n";
  }

  std::cout << "\n(single-core host: wall time reflects total work; the "
               "idle-worker effect shows in weight/busy imbalance — on a real "
               "cluster stage wall time tracks the max-loaded worker)\n\n";

  const Result& lpt = results[0];
  const Result& contiguous = results[1];
  const Result& occupancy = results[3];
  printRow("LPT weight imbalance", "~1.0 (even)", fmt(lpt.weightImbalance, 2));
  printRow("naive weight imbalance", ">> 1 (idle workers)",
           fmt(contiguous.weightImbalance, 2));
  printRow("occupancy-LPT busy imbalance",
           "vs nnz-LPT " + fmt(lpt.busyImbalance, 2),
           fmt(occupancy.busyImbalance, 2),
           "decides whether --occupancy-weight should become the default");
  const bool crucial =
      contiguous.weightImbalance > 1.5 * lpt.weightImbalance;
  std::cout << "\nshape check: balancing step materially evens the load: "
            << (crucial ? "YES (matches paper's 'crucial')" : "NO") << "\n";
  return crucial ? 0 : 1;
}
