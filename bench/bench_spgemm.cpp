/// SPGEMM — per-place adjacency computation A = x·xᵀ (paper §IV).
///
/// Microbenchmarks of the three equivalent kernels (sparse column outer
/// products — the paper's math —, pairwise interval intersection, and the
/// local-coordinate accumulate that batches each place's pair-hours before
/// touching the global map) across place profiles: a household (tiny,
/// always-on), a classroom (30 persons, school hours), a workplace
/// (hundreds, business hours) and a congregate hub (thousands, mixed
/// hours). The crossover explains why the pipeline defaults to the
/// local-coordinate kernel.
///
/// Beyond the google-benchmark tables, the binary writes
/// BENCH_spgemm.json (min-of-N seconds per shape and kernel, speedups,
/// edges/sec) into resultsDir(), and `--smoke` runs a quick perf gate:
/// the local-coordinate kernel must beat SpGEMM by >= 1.5x on the
/// hub-heavy shape, else the exit code is nonzero.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/util/rng.hpp"
#include "chisimnet/util/timer.hpp"

namespace {

using namespace chisimnet;

/// A place visited by `persons` persons, each present for `hoursEach`
/// uniformly placed hours of a week.
sparse::CollocationMatrix makePlace(std::size_t persons, unsigned hoursEach,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<table::Event> events;
  for (std::size_t p = 0; p < persons; ++p) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(168 - hoursEach));
    events.push_back(table::Event{start,
                                  static_cast<table::Hour>(start + hoursEach),
                                  static_cast<table::PersonId>(p), 0, 1});
  }
  return sparse::CollocationMatrix(1, events, 0, 168);
}

void runMethod(benchmark::State& state, std::size_t persons, unsigned hours,
               sparse::AdjacencyMethod method) {
  const sparse::CollocationMatrix matrix = makePlace(persons, hours, 42);
  std::uint64_t edges = 0;
  for (auto _ : state) {
    sparse::SymmetricAdjacency adjacency(matrix.nnz());
    adjacency.addCollocation(matrix, method);
    benchmark::DoNotOptimize(adjacency);
    edges = adjacency.edgeCount();
  }
  state.counters["nnz"] = static_cast<double>(matrix.nnz());
  state.counters["edges"] = static_cast<double>(edges);
}

void BM_SpGemm_Household(benchmark::State& state) {
  runMethod(state, 4, 120, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Household(benchmark::State& state) {
  runMethod(state, 4, 120, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_Local_Household(benchmark::State& state) {
  runMethod(state, 4, 120, sparse::AdjacencyMethod::kLocalAccumulate);
}
void BM_SpGemm_Classroom(benchmark::State& state) {
  runMethod(state, 30, 30, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Classroom(benchmark::State& state) {
  runMethod(state, 30, 30, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_Local_Classroom(benchmark::State& state) {
  runMethod(state, 30, 30, sparse::AdjacencyMethod::kLocalAccumulate);
}
void BM_SpGemm_Workplace(benchmark::State& state) {
  runMethod(state, 300, 40, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Workplace(benchmark::State& state) {
  runMethod(state, 300, 40, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_Local_Workplace(benchmark::State& state) {
  runMethod(state, 300, 40, sparse::AdjacencyMethod::kLocalAccumulate);
}
void BM_SpGemm_CongregateHub(benchmark::State& state) {
  runMethod(state, 2000, 30, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_CongregateHub(benchmark::State& state) {
  runMethod(state, 2000, 30, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_Local_CongregateHub(benchmark::State& state) {
  runMethod(state, 2000, 30, sparse::AdjacencyMethod::kLocalAccumulate);
}
// A shop: many distinct visitors but only a couple present at a time. Most
// visitor pairs never overlap, so the pairwise-intersection kernel wastes
// O(p^2) empty intersections while the matrix kernels only touch
// co-present pairs. The local kernel's dense/hash crossover picks the hash
// path here (p²/2 pair slots vastly exceed the actual pair-hours).
void BM_SpGemm_Shop(benchmark::State& state) {
  runMethod(state, 3000, 1, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Shop(benchmark::State& state) {
  runMethod(state, 3000, 1, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_Local_Shop(benchmark::State& state) {
  runMethod(state, 3000, 1, sparse::AdjacencyMethod::kLocalAccumulate);
}

BENCHMARK(BM_SpGemm_Household);
BENCHMARK(BM_Intersect_Household);
BENCHMARK(BM_Local_Household);
BENCHMARK(BM_SpGemm_Classroom);
BENCHMARK(BM_Intersect_Classroom);
BENCHMARK(BM_Local_Classroom);
BENCHMARK(BM_SpGemm_Workplace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Intersect_Workplace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Local_Workplace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpGemm_CongregateHub)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Intersect_CongregateHub)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Local_CongregateHub)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpGemm_Shop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Intersect_Shop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Local_Shop)->Unit(benchmark::kMillisecond);

/// Merge (reduction) cost: summing worker adjacencies at the root.
void BM_AdjacencyMerge(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  sparse::SymmetricAdjacency a(entries);
  sparse::SymmetricAdjacency b(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    a.add(static_cast<std::uint32_t>(rng.uniformBelow(100000)),
          static_cast<std::uint32_t>(100000 + rng.uniformBelow(100000)), 1);
    b.add(static_cast<std::uint32_t>(rng.uniformBelow(100000)),
          static_cast<std::uint32_t>(100000 + rng.uniformBelow(100000)), 1);
  }
  for (auto _ : state) {
    sparse::SymmetricAdjacency sum(entries * 2);
    sum.merge(a);
    sum.merge(b);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries) * 2);
}
BENCHMARK(BM_AdjacencyMerge)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

// ---- JSON dump and --smoke perf gate -------------------------------------

struct Shape {
  const char* name;
  std::size_t persons;
  unsigned hours;
};

constexpr Shape kShapes[] = {
    {"household", 4, 120},       {"classroom", 30, 30},
    {"workplace", 300, 40},      {"congregate_hub", 2000, 30},
    {"shop", 3000, 1},
};

const char* methodSlug(sparse::AdjacencyMethod method) {
  switch (method) {
    case sparse::AdjacencyMethod::kSpGemm:
      return "spgemm";
    case sparse::AdjacencyMethod::kIntervalIntersection:
      return "intersect";
    case sparse::AdjacencyMethod::kLocalAccumulate:
      return "local";
  }
  return "unknown";
}

/// Min-of-N wall time of one kernel on one place; min filters scheduler
/// noise on the shared CI machines this gate runs on.
double minSeconds(const sparse::CollocationMatrix& matrix,
                  sparse::AdjacencyMethod method, int repeats,
                  std::uint64_t* edgesOut = nullptr) {
  double best = 1e300;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    util::WallTimer timer;
    sparse::SymmetricAdjacency adjacency(matrix.nnz());
    adjacency.addCollocation(matrix, method);
    best = std::min(best, timer.seconds());
    if (edgesOut != nullptr) {
      *edgesOut = adjacency.edgeCount();
    }
  }
  return best;
}

/// Times every (shape, kernel) pair, writes BENCH_spgemm.json, and returns
/// the local-vs-spgemm speedup on the hub-heavy shape (the gated number).
double dumpJson(int repeats) {
  using chisimnet::bench::JsonReport;
  JsonReport json("spgemm");
  json.put("bench", "spgemm");
  json.put("repeats", repeats);
  double hubSpeedup = 0.0;
  for (const Shape& shape : kShapes) {
    const sparse::CollocationMatrix matrix =
        makePlace(shape.persons, shape.hours, 42);
    const std::string prefix = shape.name;
    double bySlug[3] = {0.0, 0.0, 0.0};
    std::uint64_t edges = 0;
    int slot = 0;
    for (const auto method : {sparse::AdjacencyMethod::kSpGemm,
                              sparse::AdjacencyMethod::kIntervalIntersection,
                              sparse::AdjacencyMethod::kLocalAccumulate}) {
      const double seconds = minSeconds(matrix, method, repeats, &edges);
      bySlug[slot++] = seconds;
      json.put(prefix + "_" + methodSlug(method) + "_seconds", seconds);
    }
    const double speedup = bySlug[0] / std::max(bySlug[2], 1e-12);
    json.put(prefix + "_edges", edges);
    json.put(prefix + "_local_edges_per_sec",
             static_cast<double>(edges) / std::max(bySlug[2], 1e-12));
    json.put(prefix + "_local_vs_spgemm_speedup", speedup);
    if (std::string(shape.name) == "congregate_hub") {
      hubSpeedup = speedup;
    }
    std::cout << "  " << prefix << ": spgemm "
              << chisimnet::bench::fmt(bySlug[0] * 1e3, 3) << " ms, local "
              << chisimnet::bench::fmt(bySlug[2] * 1e3, 3) << " ms ("
              << chisimnet::bench::fmt(speedup, 2) << "x)\n";
  }
  json.put("congregate_hub_gate_threshold", 1.5);
  json.put("congregate_hub_gate_speedup", hubSpeedup);
  const auto path = json.write();
  std::cout << "wrote " << path.string() << "\n";
  return hubSpeedup;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  std::cout << (smoke ? "perf smoke (min-of-3):\n"
                      : "\nkernel comparison (min-of-5):\n");
  const double hubSpeedup = dumpJson(smoke ? 3 : 5);
  const bool pass = hubSpeedup >= 1.5;
  std::cout << "gate: local >= 1.5x spgemm on congregate hub: measured "
            << chisimnet::bench::fmt(hubSpeedup, 2) << "x -> "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
