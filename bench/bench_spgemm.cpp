/// SPGEMM — per-place adjacency computation A = x·xᵀ (paper §IV).
///
/// Microbenchmarks of the two equivalent kernels (sparse column outer
/// products — the paper's math — vs pairwise interval intersection) across
/// place profiles: a household (tiny, always-on), a classroom (30 persons,
/// school hours), a workplace (hundreds, business hours) and a congregate
/// hub (thousands, mixed hours). The crossover explains why the pipeline
/// defaults to SpGEMM.

#include <benchmark/benchmark.h>

#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/util/rng.hpp"

namespace {

using namespace chisimnet;

/// A place visited by `persons` persons, each present for `hoursEach`
/// uniformly placed hours of a week.
sparse::CollocationMatrix makePlace(std::size_t persons, unsigned hoursEach,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<table::Event> events;
  for (std::size_t p = 0; p < persons; ++p) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(168 - hoursEach));
    events.push_back(table::Event{start,
                                  static_cast<table::Hour>(start + hoursEach),
                                  static_cast<table::PersonId>(p), 0, 1});
  }
  return sparse::CollocationMatrix(1, events, 0, 168);
}

void runMethod(benchmark::State& state, std::size_t persons, unsigned hours,
               sparse::AdjacencyMethod method) {
  const sparse::CollocationMatrix matrix = makePlace(persons, hours, 42);
  std::uint64_t edges = 0;
  for (auto _ : state) {
    sparse::SymmetricAdjacency adjacency(matrix.nnz());
    adjacency.addCollocation(matrix, method);
    benchmark::DoNotOptimize(adjacency);
    edges = adjacency.edgeCount();
  }
  state.counters["nnz"] = static_cast<double>(matrix.nnz());
  state.counters["edges"] = static_cast<double>(edges);
}

void BM_SpGemm_Household(benchmark::State& state) {
  runMethod(state, 4, 120, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Household(benchmark::State& state) {
  runMethod(state, 4, 120, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_SpGemm_Classroom(benchmark::State& state) {
  runMethod(state, 30, 30, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Classroom(benchmark::State& state) {
  runMethod(state, 30, 30, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_SpGemm_Workplace(benchmark::State& state) {
  runMethod(state, 300, 40, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Workplace(benchmark::State& state) {
  runMethod(state, 300, 40, sparse::AdjacencyMethod::kIntervalIntersection);
}
void BM_SpGemm_CongregateHub(benchmark::State& state) {
  runMethod(state, 2000, 30, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_CongregateHub(benchmark::State& state) {
  runMethod(state, 2000, 30, sparse::AdjacencyMethod::kIntervalIntersection);
}
// A shop: many distinct visitors but only a couple present at a time. Most
// visitor pairs never overlap, so the pairwise-intersection kernel wastes
// O(p^2) empty intersections while SpGEMM only touches co-present pairs.
void BM_SpGemm_Shop(benchmark::State& state) {
  runMethod(state, 3000, 1, sparse::AdjacencyMethod::kSpGemm);
}
void BM_Intersect_Shop(benchmark::State& state) {
  runMethod(state, 3000, 1, sparse::AdjacencyMethod::kIntervalIntersection);
}

BENCHMARK(BM_SpGemm_Household);
BENCHMARK(BM_Intersect_Household);
BENCHMARK(BM_SpGemm_Classroom);
BENCHMARK(BM_Intersect_Classroom);
BENCHMARK(BM_SpGemm_Workplace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Intersect_Workplace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpGemm_CongregateHub)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Intersect_CongregateHub)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpGemm_Shop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Intersect_Shop)->Unit(benchmark::kMillisecond);

/// Merge (reduction) cost: summing worker adjacencies at the root.
void BM_AdjacencyMerge(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  sparse::SymmetricAdjacency a(entries);
  sparse::SymmetricAdjacency b(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    a.add(static_cast<std::uint32_t>(rng.uniformBelow(100000)),
          static_cast<std::uint32_t>(100000 + rng.uniformBelow(100000)), 1);
    b.add(static_cast<std::uint32_t>(rng.uniformBelow(100000)),
          static_cast<std::uint32_t>(100000 + rng.uniformBelow(100000)), 1);
  }
  for (auto _ : state) {
    sparse::SymmetricAdjacency sum(entries * 2);
    sum.merge(a);
    sum.merge(b);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries) * 2);
}
BENCHMARK(BM_AdjacencyMerge)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
