#pragma once

/// Shared plumbing for the benchmark harnesses: scaled workload setup
/// (population -> ABM -> logs), and uniform "paper vs measured" reporting.
///
/// Every harness honors CHISIMNET_SCALE (default 1.0) as a multiplier on
/// its default population so the same binaries serve quick smoke runs
/// (CHISIMNET_SCALE=0.1) and long reproductions (CHISIMNET_SCALE=4).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "chisimnet/chisimnet.hpp"
#include "chisimnet/stats/plot.hpp"

namespace chisimnet::bench {

/// Paper-scale constants used in extrapolation rows.
inline constexpr double kPaperPersons = 2.9e6;
inline constexpr std::uint64_t kPaperVertices = 2'927'761;
inline constexpr std::uint64_t kPaperEdges = 830'328'649;
inline constexpr double kPaperEntryBytes = 20.0;
inline constexpr double kPaperChangesPerDay = 5.0;

/// Directory where benches drop regenerated figures (SVG) and data series;
/// override with CHISIMNET_RESULTS.
inline std::filesystem::path resultsDir() {
  const char* env = std::getenv("CHISIMNET_RESULTS");
  const std::filesystem::path dir = env != nullptr ? env : "chisimnet_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline std::uint32_t scaledPersons(std::uint32_t defaultPersons) {
  const double scaled = util::benchScale() * defaultPersons;
  return scaled < 1000.0 ? 1000u : static_cast<std::uint32_t>(scaled);
}

inline pop::SyntheticPopulation makePopulation(std::uint32_t persons,
                                               std::uint64_t seed = 20170517) {
  pop::PopulationConfig config;
  config.personCount = persons;
  config.seed = seed;
  return pop::SyntheticPopulation::generate(config);
}

struct SimulatedLogs {
  std::filesystem::path directory;
  std::vector<std::filesystem::path> files;
  abm::ModelStats stats;

  ~SimulatedLogs() {
    std::error_code ignored;
    std::filesystem::remove_all(directory, ignored);
  }
};

/// Runs the ABM into a temp directory and returns the produced log files.
inline SimulatedLogs simulate(const pop::SyntheticPopulation& population,
                              int ranks = 8, std::uint32_t weeks = 1,
                              abm::PartitionStrategy strategy =
                                  abm::PartitionStrategy::kNeighborhood) {
  SimulatedLogs logs;
  logs.directory = std::filesystem::temp_directory_path() /
                   ("chisimnet_bench_" + std::to_string(::getpid()) + "_" +
                    std::to_string(population.persons().size()));
  std::filesystem::remove_all(logs.directory);
  abm::ModelConfig config;
  config.logDirectory = logs.directory;
  config.rankCount = ranks;
  config.weeks = weeks;
  config.strategy = strategy;
  logs.stats = abm::runModel(population, config);
  logs.files = elog::listLogFiles(logs.directory);
  return logs;
}

inline void printHeader(const std::string& experiment,
                        const std::string& paperArtifact) {
  std::cout << "==============================================================\n"
            << "experiment: " << experiment << "\n"
            << "paper:      " << paperArtifact << "\n"
            << "scale:      CHISIMNET_SCALE=" << util::benchScale() << "\n"
            << "==============================================================\n";
}

inline void printRow(const std::string& metric, const std::string& paper,
                     const std::string& measured,
                     const std::string& note = "") {
  std::cout << "  " << metric;
  for (std::size_t i = metric.size(); i < 34; ++i) {
    std::cout << ' ';
  }
  std::cout << "paper: ";
  std::cout << paper;
  for (std::size_t i = paper.size(); i < 22; ++i) {
    std::cout << ' ';
  }
  std::cout << "measured: " << measured;
  if (!note.empty()) {
    std::cout << "   (" << note << ")";
  }
  std::cout << "\n";
}

inline std::string fmt(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

/// Flat machine-readable metrics dump. Benches collect (key, value) pairs
/// and write `resultsDir()/BENCH_<name>.json` so CI can archive per-run
/// numbers (per-stage seconds, kernel variant, edges/sec) without scraping
/// stdout. Keys are emitted in insertion order; duplicate keys overwrite.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void put(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    putRaw(key, buffer);
  }
  void put(const std::string& key, std::uint64_t value) {
    putRaw(key, std::to_string(value));
  }
  void put(const std::string& key, int value) {
    putRaw(key, std::to_string(value));
  }
  void put(const std::string& key, bool value) {
    putRaw(key, value ? "true" : "false");
  }
  void put(const std::string& key, const std::string& value) {
    putRaw(key, "\"" + escape(value) + "\"");
  }
  void put(const std::string& key, const char* value) {
    put(key, std::string(value));
  }

  /// Writes BENCH_<name>.json into resultsDir() and returns its path.
  std::filesystem::path write() const {
    const std::filesystem::path path = resultsDir() / ("BENCH_" + name_ + ".json");
    std::ofstream out(path);
    out << "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << "  \"" << escape(fields_[i].first) << "\": " << fields_[i].second
          << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    return path;
  }

 private:
  static std::string escape(const std::string& text) {
    std::string out;
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  void putRaw(const std::string& key, std::string value) {
    for (auto& field : fields_) {
      if (field.first == key) {
        field.second = std::move(value);
        return;
      }
    }
    fields_.emplace_back(key, std::move(value));
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

inline std::string fmtCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++counter;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace chisimnet::bench
