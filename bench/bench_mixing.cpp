/// EXT-MIXING — age-group mixing structure and the "tailored generator"
/// test (paper §VI: synthetic networks must "match the vertex degree
/// distributions for population sub-groups such as age"; this bench goes
/// one step further and matches the group-pair edge counts too, then shows
/// what still goes missing).
///
/// Steps:
///   1. synthesize the collocation network; compute the age-age mixing
///      matrix (the POLYMOD-style contact matrix analogue),
///   2. verify the expected block structure (children mix with children in
///      schools; strong diagonal),
///   3. generate a grouped configuration model matching degrees AND the
///      mixing matrix; confirm mixing carries over but clustering does not.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("EXT-MIXING age-group mixing matrix",
              "§VI: tailored generators must match sub-group structure "
              "(extension)");

  const auto population = makePopulation(scaledPersons(15'000));
  const SimulatedLogs logs = simulate(population);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph network = synthesizer.synthesizeGraph(logs.files);

  // Group vertices by age band (vertex labels are person ids).
  std::vector<std::uint32_t> groupOf(network.vertexCount());
  for (graph::Vertex v = 0; v < network.vertexCount(); ++v) {
    groupOf[v] = static_cast<std::uint32_t>(
        population.person(network.label(v)).group);
  }
  const graph::MixingMatrix mixing(network, groupOf, pop::kAgeGroupCount);

  std::cout << "age-age edge fractions (row = group, columns "
               "0-14/15-18/19-44/45-64/65+):\n";
  for (std::uint32_t a = 0; a < pop::kAgeGroupCount; ++a) {
    std::cout << "  " << pop::ageGroupName(static_cast<pop::AgeGroup>(a))
              << "\t";
    for (std::uint32_t b = 0; b < pop::kAgeGroupCount; ++b) {
      std::cout << fmt(mixing.edgeFraction(a, b), 4) << "  ";
    }
    std::cout << "\n";
  }

  printRow("group assortativity", "> 0 (schools/workplaces sort by age)",
           fmt(mixing.assortativity(), 3));
  const double childChild = mixing.edgeFraction(0, 0);
  const double childSenior = mixing.edgeFraction(
      0, static_cast<std::uint32_t>(pop::AgeGroup::kSenior65plus));
  printRow("child-child vs child-senior edges", "school-driven imbalance",
           fmt(childChild / std::max(childSenior, 1e-12), 1) + "x");

  // The tailored generator: degrees + mixing preserved, clustering lost.
  util::Rng rng(11);
  const graph::Graph tailored = graph::groupedConfigurationModel(
      graph::degreeSequence(network), groupOf, mixing.edgeCountTable(),
      pop::kAgeGroupCount, rng);
  const graph::MixingMatrix tailoredMixing(tailored, groupOf,
                                           pop::kAgeGroupCount);
  printRow("tailored generator assortativity", "matches the emergent network",
           fmt(tailoredMixing.assortativity(), 3) + " vs " +
               fmt(mixing.assortativity(), 3));

  const auto clustering = graph::localClusteringCoefficients(network);
  const auto tailoredClustering = graph::localClusteringCoefficients(tailored);
  const double realMean = stats::mean(clustering);
  const double tailoredMean = stats::mean(tailoredClustering);
  printRow("clustering: emergent vs tailored",
           "tailored still collapses (needs place cliques)",
           fmt(realMean, 3) + " vs " + fmt(tailoredMean, 3));

  const bool assortative = mixing.assortativity() > 0.1;
  const bool mixingCarried =
      std::abs(tailoredMixing.assortativity() - mixing.assortativity()) < 0.1;
  const bool clusteringLost = tailoredMean < realMean / 3.0;
  std::cout << "\nshape checks: age-assortative mixing: "
            << (assortative ? "YES" : "NO")
            << "; tailored generator reproduces mixing: "
            << (mixingCarried ? "YES" : "NO")
            << "; but not clustering: "
            << (clusteringLost ? "YES (supports the paper's conclusion)" : "NO")
            << "\n";
  return assortative && mixingCarried && clusteringLost ? 0 : 1;
}
