/// LOG-SIZE — event-based logging volume claims (paper §III).
///
/// Paper claims verified / extrapolated:
///   - each entry is 20 bytes (five u32 fields),
///   - persons change activities ~5 times/day on average,
///   - 2.9 M persons for one simulated week => ~2 GB of log data,
///   - on 64 ranks, one rank's weekly file is ~30 MB,
///   - event-based logging is dramatically smaller than per-step logging.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("LOG-SIZE event logging volume",
              "§III: 20 B/entry, ~5 changes/day, ~2 GB/week @2.9M, "
              "~30 MB/rank @64 ranks");

  const auto population = makePopulation(scaledPersons(30'000));
  const int ranks = 8;
  const SimulatedLogs logs = simulate(population, ranks);

  const double persons = static_cast<double>(population.persons().size());
  const double entries = static_cast<double>(logs.stats.eventsLogged);
  const double bytes = static_cast<double>(logs.stats.logBytes);
  const double diskBytes = static_cast<double>(elog::totalFileBytes(logs.files));

  printRow("bytes per entry (payload)", "20",
           fmt(20.0, 0), "five u32 fields, checked at compile time");
  printRow("bytes per entry (on disk incl. framing)", "~20",
           fmt(diskBytes / entries, 2), "chunk headers + footer amortized");
  const double changesPerDay = entries / persons / 7.0;
  printRow("activity changes / person / day", "~5", fmt(changesPerDay, 2));

  // Extrapolations to the paper's scale.
  const double bytesPerPersonWeek = bytes / persons;
  const double paperWeekGb = bytesPerPersonWeek * kPaperPersons / 1e9;
  printRow("log volume, 1 week @2.9M persons", "~2 GB",
           fmt(paperWeekGb, 2) + " GB", "linear extrapolation");
  printRow("log volume, 1 year @2.9M persons", "100-200 GB",
           fmt(paperWeekGb * 52.0, 0) + " GB");
  const double perRank64Mb = bytesPerPersonWeek * kPaperPersons / 64.0 / 1e6;
  printRow("per-rank file, 1 week @64 ranks", "~30 MB",
           fmt(perRank64Mb, 1) + " MB");

  // Packed chunk encoding (the HDF5-filter analogue; an extension over the
  // paper's fixed 20 B layout).
  {
    abm::ModelConfig packedConfig;
    packedConfig.logDirectory =
        logs.directory.parent_path() /
        (logs.directory.filename().string() + "_packed");
    std::filesystem::remove_all(packedConfig.logDirectory);
    packedConfig.rankCount = ranks;
    packedConfig.logCompression = elog::LogCompression::kPacked;
    const abm::ModelStats packedStats = abm::runModel(population, packedConfig);
    printRow("packed encoding bytes/entry", "20 (raw layout)",
             fmt(static_cast<double>(packedStats.logBytes) /
                     static_cast<double>(packedStats.eventsLogged),
                 2),
             "column-split zigzag-delta varints");
    std::filesystem::remove_all(packedConfig.logDirectory);
  }

  // Event-based vs per-step logging (the design §III motivates).
  const double perStepEntries = persons * 168.0;  // one entry per agent-hour
  printRow("event-based vs per-step entries",
           "dramatic reduction",
           fmt(perStepEntries / entries, 1) + "x fewer entries");

  // Per-rank distribution sanity: logging is parallelized across ranks.
  std::uint64_t maxRank = 0;
  std::uint64_t minRank = ~0ull;
  for (std::uint64_t count : logs.stats.perRankEvents) {
    maxRank = std::max(maxRank, count);
    minRank = std::min(minRank, count);
  }
  printRow("per-rank event balance max/min", "roughly even (per-rank loggers)",
           fmt(static_cast<double>(maxRank) / static_cast<double>(minRank), 2));

  const bool entrySizeOk = diskBytes / entries < 21.0;
  const bool rateOk = changesPerDay > 2.0 && changesPerDay < 9.0;
  const bool volumeOk = paperWeekGb > 0.5 && paperWeekGb < 8.0;
  std::cout << "\nshape checks: entry size ~20B: " << (entrySizeOk ? "YES" : "NO")
            << "; change rate plausible: " << (rateOk ? "YES" : "NO")
            << "; extrapolated weekly volume in paper's ballpark: "
            << (volumeOk ? "YES" : "NO") << "\n";
  return entrySizeOk && rateOk && volumeOk ? 0 : 1;
}
