/// NET-SIZE — full collocation network size and memory (paper §V), plus
/// the memory-bounded synthesis sweep.
///
/// Paper numbers: the complete one-week network for Chicago has 2,927,761
/// vertices (persons) and 830,328,649 edges (collocations) and takes ~10 GB
/// of memory in R. This bench reports the synthesized network's size, the
/// bytes-per-edge of our CSR + triplet storage, and then re-synthesizes the
/// same logs under descending --memory-budget caps: for each cap it reports
/// edges/sec, spill volume, and the peak accumulator footprint, and FAILS
/// (non-zero exit) if any capped run's peak exceeds its cap or drifts from
/// the unbounded result. At CHISIMNET_SCALE high enough for 2.9 M persons
/// this is the paper-scale acceptance run; CHISIMNET_MEMORY_BUDGET (bytes)
/// pins a single cap — the nightly job uses it to assert a 12 GB ceiling.

#include <sys/resource.h>

#include <algorithm>
#include <limits>

#include "bench_common.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"

namespace {

double maxRssMiB() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

}  // namespace

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("NET-SIZE network size & memory",
              "§V: 2,927,761 vertices / 830,328,649 edges / ~10 GB in R");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);
  JsonReport json("network_size");
  json.put("persons", std::uint64_t{population.persons().size()});

  // ---- unbounded baseline: the in-memory accumulator and the CSR ----
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
  const graph::Graph network = graph::Graph::fromTriplets(adjacency.toTriplets());
  const double unboundedSeconds = synthesizer.report().totalSeconds;

  const double persons = static_cast<double>(population.persons().size());
  const double vertices = static_cast<double>(network.vertexCount());
  const double edges = static_cast<double>(network.edgeCount());

  printRow("vertices", fmtCount(kPaperVertices) + " @2.9M",
           fmtCount(network.vertexCount()));
  printRow("edges", fmtCount(kPaperEdges) + " @2.9M",
           fmtCount(network.edgeCount()));
  printRow("vertex coverage of population", "~100% (everyone collocates)",
           fmt(100.0 * vertices / persons, 1) + "%");

  const double paperMeanDegree = 2.0 * kPaperEdges / kPaperVertices;
  printRow("mean degree", fmt(paperMeanDegree, 0) + " @2.9M",
           fmt(graph::meanDegree(network), 0),
           "largest places grow with city size");

  const double csrBytesPerEdge = static_cast<double>(network.memoryBytes()) / edges;
  const std::uint64_t mapBytes = adjacency.memoryBytes();
  const double mapBytesPerEdge = static_cast<double>(mapBytes) / edges;
  printRow("CSR bytes / edge", "~13 (R sparse triangular, 10GB/830M)",
           fmt(csrBytesPerEdge, 1));
  printRow("accumulator bytes / edge", "-", fmt(mapBytesPerEdge, 1),
           "open-addressing pair map, load<=0.7");
  printRow("extrapolated CSR memory @830M edges", "~10 GB in R",
           fmt(csrBytesPerEdge * kPaperEdges / 1e9, 1) + " GB");

  json.put("vertices", std::uint64_t{network.vertexCount()});
  json.put("edges", std::uint64_t{network.edgeCount()});
  json.put("csr_bytes_per_edge", csrBytesPerEdge);
  json.put("accumulator_bytes_per_edge", mapBytesPerEdge);
  json.put("unbounded_accumulator_bytes", mapBytes);
  json.put("unbounded_seconds", unboundedSeconds);
  json.put("unbounded_edges_per_sec", edges / unboundedSeconds);

  // ---- memory-bounded sweep: same logs, descending accumulator caps ----
  // Caps are fractions of the unbounded accumulator so the sweep stresses
  // spilling at every scale; CHISIMNET_MEMORY_BUDGET pins one explicit cap
  // (the nightly paper-scale job uses 12 GiB).
  std::vector<std::uint64_t> caps;
  if (const char* env = std::getenv("CHISIMNET_MEMORY_BUDGET")) {
    caps.push_back(std::strtoull(env, nullptr, 10));
  } else {
    caps = {mapBytes / 2, mapBytes / 4, mapBytes / 8};
  }

  std::cout << "\nmemory-bounded synthesis (--memory-budget sweep):\n"
            << "  budget MiB   peak MiB   under cap   stage5 MiB   "
               "spill runs   spilled MiB   edges/sec\n";
  bool boundedOk = true;
  bool identicalOk = true;
  int capIndex = 0;
  for (const std::uint64_t cap : caps) {
    net::SynthesisConfig bounded = config;
    bounded.memoryBudgetBytes = cap;
    net::NetworkSynthesizer capped(bounded);
    const auto outFile = resultsDir() / "network_size_bounded.cadj";
    const std::uint64_t cappedEdges =
        capped.synthesizeToFile(logs.files, outFile);
    const net::SynthesisReport& report = capped.report();

    const bool underCap = report.peakAccumulatorBytes <= cap;
    boundedOk = boundedOk && underCap;
    // Bit-identity gate: the capped, disk-spilled run must reproduce the
    // unbounded accumulator's triplets exactly.
    const bool identical =
        cappedEdges == network.edgeCount() &&
        sparse::loadTriplets(outFile) == adjacency.toTriplets();
    identicalOk = identicalOk && identical;
    std::filesystem::remove(outFile);

    const double edgesPerSec = edges / report.totalSeconds;
    std::printf("  %10.1f %10.1f %11s %12.1f %12llu %13.1f %11.3g%s\n",
                cap / 1048576.0, report.peakAccumulatorBytes / 1048576.0,
                underCap ? "YES" : "NO", report.peakStage5Bytes / 1048576.0,
                static_cast<unsigned long long>(report.spillRunsWritten),
                report.spilledBytes / 1048576.0, edgesPerSec,
                identical ? "" : "   DRIFT");

    const std::string prefix = "cap" + std::to_string(capIndex++) + "_";
    json.put(prefix + "budget_bytes", cap);
    json.put(prefix + "peak_accumulator_bytes", report.peakAccumulatorBytes);
    json.put(prefix + "peak_stage5_bytes", report.peakStage5Bytes);
    json.put(prefix + "under_cap", underCap);
    json.put(prefix + "spill_runs", report.spillRunsWritten);
    json.put(prefix + "spilled_bytes", report.spilledBytes);
    json.put(prefix + "edges_per_sec", edgesPerSec);
    json.put(prefix + "seconds", report.totalSeconds);
    json.put(prefix + "identical", identical);
  }
  // ---- sharded external merge: serial reduce vs owner-parallel reduce ----
  // The stage-6 spill reduce assigns row-range shards to owners and merges
  // them independently. On a box where the owners share cores the wall
  // clock cannot show the parallelism, so the speedup gate uses the modeled
  // parallel critical path: per-segment merge cost is measured in
  // thread-CPU seconds, the critical path is the busiest owner's sum, and
  // the speedup is total merge CPU over that path — the ratio a
  // dedicated-core run realizes. Both sides are min-of-3.
  // The cap is the unbounded accumulator size: the spill threshold (half
  // the budget) still forces an external merge over the full edge set, but
  // the flush count stays small — each flush writes one run per resident
  // fine shard, and a tight cap at reduced scale would push thousands of
  // tiny runs through maxLiveRuns compaction, measuring churn instead of
  // the merge.
  const std::uint64_t mergeCap = mapBytes;
  const unsigned mergeShards = 4;
  net::SynthesisConfig serialCfg = config;
  serialCfg.memoryBudgetBytes = mergeCap;
  serialCfg.reduceShards = 1;
  net::SynthesisConfig shardedCfg = serialCfg;
  shardedCfg.reduceShards = mergeShards;
  // Fine shards sized for ~4 segments per owner so round-robin ownership
  // load-balances the merge plan.
  shardedCfg.mergeRowsPerShard = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(population.persons().size()) /
             (4 * mergeShards));

  double serialWall = std::numeric_limits<double>::max();
  double shardedWall = std::numeric_limits<double>::max();
  double mergeCpuSeconds = std::numeric_limits<double>::max();
  double mergeCriticalSeconds = std::numeric_limits<double>::max();
  std::uint64_t mergeSegments = 0;
  bool mergeIdentical = true;
  bool mergeUnderCap = true;
  const auto shardOut = resultsDir() / "network_size_sharded.cadj";
  for (int rep = 0; rep < 3; ++rep) {
    net::NetworkSynthesizer serial(serialCfg);
    serial.synthesizeToFile(logs.files, shardOut);
    serialWall = std::min(serialWall, serial.report().totalSeconds);
    std::filesystem::remove(shardOut);

    net::NetworkSynthesizer sharded(shardedCfg);
    const std::uint64_t got = sharded.synthesizeToFile(logs.files, shardOut);
    const net::SynthesisReport& report = sharded.report();
    mergeIdentical = mergeIdentical && got == network.edgeCount() &&
                     sparse::loadTriplets(shardOut) == adjacency.toTriplets();
    std::filesystem::remove(shardOut);
    mergeUnderCap = mergeUnderCap && report.peakAccumulatorBytes <= mergeCap;
    shardedWall = std::min(shardedWall, report.totalSeconds);
    mergeCpuSeconds = std::min(mergeCpuSeconds, report.mergeSeconds);
    mergeCriticalSeconds =
        std::min(mergeCriticalSeconds, report.mergeCriticalSeconds);
    mergeSegments = report.mergeSegmentsWritten;
    if (rep == 0) {
      json.put("merge_spill_runs", report.spillRunsWritten);
      json.put("merge_runs_split", report.spillRunsSplit);
      json.put("merge_compactions", report.spillCompactions);
      json.put("merge_spilled_bytes", report.spilledBytes);
    }
  }
  const double mergeSpeedup =
      mergeCpuSeconds / std::max(mergeCriticalSeconds, 1e-9);
  const bool mergeOk = mergeIdentical && mergeUnderCap && mergeSpeedup >= 2.0;

  std::cout << "\nsharded external merge (--reduce-shards " << mergeShards
            << ", " << mergeSegments << " segments, min-of-3):\n"
            << "  serial wall " << fmt(serialWall, 2) << " s, sharded wall "
            << fmt(shardedWall, 2) << " s, merge CPU "
            << fmt(mergeCpuSeconds, 3) << " s, critical path "
            << fmt(mergeCriticalSeconds, 3) << " s, modeled speedup "
            << fmt(mergeSpeedup, 2) << "x (gate >= 2x: "
            << (mergeSpeedup >= 2.0 ? "YES" : "NO") << ", identical: "
            << (mergeIdentical ? "YES" : "NO") << ", under cap: "
            << (mergeUnderCap ? "YES" : "NO") << ")\n";

  json.put("merge_shards", std::uint64_t{mergeShards});
  json.put("merge_segments", mergeSegments);
  json.put("merge_serial_wall_seconds", serialWall);
  json.put("merge_sharded_wall_seconds", shardedWall);
  json.put("merge_cpu_seconds", mergeCpuSeconds);
  json.put("merge_critical_seconds", mergeCriticalSeconds);
  json.put("merge_modeled_speedup", mergeSpeedup);
  json.put("merge_identical", mergeIdentical);
  json.put("merge_under_cap", mergeUnderCap);
  json.put("merge_speedup_ok", mergeOk);

  json.put("max_rss_mib", maxRssMiB());
  json.put("bounded_under_cap", boundedOk);
  json.put("bounded_identical", identicalOk);
  std::cout << "json: " << json.write().string() << "\n";

  const auto& report = synthesizer.report();
  std::cout << "\nsynthesis cost (unbounded): " << fmt(report.totalSeconds, 1)
            << " s total (load " << fmt(report.loadSeconds, 1) << ", colloc "
            << fmt(report.collocationSeconds, 1) << ", adjacency "
            << fmt(report.adjacencySeconds, 1) << ", reduce "
            << fmt(report.reduceSeconds, 1) << ")\n";

  const bool coverageOk = vertices > 0.95 * persons;
  const bool memoryOk = csrBytesPerEdge < 40.0;
  std::cout << "\nshape checks: nearly all persons appear as vertices: "
            << (coverageOk ? "YES" : "NO")
            << "; edge storage within sparse-matrix ballpark: "
            << (memoryOk ? "YES" : "NO")
            << "; every capped run stayed under its budget: "
            << (boundedOk ? "YES" : "NO")
            << "; capped output bit-identical to unbounded: "
            << (identicalOk ? "YES" : "NO")
            << "; sharded merge >=2x modeled speedup, identical, under cap: "
            << (mergeOk ? "YES" : "NO") << "\n";
  return coverageOk && memoryOk && boundedOk && identicalOk && mergeOk ? 0
                                                                       : 1;
}
