/// NET-SIZE — full collocation network size and memory (paper §V).
///
/// Paper numbers: the complete one-week network for Chicago has 2,927,761
/// vertices (persons) and 830,328,649 edges (collocations) and takes ~10 GB
/// of memory in R. This bench reports the synthesized network's size at
/// scale-down, the bytes-per-edge of our CSR + triplet storage, and the
/// extrapolated footprint at 2.9 M persons.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("NET-SIZE network size & memory",
              "§V: 2,927,761 vertices / 830,328,649 edges / ~10 GB in R");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(logs.files);
  const graph::Graph network = graph::Graph::fromTriplets(adjacency.toTriplets());

  const double persons = static_cast<double>(population.persons().size());
  const double vertices = static_cast<double>(network.vertexCount());
  const double edges = static_cast<double>(network.edgeCount());

  printRow("vertices", fmtCount(kPaperVertices) + " @2.9M",
           fmtCount(network.vertexCount()));
  printRow("edges", fmtCount(kPaperEdges) + " @2.9M",
           fmtCount(network.edgeCount()));
  printRow("vertex coverage of population", "~100% (everyone collocates)",
           fmt(100.0 * vertices / persons, 1) + "%");

  const double paperMeanDegree = 2.0 * kPaperEdges / kPaperVertices;
  printRow("mean degree", fmt(paperMeanDegree, 0) + " @2.9M",
           fmt(graph::meanDegree(network), 0),
           "largest places grow with city size");

  const double csrBytesPerEdge = static_cast<double>(network.memoryBytes()) / edges;
  const double mapBytesPerEdge =
      static_cast<double>(adjacency.memoryBytes()) / edges;
  printRow("CSR bytes / edge", "~13 (R sparse triangular, 10GB/830M)",
           fmt(csrBytesPerEdge, 1));
  printRow("accumulator bytes / edge", "-", fmt(mapBytesPerEdge, 1),
           "open-addressing pair map, load<=0.7");

  // Extrapolate memory using the paper's own edge count.
  printRow("extrapolated CSR memory @830M edges", "~10 GB in R",
           fmt(csrBytesPerEdge * kPaperEdges / 1e9, 1) + " GB");

  const auto& report = synthesizer.report();
  std::cout << "\nsynthesis cost: " << fmt(report.totalSeconds, 1)
            << " s total (load " << fmt(report.loadSeconds, 1) << ", colloc "
            << fmt(report.collocationSeconds, 1) << ", adjacency "
            << fmt(report.adjacencySeconds, 1) << ", reduce "
            << fmt(report.reduceSeconds, 1) << ")\n";

  const bool coverageOk = vertices > 0.95 * persons;
  const bool memoryOk = csrBytesPerEdge < 40.0;
  std::cout << "\nshape checks: nearly all persons appear as vertices: "
            << (coverageOk ? "YES" : "NO")
            << "; edge storage within sparse-matrix ballpark: "
            << (memoryOk ? "YES" : "NO") << "\n";
  return coverageOk && memoryOk ? 0 : 1;
}
