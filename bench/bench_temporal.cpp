/// EXT-TEMPORAL — time-sliced networks (paper §II: the event log supports
/// "arbitrary time granularity, e.g., hourly, daily, weekly or monthly
/// aggregates").
///
/// Builds daily collocation networks across one week and reports:
///   - exact additivity (daily adjacencies sum to the weekly network),
///   - day-to-day edge persistence (weekday routines repeat; weekends
///     differ),
///   - network size by slice granularity (hourly/daily/weekly).

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("EXT-TEMPORAL time-sliced networks",
              "§II: arbitrary time granularity from one event log");

  const auto population = makePopulation(scaledPersons(15'000));
  const SimulatedLogs logs = simulate(population);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;

  // Daily slices.
  const auto days = net::synthesizeSlices(logs.files, config, 24);
  std::cout << "daily networks (edges):";
  for (const net::TemporalSlice& day : days) {
    std::cout << " " << fmtCount(day.adjacency.edgeCount());
  }
  std::cout << "\n";

  // Additivity check against the whole week.
  net::NetworkSynthesizer whole(config);
  const auto weekly = whole.synthesizeAdjacency(logs.files);
  sparse::SymmetricAdjacency sum;
  for (const net::TemporalSlice& day : days) {
    sum.merge(day.adjacency);
  }
  const bool additive = sum.toTriplets() == weekly.toTriplets();
  printRow("daily slices sum to weekly network", "exact (paper batch rule)",
           additive ? "EXACT" : "MISMATCH");

  // Day-to-day persistence: Mon->Tue vs Fri->Sat.
  const double weekdayPersistence =
      net::edgeJaccard(days[0].adjacency, days[1].adjacency);
  const double intoWeekend =
      net::edgeJaccard(days[4].adjacency, days[5].adjacency);
  const double weekendPair =
      net::edgeJaccard(days[5].adjacency, days[6].adjacency);
  printRow("edge Jaccard Mon-Tue", "high (repeated weekday routines)",
           fmt(weekdayPersistence, 3));
  printRow("edge Jaccard Fri-Sat", "lower (weekday -> weekend shift)",
           fmt(intoWeekend, 3));
  printRow("edge Jaccard Sat-Sun", "-", fmt(weekendPair, 3));

  // Granularity sweep: edges per network at hourly/daily/weekly scales.
  std::uint64_t hourlyEdges = 0;
  {
    net::SynthesisConfig dayConfig = config;
    dayConfig.windowEnd = 24;
    const auto hours = net::synthesizeSlices(logs.files, dayConfig, 1);
    for (const net::TemporalSlice& hour : hours) {
      hourlyEdges += hour.adjacency.edgeCount();
    }
    std::cout << "\ngranularity (Monday): " << hours.size()
              << " hourly networks totaling " << fmtCount(hourlyEdges)
              << " edge-slots; daily network "
              << fmtCount(days[0].adjacency.edgeCount())
              << " edges; weekly network " << fmtCount(weekly.edgeCount())
              << " edges\n";
  }

  const bool persistenceShape = weekdayPersistence > intoWeekend;
  std::cout << "\nshape checks: slices additive: "
            << (additive ? "YES" : "NO")
            << "; weekday routine persistence exceeds weekday->weekend: "
            << (persistenceShape ? "YES" : "NO") << "\n";
  return additive && persistenceShape ? 0 : 1;
}
