/// TABLE-SUBSET — time-slice subsetting speed (paper §IV.A.2).
///
/// "The sub-setting step is extremely fast (seconds) performed serially
/// even on tables with millions of rows due to the data.table
/// implementation." The data.table trick is a sorted key + binary search;
/// this bench compares our binary-search subsetting against a linear-scan
/// filter on a multi-million-row event table, plus the one-time sort cost
/// and the place-index build.

#include <benchmark/benchmark.h>

#include "chisimnet/table/event_table.hpp"
#include "chisimnet/util/rng.hpp"

namespace {

using namespace chisimnet;

table::EventTable makeTable(std::size_t rows) {
  util::Rng rng(7);
  table::EventTable table;
  table.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(672));
    table.append(table::Event{
        start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(10)),
        static_cast<table::PersonId>(rng.uniformBelow(100'000)),
        static_cast<table::ActivityId>(rng.uniformBelow(9)),
        static_cast<table::PlaceId>(rng.uniformBelow(40'000))});
  }
  return table;
}

const table::EventTable& sortedTable(std::size_t rows) {
  static std::map<std::size_t, table::EventTable> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    table::EventTable table = makeTable(rows);
    table.sortByStart();
    it = cache.emplace(rows, std::move(table)).first;
  }
  return it->second;
}

void BM_SubsetBinarySearch(benchmark::State& state) {
  const auto& table = sortedTable(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.rowsOverlapping(168, 336));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SubsetBinarySearch)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SubsetLinearScan(benchmark::State& state) {
  const auto& table = sortedTable(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<table::RowIndex> rows;
    const auto starts = table.startColumn();
    const auto ends = table.endColumn();
    for (std::uint64_t i = 0; i < table.size(); ++i) {
      if (starts[i] < 336 && ends[i] > 168) {
        rows.push_back(i);
      }
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SubsetLinearScan)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Arg(4'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_SortByStart(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    table::EventTable table = makeTable(static_cast<std::size_t>(state.range(0)));
    state.ResumeTiming();
    table.sortByStart();
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_SortByStart)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_BuildPlaceIndex(benchmark::State& state) {
  const auto& table = sortedTable(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.buildPlaceIndex());
  }
}
BENCHMARK(BM_BuildPlaceIndex)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

void BM_UniquePlaces(benchmark::State& state) {
  const auto& table = sortedTable(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.uniquePlaces());
  }
}
BENCHMARK(BM_UniquePlaces)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
