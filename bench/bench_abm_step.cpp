/// ABM-STEP — simulation throughput and agent migration (paper §II, §V).
///
/// Paper claims: a one-year, 2.9 M-agent chiSIM run takes only several
/// minutes of wall time on a modest cluster (128 processes); the four-week
/// §V run took ~1 minute on 256 processes; and the spatial partitioning of
/// places minimizes cross-process agent movement. This bench measures
/// agent-hours/second, sweeps rank counts, and contrasts the
/// movement-minimizing neighborhood partition with round-robin.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("ABM-STEP model throughput & migration",
              "§II: 1 year @2.9M in minutes on 128 procs; spatial "
              "partitioning minimizes movement");

  const auto population = makePopulation(scaledPersons(30'000));

  std::cout << "rank sweep (neighborhood partition):\n";
  std::cout << "  ranks  wall(s)  agent-hours/s  migrations  migration%\n";
  double bestThroughput = 0.0;
  for (int ranks : {1, 2, 4, 8}) {
    const SimulatedLogs logs = simulate(population, ranks);
    const double throughput =
        static_cast<double>(logs.stats.agentHours) / logs.stats.wallSeconds;
    bestThroughput = std::max(bestThroughput, throughput);
    std::cout << "  " << ranks << "      " << fmt(logs.stats.wallSeconds, 2)
              << "     " << fmt(throughput / 1e6, 2) << "M         "
              << fmtCount(logs.stats.migrations) << "     "
              << fmt(100.0 * logs.stats.migrationFraction(), 1) << "%\n";
  }

  // Partition ablation: migrations under spatial vs naive placement.
  const SimulatedLogs spatial =
      simulate(population, 8, 1, abm::PartitionStrategy::kNeighborhood);
  const SimulatedLogs naive =
      simulate(population, 8, 1, abm::PartitionStrategy::kRoundRobin);
  std::cout << "\n";
  printRow("migration fraction, spatial partition", "minimized by design",
           fmt(100.0 * spatial.stats.migrationFraction(), 1) + "%");
  printRow("migration fraction, round-robin", "baseline (maximal)",
           fmt(100.0 * naive.stats.migrationFraction(), 1) + "%");
  printRow("migration reduction", "the partition's purpose",
           fmt(static_cast<double>(naive.stats.migrations) /
                   std::max<std::uint64_t>(1, spatial.stats.migrations),
               1) + "x fewer cross-rank moves");

  // Extrapolation to paper scale.
  const double paperAgentHoursYear = kPaperPersons * 365.0 * 24.0;
  printRow("1 year @2.9M at this throughput",
           "minutes on 128 processes",
           fmt(paperAgentHoursYear / bestThroughput / 3600.0, 1) +
               " h single-core",
           "divide by cluster width for the paper's setup");
  const double paperAgentHours4Weeks = kPaperPersons * 28.0 * 24.0;
  printRow("4 weeks @2.9M at this throughput", "~1 min on 256 processes",
           fmt(paperAgentHours4Weeks / bestThroughput / 60.0, 0) +
               " min single-core");

  const bool migrationWin =
      spatial.stats.migrations * 2 < naive.stats.migrations;
  std::cout << "\nshape check: spatial partition at least halves migrations: "
            << (migrationWin ? "YES (matches paper's design goal)" : "NO")
            << "\n";
  return migrationWin ? 0 : 1;
}
