/// ABM-STEP — simulation throughput: hourly core vs event-driven core
/// (paper §II, §V).
///
/// Paper claims: a one-year, 2.9 M-agent chiSIM run takes only several
/// minutes of wall time on a modest cluster (128 processes); the four-week
/// §V run took ~1 minute on 256 processes; and the spatial partitioning of
/// places minimizes cross-process agent movement.
///
/// This bench contrasts the two simulation cores on identical workloads.
/// The hourly core touches every resident every hour (cost follows
/// person-hours, 24/person/day); the event-driven core wakes an agent only
/// when its activity stint ends (cost follows activity changes,
/// ~5/person/day — the same ratio that drives the paper's §III log-size
/// arithmetic). Both cores produce byte-identical logs, so the comparison
/// is pure mechanism.
///
/// `--smoke` runs a reduced PR-sized pass and gates on the event core being
/// >= 3x faster than the hourly core on the disease-enabled single-rank
/// configuration (where per-hour epidemic scans dominate the hourly cost).
/// The full run also writes BENCH_abm_step.json for CI archiving.

#include <algorithm>
#include <cstring>

#include "bench_common.hpp"

namespace {

using namespace chisimnet;
using namespace chisimnet::bench;

struct CoreRun {
  abm::ModelStats stats;
  abm::DiseaseStats disease;
};

CoreRun runCore(const pop::SyntheticPopulation& population, abm::ModelCore core,
                int ranks, bool withDisease, std::uint32_t weeks = 1) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("chisimnet_bench_abm_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  abm::ModelConfig config;
  config.logDirectory = dir;
  config.rankCount = ranks;
  config.weeks = weeks;
  config.core = core;
  CoreRun run;
  if (withDisease) {
    abm::DiseaseConfig disease;  // defaults: beta 0.002, 24h latent, 96h infectious
    run.stats = abm::runModel(population, config, disease, run.disease);
  } else {
    run.stats = abm::runModel(population, config);
  }
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
  return run;
}

double eventsPerSecond(const abm::ModelStats& stats) {
  return static_cast<double>(stats.eventsLogged) / stats.wallSeconds;
}

double agentHoursPerSecond(const abm::ModelStats& stats) {
  return static_cast<double>(stats.agentHours) / stats.wallSeconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  printHeader("ABM-STEP hourly vs event-driven core",
              "§II: 1 year @2.9M in minutes on 128 procs; cost should track "
              "~5 changes/day, not 24 h/day");

  // The same population for smoke and full runs: the hourly core's per-hour
  // scans degrade superlinearly with population (hash-map traversal), so a
  // smaller smoke workload would understate the gap the gate checks.
  // Smoke instead trims the grid to the single-rank columns.
  const auto population = makePopulation(scaledPersons(30'000));
  const auto persons = static_cast<double>(population.persons().size());

  JsonReport report("abm_step");
  report.put("persons", static_cast<std::uint64_t>(persons));
  report.put("smoke", smoke);

  // ---- core comparison grid ----------------------------------------------
  // Single-machine container: ranks are contending threads, so the
  // interesting axis is the core, not rank scaling.
  std::cout << "core grid (1 week, neighborhood partition):\n";
  std::cout << "  config            core    wall(s)  events/s   agent-hours/s"
               "  active-hours  peak-queue\n";
  double gateHourly = 0.0;
  double gateEvent = 0.0;
  for (const bool disease : {false, true}) {
    for (const int ranks : smoke ? std::vector<int>{1}
                                 : std::vector<int>{1, 4}) {
      for (const abm::ModelCore core :
           {abm::ModelCore::kHourly, abm::ModelCore::kEventDriven}) {
        const bool isEvent = core == abm::ModelCore::kEventDriven;
        const CoreRun run = runCore(population, core, ranks, disease);
        const std::string label = std::string(disease ? "disease" : "plain  ") +
                                  " r" + std::to_string(ranks);
        std::cout << "  " << label << "        "
                  << (isEvent ? "event " : "hourly") << "  "
                  << fmt(run.stats.wallSeconds, 3) << "    "
                  << fmt(eventsPerSecond(run.stats) / 1e6, 2) << "M     "
                  << fmt(agentHoursPerSecond(run.stats) / 1e6, 2) << "M"
                  << "          " << run.stats.hoursActive << "           "
                  << fmtCount(run.stats.peakQueueDepth) << "\n";

        const std::string prefix = std::string(disease ? "disease" : "plain") +
                                   "_r" + std::to_string(ranks) + "_" +
                                   (isEvent ? "event" : "hourly");
        report.put(prefix + "_wall_s", run.stats.wallSeconds);
        report.put(prefix + "_events_per_s", eventsPerSecond(run.stats));
        report.put(prefix + "_agent_hours_per_s", agentHoursPerSecond(run.stats));
        report.put(prefix + "_active_hours", run.stats.hoursActive);
        report.put(prefix + "_peak_queue_depth", run.stats.peakQueueDepth);
      }
    }
  }

  // ---- the gate pair, min-of-3 -------------------------------------------
  // Re-measure the disease-on single-rank column with dedicated back-to-back
  // two-week runs and take the minimum wall per core (the bench_spgemm
  // convention): single grid passes on a shared core are too noisy to gate
  // on, and the longer horizon both amortizes startup and grows the
  // epidemic the hourly core has to keep scanning for.
  for (int repeat = 0; repeat < 3; ++repeat) {
    const CoreRun hourly =
        runCore(population, abm::ModelCore::kHourly, 1, true, 2);
    const CoreRun event =
        runCore(population, abm::ModelCore::kEventDriven, 1, true, 2);
    gateHourly = repeat == 0 ? hourly.stats.wallSeconds
                             : std::min(gateHourly, hourly.stats.wallSeconds);
    gateEvent = repeat == 0 ? event.stats.wallSeconds
                            : std::min(gateEvent, event.stats.wallSeconds);
  }

  // ---- why it wins: events vs person-hours --------------------------------
  const CoreRun probe =
      runCore(population, abm::ModelCore::kEventDriven, 1, false);
  const double changesPerPersonDay =
      static_cast<double>(probe.stats.eventsLogged) / (persons * 7.0);
  const double hourRatio = static_cast<double>(probe.stats.agentHours) /
                           static_cast<double>(probe.stats.eventsLogged);
  std::cout << "\n";
  printRow("activity changes/person/day", "~5 (paper §III)",
           fmt(changesPerPersonDay, 2));
  printRow("person-hours per logged event", "24/5 = 4.8",
           fmt(hourRatio, 1) + "x",
           "the event core's structural advantage");
  report.put("changes_per_person_day", changesPerPersonDay);
  report.put("agent_hours_per_event", hourRatio);

  // ---- the gate: disease-on, single rank ----------------------------------
  const double speedup = gateHourly / gateEvent;
  printRow("event-core speedup (disease, r1)", ">= 3x required",
           fmt(speedup, 2) + "x");
  report.put("gate_speedup_disease_r1", speedup);
  report.put("gate_pass", speedup >= 3.0);

  // Extrapolation to paper scale from the fastest event-core run.
  const double best = agentHoursPerSecond(probe.stats);
  const double paperAgentHoursYear = kPaperPersons * 365.0 * 24.0;
  printRow("1 year @2.9M, event core", "minutes on 128 procs",
           fmt(paperAgentHoursYear / best / 3600.0, 1) + " h single-core",
           "divide by cluster width for the paper's setup");

  const auto jsonPath = report.write();
  std::cout << "\nwrote " << jsonPath.string() << "\n";

  std::cout << "shape check: event core >= 3x on disease-on single-rank: "
            << (speedup >= 3.0 ? "YES" : "NO") << "\n";
  return speedup >= 3.0 ? 0 : 1;
}
