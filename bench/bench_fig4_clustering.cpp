/// FIG4 — histogram of the local vertex clustering coefficient for the
/// full-population collocation network over one week (paper Fig 4).
///
/// The paper's histogram has a dominant spike at coefficient 1.0 ("many of
/// the person nodes have a clustering coefficient of 1, which indicates a
/// high degree of local clustering"), characteristic of scale-free and
/// small-world networks versus random graphs.

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("FIG4 clustering histogram",
              "Fig 4: local clustering coefficient histogram, full network");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph network = synthesizer.synthesizeGraph(logs.files);
  std::cout << "network: " << fmtCount(network.vertexCount()) << " vertices, "
            << fmtCount(network.edgeCount()) << " edges\n";

  util::WallTimer timer;
  const auto coefficients = graph::localClusteringCoefficients(network);
  std::cout << "clustering computed in " << fmt(timer.seconds(), 1) << " s\n\n";

  stats::Histogram histogram(0.0, 1.0, 20);
  histogram.addAll(coefficients);

  std::cout << "histogram (bin : count):\n";
  for (std::size_t bin = 0; bin < histogram.binCount(); ++bin) {
    const auto [lo, hi] = histogram.binEdges(bin);
    std::cout << "  [" << fmt(lo, 2) << "," << fmt(hi, 2) << ") : "
              << fmtCount(histogram.count(bin)) << "\n";
  }

  // Regenerate the figure: the paper's Fig 4 histogram.
  const auto figurePath = resultsDir() / "fig4_clustering_histogram.svg";
  stats::writeHistogramSvg(histogram,
                           "Fig 4 — local clustering coefficient histogram",
                           "local clustering coefficient", figurePath);
  std::cout << "wrote " << figurePath.string() << "\n\n";

  std::uint64_t atOne = 0;
  double sum = 0.0;
  for (double c : coefficients) {
    atOne += c >= 0.999 ? 1 : 0;
    sum += c;
  }
  const double meanCoefficient = sum / static_cast<double>(coefficients.size());
  printRow("mass at coefficient 1.0",
           "dominant spike at 1.0",
           fmt(100.0 * atOne / coefficients.size(), 1) + "% of vertices");
  printRow("mean local clustering", "high vs random graph",
           fmt(meanCoefficient, 3));

  // Random-graph comparison at matched size (the paper cites small-world /
  // scale-free networks as having much larger clustering than random).
  util::Rng rng(1);
  const std::uint64_t sampleEdges =
      std::min<std::uint64_t>(network.edgeCount(), 500'000);
  const double keep =
      static_cast<double>(sampleEdges) / static_cast<double>(network.edgeCount());
  const auto sampleVertices =
      static_cast<graph::Vertex>(network.vertexCount() * keep) + 2;
  const graph::Graph random = graph::erdosRenyi(
      std::max<graph::Vertex>(sampleVertices, 100),
      std::min<std::uint64_t>(sampleEdges,
                              static_cast<std::uint64_t>(sampleVertices) *
                                  (sampleVertices - 1) / 2),
      rng);
  const auto randomCoefficients = graph::localClusteringCoefficients(random);
  double randomSum = 0.0;
  for (double c : randomCoefficients) {
    randomSum += c;
  }
  const double randomMean =
      randomSum / static_cast<double>(randomCoefficients.size());
  printRow("mean clustering, ER random graph", "far below collocation net",
           fmt(randomMean, 4), "matched mean degree");

  const bool spike = atOne * 5 > coefficients.size() / 10;  // > 2% at 1.0
  const bool beatsRandom = meanCoefficient > 5.0 * randomMean;
  std::cout << "\nshape check: spike at 1.0 present: "
            << (spike ? "YES" : "NO")
            << "; clustering >> random graph: "
            << (beatsRandom ? "YES (matches paper)" : "NO") << "\n";
  return spike && beatsRandom ? 0 : 1;
}
