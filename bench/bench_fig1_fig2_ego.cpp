/// FIG1 + FIG2 — radius-2 ego networks of randomly sampled individuals
/// (paper Figs 1-2, §V.A).
///
/// Paper numbers (at 2.9 M persons): Fig 1 subgraph = 2,529 nodes /
/// 391,104 edges (dense, striking local clusters); Fig 2 subgraph = 1,097
/// nodes / 41,372 edges (diffuse, disparate clusters loosely bridged). The
/// absolute counts scale with population; the reproduced claims are the
/// order of magnitude relative to the full network and the strong
/// density contrast between samples. The bench also times the full
/// visualization path (ForceAtlas2 layout + SVG + GraphML export).

#include <algorithm>

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("FIG1/FIG2 ego networks",
              "Figs 1-2: radius-2 ego subgraphs, dense vs diffuse");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph network = synthesizer.synthesizeGraph(logs.files);
  std::cout << "full network: " << fmtCount(network.vertexCount())
            << " vertices, " << fmtCount(network.edgeCount()) << " edges\n\n";

  util::Rng rng(4242);
  struct Sample {
    graph::Vertex source = 0;
    std::uint64_t nodes = 0;
    std::uint64_t edges = 0;
    double density = 0.0;
    double extractSeconds = 0.0;
  };
  std::vector<Sample> samples;
  for (int i = 0; i < 12; ++i) {
    Sample sample;
    sample.source =
        static_cast<graph::Vertex>(rng.uniformBelow(network.vertexCount()));
    util::WallTimer timer;
    const graph::Graph ego = graph::egoNetwork(network, sample.source, 2);
    sample.extractSeconds = timer.seconds();
    sample.nodes = ego.vertexCount();
    sample.edges = ego.edgeCount();
    if (sample.nodes >= 2) {
      sample.density = 2.0 * static_cast<double>(sample.edges) /
                       (static_cast<double>(sample.nodes) *
                        static_cast<double>(sample.nodes - 1));
    }
    samples.push_back(sample);
    std::cout << "  sample " << i << ": person "
              << network.label(sample.source) << " -> "
              << fmtCount(sample.nodes) << " nodes, " << fmtCount(sample.edges)
              << " edges, density " << fmt(sample.density, 4) << " ("
              << fmt(sample.extractSeconds * 1000, 1) << " ms)\n";
  }

  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.density > b.density;
            });
  const Sample& dense = samples.front();
  const Sample& diffuse = samples.back();
  std::cout << "\n";
  printRow("dense ego nodes/edges (Fig 1)", "2,529 / 391,104 @2.9M",
           fmtCount(dense.nodes) + " / " + fmtCount(dense.edges));
  printRow("diffuse ego nodes/edges (Fig 2)", "1,097 / 41,372 @2.9M",
           fmtCount(diffuse.nodes) + " / " + fmtCount(diffuse.edges));
  const double paperContrast = (391104.0 / (2529.0 * 2528.0 / 2)) /
                               (41372.0 / (1097.0 * 1096.0 / 2));
  printRow("density contrast dense/diffuse",
           fmt(paperContrast, 1) + "x (from Fig 1 vs Fig 2)",
           fmt(diffuse.density > 0 ? dense.density / diffuse.density : 0.0, 1) +
               "x");

  // Visualization path timing, as the paper exported via iGraph -> Gephi.
  // The O(n^2) layout is meant for ego-scale graphs; when a scale-down ego
  // covers much of the (small) city, visualize a radius-1 ego instead so
  // the figure path stays at the paper's subgraph scale (~10^3 nodes).
  graph::Graph ego = graph::egoNetwork(network, dense.source, 2);
  if (ego.vertexCount() > 4000) {
    ego = graph::egoNetwork(network, dense.source, 1);
  }
  util::WallTimer timer;
  graph::LayoutOptions layout;
  layout.iterations = ego.vertexCount() > 2000 ? 50 : 150;
  util::Rng layoutRng(5);
  const auto positions = graph::forceAtlas2Layout(ego, layout, layoutRng);
  const double layoutSeconds = timer.seconds();
  const auto outDir = resultsDir();
  timer.reset();
  graph::writeSvg(ego, positions, outDir / "fig1_ego_network.svg");
  graph::writeGraphMl(ego, outDir / "fig1_ego_network.graphml");
  const double exportSeconds = timer.seconds();
  printRow("layout + export (" + fmtCount(ego.vertexCount()) + " nodes)",
           "Gephi ForceAtlas2 (interactive)",
           fmt(layoutSeconds, 1) + " s layout + " + fmt(exportSeconds, 2) +
               " s export");
  std::cout << "wrote " << (outDir / "fig1_ego_network.svg").string()
            << " and .graphml\n";

  const bool contrast = dense.density > 3.0 * diffuse.density;
  std::cout << "\nshape check: strong dense/diffuse contrast across sampled "
               "egos: "
            << (contrast ? "YES (matches Figs 1 vs 2)" : "NO") << "\n";
  return contrast ? 0 : 1;
}
