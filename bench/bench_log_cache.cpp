/// LOG-CACHE — logging throughput vs cache size (paper §III).
///
/// "The log cache size is variable although a nominal size of 10,000 log
/// entries is used ... A smaller cache will reduce memory usage but will
/// result in more individual write operations, which can be computationally
/// expensive. In contrast, a larger cache will require more memory but will
/// provide a speed tradeoff as fewer write operations are required."
///
/// google-benchmark sweep over cache sizes, logging a fixed stream of
/// events through EventLogger into a CLG5 file on tmpfs-ish temp storage.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>

#include "chisimnet/elog/event_logger.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/elog/prefetch.hpp"
#include "chisimnet/util/rng.hpp"

namespace {

using namespace chisimnet;

std::vector<table::Event> makeEvents(std::size_t count, std::uint64_t seed = 99) {
  util::Rng rng(seed);
  std::vector<table::Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(168));
    events.push_back(table::Event{
        start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(10)),
        static_cast<table::PersonId>(rng.uniformBelow(3'000'000)),
        static_cast<table::ActivityId>(rng.uniformBelow(9)),
        static_cast<table::PlaceId>(rng.uniformBelow(1'200'000))});
  }
  return events;
}

void BM_LogThroughputVsCacheSize(benchmark::State& state) {
  const auto cacheSize = static_cast<std::size_t>(state.range(0));
  static const std::vector<table::Event> events = makeEvents(200'000);
  const auto path =
      std::filesystem::temp_directory_path() / "chisimnet_bench_cache.clg5";

  std::uint64_t flushes = 0;
  for (auto _ : state) {
    elog::EventLogger logger(std::make_unique<elog::ChunkedLogWriter>(path),
                             cacheSize);
    for (const table::Event& event : events) {
      logger.log(event);
    }
    logger.close();
    flushes = logger.flushCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size() * 20));
  state.counters["flushes"] = static_cast<double>(flushes);
  std::filesystem::remove(path);
}

BENCHMARK(BM_LogThroughputVsCacheSize)
    ->Arg(100)
    ->Arg(1'000)
    ->Arg(10'000)  // the paper's nominal cache
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

/// Read-side: full scan vs windowed (index-pushdown) read of a chunked log.
void BM_LogReadFullScan(benchmark::State& state) {
  const auto path =
      std::filesystem::temp_directory_path() / "chisimnet_bench_read.clg5";
  {
    const auto events = makeEvents(200'000);
    elog::EventLogger logger(std::make_unique<elog::ChunkedLogWriter>(path),
                             10'000);
    // Sort by start so chunks have tight time ranges, as in a real run.
    auto sorted = events;
    std::sort(sorted.begin(), sorted.end());
    for (const table::Event& event : sorted) {
      logger.log(event);
    }
    logger.close();
  }
  for (auto _ : state) {
    elog::ChunkedLogReader reader(path);
    benchmark::DoNotOptimize(reader.readAll());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_LogReadFullScan)->Unit(benchmark::kMillisecond);

void BM_LogReadWindowPushdown(benchmark::State& state) {
  const auto path =
      std::filesystem::temp_directory_path() / "chisimnet_bench_read2.clg5";
  {
    const auto events = makeEvents(200'000);
    elog::EventLogger logger(std::make_unique<elog::ChunkedLogWriter>(path),
                             10'000);
    auto sorted = events;
    std::sort(sorted.begin(), sorted.end());
    for (const table::Event& event : sorted) {
      logger.log(event);
    }
    logger.close();
  }
  std::size_t chunksRead = 0;
  for (auto _ : state) {
    elog::ChunkedLogReader reader(path);
    benchmark::DoNotOptimize(reader.readOverlapping(80, 90));
    chunksRead = reader.lastChunksRead();
  }
  state.counters["chunks_read"] = static_cast<double>(chunksRead);
  std::filesystem::remove(path);
}
BENCHMARK(BM_LogReadWindowPushdown)->Unit(benchmark::kMillisecond);

/// Batched read pipeline: serial load-then-consume vs the background
/// prefetcher. The consume step (sort + place index) stands in for synthesis
/// stages 2-6; the prefetch counters show how much decode time leaves the
/// consumer's critical path even when wall time is core-bound.
const std::vector<std::filesystem::path>& prefetchBenchFiles() {
  static const std::vector<std::filesystem::path> files = [] {
    const auto dir =
        std::filesystem::temp_directory_path() / "chisimnet_bench_prefetch";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::vector<std::filesystem::path> out;
    for (int rank = 0; rank < 8; ++rank) {
      const auto path = elog::logFilePath(dir, rank);
      auto events = makeEvents(60'000, 100 + static_cast<std::uint64_t>(rank));
      std::sort(events.begin(), events.end());
      elog::EventLogger logger(std::make_unique<elog::ChunkedLogWriter>(path),
                               10'000);
      for (const table::Event& event : events) {
        logger.log(event);
      }
      logger.close();
      out.push_back(path);
    }
    return out;
  }();
  return files;
}

std::uint64_t consumeBatch(table::EventTable& events) {
  events.sortByStart();
  return events.buildPlaceIndex().placeIds.size();
}

void BM_BatchReadSerial(benchmark::State& state) {
  const auto& files = prefetchBenchFiles();
  std::uint64_t places = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < files.size(); i += 2) {
      table::EventTable events = elog::loadEvents(
          {files.begin() + static_cast<std::ptrdiff_t>(i),
           files.begin() + static_cast<std::ptrdiff_t>(i + 2)},
          0, 168);
      places += consumeBatch(events);
    }
  }
  benchmark::DoNotOptimize(places);
}
BENCHMARK(BM_BatchReadSerial)->Unit(benchmark::kMillisecond);

void BM_BatchReadPrefetch(benchmark::State& state) {
  const auto& files = prefetchBenchFiles();
  std::uint64_t places = 0;
  double exposedSeconds = 0.0;
  double decodeSeconds = 0.0;
  for (auto _ : state) {
    elog::PrefetchingLoader::Options options;
    options.windowStart = 0;
    options.windowEnd = 168;
    options.filesPerBatch = 2;
    options.depth = 2;
    options.decodeWorkers = 2;
    elog::PrefetchingLoader loader(files, options);
    while (auto batch = loader.next()) {
      places += consumeBatch(batch->table);
    }
    exposedSeconds = loader.stats().exposedSeconds;
    decodeSeconds = loader.stats().decodeSeconds;
  }
  benchmark::DoNotOptimize(places);
  state.counters["exposed_s"] = exposedSeconds;
  state.counters["decode_s"] = decodeSeconds;
}
BENCHMARK(BM_BatchReadPrefetch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
