/// FIG5 — within-group vertex degree distributions per age band
/// (paper Fig 5).
///
/// Paper observations reproduced here:
///   - 0-14: largest deviation from power-law scaling; "nearly flat over
///     two orders of magnitude" because school and class sizes constrain
///     the number of contacts;
///   - 15-18: flattened as well (school activities);
///   - 19-44 and 65+: outlying point clusters from congregate places
///     (universities, prisons, retirement communities, hospitals);
///   - other adult groups roughly follow the full-network shape.

#include <array>
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace chisimnet;
  using namespace chisimnet::bench;

  printHeader("FIG5 age-group degree distributions",
              "Fig 5: within-group degree distribution per age band");

  const auto population = makePopulation(scaledPersons(30'000));
  const SimulatedLogs logs = simulate(population);
  const table::EventTable events =
      elog::loadEvents(logs.files, 0, pop::kHoursPerWeek);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 8;
  net::NetworkSynthesizer synthesizer(config);

  struct GroupResult {
    std::string name;
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    double meanDegree = 0.0;
    std::uint64_t maxDegree = 0;
    double plawAlpha = 0.0;
    double flatness = 0.0;  // |log-log slope| over the head; ~0 = flat
  };

  std::vector<GroupResult> results;
  stats::ScatterPlot figure("Fig 5 — within-group degree distributions by age",
                            "vertex degree k", "frequency p(k)");
  figure.setLogX(true);
  figure.setLogY(true);
  const std::array<const char*, pop::kAgeGroupCount> palette{
      "#1f6fb4", "#c23b22", "#2e8540", "#7a4fa3", "#b58900"};
  for (std::size_t g = 0; g < pop::kAgeGroupCount; ++g) {
    const auto group = static_cast<pop::AgeGroup>(g);
    const table::EventTable groupEvents =
        net::eventsForAgeGroup(events, population, group);
    const graph::Graph network = synthesizer.synthesizeGraph(groupEvents);
    const auto degrees = graph::degreeSequence(network);
    const auto distribution = stats::frequencyDistribution(degrees);

    GroupResult result;
    result.name = pop::ageGroupName(group);
    result.vertices = network.vertexCount();
    result.edges = network.edgeCount();
    result.meanDegree = graph::meanDegree(network);
    for (std::uint64_t degree : degrees) {
      result.maxDegree = std::max(result.maxDegree, degree);
    }
    result.plawAlpha = stats::fitPowerLaw(distribution).alpha;
    // Flatness over two decades: |power-law slope| of the log-binned
    // density over k in [8, 1200]. Fig 5's claim is that the 0-14 curve is
    // nearly flat (slope magnitude near 0) across two orders of magnitude,
    // while adult curves decay.
    std::vector<stats::FrequencyPoint> window;
    for (const auto& point : stats::logBinnedDistribution(degrees, 2.0)) {
      if (point.value >= 8 && point.value <= 1200) {
        window.push_back(point);
      }
    }
    if (window.size() >= 2) {
      result.flatness = std::abs(stats::fitPowerLaw(window).alpha);
    }
    results.push_back(result);

    stats::PlotSeries series;
    series.label = result.name;
    series.color = palette[g];
    for (const auto& point : distribution) {
      series.points.push_back(stats::PlotPoint{
          static_cast<double>(point.value), point.fraction});
    }
    figure.addSeries(std::move(series));

    std::cout << "\n[" << result.name << "] " << fmtCount(result.vertices)
              << " vertices, " << fmtCount(result.edges)
              << " edges, mean degree " << fmt(result.meanDegree, 1)
              << ", max degree " << result.maxDegree << "\n";
    std::cout << "  log-binned distribution:";
    for (const auto& point : stats::logBinnedDistribution(degrees, 2.5)) {
      std::cout << "  k~" << point.value << ":" << fmt(point.fraction, 6);
    }
    std::cout << "\n";
  }

  const auto figurePath = resultsDir() / "fig5_age_group_distributions.svg";
  figure.writeSvg(figurePath);
  std::cout << "\nwrote " << figurePath.string() << "\n";

  std::cout << "\nsummary (alpha = full power-law fit, head-slope = fit over "
               "k<=100; smaller magnitude = flatter):\n";
  for (const GroupResult& result : results) {
    std::cout << "  " << result.name << "\talpha=" << fmt(result.plawAlpha, 2)
              << "\thead-slope=" << fmt(result.flatness, 2)
              << "\tmax-degree=" << result.maxDegree << "\n";
  }

  const GroupResult& children = results[0];
  const GroupResult& adults = results[2];
  printRow("0-14 head slope vs 19-44",
           "children nearly flat (schools cap contacts)",
           fmt(children.flatness, 2) + " vs " + fmt(adults.flatness, 2));
  printRow("0-14 max within-group degree",
           "cut off by school size",
           std::to_string(children.maxDegree),
           "school size " + std::to_string(population.config().schoolSize));
  printRow("19-44 max within-group degree",
           "outlier clusters (university, prison)",
           std::to_string(adults.maxDegree));

  const bool childrenFlatter = children.flatness < adults.flatness;
  const bool childrenCapped =
      children.maxDegree <= population.config().schoolSize + 50;
  const bool adultOutliers = adults.maxDegree > children.maxDegree;
  std::cout << "\nshape checks: children flatter than adults: "
            << (childrenFlatter ? "YES" : "NO")
            << "; children capped by school size: "
            << (childrenCapped ? "YES" : "NO")
            << "; adult congregate outliers exceed child cap: "
            << (adultOutliers ? "YES" : "NO") << "\n";
  return childrenFlatter && childrenCapped ? 0 : 1;
}
