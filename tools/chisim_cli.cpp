/// chisim — command-line driver for the chisimnet pipeline.
///
/// Subcommands mirror the paper's workflow:
///   simulate    generate a synthetic population and run the distributed
///               ABM, writing per-rank CLG5 logs (optionally with the SEIR
///               disease layer and its CLX5 logs)
///   info        inventory of a log directory (files, entries, time range)
///   synthesize  logs -> sparse collocation adjacency (CADJ file)
///   analyze     CADJ -> degree distribution, fits, clustering, components,
///               communities
///   ego         CADJ -> radius-k ego network around a person, exported as
///               SVG + GraphML
///
/// Example session:
///   chisim simulate   --persons 20000 --weeks 1 --ranks 4 --logs /tmp/run
///   chisim info       --logs /tmp/run
///   chisim synthesize --logs /tmp/run --window-end 168 --out /tmp/net.cadj
///   chisim analyze    --net /tmp/net.cadj --communities
///   chisim ego        --net /tmp/net.cadj --person 42 --radius 2
///                     --out /tmp/ego

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chisimnet/chisimnet.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/process_transport.hpp"
#include "chisimnet/runtime/tcp_transport.hpp"

namespace {

using namespace chisimnet;

/// Minimal --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int firstArg) {
    for (int i = firstArg; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got: " + key);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.contains(key); }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string requireStr(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    return it->second;
  }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    std::uint64_t value = 0;
    const auto& text = it->second;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw std::invalid_argument("--" + key + " expects an integer, got: " +
                                  text);
    }
    return value;
  }

  /// Byte size with an optional K/M/G (KiB/MiB/GiB) suffix, e.g.
  /// --memory-budget 256M.
  std::uint64_t bytes(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    std::string text = it->second;
    std::uint64_t multiplier = 1;
    if (!text.empty()) {
      switch (text.back()) {
        case 'K': case 'k': multiplier = std::uint64_t{1} << 10; break;
        case 'M': case 'm': multiplier = std::uint64_t{1} << 20; break;
        case 'G': case 'g': multiplier = std::uint64_t{1} << 30; break;
        default: break;
      }
      if (multiplier != 1) {
        text.pop_back();
      }
    }
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw std::invalid_argument(
          "--" + key + " expects a byte size like 4096, 256M or 12G, got: " +
          it->second);
    }
    return value * multiplier;
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    return std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmdSimulate(const Args& args) {
  pop::PopulationConfig popConfig;
  popConfig.personCount = static_cast<std::uint32_t>(args.u64("persons", 20000));
  popConfig.seed = args.u64("seed", 20170517);
  const auto population = pop::SyntheticPopulation::generate(popConfig);
  std::cout << "population: " << population.persons().size() << " persons, "
            << population.places().size() << " places\n";

  abm::ModelConfig config;
  config.logDirectory = args.requireStr("logs");
  config.rankCount = static_cast<int>(args.u64("ranks", 4));
  config.weeks = static_cast<std::uint32_t>(args.u64("weeks", 1));
  config.scheduleSeed = args.u64("schedule-seed", 7);
  config.logCacheEntries = args.u64("cache", elog::kDefaultCacheEntries);
  if (args.str("partition", "neighborhood") == "round-robin") {
    config.strategy = abm::PartitionStrategy::kRoundRobin;
  }
  if (args.has("compress")) {
    config.logCompression = elog::LogCompression::kPacked;
  }
  const std::string core = args.str("abm-core", "event");
  if (core == "hourly") {
    config.core = abm::ModelCore::kHourly;
  } else if (core == "event") {
    config.core = abm::ModelCore::kEventDriven;
  } else {
    std::cerr << "unknown --abm-core '" << core << "' (hourly|event)\n";
    return 2;
  }
  config.checkpointDir = args.str("checkpoint-dir", "");
  config.checkpointEveryHours =
      static_cast<std::uint32_t>(args.u64("sim-checkpoint-hours", 0));
  config.resume = args.has("resume");

  // SIGTERM/SIGINT become a graceful checkpoint-and-exit only when there
  // is a checkpoint directory to write to; otherwise the default
  // dispositions (terminate) stay in place.
  std::optional<abm::ScopedShutdownHandler> shutdownHandler;
  if (!config.checkpointDir.empty()) {
    abm::clearShutdownRequest();
    shutdownHandler.emplace();
  }

  abm::ModelStats stats;
  if (args.has("disease")) {
    abm::DiseaseConfig disease;
    disease.beta = args.real("beta", 0.002);
    disease.seedCount = static_cast<std::uint32_t>(args.u64("seeds", 5));
    disease.seed = args.u64("disease-seed", 99);
    abm::DiseaseStats epidemic;
    stats = abm::runModel(population, config, disease, epidemic);
    std::cout << "epidemic: " << epidemic.seeded << " seeds, "
              << epidemic.infections << " transmissions, attack rate "
              << 100.0 * epidemic.attackRate() << "%, peak "
              << epidemic.peakInfectious << " @h" << epidemic.peakHour << "\n";
  } else {
    stats = abm::runModel(population, config);
  }
  std::cout << "simulated " << stats.simulatedHours << " h ("
            << stats.hoursActive << " active, " << core << " core) on "
            << config.rankCount << " ranks in " << stats.wallSeconds << " s; "
            << stats.eventsLogged << " events ("
            << stats.logBytes / 1024 / 1024 << " MiB), migration "
            << 100.0 * stats.migrationFraction() << "%\n";
  if (stats.checkpointsWritten > 0 || stats.resumed) {
    std::cout << "checkpoint: " << stats.checkpointsWritten << " written to "
              << config.checkpointDir.string();
    if (stats.resumed) {
      std::cout << ", resumed at h" << stats.hoursReplayed << " ("
                << stats.hoursReplayed << " h already on disk)";
    }
    std::cout << "\n";
  }
  if (stats.interrupted) {
    std::cout << "interrupted: checkpointed and stopped on a shutdown "
                 "signal; rerun with --resume to continue\n";
    return 3;
  }
  return 0;
}

int cmdInfo(const Args& args) {
  const auto files = elog::listLogFiles(args.requireStr("logs"));
  if (files.empty()) {
    std::cout << "no CLG5 files found\n";
    return 1;
  }
  std::uint64_t totalEntries = 0;
  for (const auto& file : files) {
    elog::ChunkedLogReader reader(file);
    table::Hour minStart = ~0u;
    table::Hour maxEnd = 0;
    for (const elog::ChunkInfo& chunk : reader.chunks()) {
      minStart = std::min(minStart, chunk.minStart);
      maxEnd = std::max(maxEnd, chunk.maxEnd);
    }
    std::cout << file.filename().string() << ": " << reader.totalEntries()
              << " entries in " << reader.chunks().size() << " chunks, ";
    if (reader.chunks().empty()) {
      std::cout << "empty, ";
    } else {
      std::cout << "hours [" << minStart << ", " << maxEnd << "), ";
    }
    std::cout << std::filesystem::file_size(file) / 1024 << " KiB\n";
    totalEntries += reader.totalEntries();
  }
  std::cout << "total: " << files.size() << " files, " << totalEntries
            << " entries, " << elog::totalFileBytes(files) / 1024 / 1024
            << " MiB\n";
  return 0;
}

int cmdSynthesize(const Args& args) {
  const auto files = elog::listLogFiles(args.requireStr("logs"));
  if (files.empty()) {
    std::cerr << "no CLG5 files found\n";
    return 1;
  }
  net::SynthesisConfig config;
  config.windowStart = static_cast<table::Hour>(args.u64("window-start", 0));
  config.windowEnd = static_cast<table::Hour>(args.u64("window-end", 168));
  config.workers = static_cast<unsigned>(args.u64("workers", 4));
  config.filesPerBatch = args.u64("batch", 0);
  config.balancedPartition = !args.has("no-balance");
  config.prefetch = !args.has("no-prefetch");
  config.prefetchDepth = args.u64("prefetch-depth", 2);
  config.decodeWorkers = static_cast<unsigned>(args.u64("decode-workers", 0));
  // On by default (see EXPERIMENTS.md); --occupancy-weight is still
  // accepted so existing invocations keep working.
  config.occupancyWeight = !args.has("nnz-weight");
  config.treeReduce = !args.has("serial-reduce");
  const std::string method = args.str("method", "local");
  if (method == "spgemm") {
    config.method = sparse::AdjacencyMethod::kSpGemm;
  } else if (method == "intersect") {
    config.method = sparse::AdjacencyMethod::kIntervalIntersection;
  } else if (method == "local") {
    config.method = sparse::AdjacencyMethod::kLocalAccumulate;
  } else {
    throw std::invalid_argument(
        "--method expects local, spgemm or intersect, got: " + method);
  }
  const std::string backend = args.str("backend", "shared");
  if (backend == "mp") {
    config.backend = net::SynthesisBackend::kMessagePassing;
  } else if (backend != "shared") {
    throw std::invalid_argument("--backend expects shared or mp, got: " +
                                backend);
  }
  const std::string policy = args.str("fault-policy", "failfast");
  if (policy == "degrade") {
    config.faultPolicy = net::FaultPolicy::kDegrade;
  } else if (policy != "failfast") {
    throw std::invalid_argument(
        "--fault-policy expects failfast or degrade, got: " + policy);
  }
  config.maxQuarantinedFiles = args.u64("max-quarantined-files", 0);
  config.commandTimeoutMs = args.u64("command-timeout-ms", 0);
  const std::string transport = args.str("transport", "inproc");
  if (transport == "process") {
    config.transport = net::MpTransport::kProcess;
  } else if (transport == "tcp") {
    config.transport = net::MpTransport::kTcp;
  } else if (transport != "inproc") {
    throw std::invalid_argument(
        "--transport expects inproc, process or tcp, got: " + transport);
  }
  config.maxRespawns = static_cast<int>(args.u64("max-respawns", 1));
  config.heartbeatMs = args.u64("heartbeat-ms", 250);
  config.connectTimeoutMs = args.u64("connect-timeout-ms", 5000);
  config.connectRetries = static_cast<int>(args.u64("connect-retries", 5));
  config.reconnectGraceMs = args.u64("reconnect-grace-ms", 3000);
  config.tcpListen = args.str("tcp-listen", "");
  config.tcpJob = args.str("tcp-job", "");
  config.checkpointDir = args.str("checkpoint-dir", "");
  config.resume = args.has("resume");
  config.memoryBudgetBytes = args.bytes("memory-budget", 0);
  config.spillDir = args.str("spill-dir", "");
  config.reduceShards = static_cast<unsigned>(args.u64("reduce-shards", 0));
  const std::string readahead = args.str("merge-readahead", "buffer");
  if (readahead == "none") {
    config.mergeReadahead = sparse::SpillReadahead::kNone;
  } else if (readahead == "buffer") {
    config.mergeReadahead = sparse::SpillReadahead::kDoubleBuffer;
  } else if (readahead == "fadvise") {
    config.mergeReadahead = sparse::SpillReadahead::kFadvise;
  } else {
    throw std::invalid_argument(
        "--merge-readahead expects none, buffer or fadvise, got: " +
        readahead);
  }
  const std::string out = args.requireStr("out");
  net::NetworkSynthesizer synthesizer(config);
  std::uint64_t edges = 0;
  if (config.memoryBudgetBytes > 0) {
    // Bounded-memory path: the accumulator spills sorted runs and the
    // final k-way merge streams straight into the CADJ file, so the
    // result never has to be resident.
    edges = synthesizer.synthesizeToFile(files, out);
  } else {
    const auto adjacency = synthesizer.synthesizeAdjacency(files);
    edges = adjacency.edgeCount();
    sparse::saveAdjacency(adjacency, out);
  }
  const auto& report = synthesizer.report();
  std::cout << "synthesized " << edges << " edges from "
            << report.logEntriesLoaded << " entries / "
            << report.placesProcessed << " places in "
            << report.totalSeconds << " s (" << net::backendName(report.backend)
            << " backend, partition imbalance " << report.partitionImbalance
            << ")\n";
  if (report.backend == net::SynthesisBackend::kMessagePassing) {
    std::cout << "comm: scattered " << report.bytesScattered / 1024
              << " KiB to ranks, returned " << report.bytesReturned / 1024
              << " KiB (" << net::mpTransportName(config.transport)
              << " transport)\n";
  }
  if (config.method == sparse::AdjacencyMethod::kLocalAccumulate) {
    std::cout << "kernel: " << report.kernelDensePlaces << " dense / "
              << report.kernelHashPlaces << " hash places, "
              << report.kernelPairHourUpdates << " local updates -> "
              << report.kernelGlobalEmits << " global emits\n";
  }
  std::cout << "reduce: " << (report.treeReduceEnabled ? "tree" : "serial")
            << ", " << report.reduceMergedSums << " worker sums, depth "
            << report.reduceTreeDepth << ", critical path "
            << report.reduceCriticalSeconds << " s\n";
  std::cout << "load: " << report.loadSeconds << " s total, "
            << report.loadExposedSeconds << " s exposed on the compute path";
  if (report.prefetchEnabled) {
    std::cout << " (prefetch hid " << report.loadOverlappedSeconds
              << " s; buffer mean/peak " << report.prefetchMeanOccupancy << "/"
              << report.prefetchPeakOccupancy << ")";
  }
  std::cout << "\n";
  if (report.resumed) {
    std::cout << "resumed from checkpoint: skipped "
              << report.filesSkippedByResume << " already-consumed files";
    if (report.inflightRestored) {
      std::cout << " (in-flight batch restored, re-decode skipped)";
    }
    std::cout << "\n";
  }
  if (report.checkpointsWritten > 0) {
    std::cout << "checkpoints: " << report.checkpointsWritten << " written to "
              << config.checkpointDir.string() << "\n";
  }
  if (!report.quarantined.empty()) {
    std::cout << "quarantined " << report.quarantined.size()
              << " input files (output excludes them):\n";
    for (const elog::QuarantinedFile& entry : report.quarantined) {
      std::cout << "  " << entry.file.string() << " @" << entry.byteOffset
                << ": " << entry.reason << "\n";
    }
  }
  if (report.commandRetries > 0 || report.ranksLost > 0 ||
      report.workersRespawned > 0 || report.workersReconnected > 0) {
    std::cout << "recovery: " << report.commandRetries
              << " command retries, " << report.workersRespawned
              << " workers respawned, " << report.workersReconnected
              << " workers reconnected, " << report.ranksLost
              << " ranks lost (work reassigned to survivors)\n";
  }
  if (report.memoryBudgetBytes > 0) {
    std::cout << "spill: budget " << report.memoryBudgetBytes / 1024 / 1024
              << " MiB, peak accumulator "
              << report.peakAccumulatorBytes / 1024 / 1024
              << " MiB, stage-5 transient "
              << report.peakStage5Bytes / 1024 / 1024 << " MiB, "
              << report.spillRunsWritten << " runs ("
              << report.spilledBytes / 1024 / 1024 << " MiB, "
              << report.spilledTriplets << " triplets), "
              << report.spillCompactions << " compactions\n";
    if (report.reduceShardsUsed > 1) {
      std::cout << "merge: " << report.reduceShardsUsed << " owners, "
                << report.mergeSegmentsWritten << " segments ("
                << report.mergeSegmentsReused << " reused, "
                << report.spillRunsSplit << " runs split), "
                << report.mergeSeconds << " s merge CPU, critical path "
                << report.mergeCriticalSeconds << " s\n";
    }
  }
  std::cout << "wrote " << out << " ("
            << std::filesystem::file_size(out) / 1024 / 1024 << " MiB)\n";
  return 0;
}

int cmdAnalyze(const Args& args) {
  const auto triplets = sparse::loadTriplets(args.requireStr("net"));
  const graph::Graph network = graph::Graph::fromTriplets(triplets);
  std::cout << "network: " << network.vertexCount() << " vertices, "
            << network.edgeCount() << " edges, mean degree "
            << graph::meanDegree(network) << ", total weight "
            << network.totalWeight() << " person-hours\n";

  const auto degrees = graph::degreeSequence(network);
  const auto distribution = stats::frequencyDistribution(degrees);
  const auto powerLaw = stats::fitPowerLaw(distribution);
  const auto truncated = stats::fitTruncatedPowerLaw(distribution);
  const auto exponential = stats::fitExponential(distribution);
  std::cout << "degree fits (log-SSE): power-law alpha=" << powerLaw.alpha
            << " (" << powerLaw.sseLog << "), truncated alpha="
            << truncated.alpha << " kc=" << truncated.cutoff << " ("
            << truncated.sseLog << "), exponential kc=" << exponential.cutoff
            << " (" << exponential.sseLog << ")\n";

  const auto components = graph::connectedComponents(network);
  std::cout << "components: " << components.count() << ", giant "
            << components.giantSize() << " vertices\n";

  if (args.has("clustering")) {
    const auto coefficients = graph::localClusteringCoefficients(network);
    std::uint64_t atOne = 0;
    for (double c : coefficients) {
      atOne += c >= 0.999 ? 1 : 0;
    }
    std::cout << "clustering: mean " << stats::mean(coefficients) << ", "
              << atOne << " vertices at 1.0\n";
  }
  if (args.has("communities")) {
    util::Rng rng(args.u64("seed", 1));
    const auto assignment = graph::louvain(network, rng);
    std::cout << "louvain: " << assignment.communityCount
              << " communities, modularity " << assignment.modularity << "\n";
  }
  if (args.has("degrees-out")) {
    std::ofstream out(args.requireStr("degrees-out"));
    out << "degree\tcount\tfraction\n";
    for (const auto& point : distribution) {
      out << point.value << '\t' << point.count << '\t' << point.fraction
          << '\n';
    }
    std::cout << "wrote degree distribution to "
              << args.requireStr("degrees-out") << "\n";
  }
  return 0;
}

int cmdExport(const Args& args) {
  const auto files = elog::listLogFiles(args.requireStr("logs"));
  if (files.empty()) {
    std::cerr << "no CLG5 files found\n";
    return 1;
  }
  const auto windowStart =
      static_cast<table::Hour>(args.u64("window-start", 0));
  const auto windowEnd =
      static_cast<table::Hour>(args.u64("window-end", 0xFFFFFFFFull));
  table::EventTable events = elog::loadEvents(files, windowStart, windowEnd);
  events.sortByStart();
  const std::string out = args.requireStr("out");
  table::writeEventsTsv(events, out);
  std::cout << "wrote " << events.size() << " events to " << out
            << " (load into R with data.table::fread)\n";
  return 0;
}

int cmdEgo(const Args& args) {
  const auto triplets = sparse::loadTriplets(args.requireStr("net"));
  const graph::Graph network = graph::Graph::fromTriplets(triplets);
  const auto person = static_cast<std::uint32_t>(args.u64("person", 0));
  const auto radius = static_cast<unsigned>(args.u64("radius", 2));
  const auto vertex = network.vertexForLabel(person);
  if (!vertex.has_value()) {
    std::cerr << "person " << person << " is not in the network\n";
    return 1;
  }
  const graph::Graph ego = graph::egoNetwork(network, *vertex, radius);
  std::cout << "ego(" << person << ", r=" << radius << "): "
            << ego.vertexCount() << " nodes, " << ego.edgeCount()
            << " edges\n";
  const std::string prefix = args.requireStr("out");
  graph::writeGraphMl(ego, prefix + ".graphml");
  if (ego.vertexCount() <= args.u64("layout-limit", 4000)) {
    util::Rng rng(5);
    graph::LayoutOptions layout;
    layout.iterations =
        static_cast<unsigned>(args.u64("iterations",
                                       ego.vertexCount() > 1500 ? 80 : 200));
    const auto positions = graph::forceAtlas2Layout(ego, layout, rng);
    graph::writeSvg(ego, positions, prefix + ".svg");
    std::cout << "wrote " << prefix << ".svg and " << prefix << ".graphml\n";
  } else {
    std::cout << "wrote " << prefix
              << ".graphml (ego too large for the O(n^2) layout; raise "
                 "--layout-limit to force)\n";
  }
  return 0;
}

/// `chisim worker` — join a remote synthesis root over TCP. The flags are
/// translated into the same bootstrap environment the root exports when it
/// spawns loopback workers itself, then the shared worker entry point takes
/// over: dial, handshake, serve commands until kStop/kDie.
int cmdWorker(const Args& args) {
  const std::string connect = args.requireStr("connect");
  runtime::parseHostPort(connect);  // fail fast on a malformed address
  const auto rank = args.u64("rank", 0);
  const auto rankCount = args.u64("rank-count", 0);
  if (rank < 1) {
    throw std::invalid_argument(
        "--rank must be >= 1 (rank 0 is the listening root)");
  }
  if (rankCount < 2 || rank >= rankCount) {
    throw std::invalid_argument(
        "--rank-count must be >= 2 and greater than --rank");
  }
  ::setenv(runtime::kWorkerTcpEnv, connect.c_str(), 1);
  ::setenv(runtime::kWorkerRankEnv, std::to_string(rank).c_str(), 1);
  ::setenv(runtime::kWorkerRankCountEnv, std::to_string(rankCount).c_str(), 1);
  ::setenv(runtime::kWorkerConnectTimeoutEnv,
           std::to_string(args.u64("connect-timeout-ms", 5000)).c_str(), 1);
  ::setenv(runtime::kWorkerConnectRetriesEnv,
           std::to_string(args.u64("connect-retries", 5)).c_str(), 1);
  const auto workerExit = net::maybeRunSynthesisWorker();
  if (!workerExit.has_value()) {
    std::cerr << "chisim worker: bootstrap environment rejected\n";
    return 1;
  }
  return *workerExit;
}

void printUsage() {
  std::cout <<
      "usage: chisim <command> [--options]\n"
      "\n"
      "commands:\n"
      "  simulate    --logs DIR [--persons N] [--seed S] [--weeks W]\n"
      "              [--ranks R] [--cache N] [--partition neighborhood|round-robin]\n"
      "              [--compress] [--abm-core hourly|event]\n"
      "              [--disease [--beta B] [--seeds K] [--disease-seed S]]\n"
      "              [--checkpoint-dir DIR [--sim-checkpoint-hours N] [--resume]]\n"
      "  info        --logs DIR\n"
      "  synthesize  --logs DIR --out FILE.cadj [--window-start H] [--window-end H]\n"
      "              [--backend shared|mp] [--workers W] [--batch N]\n"
      "              [--no-balance] [--nnz-weight]\n"
      "              [--method local|spgemm|intersect] [--serial-reduce]\n"
      "              [--no-prefetch] [--prefetch-depth N] [--decode-workers W]\n"
      "              [--fault-policy failfast|degrade] [--max-quarantined-files N]\n"
      "              [--command-timeout-ms MS] [--checkpoint-dir DIR] [--resume]\n"
      "              [--transport inproc|process|tcp] [--max-respawns N]\n"
      "              [--heartbeat-ms MS] [--connect-timeout-ms MS]\n"
      "              [--connect-retries N] [--reconnect-grace-ms MS]\n"
      "              [--tcp-listen HOST:PORT [--tcp-job FILE]]\n"
      "              [--memory-budget BYTES[K|M|G]] [--spill-dir DIR]\n"
      "              [--reduce-shards N] [--merge-readahead none|buffer|fadvise]\n"
      "  worker      --connect HOST:PORT --rank N --rank-count R\n"
      "              [--connect-timeout-ms MS] [--connect-retries N]\n"
      "              (join a --transport tcp synthesis root from another host)\n"
      "  analyze     --net FILE.cadj [--clustering] [--communities]\n"
      "              [--degrees-out FILE.tsv]\n"
      "  ego         --net FILE.cadj --out PREFIX [--person P] [--radius R]\n"
      "  export      --logs DIR --out FILE.tsv [--window-start H]\n"
      "              [--window-end H]   (events as TSV for R/data.table)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // A process spawned by --transport process re-enters this binary with
  // worker bootstrap env vars set; it must become a synthesis worker before
  // any CLI parsing (the root passes no argv to workers).
  if (const auto workerExit = chisimnet::net::maybeRunSynthesisWorker()) {
    return *workerExit;
  }
  // A scripted fault plan shipped through the environment (the same
  // mechanism the transports use for synthesis workers) lets CI and the
  // nightly soak kill a simulation at an exact hour, tear a wire frame, or
  // drop a TCP connection — root-side sites (proc.send, tcp.drop, ...)
  // fire in this process; worker-side sites ride the env into the workers.
  std::unique_ptr<chisimnet::runtime::FaultPlan> faultPlan;
  if (const char* planText =
          std::getenv(chisimnet::runtime::kWorkerFaultPlanEnv)) {
    faultPlan = chisimnet::runtime::FaultPlan::decode(planText);
    chisimnet::runtime::fault::install(faultPlan.get());
  }
  if (argc < 2) {
    printUsage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "simulate") {
      return cmdSimulate(args);
    }
    if (command == "info") {
      return cmdInfo(args);
    }
    if (command == "synthesize") {
      return cmdSynthesize(args);
    }
    if (command == "analyze") {
      return cmdAnalyze(args);
    }
    if (command == "ego") {
      return cmdEgo(args);
    }
    if (command == "export") {
      return cmdExport(args);
    }
    if (command == "worker") {
      return cmdWorker(args);
    }
    printUsage();
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
