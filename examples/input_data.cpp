/// Input-data files and the message-passing synthesis backend.
///
/// chiSIM is driven by census-derived input files for persons, places and
/// activities (paper §II). This example round-trips a synthetic population
/// through that file format, proves the file-driven simulation is identical
/// to the in-memory one, and then synthesizes the network with the
/// distributed (message-passing) backend — the Rmpi code path of §IV.A.
///
/// Run:  ./build/examples/input_data [persons]

#include <cstdlib>
#include <iostream>

#include "chisimnet/chisimnet.hpp"

int main(int argc, char** argv) {
  using namespace chisimnet;

  const auto persons = argc > 1
                           ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                           : 10'000;
  const auto workDir =
      std::filesystem::temp_directory_path() / "chisimnet_input_data";
  std::filesystem::remove_all(workDir);

  // 1. Generate and persist the population input files.
  pop::PopulationConfig popConfig;
  popConfig.personCount = persons;
  popConfig.seed = 1893;  // World's Columbian Exposition
  const auto generated = pop::SyntheticPopulation::generate(popConfig);
  pop::savePopulation(generated, workDir / "input");
  std::cout << "wrote input data ("
            << pop::populationFileBytes(workDir / "input") / 1024
            << " KiB: persons.tsv, places.tsv, activities.tsv, config.tsv)\n"
            << "paper's Chicago input data: ~800 MB at 2.9M persons; this is "
            << persons << " persons\n";

  // 2. Load them back and drive the simulation from the files.
  const auto loaded = pop::loadPopulation(workDir / "input");
  abm::ModelConfig modelConfig;
  modelConfig.logDirectory = workDir / "logs";
  modelConfig.rankCount = 4;
  modelConfig.logCompression = elog::LogCompression::kPacked;
  const abm::ModelStats stats = abm::runModel(loaded, modelConfig);
  std::cout << "simulated from files: " << stats.eventsLogged
            << " events, packed logs " << stats.logBytes / 1024 << " KiB ("
            << static_cast<double>(stats.logBytes) / stats.eventsLogged
            << " bytes/entry vs 20 raw)\n";

  // 3. Cross-check: the generated and loaded populations must produce the
  //    same event stream.
  {
    abm::ModelConfig checkConfig = modelConfig;
    checkConfig.logDirectory = workDir / "logs_check";
    const abm::ModelStats checkStats = abm::runModel(generated, checkConfig);
    std::cout << "file-driven run matches in-memory run: "
              << (checkStats.eventsLogged == stats.eventsLogged ? "YES"
                                                                : "NO")
              << " (" << checkStats.eventsLogged << " events)\n";
  }

  // 4. Synthesize with the message-passing backend.
  net::SynthesisConfig synthConfig;
  synthConfig.windowEnd = pop::kHoursPerWeek;
  synthConfig.workers = 4;
  synthConfig.backend = net::SynthesisBackend::kMessagePassing;
  net::NetworkSynthesizer synthesizer(synthConfig);
  const auto adjacency = synthesizer.synthesizeAdjacency(
      elog::listLogFiles(modelConfig.logDirectory));
  const net::SynthesisReport& report = synthesizer.report();
  std::cout << "message-passing synthesis: " << adjacency.edgeCount()
            << " edges; scattered " << report.bytesScattered / 1024
            << " KiB to ranks, returned " << report.bytesReturned / 1024
            << " KiB of matrices/sums; partition imbalance "
            << report.partitionImbalance << "\n";

  // 5. Persist the network for later analysis sessions.
  sparse::saveAdjacency(adjacency, workDir / "network.cadj");
  std::cout << "wrote " << (workDir / "network.cadj").string() << " ("
            << std::filesystem::file_size(workDir / "network.cadj") / 1024
            << " KiB)\n";

  std::filesystem::remove_all(workDir);
  return 0;
}
