/// Ego-network extraction and visualization (the paper's Figs 1-2
/// workflow): pick a random person, take every vertex within two degrees of
/// separation, extract the induced subgraph, lay it out with the
/// ForceAtlas2-style algorithm and render an SVG with degree-shaded nodes.
/// Also exports GraphML for Gephi, exactly as the paper did.
///
/// Run:  ./build/examples/ego_viz [persons] [output-dir]

#include <cstdlib>
#include <iostream>

#include "chisimnet/chisimnet.hpp"

int main(int argc, char** argv) {
  using namespace chisimnet;

  pop::PopulationConfig popConfig;
  popConfig.personCount = argc > 1
                              ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                              : 15'000;
  popConfig.seed = 60601;  // a Chicago zip code
  const auto population = pop::SyntheticPopulation::generate(popConfig);

  abm::ModelConfig modelConfig;
  modelConfig.logDirectory =
      std::filesystem::temp_directory_path() / "chisimnet_ego_logs";
  std::filesystem::remove_all(modelConfig.logDirectory);
  modelConfig.rankCount = 4;
  abm::runModel(population, modelConfig);

  net::SynthesisConfig synthConfig;
  synthConfig.windowEnd = pop::kHoursPerWeek;
  synthConfig.workers = 4;
  net::NetworkSynthesizer synthesizer(synthConfig);
  const graph::Graph network =
      synthesizer.synthesizeGraph(elog::listLogFiles(modelConfig.logDirectory));
  std::cout << "full network: " << network.vertexCount() << " vertices, "
            << network.edgeCount() << " edges\n";

  const std::filesystem::path outDir =
      argc > 2 ? std::filesystem::path(argv[2]) : std::filesystem::path(".");
  std::filesystem::create_directories(outDir);

  util::Rng rng(99);
  // Two samples, as in the paper: one dense, one diffuse. We sample
  // repeatedly and keep the densest and sparsest ego networks seen.
  graph::Graph densest;
  graph::Graph sparsest;
  double bestDensity = -1.0;
  double worstDensity = 2.0;
  for (int sample = 0; sample < 8; ++sample) {
    const auto source =
        static_cast<graph::Vertex>(rng.uniformBelow(network.vertexCount()));
    const graph::Graph ego = graph::egoNetwork(network, source, 2);
    if (ego.vertexCount() < 10) {
      continue;
    }
    const double n = ego.vertexCount();
    const double density = 2.0 * static_cast<double>(ego.edgeCount()) /
                           (n * (n - 1.0));
    std::cout << "  sample " << sample << ": person "
              << network.label(source) << " -> " << ego.vertexCount()
              << " nodes, " << ego.edgeCount() << " edges (density "
              << density << ")\n";
    if (density > bestDensity) {
      bestDensity = density;
      densest = ego;
    }
    if (density < worstDensity) {
      worstDensity = density;
      sparsest = ego;
    }
  }

  const auto render = [&](const graph::Graph& ego, const std::string& name) {
    if (ego.vertexCount() == 0) {
      return;
    }
    if (ego.vertexCount() > 4000) {
      std::cout << "skipping " << name << " render: " << ego.vertexCount()
                << " nodes exceed the O(n^2) layout budget (use a larger "
                   "population for paper-scale ego sizes)\n";
      graph::writeGraphMl(ego, outDir / (name + ".graphml"));
      return;
    }
    graph::LayoutOptions layout;
    layout.iterations = ego.vertexCount() > 1500 ? 80 : 200;
    util::Rng layoutRng(5);
    const auto positions = graph::forceAtlas2Layout(ego, layout, layoutRng);
    graph::writeSvg(ego, positions, outDir / (name + ".svg"));
    graph::writeGraphMl(ego, outDir / (name + ".graphml"));
    std::cout << "wrote " << (outDir / (name + ".svg")).string() << " and "
              << (outDir / (name + ".graphml")).string() << " ("
              << ego.vertexCount() << " nodes, " << ego.edgeCount()
              << " edges)\n";
  };
  render(densest, "ego_dense");    // the paper's Fig 1 analogue
  render(sparsest, "ego_sparse");  // the paper's Fig 2 analogue

  std::filesystem::remove_all(modelConfig.logDirectory);
  return 0;
}
