/// Quickstart: the full chisimnet workflow on a small synthetic city.
///
///   1. generate a synthetic population (the census-data substitute),
///   2. run the distributed ABM for one simulated week, writing one
///      event log per rank,
///   3. synthesize the person collocation network from the logs,
///   4. print the headline network statistics the paper reports (§V).
///
/// Run:  ./build/examples/quickstart [persons]

#include <cstdlib>
#include <iostream>

#include "chisimnet/chisimnet.hpp"

int main(int argc, char** argv) {
  using namespace chisimnet;

  // 1. Synthetic population ------------------------------------------------
  pop::PopulationConfig popConfig;
  popConfig.personCount = argc > 1
                              ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                              : 20'000;
  popConfig.seed = 20170517;
  const auto population = pop::SyntheticPopulation::generate(popConfig);
  std::cout << "population: " << population.persons().size() << " persons, "
            << population.places().size() << " places, "
            << population.neighborhoodCount() << " neighborhoods\n";

  // 2. Distributed ABM run --------------------------------------------------
  abm::ModelConfig modelConfig;
  modelConfig.logDirectory =
      std::filesystem::temp_directory_path() / "chisimnet_quickstart_logs";
  std::filesystem::remove_all(modelConfig.logDirectory);
  modelConfig.rankCount = 4;
  modelConfig.weeks = 1;
  const abm::ModelStats stats = abm::runModel(population, modelConfig);
  std::cout << "simulated " << stats.simulatedHours << " hours on "
            << modelConfig.rankCount << " ranks in " << stats.wallSeconds
            << " s\n"
            << "  events logged:      " << stats.eventsLogged << " ("
            << stats.logBytes / 1024 << " KiB across "
            << modelConfig.rankCount << " CLG5 files)\n"
            << "  cross-rank moves:   " << stats.migrations << " ("
            << 100.0 * stats.migrationFraction() << "% of moves)\n";

  // 3. Collocation network synthesis ---------------------------------------
  net::SynthesisConfig synthConfig;
  synthConfig.windowStart = 0;
  synthConfig.windowEnd = pop::kHoursPerWeek;
  synthConfig.workers = 4;
  net::NetworkSynthesizer synthesizer(synthConfig);
  const graph::Graph network =
      synthesizer.synthesizeGraph(elog::listLogFiles(modelConfig.logDirectory));
  const net::SynthesisReport& report = synthesizer.report();
  std::cout << "synthesis: " << report.logEntriesLoaded << " log entries, "
            << report.placesProcessed << " places, "
            << report.collocationNnz << " person-hours in "
            << report.totalSeconds << " s\n";

  // 4. Network analysis ------------------------------------------------------
  std::cout << "network:   " << network.vertexCount() << " vertices, "
            << network.edgeCount() << " edges, mean degree "
            << graph::meanDegree(network) << "\n";

  const auto degrees = graph::degreeSequence(network);
  const auto distribution = stats::frequencyDistribution(degrees);
  const auto fit = stats::fitTruncatedPowerLaw(distribution);
  std::cout << "degree distribution: truncated power law alpha=" << fit.alpha
            << " k_c=" << fit.cutoff << " (log-SSE " << fit.sseLog << ")\n";

  const auto clustering = graph::localClusteringCoefficients(network);
  std::uint64_t fullyClustered = 0;
  for (double c : clustering) {
    fullyClustered += c >= 0.999 ? 1 : 0;
  }
  std::cout << "clustering: " << fullyClustered << " of "
            << network.vertexCount()
            << " vertices have local clustering coefficient 1.0\n";

  std::filesystem::remove_all(modelConfig.logDirectory);
  return 0;
}
