/// Demographic network analysis (the paper's Fig 5 workflow): synthesize
/// the full collocation network, then disaggregate by age group and compare
/// the within-group degree distributions and their fits.
///
/// Run:  ./build/examples/demographics [persons]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "chisimnet/chisimnet.hpp"

int main(int argc, char** argv) {
  using namespace chisimnet;

  pop::PopulationConfig popConfig;
  popConfig.personCount = argc > 1
                              ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                              : 20'000;
  popConfig.seed = 1701;
  const auto population = pop::SyntheticPopulation::generate(popConfig);

  abm::ModelConfig modelConfig;
  modelConfig.logDirectory =
      std::filesystem::temp_directory_path() / "chisimnet_demo_logs";
  std::filesystem::remove_all(modelConfig.logDirectory);
  modelConfig.rankCount = 4;
  abm::runModel(population, modelConfig);

  const auto files = elog::listLogFiles(modelConfig.logDirectory);
  const table::EventTable events =
      elog::loadEvents(files, 0, pop::kHoursPerWeek);

  net::SynthesisConfig synthConfig;
  synthConfig.windowEnd = pop::kHoursPerWeek;
  synthConfig.workers = 4;
  net::NetworkSynthesizer synthesizer(synthConfig);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "group   persons   vertices   edges      mean-deg  max-deg  "
               "plaw-alpha  trunc-alpha  trunc-kc\n";

  const auto analyze = [&](const std::string& name,
                           const table::EventTable& groupEvents,
                           std::uint64_t personCount) {
    const graph::Graph network = synthesizer.synthesizeGraph(groupEvents);
    const auto degrees = graph::degreeSequence(network);
    std::uint64_t maxDegree = 0;
    for (std::uint64_t degree : degrees) {
      maxDegree = std::max(maxDegree, degree);
    }
    const auto distribution = stats::frequencyDistribution(degrees);
    const auto powerLaw = stats::fitPowerLaw(distribution);
    const auto truncated = stats::fitTruncatedPowerLaw(distribution);
    std::cout << std::left << std::setw(8) << name << std::setw(10)
              << personCount << std::setw(11) << network.vertexCount()
              << std::setw(11) << network.edgeCount() << std::setw(10)
              << graph::meanDegree(network) << std::setw(9) << maxDegree
              << std::setw(12) << powerLaw.alpha << std::setw(13)
              << truncated.alpha << truncated.cutoff << "\n";
  };

  analyze("all", events, population.persons().size());
  const auto groupCounts = population.ageGroupCounts();
  for (std::size_t g = 0; g < pop::kAgeGroupCount; ++g) {
    const auto group = static_cast<pop::AgeGroup>(g);
    const table::EventTable groupEvents =
        net::eventsForAgeGroup(events, population, group);
    analyze(pop::ageGroupName(group), groupEvents, groupCounts[g]);
  }

  // Location-type sub-networks (paper §VI: match distributions "for
  // population sub-groups such as age or location type, e.g., work or
  // school").
  std::cout << "\nlocation-type sub-networks:\n";
  for (const pop::PlaceType type :
       {pop::PlaceType::kWorkplace, pop::PlaceType::kClassroom,
        pop::PlaceType::kSchoolCommon, pop::PlaceType::kHousehold,
        pop::PlaceType::kShop}) {
    const table::EventTable typeEvents =
        net::eventsForPlaceType(events, population, type);
    if (typeEvents.empty()) {
      continue;
    }
    const graph::Graph network = synthesizer.synthesizeGraph(typeEvents);
    std::cout << "  " << pop::placeTypeName(type) << ": "
              << network.vertexCount() << " vertices, " << network.edgeCount()
              << " edges, mean degree " << graph::meanDegree(network)
              << ", assortativity "
              << graph::degreeAssortativity(network) << "\n";
  }

  std::cout << "\nNote (paper §V.B): the 0-14 group departs furthest from a\n"
               "power law because school and class sizes cap the number of\n"
               "distinct contacts; congregate places (university, prison,\n"
               "retirement homes) produce outlying clusters in the 19-44 and\n"
               "65+ groups.\n";

  std::filesystem::remove_all(modelConfig.logDirectory);
  return 0;
}
