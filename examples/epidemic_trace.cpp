/// Epidemic simulation and contact tracing from the event log (paper §II:
/// "the log can be used to reconstruct all the agents that an agent had
/// contact with over the course of an epidemic simulation, and used to
/// trace back to patient zero"; §III: log entries extended with a disease-
/// state column).
///
/// Runs the distributed ABM with the SEIR disease layer enabled. Every
/// state transition is written to per-rank CLX5 extended logs (new state +
/// infector id). The example then reconstructs the infection forest purely
/// from the logs, traces the last case back to its seed, and cross-checks
/// every transmission pair against the synthesized collocation network.
///
/// Run:  ./build/examples/epidemic_trace [persons]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "chisimnet/chisimnet.hpp"
#include "chisimnet/elog/extended.hpp"

int main(int argc, char** argv) {
  using namespace chisimnet;

  pop::PopulationConfig popConfig;
  popConfig.personCount = argc > 1
                              ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                              : 10'000;
  popConfig.seed = 424242;
  const auto population = pop::SyntheticPopulation::generate(popConfig);

  abm::ModelConfig modelConfig;
  modelConfig.logDirectory =
      std::filesystem::temp_directory_path() / "chisimnet_epidemic_logs";
  std::filesystem::remove_all(modelConfig.logDirectory);
  modelConfig.rankCount = 4;
  modelConfig.weeks = 2;

  abm::DiseaseConfig diseaseConfig;
  diseaseConfig.beta = 0.004;
  diseaseConfig.seedCount = 3;
  diseaseConfig.seed = 7;
  abm::DiseaseStats epidemic;
  const abm::ModelStats stats =
      abm::runModel(population, modelConfig, diseaseConfig, epidemic);

  std::cout << "simulated " << stats.simulatedHours << " hours, "
            << stats.eventsLogged << " activity entries\n"
            << "epidemic: " << epidemic.seeded << " seeds, "
            << epidemic.infections << " transmissions, attack rate "
            << 100.0 * epidemic.attackRate() << "%, peak prevalence "
            << epidemic.peakInfectious << " at hour " << epidemic.peakHour
            << "\n";

  // Reconstruct the infection forest purely from the CLX5 logs.
  struct Transmission {
    std::uint32_t infector;
    table::Hour hour;
    table::PlaceId place;
  };
  std::unordered_map<std::uint32_t, Transmission> infectedBy;
  std::vector<std::uint32_t> seeds;
  std::uint32_t lastCase = abm::kNoInfector;
  table::Hour lastHour = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(modelConfig.logDirectory)) {
    if (entry.path().extension() != ".clx5") {
      continue;
    }
    elog::ExtendedLogReader reader(entry.path());
    for (const elog::ExtendedEvent& event : reader.readAll()) {
      const auto state = static_cast<abm::SeirState>(event.extras[0]);
      if (state == abm::SeirState::kExposed) {
        infectedBy[event.base.person] =
            Transmission{event.extras[1], event.base.start, event.base.place};
        if (event.base.start >= lastHour) {
          lastHour = event.base.start;
          lastCase = event.base.person;
        }
      } else if (state == abm::SeirState::kInfectious &&
                 event.base.start == 0) {
        seeds.push_back(event.base.person);
      }
    }
  }
  std::cout << "reconstructed " << infectedBy.size()
            << " transmissions from the extended logs; seeds:";
  for (std::uint32_t seed : seeds) {
    std::cout << ' ' << seed;
  }
  std::cout << "\n";

  if (infectedBy.empty()) {
    std::cout << "outbreak died out; try a larger population or beta\n";
    std::filesystem::remove_all(modelConfig.logDirectory);
    return 0;
  }

  // Trace the last case back to patient zero.
  std::cout << "tracing last case " << lastCase << " (hour " << lastHour
            << ") backwards:\n";
  std::uint32_t cursor = lastCase;
  int hops = 0;
  while (infectedBy.contains(cursor)) {
    const Transmission& t = infectedBy.at(cursor);
    std::cout << "  case " << cursor << " <- " << t.infector << " at hour "
              << t.hour << " ("
              << pop::placeTypeName(population.place(t.place).type) << " "
              << t.place << ")\n";
    cursor = t.infector;
    ++hops;
  }
  const bool isSeed = std::find(seeds.begin(), seeds.end(), cursor) != seeds.end();
  std::cout << "root: person " << cursor
            << (isSeed ? " == a seeded patient zero (trace correct)" : " (MISMATCH!)")
            << ", chain length " << hops << "\n";

  // Cross-check: every transmission pair must be a collocation-network edge
  // with at least one shared hour.
  net::SynthesisConfig synthConfig;
  synthConfig.windowEnd = 2 * pop::kHoursPerWeek;
  synthConfig.workers = 4;
  net::NetworkSynthesizer synthesizer(synthConfig);
  const auto adjacency = synthesizer.synthesizeAdjacency(
      elog::listLogFiles(modelConfig.logDirectory));
  std::uint64_t missing = 0;
  for (const auto& [target, t] : infectedBy) {
    missing += adjacency.weight(t.infector, target) == 0 ? 1 : 0;
  }
  std::cout << "network check: " << infectedBy.size() - missing << "/"
            << infectedBy.size()
            << " transmission pairs are collocation-network edges\n";

  std::filesystem::remove_all(modelConfig.logDirectory);
  return missing == 0 && isSeed ? 0 : 1;
}
