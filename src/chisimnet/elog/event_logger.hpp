#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/table/event.hpp"

/// Per-rank event-based logger (paper §III).
///
/// One EventLogger instance exists per rank; it records a log entry each
/// time a person agent changes activities. Entries accumulate in an
/// in-memory cache — the paper stores it as a 2D integer array with a
/// nominal capacity of 10,000 entries — and the whole cache is written to
/// disk as a single chunk when full. A smaller cache lowers memory use but
/// issues more writes; a larger one is the opposite (the tradeoff
/// bench_log_cache sweeps).

namespace chisimnet::elog {

inline constexpr std::size_t kDefaultCacheEntries = 10'000;

class EventLogger {
 public:
  /// Owns the file writer. `cacheEntries` must be >= 1.
  EventLogger(std::unique_ptr<ChunkedLogWriter> writer,
              std::size_t cacheEntries = kDefaultCacheEntries);
  ~EventLogger();

  EventLogger(const EventLogger&) = delete;
  EventLogger& operator=(const EventLogger&) = delete;

  /// Records an activity-change entry; flushes the cache when it fills.
  void log(const table::Event& event);

  /// Forces the cache to disk (no-op when empty). Fires the
  /// `abm.log.flush` fault site (rank from setFaultRank, ordinal = the
  /// 1-based flush number) before writing the chunk.
  void flush();

  /// Pushes the writer's buffered bytes to the OS WITHOUT flushing the
  /// cache — checkpointing must not move chunk boundaries, so the cache is
  /// serialized into the checkpoint instead (cacheSnapshot()).
  void sync();

  /// Closes the underlying file without a footer (crash-shaped exit);
  /// the cache is dropped. Idempotent with close().
  void abandon();

  /// Flushes and finalizes the underlying file. Idempotent.
  void close();

  /// The unflushed cache as events, oldest first — checkpoint payload.
  std::vector<table::Event> cacheSnapshot() const;

  /// Resume counterpart of cacheSnapshot(): reinstates the unflushed rows
  /// and the logger counters exactly as they were at checkpoint time, so
  /// every future chunk boundary matches the uninterrupted run.
  void restoreCache(const std::vector<table::Event>& events,
                    std::uint64_t entriesLogged, std::uint64_t flushCount);

  /// Rank reported to the abm.log.flush fault site (-1 = no rank).
  void setFaultRank(int rank) noexcept { faultRank_ = rank; }

  std::uint64_t entriesLogged() const noexcept { return entriesLogged_; }
  std::uint64_t flushCount() const noexcept { return flushCount_; }
  std::size_t cacheCapacity() const noexcept { return cacheCapacity_; }
  std::size_t cachedEntries() const noexcept { return cache_.size(); }
  const ChunkedLogWriter& writer() const noexcept { return *writer_; }

 private:
  // The cache is the paper's "2D integer array": rows of five u32 fields.
  using CacheRow = std::array<std::uint32_t, 5>;

  std::unique_ptr<ChunkedLogWriter> writer_;
  std::vector<CacheRow> cache_;
  std::size_t cacheCapacity_;
  std::uint64_t entriesLogged_ = 0;
  std::uint64_t flushCount_ = 0;
  int faultRank_ = -1;
  bool closed_ = false;
};

}  // namespace chisimnet::elog
