#include "chisimnet/elog/extended.hpp"

#include <algorithm>
#include <limits>

#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::elog {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'X', '5'};
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 4 + 8;
constexpr std::uint64_t kChunkHeaderBytes = 4 * 4;
constexpr std::uint32_t kVersion = 1;

void putU32(std::vector<std::byte>& buffer, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer.push_back(static_cast<std::byte>(value >> shift));
  }
}

std::uint32_t takeU32(std::span<const std::byte> buffer, std::size_t& cursor) {
  const std::uint32_t value =
      static_cast<std::uint32_t>(buffer[cursor]) |
      (static_cast<std::uint32_t>(buffer[cursor + 1]) << 8) |
      (static_cast<std::uint32_t>(buffer[cursor + 2]) << 16) |
      (static_cast<std::uint32_t>(buffer[cursor + 3]) << 24);
  cursor += 4;
  return value;
}

}  // namespace

ExtendedLogWriter::ExtendedLogWriter(const std::filesystem::path& path,
                                     std::uint32_t extraColumns)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      extraColumns_(extraColumns) {
  CHISIM_CHECK(out_.good(),
               "cannot open extended log for writing: " + path.string());
  out_.write(kMagic, 4);
  util::writeU32(out_, kVersion);
  util::writeU32(out_, 5 + extraColumns_);
  util::writeU64(out_, 0);  // footer offset, patched on close
  bytesWritten_ = kHeaderBytes;
}

ExtendedLogWriter::ExtendedLogWriter(const std::filesystem::path& path,
                                     std::uint32_t extraColumns,
                                     ResumeAt resume)
    : path_(path), extraColumns_(extraColumns) {
  const std::size_t rowBytes = (5 + extraColumns_) * 4;
  {
    std::ifstream in(path, std::ios::binary);
    CHISIM_CHECK(in.good(),
                 "cannot open extended log for resume: " + path.string());
    char magic[4];
    in.read(magic, 4);
    CHISIM_CHECK(in.gcount() == 4 && std::equal(magic, magic + 4, kMagic),
                 "resume target is not a CLX5 file: " + path.string());
    CHISIM_CHECK(util::readU32(in) == kVersion,
                 "resume target has an unsupported CLX5 version: " +
                     path.string());
    CHISIM_CHECK(util::readU32(in) == 5 + extraColumns_,
                 "resume target has a different CLX5 schema: " +
                     path.string());
    util::readU64(in);  // footerOffset: 0 (torn) or valid (graceful close)
    CHISIM_CHECK(resume.bytes >= kHeaderBytes,
                 "resume offset inside the CLX5 header: " + path.string());
    std::error_code sizeError;
    const std::uintmax_t fileBytes = std::filesystem::file_size(path, sizeError);
    CHISIM_CHECK(!sizeError && fileBytes >= resume.bytes,
                 "extended log shorter than its checkpoint offset: " +
                     path.string());
    std::uint64_t cursor = kHeaderBytes;
    while (cursor < resume.bytes) {
      in.seekg(static_cast<std::streamoff>(cursor));
      ExtendedChunkInfo info;
      info.offset = cursor;
      info.entryCount = util::readU32(in);
      info.minStart = util::readU32(in);
      info.maxEnd = util::readU32(in);
      util::readU32(in);  // crc
      cursor += kChunkHeaderBytes +
                static_cast<std::uint64_t>(info.entryCount) * rowBytes;
      CHISIM_CHECK(cursor <= resume.bytes,
                   "checkpoint offset is not on a chunk boundary: " +
                       path.string());
      chunks_.push_back(info);
      entriesWritten_ += info.entryCount;
    }
    CHISIM_CHECK(in.good(), "extended log chunk scan failed during resume: " +
                                path.string());
  }
  std::filesystem::resize_file(path, resume.bytes);
  out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  CHISIM_CHECK(out_.good(),
               "cannot reopen extended log for resume: " + path.string());
  out_.seekp(12);  // footerOffset slot in the header
  util::writeU64(out_, 0);
  out_.seekp(static_cast<std::streamoff>(resume.bytes));
  CHISIM_CHECK(out_.good(), "resume reposition failed: " + path.string());
  bytesWritten_ = resume.bytes;
}

ExtendedLogWriter::~ExtendedLogWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; explicit close() surfaces errors.
  }
}

void ExtendedLogWriter::writeChunk(std::span<const ExtendedEvent> entries) {
  CHISIM_REQUIRE(!closed_, "writer already closed");
  if (entries.empty()) {
    return;
  }

  ExtendedChunkInfo info;
  info.offset = bytesWritten_;
  info.entryCount = static_cast<std::uint32_t>(entries.size());
  info.minStart = std::numeric_limits<table::Hour>::max();
  info.maxEnd = 0;

  std::vector<std::byte> payload;
  payload.reserve(entries.size() * (5 + extraColumns_) * 4);
  for (const ExtendedEvent& entry : entries) {
    CHISIM_REQUIRE(entry.extras.size() == extraColumns_,
                   "entry extras do not match the configured column count");
    info.minStart = std::min(info.minStart, entry.base.start);
    info.maxEnd = std::max(info.maxEnd, entry.base.end);
    putU32(payload, entry.base.start);
    putU32(payload, entry.base.end);
    putU32(payload, entry.base.person);
    putU32(payload, entry.base.activity);
    putU32(payload, entry.base.place);
    for (std::uint32_t extra : entry.extras) {
      putU32(payload, extra);
    }
  }

  util::writeU32(out_, info.entryCount);
  util::writeU32(out_, info.minStart);
  util::writeU32(out_, info.maxEnd);
  util::writeU32(out_, util::crc32(payload));
  util::writeBytes(out_, payload);
  CHISIM_CHECK(out_.good(), "extended log chunk write failed");

  bytesWritten_ += kChunkHeaderBytes + payload.size();
  entriesWritten_ += entries.size();
  chunks_.push_back(info);
}

void ExtendedLogWriter::sync() {
  CHISIM_REQUIRE(!closed_, "writer already closed");
  out_.flush();
  CHISIM_CHECK(out_.good(), "extended log sync failed: " + path_.string());
}

void ExtendedLogWriter::abandon() {
  if (closed_) {
    return;
  }
  closed_ = true;
  out_.flush();
  out_.close();  // footerOffset stays 0: readers reject the torn file
}

void ExtendedLogWriter::close() {
  if (closed_) {
    return;
  }
  closed_ = true;

  const std::uint64_t footerOffset = bytesWritten_;
  std::vector<std::byte> body;
  putU32(body, static_cast<std::uint32_t>(chunks_.size()));
  putU32(body, static_cast<std::uint32_t>(chunks_.size() >> 32));
  for (const ExtendedChunkInfo& chunk : chunks_) {
    putU32(body, static_cast<std::uint32_t>(chunk.offset));
    putU32(body, static_cast<std::uint32_t>(chunk.offset >> 32));
    putU32(body, chunk.entryCount);
    putU32(body, chunk.minStart);
    putU32(body, chunk.maxEnd);
  }
  util::writeBytes(out_, body);
  util::writeU32(out_, util::crc32(body));

  out_.seekp(12);
  util::writeU64(out_, footerOffset);
  out_.flush();
  CHISIM_CHECK(out_.good(), "extended log footer write failed");
  out_.close();
}

ExtendedLogReader::ExtendedLogReader(const std::filesystem::path& path)
    : path_(path), in_(path, std::ios::binary) {
  CHISIM_CHECK(in_.good(),
               "cannot open extended log for reading: " + path.string());
  char magic[4];
  in_.read(magic, 4);
  CHISIM_CHECK(in_.gcount() == 4 && std::equal(magic, magic + 4, kMagic),
               "not a CLX5 file: " + path.string());
  CHISIM_CHECK(util::readU32(in_) == kVersion, "unsupported CLX5 version");
  const std::uint32_t fields = util::readU32(in_);
  CHISIM_CHECK(fields >= 5, "corrupt CLX5 schema");
  extraColumns_ = fields - 5;
  const std::uint64_t footerOffset = util::readU64(in_);
  CHISIM_CHECK(footerOffset >= kHeaderBytes,
               "CLX5 file was not closed (missing footer): " + path.string());

  in_.seekg(static_cast<std::streamoff>(footerOffset));
  const std::uint64_t chunkCount = util::readU64(in_);
  std::vector<std::byte> body(8 + chunkCount * 20);
  in_.seekg(static_cast<std::streamoff>(footerOffset));
  util::readBytes(in_, body);
  const std::uint32_t storedCrc = util::readU32(in_);
  CHISIM_CHECK(storedCrc == util::crc32(body),
               "CLX5 footer CRC mismatch: " + path.string());

  std::size_t cursor = 8;
  chunks_.resize(chunkCount);
  for (ExtendedChunkInfo& chunk : chunks_) {
    const std::uint64_t low = takeU32(body, cursor);
    const std::uint64_t high = takeU32(body, cursor);
    chunk.offset = low | (high << 32);
    chunk.entryCount = takeU32(body, cursor);
    chunk.minStart = takeU32(body, cursor);
    chunk.maxEnd = takeU32(body, cursor);
  }
}

std::uint64_t ExtendedLogReader::totalEntries() const noexcept {
  std::uint64_t total = 0;
  for (const ExtendedChunkInfo& chunk : chunks_) {
    total += chunk.entryCount;
  }
  return total;
}

std::vector<ExtendedEvent> ExtendedLogReader::readChunk(std::size_t index) {
  CHISIM_REQUIRE(index < chunks_.size(), "chunk index out of range");
  const ExtendedChunkInfo& info = chunks_[index];
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(info.offset));
  const std::uint32_t entryCount = util::readU32(in_);
  CHISIM_CHECK(entryCount == info.entryCount, "chunk header/index mismatch");
  util::readU32(in_);  // minStart
  util::readU32(in_);  // maxEnd
  const std::uint32_t storedCrc = util::readU32(in_);
  const std::size_t rowBytes = (5 + extraColumns_) * 4;
  std::vector<std::byte> payload(static_cast<std::size_t>(entryCount) * rowBytes);
  util::readBytes(in_, payload);
  CHISIM_CHECK(storedCrc == util::crc32(payload),
               "CLX5 chunk CRC mismatch: " + path_.string());

  std::vector<ExtendedEvent> entries(entryCount);
  std::size_t cursor = 0;
  for (ExtendedEvent& entry : entries) {
    entry.base.start = takeU32(payload, cursor);
    entry.base.end = takeU32(payload, cursor);
    entry.base.person = takeU32(payload, cursor);
    entry.base.activity = takeU32(payload, cursor);
    entry.base.place = takeU32(payload, cursor);
    entry.extras.resize(extraColumns_);
    for (std::uint32_t& extra : entry.extras) {
      extra = takeU32(payload, cursor);
    }
  }
  return entries;
}

std::vector<ExtendedEvent> ExtendedLogReader::readAll() {
  std::vector<ExtendedEvent> all;
  all.reserve(totalEntries());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    auto chunk = readChunk(i);
    std::move(chunk.begin(), chunk.end(), std::back_inserter(all));
  }
  return all;
}

std::vector<ExtendedEvent> ExtendedLogReader::readOverlapping(
    table::Hour windowStart, table::Hour windowEnd) {
  std::vector<ExtendedEvent> selected;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const ExtendedChunkInfo& info = chunks_[i];
    if (info.minStart >= windowEnd || info.maxEnd <= windowStart) {
      continue;
    }
    for (ExtendedEvent& entry : readChunk(i)) {
      if (table::overlapsWindow(entry.base, windowStart, windowEnd)) {
        selected.push_back(std::move(entry));
      }
    }
  }
  return selected;
}

}  // namespace chisimnet::elog
