#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "chisimnet/table/event.hpp"

/// CLG5 — the chunked binary activity-log format (the serial-HDF5
/// substitute, paper §III).
///
/// The paper flushes the full in-memory log cache to a chunked HDF5 dataset
/// so writes are large and sequential, files are compact (20 bytes per
/// entry) and reads can be index-based. CLG5 reproduces those properties:
///
///   header : magic "CLG5", version u32, fieldsPerEntry u32 (=5),
///            footerOffset u64 (patched on close)
///   chunk* : entryCount u32, minStart u32, maxEnd u32, crc32 u32,
///            encoding u32, payloadBytes u32, payload
///   footer : chunkCount u64, per chunk {offset u64, entryCount u32,
///            minStart u32, maxEnd u32}, footer crc32 u32
///
/// The per-chunk [minStart, maxEnd] range enables predicate pushdown: a
/// time-slice read touches only chunks whose range overlaps the window.
/// Chunk payloads come in two encodings (the HDF5-chunk-filter analogue):
///   kRaw    entryCount x 5 x u32 little-endian (20 bytes/entry)
///   kPacked column-split with zigzag-delta varints for start/end and
///           plain varints for person/activity/place — typically 2-3x
///           smaller on real activity logs

namespace chisimnet::elog {

inline constexpr std::uint32_t kClg5Version = 2;
inline constexpr std::size_t kEntryBytes = sizeof(table::Event);

/// Decode failure with enough context to act on one bad file out of N:
/// which file, which chunk, the first record index of that chunk, and the
/// byte offset the failure was detected at — all of it in what() so even a
/// caller that only logs the message can identify the input. chunkIndex -1
/// means the header or footer failed before any chunk was read.
class Clg5Error : public std::runtime_error {
 public:
  Clg5Error(std::filesystem::path file, std::int64_t chunkIndex,
            std::uint64_t firstRecord, std::uint64_t byteOffset,
            const std::string& reason);

  const std::filesystem::path& file() const noexcept { return file_; }
  std::int64_t chunkIndex() const noexcept { return chunkIndex_; }
  /// Index of the chunk's first record within the file (0 for
  /// header/footer failures).
  std::uint64_t firstRecord() const noexcept { return firstRecord_; }
  std::uint64_t byteOffset() const noexcept { return byteOffset_; }
  /// The underlying failure, without the location prefix.
  const std::string& reason() const noexcept { return reason_; }

 private:
  std::filesystem::path file_;
  std::int64_t chunkIndex_;
  std::uint64_t firstRecord_;
  std::uint64_t byteOffset_;
  std::string reason_;
};

enum class LogCompression : std::uint32_t {
  kRaw = 0,
  kPacked = 1,
};

struct ChunkInfo {
  std::uint64_t offset = 0;   ///< file offset of the chunk header
  std::uint32_t entryCount = 0;
  table::Hour minStart = 0;
  table::Hour maxEnd = 0;
};

/// Appends chunks of log entries to one CLG5 file. Single writer per file
/// (each rank owns its own file, exactly as in the paper).
///
/// Crash-safety contract: the header's footerOffset slot stays 0 until
/// close() patches it, so a file torn by a crash (or left by abandon())
/// is rejected by ChunkedLogReader with "missing footer" instead of being
/// silently short — the synthesis quarantine path handles it from there.
class ChunkedLogWriter {
 public:
  /// Resume marker for the checkpoint/restart path: reopen `path` for
  /// appending at exactly `bytes` (a chunk boundary recorded at checkpoint
  /// time), discarding any bytes past it.
  struct ResumeAt {
    std::uint64_t bytes = 0;
  };

  explicit ChunkedLogWriter(const std::filesystem::path& path,
                            LogCompression compression = LogCompression::kRaw);

  /// Resume-open: validates the existing header, scans chunk headers from
  /// the top of the file and requires the scan to land *exactly* on
  /// `resume.bytes` (a checkpoint offset is always a chunk boundary),
  /// truncates the file there — dropping any chunks, torn tails or footer a
  /// crashed or gracefully-closed run left past the checkpoint — rebuilds
  /// the chunk index from the scan, and resets the header's footerOffset
  /// slot to 0 so the resumed file is again detectably-unfinished until the
  /// next close().
  ChunkedLogWriter(const std::filesystem::path& path,
                   LogCompression compression, ResumeAt resume);
  ~ChunkedLogWriter();

  ChunkedLogWriter(const ChunkedLogWriter&) = delete;
  ChunkedLogWriter& operator=(const ChunkedLogWriter&) = delete;

  /// Writes one chunk containing all `entries` (no-op for an empty span).
  void writeChunk(std::span<const table::Event> entries);

  /// Flushes buffered bytes to the OS so everything below bytesWritten()
  /// survives a SIGKILL of this process. Called before a checkpoint
  /// records this writer's offset.
  void sync();

  /// Closes the stream WITHOUT writing the footer — models what a crash
  /// leaves behind (used when a rank aborts on an injected fault, so the
  /// torn file is detectable instead of accidentally finalized by the
  /// destructor). Idempotent with close().
  void abandon();

  /// Writes the footer and closes the file. Idempotent; called by the
  /// destructor if not called explicitly.
  void close();

  std::uint64_t entriesWritten() const noexcept { return entriesWritten_; }
  std::uint64_t chunksWritten() const noexcept { return chunks_.size(); }
  std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }
  LogCompression compression() const noexcept { return compression_; }
  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  LogCompression compression_ = LogCompression::kRaw;
  std::vector<ChunkInfo> chunks_;
  std::uint64_t entriesWritten_ = 0;
  std::uint64_t bytesWritten_ = 0;
  bool closed_ = false;
};

/// Random-access reader over one CLG5 file. Validates magic, version and
/// per-chunk CRCs.
class ChunkedLogReader {
 public:
  explicit ChunkedLogReader(const std::filesystem::path& path);

  std::span<const ChunkInfo> chunks() const noexcept { return chunks_; }
  std::uint64_t totalEntries() const noexcept;
  const std::filesystem::path& path() const noexcept { return path_; }

  /// Reads and CRC-validates chunk `index`.
  std::vector<table::Event> readChunk(std::size_t index);

  /// All entries in file order.
  std::vector<table::Event> readAll();

  /// Entries whose interval overlaps [windowStart, windowEnd); skips chunks
  /// whose time range cannot overlap (index-based read, paper §III).
  std::vector<table::Event> readOverlapping(table::Hour windowStart,
                                            table::Hour windowEnd);

  /// Number of chunks the last readOverlapping call actually loaded
  /// (diagnostic for the pushdown benefit).
  std::size_t lastChunksRead() const noexcept { return lastChunksRead_; }

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  std::vector<ChunkInfo> chunks_;
  std::size_t lastChunksRead_ = 0;
};

}  // namespace chisimnet::elog
