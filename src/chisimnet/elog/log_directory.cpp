#include "chisimnet/elog/log_directory.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <optional>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::elog {

std::filesystem::path logFilePath(const std::filesystem::path& directory,
                                  int rank) {
  CHISIM_REQUIRE(rank >= 0, "rank must be non-negative");
  char name[32];
  std::snprintf(name, sizeof(name), "rank_%04d.clg5", rank);
  return directory / name;
}

std::vector<std::filesystem::path> listLogFiles(
    const std::filesystem::path& directory) {
  std::vector<std::filesystem::path> files;
  if (!std::filesystem::exists(directory)) {
    return files;
  }
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".clg5") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

table::EventTable loadEvents(const std::vector<std::filesystem::path>& files,
                             table::Hour windowStart, table::Hour windowEnd) {
  table::EventTable table;
  for (const std::filesystem::path& file : files) {
    ChunkedLogReader reader(file);
    const std::vector<table::Event> events =
        reader.readOverlapping(windowStart, windowEnd);
    table.appendAll(events);
  }
  return table;
}

table::EventTable loadEventsParallel(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, runtime::ThreadPool& pool) {
  std::vector<std::future<std::vector<table::Event>>> futures;
  futures.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    futures.push_back(pool.submitTask([file, windowStart, windowEnd] {
      ChunkedLogReader reader(file);
      return reader.readOverlapping(windowStart, windowEnd);
    }));
  }
  table::EventTable table;
  for (std::future<std::vector<table::Event>>& future : futures) {
    table.appendAll(future.get());
  }
  return table;
}

namespace {

QuarantinedFile describeFailure(const std::filesystem::path& file,
                                const std::exception& error) {
  QuarantinedFile entry;
  entry.file = file;
  if (const auto* decode = dynamic_cast<const Clg5Error*>(&error)) {
    entry.chunkIndex = decode->chunkIndex();
    entry.byteOffset = decode->byteOffset();
    entry.reason = decode->reason();
  } else {
    entry.reason = error.what();
  }
  return entry;
}

}  // namespace

table::EventTable loadEventsQuarantining(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, std::vector<QuarantinedFile>& quarantined) {
  table::EventTable table;
  for (const std::filesystem::path& file : files) {
    try {
      ChunkedLogReader reader(file);
      table.appendAll(reader.readOverlapping(windowStart, windowEnd));
    } catch (const std::exception& error) {
      quarantined.push_back(describeFailure(file, error));
    }
  }
  return table;
}

table::EventTable loadEventsQuarantiningParallel(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, runtime::ThreadPool& pool,
    std::vector<QuarantinedFile>& quarantined) {
  // A decode failure is described on the worker that hit it, not rethrown
  // through the future: the exception object must not be shared with the
  // worker's packaged_task state, whose teardown races the read.
  struct FileResult {
    std::vector<table::Event> events;
    std::optional<QuarantinedFile> quarantined;
  };
  std::vector<std::future<FileResult>> futures;
  futures.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    futures.push_back(pool.submitTask([file, windowStart, windowEnd] {
      FileResult result;
      try {
        ChunkedLogReader reader(file);
        result.events = reader.readOverlapping(windowStart, windowEnd);
      } catch (const std::exception& error) {
        result.quarantined = describeFailure(file, error);
      }
      return result;
    }));
  }
  table::EventTable table;
  for (std::future<FileResult>& future : futures) {
    FileResult result = future.get();
    if (result.quarantined) {
      quarantined.push_back(std::move(*result.quarantined));
    } else {
      table.appendAll(std::move(result.events));
    }
  }
  return table;
}

std::uintmax_t totalFileBytes(const std::vector<std::filesystem::path>& files) {
  std::uintmax_t total = 0;
  for (const std::filesystem::path& file : files) {
    total += std::filesystem::file_size(file);
  }
  return total;
}

}  // namespace chisimnet::elog
