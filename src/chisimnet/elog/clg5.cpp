#include "chisimnet/elog/clg5.hpp"

#include <algorithm>
#include <limits>

#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::elog {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'G', '5'};
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 4 + 8;
constexpr std::uint64_t kChunkHeaderBytes = 4 * 6;

std::vector<std::byte> serializeRaw(std::span<const table::Event> entries) {
  std::vector<std::byte> payload(entries.size() * kEntryBytes);
  std::size_t cursor = 0;
  const auto put = [&payload, &cursor](std::uint32_t value) {
    payload[cursor++] = static_cast<std::byte>(value);
    payload[cursor++] = static_cast<std::byte>(value >> 8);
    payload[cursor++] = static_cast<std::byte>(value >> 16);
    payload[cursor++] = static_cast<std::byte>(value >> 24);
  };
  for (const table::Event& event : entries) {
    put(event.start);
    put(event.end);
    put(event.person);
    put(event.activity);
    put(event.place);
  }
  return payload;
}

std::vector<table::Event> deserializeRaw(std::span<const std::byte> payload) {
  CHISIM_CHECK(payload.size() % kEntryBytes == 0, "corrupt chunk payload size");
  std::vector<table::Event> entries(payload.size() / kEntryBytes);
  std::size_t cursor = 0;
  const auto take = [&payload, &cursor]() {
    const std::uint32_t value =
        static_cast<std::uint32_t>(payload[cursor]) |
        (static_cast<std::uint32_t>(payload[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(payload[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(payload[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  for (table::Event& event : entries) {
    event.start = take();
    event.end = take();
    event.person = take();
    event.activity = take();
    event.place = take();
  }
  return entries;
}

/// Column-split packed encoding: start/end as zigzag deltas (near-sorted in
/// real logs since stints are recorded when they end), the id columns as
/// plain varints.
std::vector<std::byte> serializePacked(std::span<const table::Event> entries) {
  std::vector<std::byte> payload;
  payload.reserve(entries.size() * 10);
  std::int64_t previousStart = 0;
  std::int64_t previousEnd = 0;
  for (const table::Event& event : entries) {
    util::putVarint(payload, util::zigzagEncode(static_cast<std::int32_t>(
                                 static_cast<std::int64_t>(event.start) -
                                 previousStart)));
    previousStart = event.start;
  }
  for (const table::Event& event : entries) {
    util::putVarint(payload, util::zigzagEncode(static_cast<std::int32_t>(
                                 static_cast<std::int64_t>(event.end) -
                                 previousEnd)));
    previousEnd = event.end;
  }
  for (const table::Event& event : entries) {
    util::putVarint(payload, event.person);
  }
  for (const table::Event& event : entries) {
    util::putVarint(payload, event.activity);
  }
  for (const table::Event& event : entries) {
    util::putVarint(payload, event.place);
  }
  return payload;
}

std::vector<table::Event> deserializePacked(std::span<const std::byte> payload,
                                            std::uint32_t entryCount) {
  std::vector<table::Event> entries(entryCount);
  std::size_t cursor = 0;
  std::int64_t previous = 0;
  for (table::Event& event : entries) {
    previous += util::zigzagDecode(util::getVarint(payload, cursor));
    CHISIM_CHECK(previous >= 0, "corrupt packed start column");
    event.start = static_cast<table::Hour>(previous);
  }
  previous = 0;
  for (table::Event& event : entries) {
    previous += util::zigzagDecode(util::getVarint(payload, cursor));
    CHISIM_CHECK(previous >= 0, "corrupt packed end column");
    event.end = static_cast<table::Hour>(previous);
  }
  for (table::Event& event : entries) {
    event.person = util::getVarint(payload, cursor);
  }
  for (table::Event& event : entries) {
    event.activity = util::getVarint(payload, cursor);
  }
  for (table::Event& event : entries) {
    event.place = util::getVarint(payload, cursor);
  }
  CHISIM_CHECK(cursor == payload.size(), "trailing bytes in packed chunk");
  return entries;
}

}  // namespace

namespace {

std::string clg5ErrorMessage(const std::filesystem::path& file,
                             std::int64_t chunkIndex,
                             std::uint64_t firstRecord,
                             std::uint64_t byteOffset,
                             const std::string& reason) {
  std::string message = file.string();
  if (chunkIndex >= 0) {
    message += ": chunk " + std::to_string(chunkIndex) + " (first record " +
               std::to_string(firstRecord) + ")";
  }
  message += " at byte " + std::to_string(byteOffset) + ": " + reason;
  return message;
}

}  // namespace

Clg5Error::Clg5Error(std::filesystem::path file, std::int64_t chunkIndex,
                     std::uint64_t firstRecord, std::uint64_t byteOffset,
                     const std::string& reason)
    : std::runtime_error(
          clg5ErrorMessage(file, chunkIndex, firstRecord, byteOffset, reason)),
      file_(std::move(file)),
      chunkIndex_(chunkIndex),
      firstRecord_(firstRecord),
      byteOffset_(byteOffset),
      reason_(reason) {}

ChunkedLogWriter::ChunkedLogWriter(const std::filesystem::path& path,
                                   LogCompression compression)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      compression_(compression) {
  CHISIM_CHECK(out_.good(), "cannot open log file for writing: " + path.string());
  out_.write(kMagic, 4);
  util::writeU32(out_, kClg5Version);
  util::writeU32(out_, 5);  // fields per entry
  util::writeU64(out_, 0);  // footer offset, patched in close()
  bytesWritten_ = kHeaderBytes;
}

ChunkedLogWriter::ChunkedLogWriter(const std::filesystem::path& path,
                                   LogCompression compression, ResumeAt resume)
    : path_(path), compression_(compression) {
  // Scan the existing file's chunk headers and require the walk to land
  // exactly on the checkpoint offset: an offset inside a chunk (or past
  // the end of the file) means the checkpoint and the log disagree, and
  // resuming would splice chunks mid-payload.
  {
    std::ifstream in(path, std::ios::binary);
    CHISIM_CHECK(in.good(),
                 "cannot open log file for resume: " + path.string());
    char magic[4];
    in.read(magic, 4);
    CHISIM_CHECK(in.gcount() == 4 && std::equal(magic, magic + 4, kMagic),
                 "resume target is not a CLG5 file: " + path.string());
    CHISIM_CHECK(util::readU32(in) == kClg5Version,
                 "resume target has an unsupported CLG5 version: " +
                     path.string());
    CHISIM_CHECK(util::readU32(in) == 5,
                 "resume target has an unsupported CLG5 schema: " +
                     path.string());
    util::readU64(in);  // footerOffset: 0 (torn) or valid (graceful close)
    CHISIM_CHECK(resume.bytes >= kHeaderBytes,
                 "resume offset inside the CLG5 header: " + path.string());
    std::error_code sizeError;
    const std::uintmax_t fileBytes = std::filesystem::file_size(path, sizeError);
    CHISIM_CHECK(!sizeError && fileBytes >= resume.bytes,
                 "log file shorter than its checkpoint offset: " +
                     path.string());
    std::uint64_t cursor = kHeaderBytes;
    while (cursor < resume.bytes) {
      in.seekg(static_cast<std::streamoff>(cursor));
      ChunkInfo info;
      info.offset = cursor;
      info.entryCount = util::readU32(in);
      info.minStart = util::readU32(in);
      info.maxEnd = util::readU32(in);
      util::readU32(in);  // crc
      util::readU32(in);  // encoding
      const std::uint32_t payloadBytes = util::readU32(in);
      cursor += kChunkHeaderBytes + payloadBytes;
      CHISIM_CHECK(cursor <= resume.bytes,
                   "checkpoint offset is not on a chunk boundary: " +
                       path.string());
      chunks_.push_back(info);
      entriesWritten_ += info.entryCount;
    }
    CHISIM_CHECK(in.good(), "log chunk scan failed during resume: " +
                                path.string());
  }
  // Drop everything past the checkpoint offset (a later flush chunk, a
  // graceful-close footer, or a torn tail from the crash) and mark the
  // file unfinished again until the resumed run's close().
  std::filesystem::resize_file(path, resume.bytes);
  out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  CHISIM_CHECK(out_.good(),
               "cannot reopen log file for resume: " + path.string());
  out_.seekp(12);  // footerOffset slot in the header
  util::writeU64(out_, 0);
  out_.seekp(static_cast<std::streamoff>(resume.bytes));
  CHISIM_CHECK(out_.good(), "resume reposition failed: " + path.string());
  bytesWritten_ = resume.bytes;
}

ChunkedLogWriter::~ChunkedLogWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() surfaces errors.
  }
}

void ChunkedLogWriter::writeChunk(std::span<const table::Event> entries) {
  CHISIM_REQUIRE(!closed_, "writer already closed");
  if (entries.empty()) {
    return;
  }
  CHISIM_REQUIRE(entries.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "chunk too large");

  ChunkInfo info;
  info.offset = bytesWritten_;
  info.entryCount = static_cast<std::uint32_t>(entries.size());
  info.minStart = std::numeric_limits<table::Hour>::max();
  info.maxEnd = 0;
  for (const table::Event& event : entries) {
    info.minStart = std::min(info.minStart, event.start);
    info.maxEnd = std::max(info.maxEnd, event.end);
  }

  const std::vector<std::byte> payload = compression_ == LogCompression::kPacked
                                             ? serializePacked(entries)
                                             : serializeRaw(entries);
  util::writeU32(out_, info.entryCount);
  util::writeU32(out_, info.minStart);
  util::writeU32(out_, info.maxEnd);
  util::writeU32(out_, util::crc32(payload));
  util::writeU32(out_, static_cast<std::uint32_t>(compression_));
  util::writeU32(out_, static_cast<std::uint32_t>(payload.size()));
  util::writeBytes(out_, payload);
  CHISIM_CHECK(out_.good(), "log chunk write failed: " + path_.string());

  bytesWritten_ += kChunkHeaderBytes + payload.size();
  entriesWritten_ += entries.size();
  chunks_.push_back(info);
}

void ChunkedLogWriter::sync() {
  CHISIM_REQUIRE(!closed_, "writer already closed");
  out_.flush();
  CHISIM_CHECK(out_.good(), "log sync failed: " + path_.string());
}

void ChunkedLogWriter::abandon() {
  if (closed_) {
    return;
  }
  closed_ = true;
  out_.flush();
  out_.close();  // footerOffset stays 0: readers reject the torn file
}

void ChunkedLogWriter::close() {
  if (closed_) {
    return;
  }
  closed_ = true;

  const std::uint64_t footerOffset = bytesWritten_;
  // Footer body is also CRC-protected so truncation is detectable.
  std::vector<std::byte> body;
  body.reserve(8 + chunks_.size() * 20);
  const auto putU32 = [&body](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      body.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  const auto putU64 = [&putU32](std::uint64_t value) {
    putU32(static_cast<std::uint32_t>(value));
    putU32(static_cast<std::uint32_t>(value >> 32));
  };
  putU64(chunks_.size());
  for (const ChunkInfo& chunk : chunks_) {
    putU64(chunk.offset);
    putU32(chunk.entryCount);
    putU32(chunk.minStart);
    putU32(chunk.maxEnd);
  }
  util::writeBytes(out_, body);
  util::writeU32(out_, util::crc32(body));

  out_.seekp(12);  // footerOffset slot in the header
  util::writeU64(out_, footerOffset);
  out_.flush();
  CHISIM_CHECK(out_.good(), "log footer write failed: " + path_.string());
  out_.close();
}

ChunkedLogReader::ChunkedLogReader(const std::filesystem::path& path)
    : path_(path), in_(path, std::ios::binary) {
  // Header/footer failures carry chunkIndex -1 plus the byte offset the
  // failure was detected at, so one bad file out of hundreds is nameable.
  const auto fail = [&path](std::uint64_t offset,
                            const std::string& reason) -> void {
    throw Clg5Error(path, -1, 0, offset, reason);
  };
  if (!in_.good()) {
    fail(0, "cannot open log file for reading");
  }

  char magic[4];
  in_.read(magic, 4);
  if (in_.gcount() != 4 || !std::equal(magic, magic + 4, kMagic)) {
    fail(0, "not a CLG5 file (bad magic)");
  }
  std::uint64_t chunkCount = 0;
  std::uint64_t footerOffset = 0;
  std::vector<std::byte> body;
  try {
    const std::uint32_t version = util::readU32(in_);
    if (version != kClg5Version) {
      fail(4, "unsupported CLG5 version " + std::to_string(version));
    }
    const std::uint32_t fields = util::readU32(in_);
    if (fields != 5) {
      fail(8, "unsupported CLG5 schema (" + std::to_string(fields) +
                  " fields per entry)");
    }
    footerOffset = util::readU64(in_);
    if (footerOffset < kHeaderBytes) {
      fail(12, "CLG5 file was not closed (missing footer)");
    }

    in_.seekg(static_cast<std::streamoff>(footerOffset));
    chunkCount = util::readU64(in_);
    // Validate the declared footer size against the file before sizing the
    // buffer off it: a corrupt count must not drive a blind allocation.
    std::error_code sizeError;
    const std::uintmax_t fileBytes =
        std::filesystem::file_size(path, sizeError);
    if (!sizeError &&
        (chunkCount > fileBytes || 8 + chunkCount * 20 > fileBytes)) {
      fail(footerOffset, "footer declares " + std::to_string(chunkCount) +
                             " chunks, more than the file can hold");
    }
    body.resize(8 + chunkCount * 20);
    // Re-read the footer body for CRC validation.
    in_.seekg(static_cast<std::streamoff>(footerOffset));
    util::readBytes(in_, body);
    const std::uint32_t storedCrc = util::readU32(in_);
    if (storedCrc != util::crc32(body)) {
      fail(footerOffset, "footer CRC mismatch");
    }
  } catch (const Clg5Error&) {
    throw;
  } catch (const std::exception& error) {
    // Truncation inside the reads above (readU32/readBytes) surfaces as a
    // generic stream error; re-badge it with the file location.
    fail(footerOffset, error.what());
  }

  std::size_t cursor = 8;
  const auto takeU32 = [&body, &cursor]() {
    const std::uint32_t value =
        static_cast<std::uint32_t>(body[cursor]) |
        (static_cast<std::uint32_t>(body[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(body[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(body[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  chunks_.resize(chunkCount);
  for (ChunkInfo& chunk : chunks_) {
    const std::uint64_t low = takeU32();
    const std::uint64_t high = takeU32();
    chunk.offset = low | (high << 32);
    chunk.entryCount = takeU32();
    chunk.minStart = takeU32();
    chunk.maxEnd = takeU32();
  }
}

std::uint64_t ChunkedLogReader::totalEntries() const noexcept {
  std::uint64_t total = 0;
  for (const ChunkInfo& chunk : chunks_) {
    total += chunk.entryCount;
  }
  return total;
}

std::vector<table::Event> ChunkedLogReader::readChunk(std::size_t index) {
  CHISIM_REQUIRE(index < chunks_.size(), "chunk index out of range");
  const ChunkInfo& info = chunks_[index];
  // First record index of this chunk, so the error names the exact records
  // a quarantined chunk would have contributed.
  std::uint64_t firstRecord = 0;
  for (std::size_t i = 0; i < index; ++i) {
    firstRecord += chunks_[i].entryCount;
  }
  const auto fail = [this, index, firstRecord,
                     &info](const std::string& reason) -> void {
    throw Clg5Error(path_, static_cast<std::int64_t>(index), firstRecord,
                    info.offset, reason);
  };
  try {
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(info.offset));
    const std::uint32_t entryCount = util::readU32(in_);
    if (entryCount != info.entryCount) {
      fail("chunk header/index mismatch");
    }
    util::readU32(in_);  // minStart (already in the index)
    util::readU32(in_);  // maxEnd
    const std::uint32_t storedCrc = util::readU32(in_);
    const std::uint32_t encoding = util::readU32(in_);
    const std::uint32_t payloadBytes = util::readU32(in_);
    // Sanity-bound the declared payload before allocating: a raw chunk is
    // exactly entryCount * 20 bytes and packed is never larger than raw
    // plus the worst-case varint expansion (5/4 per u32 column).
    const std::uint64_t maxPlausible =
        static_cast<std::uint64_t>(info.entryCount) * kEntryBytes * 2 + 16;
    if (payloadBytes > maxPlausible) {
      fail("declared payload of " + std::to_string(payloadBytes) +
           " bytes is implausibly large for " +
           std::to_string(info.entryCount) + " entries");
    }
    std::vector<std::byte> payload(payloadBytes);
    util::readBytes(in_, payload);
    if (storedCrc != util::crc32(payload)) {
      fail("chunk CRC mismatch (corrupt log)");
    }
    switch (static_cast<LogCompression>(encoding)) {
      case LogCompression::kRaw:
        return deserializeRaw(payload);
      case LogCompression::kPacked:
        return deserializePacked(payload, entryCount);
    }
    fail("unknown chunk encoding " + std::to_string(encoding));
  } catch (const Clg5Error&) {
    throw;
  } catch (const std::exception& error) {
    // Stream truncation or a decode CHISIM_CHECK from the deserializers;
    // re-badge with file/chunk/record/offset context.
    fail(error.what());
  }
  return {};
}

std::vector<table::Event> ChunkedLogReader::readAll() {
  std::vector<table::Event> all;
  all.reserve(totalEntries());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const std::vector<table::Event> chunk = readChunk(i);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

std::vector<table::Event> ChunkedLogReader::readOverlapping(
    table::Hour windowStart, table::Hour windowEnd) {
  std::vector<table::Event> selected;
  lastChunksRead_ = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const ChunkInfo& info = chunks_[i];
    if (info.minStart >= windowEnd || info.maxEnd <= windowStart) {
      continue;  // chunk cannot contain overlapping entries
    }
    ++lastChunksRead_;
    for (const table::Event& event : readChunk(i)) {
      if (table::overlapsWindow(event, windowStart, windowEnd)) {
        selected.push_back(event);
      }
    }
  }
  return selected;
}

}  // namespace chisimnet::elog
