#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/table/event.hpp"
#include "chisimnet/table/event_table.hpp"

/// Management of the per-rank log file sets a distributed run produces
/// (paper §III: "This scenario generates 64 log files which can then be
/// easily loaded ... in an iterative or batch fashion").

namespace chisimnet::elog {

/// Canonical per-rank file name: <dir>/rank_<NNNN>.clg5.
std::filesystem::path logFilePath(const std::filesystem::path& directory,
                                  int rank);

/// All CLG5 log files in a directory, sorted by name.
std::vector<std::filesystem::path> listLogFiles(
    const std::filesystem::path& directory);

/// Loads the entries of `files` that overlap [windowStart, windowEnd) into
/// one event table (unsorted). Pass windowEnd = UINT32_MAX (with
/// windowStart = 0) to load everything.
table::EventTable loadEvents(const std::vector<std::filesystem::path>& files,
                             table::Hour windowStart, table::Hour windowEnd);

/// loadEvents with the per-file decode fanned out across `pool`. The file
/// results are merged in file order, so the produced table is identical to
/// the serial loadEvents table for the same file list.
table::EventTable loadEventsParallel(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, runtime::ThreadPool& pool);

/// One input file excluded from a degraded run: which file, where decoding
/// failed (byte offset, -1 chunk index = header/footer), and why.
struct QuarantinedFile {
  std::filesystem::path file;
  std::int64_t chunkIndex = -1;
  std::uint64_t byteOffset = 0;
  std::string reason;
};

/// loadEvents that quarantines undecodable files instead of throwing: each
/// failing file contributes nothing to the table and one QuarantinedFile
/// entry to `quarantined`. A file is all-or-nothing — a corrupt chunk
/// quarantines the whole file, never a partial decode, so the surviving
/// table equals loadEvents() over exactly the non-quarantined files.
table::EventTable loadEventsQuarantining(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, std::vector<QuarantinedFile>& quarantined);

/// Parallel variant of loadEventsQuarantining; quarantine entries are
/// appended in file order, matching the serial variant exactly.
table::EventTable loadEventsQuarantiningParallel(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, runtime::ThreadPool& pool,
    std::vector<QuarantinedFile>& quarantined);

/// Total on-disk size of the given files in bytes.
std::uintmax_t totalFileBytes(const std::vector<std::filesystem::path>& files);

}  // namespace chisimnet::elog
