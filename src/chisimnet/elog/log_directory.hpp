#pragma once

#include <filesystem>
#include <vector>

#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/table/event.hpp"
#include "chisimnet/table/event_table.hpp"

/// Management of the per-rank log file sets a distributed run produces
/// (paper §III: "This scenario generates 64 log files which can then be
/// easily loaded ... in an iterative or batch fashion").

namespace chisimnet::elog {

/// Canonical per-rank file name: <dir>/rank_<NNNN>.clg5.
std::filesystem::path logFilePath(const std::filesystem::path& directory,
                                  int rank);

/// All CLG5 log files in a directory, sorted by name.
std::vector<std::filesystem::path> listLogFiles(
    const std::filesystem::path& directory);

/// Loads the entries of `files` that overlap [windowStart, windowEnd) into
/// one event table (unsorted). Pass windowEnd = UINT32_MAX (with
/// windowStart = 0) to load everything.
table::EventTable loadEvents(const std::vector<std::filesystem::path>& files,
                             table::Hour windowStart, table::Hour windowEnd);

/// loadEvents with the per-file decode fanned out across `pool`. The file
/// results are merged in file order, so the produced table is identical to
/// the serial loadEvents table for the same file list.
table::EventTable loadEventsParallel(
    const std::vector<std::filesystem::path>& files, table::Hour windowStart,
    table::Hour windowEnd, runtime::ThreadPool& pool);

/// Total on-disk size of the given files in bytes.
std::uintmax_t totalFileBytes(const std::vector<std::filesystem::path>& files);

}  // namespace chisimnet::elog
