#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "chisimnet/table/event.hpp"

/// Extended log entries (paper §III): "Log entries can be extended by the
/// addition of other integer entries to support the logging of agent
/// properties such as a disease state."
///
/// CLX5 is the CLG5 format generalized to a configurable number of extra
/// u32 columns per entry; the base five-field schema is unchanged, so base
/// tooling concepts (chunk index, time pushdown, CRC) carry over. The
/// disease layer (abm/disease.hpp) logs state transitions through this
/// writer with one extra column holding the new disease state.

namespace chisimnet::elog {

/// A base event plus `extras` additional u32 attribute columns.
struct ExtendedEvent {
  table::Event base;
  std::vector<std::uint32_t> extras;

  friend bool operator==(const ExtendedEvent&, const ExtendedEvent&) = default;
};

struct ExtendedChunkInfo {
  std::uint64_t offset = 0;
  std::uint32_t entryCount = 0;
  table::Hour minStart = 0;
  table::Hour maxEnd = 0;
};

/// Writer for CLX5 files with a fixed number of extra columns.
///
/// Like CLG5, the header's footerOffset slot stays 0 until close(), so a
/// half-written file from a crash (or abandon()) is rejected by
/// ExtendedLogReader instead of being silently short.
class ExtendedLogWriter {
 public:
  /// Resume marker: reopen `path` for appending at exactly `bytes` (a
  /// chunk boundary recorded at checkpoint time).
  struct ResumeAt {
    std::uint64_t bytes = 0;
  };

  ExtendedLogWriter(const std::filesystem::path& path,
                    std::uint32_t extraColumns);

  /// Resume-open: validates the header, scans chunk headers (payload size
  /// is derivable — entryCount x (5 + extras) x 4 bytes) and requires the
  /// scan to land exactly on `resume.bytes`, truncates there, rebuilds the
  /// chunk index and resets footerOffset to 0 (see
  /// ChunkedLogWriter's resume constructor for the full contract).
  ExtendedLogWriter(const std::filesystem::path& path,
                    std::uint32_t extraColumns, ResumeAt resume);
  ~ExtendedLogWriter();

  ExtendedLogWriter(const ExtendedLogWriter&) = delete;
  ExtendedLogWriter& operator=(const ExtendedLogWriter&) = delete;

  std::uint32_t extraColumns() const noexcept { return extraColumns_; }

  /// Writes one chunk. Every entry must carry exactly extraColumns extras.
  void writeChunk(std::span<const ExtendedEvent> entries);

  /// Flushes buffered bytes to the OS so everything below bytesWritten()
  /// survives a SIGKILL (called before a checkpoint records the offset).
  void sync();

  /// Closes without a footer — the crash-shaped exit (see
  /// ChunkedLogWriter::abandon). Idempotent with close().
  void abandon();

  void close();

  std::uint64_t entriesWritten() const noexcept { return entriesWritten_; }
  std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::uint32_t extraColumns_;
  std::vector<ExtendedChunkInfo> chunks_;
  std::uint64_t entriesWritten_ = 0;
  std::uint64_t bytesWritten_ = 0;
  bool closed_ = false;
};

/// Reader for CLX5 files.
class ExtendedLogReader {
 public:
  explicit ExtendedLogReader(const std::filesystem::path& path);

  std::uint32_t extraColumns() const noexcept { return extraColumns_; }
  std::span<const ExtendedChunkInfo> chunks() const noexcept { return chunks_; }
  std::uint64_t totalEntries() const noexcept;

  std::vector<ExtendedEvent> readChunk(std::size_t index);
  std::vector<ExtendedEvent> readAll();

  /// Entries overlapping the window, with chunk-range pushdown.
  std::vector<ExtendedEvent> readOverlapping(table::Hour windowStart,
                                             table::Hour windowEnd);

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  std::uint32_t extraColumns_ = 0;
  std::vector<ExtendedChunkInfo> chunks_;
};

}  // namespace chisimnet::elog
