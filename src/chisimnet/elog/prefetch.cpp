#include "chisimnet/elog/prefetch.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::elog {

PrefetchingLoader::PrefetchingLoader(std::vector<std::filesystem::path> files,
                                     Options options)
    : files_(std::move(files)),
      options_(options),
      pool_(std::max(1u, options.decodeWorkers)) {
  CHISIM_REQUIRE(options_.depth >= 1, "prefetch depth must be >= 1");
  const std::size_t batchSize =
      options_.filesPerBatch == 0 ? std::max<std::size_t>(1, files_.size())
                                  : options_.filesPerBatch;
  options_.filesPerBatch = batchSize;
  batchCount_ = (files_.size() + batchSize - 1) / batchSize;
  producer_ = std::thread([this] { producerLoop(); });
}

PrefetchingLoader::~PrefetchingLoader() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  slotFree_.notify_all();
  producer_.join();
}

void PrefetchingLoader::producerLoop() {
  for (std::size_t batch = 0; batch < batchCount_; ++batch) {
    const std::size_t begin = batch * options_.filesPerBatch;
    const std::size_t end =
        std::min(files_.size(), begin + options_.filesPerBatch);

    Slot slot;
    slot.batch.filesInBatch = end - begin;
    util::WallTimer decodeTimer;
    try {
      runtime::fault::hit("prefetch.decode");
      const std::vector<std::filesystem::path> batchFiles(
          files_.begin() + static_cast<std::ptrdiff_t>(begin),
          files_.begin() + static_cast<std::ptrdiff_t>(end));
      if (options_.quarantineCorrupt) {
        slot.batch.table = loadEventsQuarantiningParallel(
            batchFiles, options_.windowStart, options_.windowEnd, pool_,
            slot.batch.quarantined);
      } else {
        slot.batch.table = loadEventsParallel(batchFiles, options_.windowStart,
                                              options_.windowEnd, pool_);
      }
    } catch (...) {
      slot.error = std::current_exception();
    }
    const double seconds = decodeTimer.seconds();

    std::unique_lock<std::mutex> lock(mutex_);
    stats_.decodeSeconds += seconds;
    slotFree_.wait(lock, [this] {
      return cancelled_ || ready_.size() < options_.depth;
    });
    if (cancelled_) {
      return;
    }
    const bool failed = slot.error != nullptr;
    ready_.push_back(std::move(slot));
    stats_.peakOccupancy =
        std::max<std::uint64_t>(stats_.peakOccupancy, ready_.size());
    if (failed) {
      // A decode error ends the stream; the consumer rethrows it.
      producerDone_ = true;
      lock.unlock();
      slotReady_.notify_all();
      return;
    }
    lock.unlock();
    slotReady_.notify_all();
    // Hand the CPU to a consumer blocked on this batch; on a core-bound host
    // the producer would otherwise burn its whole timeslice reading ahead
    // while the compute thread sits runnable.
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    producerDone_ = true;
  }
  slotReady_.notify_all();
}

std::optional<LoadedBatch> PrefetchingLoader::next() {
  std::unique_lock<std::mutex> lock(mutex_);
  occupancySum_ += static_cast<double>(ready_.size());
  ++occupancySamples_;
  stats_.meanOccupancy = occupancySum_ / static_cast<double>(occupancySamples_);
  util::WallTimer waitTimer;
  slotReady_.wait(lock, [this] { return producerDone_ || !ready_.empty(); });
  stats_.exposedSeconds += waitTimer.seconds();
  if (ready_.empty()) {
    return std::nullopt;  // producer finished and everything was handed out
  }
  Slot slot = std::move(ready_.front());
  ready_.pop_front();
  ++consumed_;
  lock.unlock();
  slotFree_.notify_all();
  if (slot.error) {
    std::rethrow_exception(slot.error);
  }
  {
    std::lock_guard<std::mutex> statsLock(mutex_);
    ++stats_.batchesLoaded;
  }
  return std::move(slot.batch);
}

std::optional<LoadedBatch> PrefetchingLoader::peekReady() const {
  // Deep copy under the lock: deque references are unstable once the
  // producer pushes again, so handing out a pointer would race.
  std::lock_guard<std::mutex> lock(mutex_);
  if (ready_.empty() || ready_.front().error) {
    return std::nullopt;
  }
  return ready_.front().batch;
}

PrefetchStats PrefetchingLoader::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace chisimnet::elog
