#include "chisimnet/elog/event_logger.hpp"

#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::elog {

EventLogger::EventLogger(std::unique_ptr<ChunkedLogWriter> writer,
                         std::size_t cacheEntries)
    : writer_(std::move(writer)), cacheCapacity_(cacheEntries) {
  CHISIM_REQUIRE(writer_ != nullptr, "logger needs a writer");
  CHISIM_REQUIRE(cacheEntries >= 1, "cache must hold at least one entry");
  cache_.reserve(cacheEntries);
}

EventLogger::~EventLogger() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() surfaces errors.
  }
}

void EventLogger::log(const table::Event& event) {
  CHISIM_REQUIRE(!closed_, "logger already closed");
  cache_.push_back(
      CacheRow{event.start, event.end, event.person, event.activity, event.place});
  ++entriesLogged_;
  if (cache_.size() >= cacheCapacity_) {
    flush();
  }
}

void EventLogger::flush() {
  if (cache_.empty()) {
    return;
  }
  if (runtime::fault::armed()) {
    runtime::FaultSite site;
    site.rank = faultRank_;
    site.ordinal = flushCount_ + 1;  // 1-based flush number of this logger
    runtime::fault::hit("abm.log.flush", site);
  }
  std::vector<table::Event> entries;
  entries.reserve(cache_.size());
  for (const CacheRow& row : cache_) {
    entries.push_back(table::Event{row[0], row[1], row[2], row[3], row[4]});
  }
  writer_->writeChunk(entries);
  cache_.clear();
  ++flushCount_;
}

void EventLogger::sync() { writer_->sync(); }

void EventLogger::abandon() {
  if (closed_) {
    return;
  }
  closed_ = true;
  cache_.clear();
  writer_->abandon();
}

void EventLogger::close() {
  if (closed_) {
    return;
  }
  flush();
  writer_->close();
  closed_ = true;
}

std::vector<table::Event> EventLogger::cacheSnapshot() const {
  std::vector<table::Event> events;
  events.reserve(cache_.size());
  for (const CacheRow& row : cache_) {
    events.push_back(table::Event{row[0], row[1], row[2], row[3], row[4]});
  }
  return events;
}

void EventLogger::restoreCache(const std::vector<table::Event>& events,
                               std::uint64_t entriesLogged,
                               std::uint64_t flushCount) {
  CHISIM_REQUIRE(!closed_, "logger already closed");
  CHISIM_REQUIRE(cache_.empty() && entriesLogged_ == 0,
                 "restoreCache on a logger that already logged");
  CHISIM_REQUIRE(events.size() <= cacheCapacity_,
                 "checkpointed cache larger than the configured capacity");
  for (const table::Event& event : events) {
    cache_.push_back(CacheRow{event.start, event.end, event.person,
                              event.activity, event.place});
  }
  entriesLogged_ = entriesLogged;
  flushCount_ = flushCount;
}

}  // namespace chisimnet::elog
