#include "chisimnet/elog/event_logger.hpp"

#include "chisimnet/util/error.hpp"

namespace chisimnet::elog {

EventLogger::EventLogger(std::unique_ptr<ChunkedLogWriter> writer,
                         std::size_t cacheEntries)
    : writer_(std::move(writer)), cacheCapacity_(cacheEntries) {
  CHISIM_REQUIRE(writer_ != nullptr, "logger needs a writer");
  CHISIM_REQUIRE(cacheEntries >= 1, "cache must hold at least one entry");
  cache_.reserve(cacheEntries);
}

EventLogger::~EventLogger() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() surfaces errors.
  }
}

void EventLogger::log(const table::Event& event) {
  CHISIM_REQUIRE(!closed_, "logger already closed");
  cache_.push_back(
      CacheRow{event.start, event.end, event.person, event.activity, event.place});
  ++entriesLogged_;
  if (cache_.size() >= cacheCapacity_) {
    flush();
  }
}

void EventLogger::flush() {
  if (cache_.empty()) {
    return;
  }
  std::vector<table::Event> entries;
  entries.reserve(cache_.size());
  for (const CacheRow& row : cache_) {
    entries.push_back(table::Event{row[0], row[1], row[2], row[3], row[4]});
  }
  writer_->writeChunk(entries);
  cache_.clear();
  ++flushCount_;
}

void EventLogger::close() {
  if (closed_) {
    return;
  }
  flush();
  writer_->close();
  closed_ = true;
}

}  // namespace chisimnet::elog
