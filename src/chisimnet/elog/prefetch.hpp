#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/table/event_table.hpp"

/// Two-stage synthesis pipeline, stage 1 (paper §IV-V): while the compute
/// thread consumes batch k, a background producer decodes batch k+1 so file
/// I/O overlaps stage 2-6 compute instead of serializing in front of it.
///
/// The producer walks the file list in fixed batch order, fans the per-file
/// CLG5 decode out across a runtime::ThreadPool, merges the file results in
/// file order (so the produced table is byte-identical to the serial
/// loadEvents path), and parks each decoded batch in a bounded depth-N
/// buffer. next() hands batches out strictly in order; when the buffer is
/// full the producer blocks, bounding memory at depth+1 decoded batches.

namespace chisimnet::elog {

/// Counters of one PrefetchingLoader lifetime, for SynthesisReport.
struct PrefetchStats {
  std::uint64_t batchesLoaded = 0;
  /// Wall seconds the producer spent decoding batches (total load work).
  double decodeSeconds = 0.0;
  /// Wall seconds next() blocked waiting on the producer — the only load
  /// time the consumer actually sees on its critical path.
  double exposedSeconds = 0.0;
  /// Ready-buffer occupancy sampled at each next() call.
  double meanOccupancy = 0.0;
  std::uint64_t peakOccupancy = 0;
};

/// One decoded batch as handed to the consumer: the merged table, the
/// files of this batch that failed to decode (empty unless
/// Options::quarantineCorrupt), and how many files the batch spanned.
struct LoadedBatch {
  table::EventTable table;
  std::vector<QuarantinedFile> quarantined;
  std::size_t filesInBatch = 0;
};

class PrefetchingLoader {
 public:
  struct Options {
    table::Hour windowStart = 0;
    table::Hour windowEnd = 0xFFFFFFFFu;
    /// Files per decoded batch; 0 loads all files in one batch.
    std::size_t filesPerBatch = 0;
    /// Max decoded batches buffered ahead of the consumer (>= 1).
    std::size_t depth = 2;
    /// Threads decoding files of one batch in parallel (>= 1).
    unsigned decodeWorkers = 1;
    /// When true, an undecodable file is reported in
    /// LoadedBatch::quarantined instead of ending the stream with an
    /// exception (graceful-degradation mode).
    bool quarantineCorrupt = false;
  };

  PrefetchingLoader(std::vector<std::filesystem::path> files, Options options);
  ~PrefetchingLoader();

  PrefetchingLoader(const PrefetchingLoader&) = delete;
  PrefetchingLoader& operator=(const PrefetchingLoader&) = delete;

  std::size_t batchCount() const noexcept { return batchCount_; }

  /// Blocks until the next batch (in file order) is decoded and returns it;
  /// std::nullopt once all batches have been handed out. Rethrows a decode
  /// error on the consumer thread (unless quarantineCorrupt).
  std::optional<LoadedBatch> next();

  /// Non-blocking copy of the batch the following next() would return, if
  /// the producer has already finished decoding it; nullopt when the ready
  /// buffer is empty or its head carries a decode error. Used by the
  /// checkpointer to persist the in-flight batch so a resume skips its
  /// re-decode; a copy (not a take) because the pipeline still consumes
  /// the batch normally when the run survives.
  std::optional<LoadedBatch> peekReady() const;

  /// Stats so far; stable once next() has returned nullopt.
  PrefetchStats stats() const;

 private:
  struct Slot {
    LoadedBatch batch;
    std::exception_ptr error;
  };

  void producerLoop();

  std::vector<std::filesystem::path> files_;
  Options options_;
  std::size_t batchCount_ = 0;
  std::size_t consumed_ = 0;

  runtime::ThreadPool pool_;
  mutable std::mutex mutex_;
  std::condition_variable slotFree_;
  std::condition_variable slotReady_;
  std::deque<Slot> ready_;
  bool producerDone_ = false;
  bool cancelled_ = false;
  PrefetchStats stats_;
  std::uint64_t occupancySamples_ = 0;
  double occupancySum_ = 0.0;
  std::thread producer_;
};

}  // namespace chisimnet::elog
