#pragma once

/// Umbrella header for the chisimnet library: a C++ reproduction of
/// "Endogenous Social Networks from Large-Scale Agent-Based Models"
/// (Tatara, Collier, Ozik, Macal — IPPS 2017).
///
/// Typical flow (see examples/quickstart.cpp):
///   1. pop::SyntheticPopulation::generate  — build a synthetic city
///   2. abm::runModel                       — simulate and write event logs
///   3. net::NetworkSynthesizer             — logs -> collocation network
///   4. graph:: / stats::                   — analyze degree distributions,
///                                            clustering, ego networks

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/model.hpp"
#include "chisimnet/abm/place_partition.hpp"
#include "chisimnet/abm/sim_checkpoint.hpp"
#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/extended.hpp"
#include "chisimnet/elog/event_logger.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/graph/algorithms.hpp"
#include "chisimnet/graph/community.hpp"
#include "chisimnet/graph/generators.hpp"
#include "chisimnet/graph/graph.hpp"
#include "chisimnet/graph/io.hpp"
#include "chisimnet/graph/layout.hpp"
#include "chisimnet/graph/mixing.hpp"
#include "chisimnet/graph/weighted_stats.hpp"
#include "chisimnet/net/demography.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/net/temporal.hpp"
#include "chisimnet/pop/io.hpp"
#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/schedule.hpp"
#include "chisimnet/pop/types.hpp"
#include "chisimnet/runtime/cluster.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/partition.hpp"
#include "chisimnet/runtime/scheduler.hpp"
#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/sparse/pair_count_map.hpp"
#include "chisimnet/stats/fit.hpp"
#include "chisimnet/stats/histogram.hpp"
#include "chisimnet/stats/plot.hpp"
#include "chisimnet/table/event.hpp"
#include "chisimnet/table/event_table.hpp"
#include "chisimnet/table/io.hpp"
#include "chisimnet/util/env.hpp"
#include "chisimnet/util/rng.hpp"
#include "chisimnet/util/timer.hpp"
