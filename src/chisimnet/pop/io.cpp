#include "chisimnet/pop/io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chisimnet/util/error.hpp"

namespace chisimnet::pop {

namespace {

std::ofstream openOut(const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  CHISIM_CHECK(out.good(), "cannot open for writing: " + path.string());
  return out;
}

std::ifstream openIn(const std::filesystem::path& path) {
  std::ifstream in(path);
  CHISIM_CHECK(in.good(), "cannot open for reading: " + path.string());
  return in;
}

std::vector<std::string> splitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t tab = line.find('\t', begin);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(begin));
      return fields;
    }
    fields.push_back(line.substr(begin, tab - begin));
    begin = tab + 1;
  }
}

std::uint64_t parseU64(const std::string& text, const char* context) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  CHISIM_CHECK(ec == std::errc{} && ptr == text.data() + text.size(),
               std::string("bad integer field in ") + context + ": " + text);
  return value;
}

double parseDouble(const std::string& text, const char* context) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad real field in ") + context +
                             ": " + text);
  }
}

/// kNoPlace round-trips as the literal "-".
std::string placeField(PlaceId place) {
  return place == kNoPlace ? "-" : std::to_string(place);
}

PlaceId parsePlaceField(const std::string& text) {
  if (text == "-") {
    return kNoPlace;
  }
  return static_cast<PlaceId>(parseU64(text, "place reference"));
}

}  // namespace

void savePopulation(const SyntheticPopulation& population,
                    const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);

  {
    std::ofstream out = openOut(directory / "persons.tsv");
    out << "id\tage\tneighborhood\thome\tclassroom\tschool_common\t"
           "workplace\tuniversity\tinstitution\n";
    for (const Person& person : population.persons()) {
      out << person.id << '\t' << static_cast<unsigned>(person.age) << '\t'
          << person.neighborhood << '\t' << placeField(person.home) << '\t'
          << placeField(person.classroom) << '\t'
          << placeField(person.schoolCommon) << '\t'
          << placeField(person.workplace) << '\t'
          << placeField(person.university) << '\t'
          << placeField(person.institution) << '\n';
    }
    CHISIM_CHECK(out.good(), "persons.tsv write failed");
  }
  {
    std::ofstream out = openOut(directory / "places.tsv");
    out << "id\ttype\tneighborhood\tcapacity\n";
    for (const Place& place : population.places()) {
      out << place.id << '\t' << static_cast<unsigned>(place.type) << '\t'
          << place.neighborhood << '\t' << place.capacity << '\n';
    }
    CHISIM_CHECK(out.good(), "places.tsv write failed");
  }
  {
    // Static activity vocabulary: the cross-reference table for looking up
    // string descriptions of logged activity ids (paper §III).
    std::ofstream out = openOut(directory / "activities.tsv");
    out << "id\tdescription\n";
    for (table::ActivityId id = 0; id < activity::kCount; ++id) {
      out << id << '\t' << activity::name(id) << '\n';
    }
    CHISIM_CHECK(out.good(), "activities.tsv write failed");
  }
  {
    // Generator parameters needed to re-derive venue weights on load.
    const PopulationConfig& config = population.config();
    std::ofstream out = openOut(directory / "config.tsv");
    out << "personCount\t" << config.personCount << '\n'
        << "seed\t" << config.seed << '\n'
        << "personsPerNeighborhood\t" << config.personsPerNeighborhood << '\n'
        << "schoolSize\t" << config.schoolSize << '\n'
        << "schoolSizeMin\t" << config.schoolSizeMin << '\n'
        << "classroomSize\t" << config.classroomSize << '\n'
        << "classroomSizeMin\t" << config.classroomSizeMin << '\n'
        << "employmentRate\t" << config.employmentRate << '\n'
        << "universityRate\t" << config.universityRate << '\n'
        << "venueZipfExponent\t" << config.venueZipfExponent << '\n'
        << "retirementHomeRate\t" << config.retirementHomeRate << '\n'
        << "prisonRate\t" << config.prisonRate << '\n';
    CHISIM_CHECK(out.good(), "config.tsv write failed");
  }
}

SyntheticPopulation loadPopulation(const std::filesystem::path& directory) {
  PopulationConfig config;
  {
    std::ifstream in = openIn(directory / "config.tsv");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      const auto fields = splitTabs(line);
      CHISIM_CHECK(fields.size() == 2, "config.tsv: malformed line: " + line);
      const std::string& key = fields[0];
      const std::string& value = fields[1];
      if (key == "personCount") {
        config.personCount = static_cast<std::uint32_t>(parseU64(value, "config"));
      } else if (key == "seed") {
        config.seed = parseU64(value, "config");
      } else if (key == "personsPerNeighborhood") {
        config.personsPerNeighborhood =
            static_cast<std::uint32_t>(parseU64(value, "config"));
      } else if (key == "schoolSize") {
        config.schoolSize = static_cast<std::uint32_t>(parseU64(value, "config"));
      } else if (key == "schoolSizeMin") {
        config.schoolSizeMin =
            static_cast<std::uint32_t>(parseU64(value, "config"));
      } else if (key == "classroomSize") {
        config.classroomSize =
            static_cast<std::uint32_t>(parseU64(value, "config"));
      } else if (key == "classroomSizeMin") {
        config.classroomSizeMin =
            static_cast<std::uint32_t>(parseU64(value, "config"));
      } else if (key == "employmentRate") {
        config.employmentRate = parseDouble(value, "config");
      } else if (key == "universityRate") {
        config.universityRate = parseDouble(value, "config");
      } else if (key == "venueZipfExponent") {
        config.venueZipfExponent = parseDouble(value, "config");
      } else if (key == "retirementHomeRate") {
        config.retirementHomeRate = parseDouble(value, "config");
      } else if (key == "prisonRate") {
        config.prisonRate = parseDouble(value, "config");
      }
      // Unknown keys are tolerated for forward compatibility.
    }
  }

  std::vector<Place> places;
  {
    std::ifstream in = openIn(directory / "places.tsv");
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      const auto fields = splitTabs(line);
      CHISIM_CHECK(fields.size() == 4, "places.tsv: malformed line: " + line);
      Place place;
      place.id = static_cast<PlaceId>(parseU64(fields[0], "places.tsv"));
      const auto type = parseU64(fields[1], "places.tsv");
      CHISIM_CHECK(type < kPlaceTypeCount, "places.tsv: unknown place type");
      place.type = static_cast<PlaceType>(type);
      place.neighborhood =
          static_cast<std::uint32_t>(parseU64(fields[2], "places.tsv"));
      place.capacity =
          static_cast<std::uint32_t>(parseU64(fields[3], "places.tsv"));
      places.push_back(place);
    }
  }

  std::vector<Person> persons;
  {
    std::ifstream in = openIn(directory / "persons.tsv");
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      const auto fields = splitTabs(line);
      CHISIM_CHECK(fields.size() == 9, "persons.tsv: malformed line: " + line);
      Person person;
      person.id = static_cast<PersonId>(parseU64(fields[0], "persons.tsv"));
      person.age = static_cast<std::uint8_t>(parseU64(fields[1], "persons.tsv"));
      person.group = ageGroupForAge(person.age);
      person.neighborhood =
          static_cast<std::uint32_t>(parseU64(fields[2], "persons.tsv"));
      person.home = parsePlaceField(fields[3]);
      person.classroom = parsePlaceField(fields[4]);
      person.schoolCommon = parsePlaceField(fields[5]);
      person.workplace = parsePlaceField(fields[6]);
      person.university = parsePlaceField(fields[7]);
      person.institution = parsePlaceField(fields[8]);
      persons.push_back(person);
    }
  }

  return SyntheticPopulation::fromParts(config, std::move(persons),
                                        std::move(places));
}

std::uintmax_t populationFileBytes(const std::filesystem::path& directory) {
  std::uintmax_t total = 0;
  for (const char* name :
       {"persons.tsv", "places.tsv", "activities.tsv", "config.tsv"}) {
    const auto path = directory / name;
    if (std::filesystem::exists(path)) {
      total += std::filesystem::file_size(path);
    }
  }
  return total;
}

}  // namespace chisimnet::pop
