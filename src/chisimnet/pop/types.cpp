#include "chisimnet/pop/types.hpp"

#include "chisimnet/util/error.hpp"

namespace chisimnet::pop {

std::string ageGroupName(AgeGroup group) {
  switch (group) {
    case AgeGroup::kChild0to14:
      return "0-14";
    case AgeGroup::kTeen15to18:
      return "15-18";
    case AgeGroup::kAdult19to44:
      return "19-44";
    case AgeGroup::kAdult45to64:
      return "45-64";
    case AgeGroup::kSenior65plus:
      return "65+";
  }
  return "unknown";
}

AgeGroup ageGroupForAge(unsigned age) {
  if (age <= 14) return AgeGroup::kChild0to14;
  if (age <= 18) return AgeGroup::kTeen15to18;
  if (age <= 44) return AgeGroup::kAdult19to44;
  if (age <= 64) return AgeGroup::kAdult45to64;
  return AgeGroup::kSenior65plus;
}

std::string placeTypeName(PlaceType type) {
  switch (type) {
    case PlaceType::kHousehold:
      return "household";
    case PlaceType::kClassroom:
      return "classroom";
    case PlaceType::kSchoolCommon:
      return "school-common";
    case PlaceType::kWorkplace:
      return "workplace";
    case PlaceType::kUniversity:
      return "university";
    case PlaceType::kShop:
      return "shop";
    case PlaceType::kLeisure:
      return "leisure";
    case PlaceType::kRetirementHome:
      return "retirement-home";
    case PlaceType::kPrison:
      return "prison";
    case PlaceType::kHospital:
      return "hospital";
  }
  return "unknown";
}

namespace activity {

std::string name(ActivityId id) {
  switch (id) {
    case kHome:
      return "home";
    case kSchool:
      return "school";
    case kSchoolLunch:
      return "school-lunch";
    case kWork:
      return "work";
    case kErrand:
      return "errand";
    case kLeisure:
      return "leisure";
    case kUniversity:
      return "university";
    case kInstitution:
      return "institution";
    case kHospital:
      return "hospital";
    case kVisit:
      return "visit";
    default:
      return "unknown";
  }
}

}  // namespace activity

}  // namespace chisimnet::pop
