#include "chisimnet/pop/schedule.hpp"

#include <algorithm>

#include "chisimnet/util/error.hpp"

namespace chisimnet::pop {

namespace {

/// Deterministic stream id for (person, week) sampling.
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                        (b * 0xbf58476d1ce4e5b9ULL);
  return util::splitmix64(state);
}

}  // namespace

std::size_t coveringStintIndex(std::span<const ScheduleEntry> schedule,
                               Hour now) {
  const auto it = std::partition_point(
      schedule.begin(), schedule.end(),
      [now](const ScheduleEntry& entry) { return entry.end <= now; });
  CHISIM_CHECK(it != schedule.end() && it->start <= now,
               "schedule does not cover the requested hour");
  return static_cast<std::size_t>(it - schedule.begin());
}

PackedWeek::PackedWeek(std::uint32_t weekIndex, std::vector<PackedStint> stints)
    : weekIndex_(weekIndex), stints_(std::move(stints)) {
  CHISIM_CHECK(!stints_.empty() && stints_.size() <= kHoursPerWeek,
               "packed week must hold between 1 and 168 stints");
  Hour cursor = 0;
  for (const PackedStint& stint : stints_) {
    CHISIM_CHECK(stint.startHour == cursor && stint.endHour > stint.startHour &&
                     stint.endHour <= kHoursPerWeek,
                 "packed week stints must tile the week contiguously");
    cursor = stint.endHour;
  }
  CHISIM_CHECK(cursor == kHoursPerWeek, "packed week must cover all 168 hours");
}

ScheduleEntry PackedWeek::entry(std::size_t index) const {
  CHISIM_CHECK(index < stints_.size(), "packed week stint index out of range");
  const PackedStint& stint = stints_[index];
  const Hour weekBase = weekIndex_ * kHoursPerWeek;
  return ScheduleEntry{weekBase + stint.startHour, weekBase + stint.endHour,
                       stint.activity, stint.place};
}

std::size_t PackedWeek::coveringIndex(Hour now) const {
  const Hour weekBase = weekIndex_ * kHoursPerWeek;
  CHISIM_CHECK(now >= weekBase && now < weekBase + kHoursPerWeek,
               "hour outside this packed week");
  const Hour offset = now - weekBase;
  const auto it = std::partition_point(
      stints_.begin(), stints_.end(),
      [offset](const PackedStint& stint) { return stint.endHour <= offset; });
  CHISIM_CHECK(it != stints_.end(), "packed week does not cover the hour");
  return static_cast<std::size_t>(it - stints_.begin());
}

StintCursor::StintCursor(const ScheduleGenerator& generator, PersonId person,
                         Hour now)
    : person_(person), week_(generator.packedWeek(person, now / kHoursPerWeek)) {
  index_ = static_cast<std::uint32_t>(week_.coveringIndex(now));
}

StintCursor::StintCursor(PersonId person, PackedWeek week, std::uint32_t index)
    : person_(person), index_(index), week_(std::move(week)) {
  CHISIM_CHECK(index_ < week_.size(), "stint cursor index out of range");
}

ScheduleEntry StintCursor::advance(const ScheduleGenerator& generator,
                                   Hour now) {
  CHISIM_CHECK(current().end == now, "advance called off-boundary");
  ++index_;
  if (index_ >= week_.size()) {
    week_ = generator.packedWeek(person_, week_.weekIndex() + 1);
    index_ = 0;
  }
  const ScheduleEntry next = current();
  CHISIM_CHECK(next.start == now, "schedule has a gap");
  return next;
}

ScheduleGenerator::ScheduleGenerator(const SyntheticPopulation& population,
                                     std::uint64_t seed)
    : population_(&population), seed_(seed) {}

ScheduleGenerator::WeekSlots ScheduleGenerator::weeklySlots(
    PersonId personId, std::uint32_t weekIndex) const {
  const Person& person = population_->person(personId);
  util::Rng week(mixSeed(seed_, personId, weekIndex));
  util::Rng stable(mixSeed(seed_, personId, 0xA11CE));  // person-stable traits

  WeekSlots slots;
  slots.fill(HourSlot{activity::kHome, person.home});

  const auto fill = [&slots](unsigned day, unsigned fromHour, unsigned toHour,
                             ActivityId activity, PlaceId place) {
    for (unsigned h = fromHour; h < toHour; ++h) {
      slots[day * kHoursPerDay + h] = HourSlot{activity, place};
    }
  };

  const NeighborhoodVenues& venues = population_->venues(person.neighborhood);
  const auto pickShop = [&venues](util::Rng& rng) {
    return venues.shops[rng.discrete(venues.shopWeights)];
  };
  const auto pickLeisure = [&venues](util::Rng& rng) {
    return venues.leisure[rng.discrete(venues.leisureWeights)];
  };

  // ---- institutionalized persons ------------------------------------------
  if (person.isInstitutionalized()) {
    const Place& institution = population_->place(person.institution);
    for (HourSlot& slot : slots) {
      slot = HourSlot{activity::kInstitution, person.institution};
    }
    if (institution.type == PlaceType::kRetirementHome) {
      // Occasional short errand outings.
      for (unsigned day = 0; day < 7; ++day) {
        if (week.bernoulli(0.2)) {
          fill(day, 10, 12, activity::kErrand, pickShop(week));
        }
      }
    }
    return slots;
  }

  const bool weekdaySchool = person.isStudent();
  const bool universityStudent = person.university != kNoPlace;
  const bool employed = person.isEmployed();
  const bool nightShift = employed && stable.bernoulli(0.10);
  const unsigned workStart =
      static_cast<unsigned>(8 + stable.uniformInt(0, 2));  // 8..10
  // Persons with no daily obligations include a homebody fraction who
  // rarely leave the house: they produce the low-degree head of the degree
  // distribution (Fig 3) and the clustering-coefficient-1 spike (Fig 4) —
  // their only contacts are their fully connected household.
  const bool noObligations = !weekdaySchool && !universityStudent && !employed;
  const bool homebody =
      noObligations && stable.bernoulli(person.age < 5 ? 0.75 : 0.35);
  const double errandScale = homebody ? 0.08 : 1.0;

  for (unsigned day = 0; day < 7; ++day) {
    const bool weekday = day < 5;

    if (weekday && weekdaySchool) {
      if (week.bernoulli(0.04)) {
        continue;  // sick/absent day spent at home
      }
      fill(day, 8, 12, activity::kSchool, person.classroom);
      fill(day, 12, 13, activity::kSchoolLunch, person.schoolCommon);
      fill(day, 13, 15, activity::kSchool, person.classroom);
      const double afterSchool = week.uniform01();
      if (afterSchool < 0.30) {
        fill(day, 15, 17, activity::kLeisure, pickLeisure(week));
      } else if (afterSchool < 0.50) {
        fill(day, 15, 16, activity::kErrand, pickShop(week));
      }
      continue;
    }

    if (weekday && universityStudent) {
      const unsigned start = static_cast<unsigned>(8 + week.uniformInt(0, 2));
      const unsigned length = static_cast<unsigned>(4 + week.uniformInt(0, 3));
      fill(day, start, std::min(23u, start + length), activity::kUniversity,
           person.university);
      if (week.bernoulli(0.3)) {
        fill(day, 20, 22, activity::kLeisure, pickLeisure(week));
      }
      continue;
    }

    if (weekday && employed) {
      if (nightShift) {
        fill(day, 0, 6, activity::kWork, person.workplace);
        fill(day, 22, 24, activity::kWork, person.workplace);
      } else {
        fill(day, workStart, workStart + 8, activity::kWork, person.workplace);
        if (week.bernoulli(0.30)) {
          fill(day, workStart + 8, workStart + 9, activity::kErrand,
               pickShop(week));
        }
        if (week.bernoulli(0.20)) {
          fill(day, 19, 21, activity::kLeisure, pickLeisure(week));
        }
      }
      continue;
    }

    // Weekend (everyone) or weekday for the non-employed/very young.
    if (week.bernoulli((weekday ? 0.5 : 0.6) * errandScale)) {
      const unsigned start = static_cast<unsigned>(9 + week.uniformInt(0, 3));
      fill(day, start, start + 1, activity::kErrand, pickShop(week));
    }
    if (week.bernoulli((weekday ? 0.3 : 0.5) * errandScale)) {
      const unsigned start = static_cast<unsigned>(13 + week.uniformInt(0, 5));
      fill(day, start, start + 2, activity::kLeisure, pickLeisure(week));
    }
  }

  // ---- social visits ---------------------------------------------------
  // Evening visits to another household in the neighborhood. These create
  // the small household-sized contact increments that populate the low-
  // degree head of the degree distribution (Fig 3) — a visited homebody
  // gains a couple of contacts without leaving home.
  {
    const auto households = population_->households(person.neighborhood);
    const double visitProbability = homebody ? 0.03 : 0.07;
    for (unsigned day = 0; day < 7; ++day) {
      const double probability = day < 5 ? visitProbability
                                         : 1.5 * visitProbability;
      if (!households.empty() && week.bernoulli(probability)) {
        PlaceId destination = households[week.uniformBelow(households.size())];
        if (destination != person.home) {
          fill(day, 18, 20, activity::kVisit, destination);
        }
      }
    }
  }

  // ---- hospital stays (override everything else) ---------------------------
  const auto hospitals = population_->hospitals();
  if (!hospitals.empty() && week.bernoulli(0.003)) {
    const PlaceId hospital = hospitals[week.uniformBelow(hospitals.size())];
    const unsigned startHour =
        static_cast<unsigned>(week.uniformBelow(kHoursPerWeek - 24));
    const unsigned stay = static_cast<unsigned>(24 + week.uniformInt(0, 48));
    for (unsigned h = startHour;
         h < std::min<unsigned>(kHoursPerWeek, startHour + stay); ++h) {
      slots[h] = HourSlot{activity::kHospital, hospital};
    }
  }

  return slots;
}

std::vector<ScheduleEntry> ScheduleGenerator::weeklySchedule(
    PersonId person, std::uint32_t weekIndex) const {
  CHISIM_REQUIRE(person < population_->persons().size(), "person out of range");
  const WeekSlots slots = weeklySlots(person, weekIndex);
  const Hour weekBase = weekIndex * kHoursPerWeek;

  std::vector<ScheduleEntry> schedule;
  ScheduleEntry current{weekBase, weekBase, slots[0].activity, slots[0].place};
  for (Hour h = 0; h < kHoursPerWeek; ++h) {
    const HourSlot& slot = slots[h];
    if (slot.activity == current.activity && slot.place == current.place) {
      current.end = weekBase + h + 1;
    } else {
      schedule.push_back(current);
      current = ScheduleEntry{weekBase + h, weekBase + h + 1, slot.activity,
                              slot.place};
    }
  }
  schedule.push_back(current);
  return schedule;
}

PackedWeek ScheduleGenerator::packedWeek(PersonId person,
                                         std::uint32_t weekIndex) const {
  CHISIM_REQUIRE(person < population_->persons().size(), "person out of range");
  const WeekSlots slots = weeklySlots(person, weekIndex);

  std::vector<PackedStint> stints;
  Hour start = 0;
  for (Hour h = 1; h <= kHoursPerWeek; ++h) {
    if (h == kHoursPerWeek || slots[h] != slots[start]) {
      CHISIM_CHECK(slots[start].activity <= 0xFF,
                   "activity id does not fit the packed stint");
      stints.push_back(PackedStint{static_cast<std::uint8_t>(start),
                                   static_cast<std::uint8_t>(h),
                                   static_cast<std::uint8_t>(slots[start].activity),
                                   0, slots[start].place});
      start = h;
    }
  }
  return PackedWeek(weekIndex, std::move(stints));
}

double ScheduleGenerator::activityChangesPerDay(PersonId person,
                                                std::uint32_t weekIndex) const {
  const auto schedule = weeklySchedule(person, weekIndex);
  return static_cast<double>(schedule.size() - 1) / 7.0;
}

}  // namespace chisimnet::pop
