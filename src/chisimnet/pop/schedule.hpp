#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/types.hpp"

/// Hourly activity schedules (paper §II: "A daily schedule for each person
/// specifies the activity and associated location with one-hour time
/// resolution").
///
/// Schedules are generated lazily per (person, week) and are deterministic
/// in (generator seed, person id, week index): the ABM can be distributed
/// over any number of ranks, or re-run, and every person follows the same
/// schedule. Weekly variation (which evenings have errands, hospital stays)
/// is sampled inside that determinism; person-stable traits (night-shift
/// worker, usual work start) are derived from the person id alone.

namespace chisimnet::pop {

inline constexpr Hour kHoursPerDay = 24;
inline constexpr Hour kHoursPerWeek = 168;

/// One contiguous stint: person does `activity` at `place` during
/// [start, end) in absolute simulation hours.
struct ScheduleEntry {
  Hour start = 0;
  Hour end = 0;
  ActivityId activity = activity::kHome;
  PlaceId place = kNoPlace;

  friend bool operator==(const ScheduleEntry&, const ScheduleEntry&) = default;
};

/// Index of the stint covering hour `now` in a contiguous, sorted weekly
/// schedule — binary search on ScheduleEntry::end (entries are contiguous,
/// so the first entry with end > now is the covering one). Throws when the
/// schedule does not cover `now`.
std::size_t coveringStintIndex(std::span<const ScheduleEntry> schedule,
                               Hour now);

/// One stint in packed 8-byte form: hour-of-week offsets plus activity and
/// place. This is both the in-memory resident format of the event-driven
/// ABM core (half the footprint of ScheduleEntry) and the wire format its
/// migration messages ship, so a destination rank never regenerates a
/// schedule it can be handed.
struct PackedStint {
  std::uint8_t startHour = 0;  ///< offset within the week, [0, 168)
  std::uint8_t endHour = 0;    ///< offset within the week, (startHour, 168]
  std::uint8_t activity = 0;
  std::uint8_t reserved = 0;
  PlaceId place = kNoPlace;

  friend bool operator==(const PackedStint&, const PackedStint&) = default;
};
static_assert(sizeof(PackedStint) == 8, "packed stint is an 8-byte record");

/// A person's schedule for one week in packed form. Unpacks to exactly the
/// ScheduleEntry sequence weeklySchedule() returns for the same
/// (person, week).
class PackedWeek {
 public:
  PackedWeek() = default;
  /// From explicit stints (e.g. decoded off a migration message).
  PackedWeek(std::uint32_t weekIndex, std::vector<PackedStint> stints);

  std::uint32_t weekIndex() const noexcept { return weekIndex_; }
  std::size_t size() const noexcept { return stints_.size(); }
  std::span<const PackedStint> stints() const noexcept { return stints_; }

  /// Unpacks stint `index` to absolute simulation hours.
  ScheduleEntry entry(std::size_t index) const;

  /// Index of the stint covering absolute hour `now` (binary search).
  std::size_t coveringIndex(Hour now) const;

 private:
  std::uint32_t weekIndex_ = 0;
  std::vector<PackedStint> stints_;
};

/// Streaming cursor over a person's stint sequence: holds one packed week
/// at a time and advances stint by stint, regenerating the next week only
/// when the current one is exhausted. The event-driven core keeps one of
/// these per resident agent; dormant agents cost one PackedWeek, not a
/// materialized ScheduleEntry vector.
class StintCursor {
 public:
  StintCursor() = default;

  /// Positions at the stint covering absolute hour `now`.
  StintCursor(const class ScheduleGenerator& generator, PersonId person,
              Hour now);

  /// Rebuilds from shipped state (migration hand-off): `index` must be a
  /// valid stint index within `week`.
  StintCursor(PersonId person, PackedWeek week, std::uint32_t index);

  PersonId person() const noexcept { return person_; }
  std::uint32_t weekIndex() const noexcept { return week_.weekIndex(); }
  std::uint32_t index() const noexcept { return index_; }
  const PackedWeek& week() const noexcept { return week_; }

  ScheduleEntry current() const { return week_.entry(index_); }

  /// Advances past the stint ending at `now`; rolls into the next week when
  /// the week is exhausted. Returns the new current stint.
  ScheduleEntry advance(const class ScheduleGenerator& generator, Hour now);

 private:
  PersonId person_ = 0;
  std::uint32_t index_ = 0;
  PackedWeek week_;
};

class ScheduleGenerator {
 public:
  ScheduleGenerator(const SyntheticPopulation& population, std::uint64_t seed);

  /// The person's schedule for week `weekIndex`, covering absolute hours
  /// [weekIndex*168, (weekIndex+1)*168) contiguously with no gaps; adjacent
  /// stints always differ in activity or place.
  std::vector<ScheduleEntry> weeklySchedule(PersonId person,
                                            std::uint32_t weekIndex) const;

  /// The same week compressed directly from the hourly slots into packed
  /// stints, without materializing the ScheduleEntry vector.
  PackedWeek packedWeek(PersonId person, std::uint32_t weekIndex) const;

  /// Expected number of activity *changes* per simulated day for a person,
  /// i.e. (stints - 1) / 7 for one week (diagnostic for the paper's
  /// "~5 activity changes per day" sizing claim).
  double activityChangesPerDay(PersonId person, std::uint32_t weekIndex) const;

 private:
  struct HourSlot {
    ActivityId activity = activity::kHome;
    PlaceId place = kNoPlace;
    friend bool operator==(const HourSlot&, const HourSlot&) = default;
  };
  using WeekSlots = std::array<HourSlot, kHoursPerWeek>;

  WeekSlots weeklySlots(PersonId person, std::uint32_t weekIndex) const;

  const SyntheticPopulation* population_;
  std::uint64_t seed_;
};

}  // namespace chisimnet::pop
