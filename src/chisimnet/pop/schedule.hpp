#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/types.hpp"

/// Hourly activity schedules (paper §II: "A daily schedule for each person
/// specifies the activity and associated location with one-hour time
/// resolution").
///
/// Schedules are generated lazily per (person, week) and are deterministic
/// in (generator seed, person id, week index): the ABM can be distributed
/// over any number of ranks, or re-run, and every person follows the same
/// schedule. Weekly variation (which evenings have errands, hospital stays)
/// is sampled inside that determinism; person-stable traits (night-shift
/// worker, usual work start) are derived from the person id alone.

namespace chisimnet::pop {

inline constexpr Hour kHoursPerDay = 24;
inline constexpr Hour kHoursPerWeek = 168;

/// One contiguous stint: person does `activity` at `place` during
/// [start, end) in absolute simulation hours.
struct ScheduleEntry {
  Hour start = 0;
  Hour end = 0;
  ActivityId activity = activity::kHome;
  PlaceId place = kNoPlace;

  friend bool operator==(const ScheduleEntry&, const ScheduleEntry&) = default;
};

class ScheduleGenerator {
 public:
  ScheduleGenerator(const SyntheticPopulation& population, std::uint64_t seed);

  /// The person's schedule for week `weekIndex`, covering absolute hours
  /// [weekIndex*168, (weekIndex+1)*168) contiguously with no gaps; adjacent
  /// stints always differ in activity or place.
  std::vector<ScheduleEntry> weeklySchedule(PersonId person,
                                            std::uint32_t weekIndex) const;

  /// Expected number of activity *changes* per simulated day for a person,
  /// i.e. (stints - 1) / 7 for one week (diagnostic for the paper's
  /// "~5 activity changes per day" sizing claim).
  double activityChangesPerDay(PersonId person, std::uint32_t weekIndex) const;

 private:
  struct HourSlot {
    ActivityId activity = activity::kHome;
    PlaceId place = kNoPlace;
    friend bool operator==(const HourSlot&, const HourSlot&) = default;
  };
  using WeekSlots = std::array<HourSlot, kHoursPerWeek>;

  WeekSlots weeklySlots(PersonId person, std::uint32_t weekIndex) const;

  const SyntheticPopulation* population_;
  std::uint64_t seed_;
};

}  // namespace chisimnet::pop
