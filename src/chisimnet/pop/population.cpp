#include "chisimnet/pop/population.hpp"

#include <algorithm>
#include <cmath>

#include "chisimnet/util/error.hpp"

namespace chisimnet::pop {

namespace {

/// Uniform age within the band of an age group.
std::uint8_t sampleAge(AgeGroup group, util::Rng& rng) {
  switch (group) {
    case AgeGroup::kChild0to14:
      return static_cast<std::uint8_t>(rng.uniformInt(0, 14));
    case AgeGroup::kTeen15to18:
      return static_cast<std::uint8_t>(rng.uniformInt(15, 18));
    case AgeGroup::kAdult19to44:
      return static_cast<std::uint8_t>(rng.uniformInt(19, 44));
    case AgeGroup::kAdult45to64:
      return static_cast<std::uint8_t>(rng.uniformInt(45, 64));
    case AgeGroup::kSenior65plus:
      return static_cast<std::uint8_t>(rng.uniformInt(65, 90));
  }
  return 0;
}

}  // namespace

SyntheticPopulation SyntheticPopulation::generate(
    const PopulationConfig& config) {
  CHISIM_REQUIRE(config.personCount >= 10, "population too small");
  CHISIM_REQUIRE(config.classroomSize >= 2, "classrooms need >= 2 students");
  CHISIM_REQUIRE(config.schoolSize >= config.classroomSize,
                 "school smaller than one classroom");

  SyntheticPopulation population;
  population.config_ = config;
  util::Rng rng(config.seed);

  const auto newPlace = [&population](PlaceType type, std::uint32_t hood,
                                      std::uint32_t capacity) {
    const auto id = static_cast<PlaceId>(population.places_.size());
    population.places_.push_back(Place{id, type, hood, capacity});
    return id;
  };

  // ---- demographics ------------------------------------------------------
  population.persons_.resize(config.personCount);
  const util::AliasTable ageSampler(
      std::span<const double>(config.ageFractions));
  for (std::uint32_t i = 0; i < config.personCount; ++i) {
    Person& person = population.persons_[i];
    person.id = i;
    person.group = static_cast<AgeGroup>(ageSampler.sample(rng));
    person.age = sampleAge(person.group, rng);
  }

  // ---- neighborhoods -----------------------------------------------------
  const std::uint32_t hoods = std::max<std::uint32_t>(
      1, config.personCount / std::max<std::uint32_t>(1,
                                  config.personsPerNeighborhood));
  population.neighborhoodCount_ = hoods;

  // ---- households --------------------------------------------------------
  // Shuffle person indices and carve consecutive runs into households of
  // sampled sizes; each household lands in a random neighborhood.
  std::vector<PersonId> order(config.personCount);
  for (std::uint32_t i = 0; i < config.personCount; ++i) {
    order[i] = i;
  }
  rng.shuffle(order);
  const util::AliasTable householdSampler(
      std::span<const double>(config.householdSizeWeights));
  std::size_t cursor = 0;
  while (cursor < order.size()) {
    const std::size_t size =
        std::min(order.size() - cursor, householdSampler.sample(rng) + 1);
    const auto hood = static_cast<std::uint32_t>(rng.uniformBelow(hoods));
    const PlaceId home = newPlace(PlaceType::kHousehold, hood,
                                  static_cast<std::uint32_t>(size));
    for (std::size_t member = 0; member < size; ++member) {
      Person& person = population.persons_[order[cursor + member]];
      person.home = home;
      person.neighborhood = hood;
    }
    cursor += size;
  }

  // ---- institutions (prisons, retirement homes) ---------------------------
  std::vector<PlaceId> prisons;
  const std::uint32_t prisonCount = std::max<std::uint32_t>(
      1, config.personCount / config.personsPerPrison);
  for (std::uint32_t i = 0; i < prisonCount; ++i) {
    prisons.push_back(newPlace(PlaceType::kPrison,
                               static_cast<std::uint32_t>(rng.uniformBelow(hoods)),
                               0));
  }
  std::vector<PlaceId> retirementHomes;
  for (Person& person : population.persons_) {
    if (person.group == AgeGroup::kSenior65plus &&
        rng.bernoulli(config.retirementHomeRate)) {
      // Open a new home when the last one is full.
      if (retirementHomes.empty() ||
          population.places_[retirementHomes.back()].capacity >=
              config.retirementHomeSize) {
        retirementHomes.push_back(
            newPlace(PlaceType::kRetirementHome,
                     static_cast<std::uint32_t>(rng.uniformBelow(hoods)), 0));
      }
      person.institution = retirementHomes.back();
      ++population.places_[retirementHomes.back()].capacity;
    } else if ((person.group == AgeGroup::kAdult19to44 ||
                person.group == AgeGroup::kAdult45to64) &&
               rng.bernoulli(config.prisonRate)) {
      const PlaceId prison = prisons[rng.uniformBelow(prisons.size())];
      person.institution = prison;
      ++population.places_[prison].capacity;
    }
  }

  // ---- schools -----------------------------------------------------------
  // Per neighborhood, students aged 5-18 fill schools whose sizes are
  // sampled log-uniformly in [schoolSizeMin, schoolSize], chunked into
  // age-sorted classrooms of uniformly sampled size, with one shared
  // school-common place per school (lunch hour mixing). The size spread is
  // deliberate: within-group child degree tracks school size (Fig 5).
  std::vector<std::vector<PersonId>> studentsByHood(hoods);
  for (const Person& person : population.persons_) {
    if (person.age >= 5 && person.age <= 18 && !person.isInstitutionalized()) {
      studentsByHood[person.neighborhood].push_back(person.id);
    }
  }
  for (std::uint32_t hood = 0; hood < hoods; ++hood) {
    auto& students = studentsByHood[hood];
    // Sort by age so classrooms are age-homogeneous, like real grades.
    std::sort(students.begin(), students.end(),
              [&population](PersonId a, PersonId b) {
                const auto ageA = population.persons_[a].age;
                const auto ageB = population.persons_[b].age;
                return ageA != ageB ? ageA < ageB : a < b;
              });
    const double logMin = std::log(static_cast<double>(config.schoolSizeMin));
    const double logMax = std::log(static_cast<double>(config.schoolSize));
    std::size_t base = 0;
    while (base < students.size()) {
      const auto sampledSize = static_cast<std::size_t>(
          std::exp(rng.uniformReal(logMin, logMax)) + 0.5);
      const std::size_t schoolEnd =
          std::min(students.size(), base + std::max<std::size_t>(sampledSize,
                                                                 2));
      const PlaceId common = newPlace(
          PlaceType::kSchoolCommon, hood,
          static_cast<std::uint32_t>(schoolEnd - base));
      std::size_t roomBase = base;
      while (roomBase < schoolEnd) {
        const auto roomSize = static_cast<std::size_t>(rng.uniformInt(
            config.classroomSizeMin, config.classroomSize));
        const std::size_t roomEnd = std::min(schoolEnd, roomBase + roomSize);
        const PlaceId classroom = newPlace(
            PlaceType::kClassroom, hood,
            static_cast<std::uint32_t>(roomEnd - roomBase));
        for (std::size_t s = roomBase; s < roomEnd; ++s) {
          Person& person = population.persons_[students[s]];
          person.classroom = classroom;
          person.schoolCommon = common;
        }
        roomBase = roomEnd;
      }
      base = schoolEnd;
    }
  }

  // ---- universities ------------------------------------------------------
  std::vector<PlaceId> universities;
  const std::uint32_t universityCount = std::max<std::uint32_t>(
      1, config.personCount / config.personsPerUniversity);
  for (std::uint32_t i = 0; i < universityCount; ++i) {
    universities.push_back(
        newPlace(PlaceType::kUniversity,
                 static_cast<std::uint32_t>(rng.uniformBelow(hoods)), 0));
  }
  for (Person& person : population.persons_) {
    if (person.age >= 19 && person.age <= 22 && !person.isInstitutionalized() &&
        rng.bernoulli(config.universityRate)) {
      const PlaceId university = universities[rng.uniformBelow(universities.size())];
      person.university = university;
      ++population.places_[university].capacity;
    }
  }

  // ---- workplaces --------------------------------------------------------
  // Collect the employed, then carve them into workplaces with lognormal
  // sizes (citywide: commuting crosses neighborhoods).
  std::vector<PersonId> workers;
  for (Person& person : population.persons_) {
    const bool workingAge = person.age >= 19 && person.age <= 64;
    if (workingAge && !person.isInstitutionalized() &&
        person.university == kNoPlace &&
        rng.bernoulli(config.employmentRate)) {
      workers.push_back(person.id);
    }
  }
  rng.shuffle(workers);
  cursor = 0;
  while (cursor < workers.size()) {
    const double raw =
        rng.lognormal(config.workplaceLogMean, config.workplaceLogSigma);
    const std::size_t size = std::min<std::size_t>(
        std::max<std::size_t>(1, static_cast<std::size_t>(raw)),
        std::min<std::size_t>(config.workplaceMaxSize,
                              workers.size() - cursor));
    const PlaceId workplace = newPlace(
        PlaceType::kWorkplace, static_cast<std::uint32_t>(rng.uniformBelow(hoods)),
        static_cast<std::uint32_t>(size));
    for (std::size_t w = 0; w < size; ++w) {
      population.persons_[workers[cursor + w]].workplace = workplace;
    }
    cursor += size;
  }

  // ---- shops & leisure venues ---------------------------------------------
  std::vector<std::uint32_t> hoodPopulation(hoods, 0);
  for (const Person& person : population.persons_) {
    ++hoodPopulation[person.neighborhood];
  }
  for (std::uint32_t hood = 0; hood < hoods; ++hood) {
    const std::uint32_t shopCount = std::max<std::uint32_t>(
        3, hoodPopulation[hood] * config.shopsPer1000 / 1000);
    const std::uint32_t leisureCount = std::max<std::uint32_t>(
        2, hoodPopulation[hood] * config.leisurePer1000 / 1000);
    for (std::uint32_t i = 0; i < shopCount; ++i) {
      newPlace(PlaceType::kShop, hood, 0);
    }
    for (std::uint32_t i = 0; i < leisureCount; ++i) {
      newPlace(PlaceType::kLeisure, hood, 0);
    }
  }

  // ---- hospitals -----------------------------------------------------------
  const std::uint32_t hospitalCount = std::max<std::uint32_t>(
      1, config.personCount / config.personsPerHospital);
  for (std::uint32_t i = 0; i < hospitalCount; ++i) {
    newPlace(PlaceType::kHospital,
             static_cast<std::uint32_t>(rng.uniformBelow(hoods)), 0);
  }

  population.rebuildDerivedIndexes();
  return population;
}

void SyntheticPopulation::rebuildDerivedIndexes() {
  venues_.assign(neighborhoodCount_, NeighborhoodVenues{});
  householdsByHood_.assign(neighborhoodCount_, {});
  hospitals_.clear();
  for (const Place& place : places_) {
    switch (place.type) {
      case PlaceType::kShop: {
        NeighborhoodVenues& venues = venues_[place.neighborhood];
        venues.shops.push_back(place.id);
        venues.shopWeights.push_back(
            std::pow(static_cast<double>(venues.shops.size()),
                     -config_.venueZipfExponent));
        break;
      }
      case PlaceType::kLeisure: {
        NeighborhoodVenues& venues = venues_[place.neighborhood];
        venues.leisure.push_back(place.id);
        venues.leisureWeights.push_back(
            std::pow(static_cast<double>(venues.leisure.size()),
                     -config_.venueZipfExponent));
        break;
      }
      case PlaceType::kHousehold:
        householdsByHood_[place.neighborhood].push_back(place.id);
        break;
      case PlaceType::kHospital:
        hospitals_.push_back(place.id);
        break;
      default:
        break;
    }
  }
}

SyntheticPopulation SyntheticPopulation::fromParts(
    const PopulationConfig& config, std::vector<Person> persons,
    std::vector<Place> places) {
  CHISIM_REQUIRE(!persons.empty(), "population needs persons");
  CHISIM_REQUIRE(!places.empty(), "population needs places");

  SyntheticPopulation population;
  population.config_ = config;
  population.persons_ = std::move(persons);
  population.places_ = std::move(places);

  std::uint32_t hoods = 1;
  for (std::size_t i = 0; i < population.places_.size(); ++i) {
    CHISIM_REQUIRE(population.places_[i].id == i, "place ids must be dense");
    hoods = std::max(hoods, population.places_[i].neighborhood + 1);
  }
  const auto checkRef = [&population](PlaceId place, PlaceType expected) {
    if (place == kNoPlace) {
      return;
    }
    CHISIM_REQUIRE(place < population.places_.size(),
                   "person references an unknown place");
    CHISIM_REQUIRE(population.places_[place].type == expected,
                   "person place reference has the wrong type");
  };
  for (std::size_t i = 0; i < population.persons_.size(); ++i) {
    const Person& person = population.persons_[i];
    CHISIM_REQUIRE(person.id == i, "person ids must be dense");
    CHISIM_REQUIRE(person.group == ageGroupForAge(person.age),
                   "person age group inconsistent with age");
    CHISIM_REQUIRE(person.neighborhood < hoods, "person neighborhood invalid");
    CHISIM_REQUIRE(person.home != kNoPlace, "every person needs a household");
    checkRef(person.home, PlaceType::kHousehold);
    checkRef(person.classroom, PlaceType::kClassroom);
    checkRef(person.schoolCommon, PlaceType::kSchoolCommon);
    checkRef(person.workplace, PlaceType::kWorkplace);
    checkRef(person.university, PlaceType::kUniversity);
    if (person.institution != kNoPlace) {
      CHISIM_REQUIRE(person.institution < population.places_.size(),
                     "institution reference invalid");
      const PlaceType type = population.places_[person.institution].type;
      CHISIM_REQUIRE(type == PlaceType::kPrison ||
                         type == PlaceType::kRetirementHome,
                     "institution must be a prison or retirement home");
    }
  }

  population.neighborhoodCount_ = hoods;
  population.rebuildDerivedIndexes();
  for (std::uint32_t hood = 0; hood < hoods; ++hood) {
    CHISIM_REQUIRE(!population.venues_[hood].shops.empty() &&
                       !population.venues_[hood].leisure.empty(),
                   "every neighborhood needs shop and leisure venues");
  }
  return population;
}

std::array<std::uint64_t, kAgeGroupCount> SyntheticPopulation::ageGroupCounts()
    const {
  std::array<std::uint64_t, kAgeGroupCount> counts{};
  for (const Person& person : persons_) {
    ++counts[static_cast<std::size_t>(person.group)];
  }
  return counts;
}

std::array<std::uint64_t, kPlaceTypeCount> SyntheticPopulation::placeTypeCounts()
    const {
  std::array<std::uint64_t, kPlaceTypeCount> counts{};
  for (const Place& place : places_) {
    ++counts[static_cast<std::size_t>(place.type)];
  }
  return counts;
}

}  // namespace chisimnet::pop
