#pragma once

#include <cstdint>
#include <string>

#include "chisimnet/table/event.hpp"

/// Core types of the synthetic population (the census-data substitute).
///
/// chiSIM's inputs are census-derived persons, places and daily activity
/// schedules for Chicago (~2.9 M persons, ~1.2 M places). This module
/// generates a parametric population with the same structural ingredients:
/// age demographics, households, schools with classroom sub-compartments,
/// workplaces, errand/leisure places and congregate institutions
/// (universities, prisons, retirement homes, hospitals) — the place types
/// the paper names when explaining the Fig 5 degree-distribution outliers.

namespace chisimnet::pop {

using table::ActivityId;
using table::Hour;
using table::PersonId;
using table::PlaceId;

inline constexpr PlaceId kNoPlace = static_cast<PlaceId>(-1);

/// Age bands used in the paper's Fig 5 demographic disaggregation.
enum class AgeGroup : std::uint8_t {
  kChild0to14 = 0,
  kTeen15to18 = 1,
  kAdult19to44 = 2,
  kAdult45to64 = 3,
  kSenior65plus = 4,
};
inline constexpr std::size_t kAgeGroupCount = 5;

std::string ageGroupName(AgeGroup group);
AgeGroup ageGroupForAge(unsigned age);

enum class PlaceType : std::uint8_t {
  kHousehold = 0,
  kClassroom = 1,       ///< school sub-compartment
  kSchoolCommon = 2,    ///< shared school space (lunch hour)
  kWorkplace = 3,
  kUniversity = 4,
  kShop = 5,            ///< errand destination
  kLeisure = 6,
  kRetirementHome = 7,
  kPrison = 8,
  kHospital = 9,
};
inline constexpr std::size_t kPlaceTypeCount = 10;

std::string placeTypeName(PlaceType type);

/// Activity ids recorded in the event log.
namespace activity {
inline constexpr ActivityId kHome = 0;
inline constexpr ActivityId kSchool = 1;
inline constexpr ActivityId kSchoolLunch = 2;
inline constexpr ActivityId kWork = 3;
inline constexpr ActivityId kErrand = 4;
inline constexpr ActivityId kLeisure = 5;
inline constexpr ActivityId kUniversity = 6;
inline constexpr ActivityId kInstitution = 7;
inline constexpr ActivityId kHospital = 8;
inline constexpr ActivityId kVisit = 9;  ///< social visit to another household
inline constexpr std::size_t kCount = 10;

std::string name(ActivityId id);
}  // namespace activity

struct Place {
  PlaceId id = 0;
  PlaceType type = PlaceType::kHousehold;
  std::uint32_t neighborhood = 0;  ///< spatial cluster index
  std::uint32_t capacity = 0;      ///< nominal size (0 = unbounded)
};

struct Person {
  PersonId id = 0;
  std::uint8_t age = 0;
  AgeGroup group = AgeGroup::kChild0to14;
  std::uint32_t neighborhood = 0;
  PlaceId home = kNoPlace;
  PlaceId classroom = kNoPlace;     ///< school sub-compartment, if a student
  PlaceId schoolCommon = kNoPlace;  ///< shared school space, if a student
  PlaceId workplace = kNoPlace;
  PlaceId university = kNoPlace;
  PlaceId institution = kNoPlace;   ///< prison or retirement home residence

  bool isStudent() const noexcept { return classroom != kNoPlace; }
  bool isEmployed() const noexcept { return workplace != kNoPlace; }
  bool isInstitutionalized() const noexcept { return institution != kNoPlace; }
};

}  // namespace chisimnet::pop
