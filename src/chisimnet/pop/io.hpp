#pragma once

#include <filesystem>

#include "chisimnet/pop/population.hpp"

/// Population input-data files (paper §II: "The chiSIM model input data for
/// the entire Chicago area population consists of multiple files for
/// activities, persons, and locations totaling almost 800MB"; §III: log ids
/// "can be cross-referenced to the model input data for persons, activities
/// and locations for the purpose of looking up the string description").
///
/// savePopulation writes the canonical three-file input set as TSV:
///   persons.tsv     id, age, group, neighborhood, home, classroom,
///                   school_common, workplace, university, institution
///   places.tsv      id, type, neighborhood, capacity
///   activities.tsv  id, description          (static activity vocabulary)
/// plus venues.tsv (neighborhood venue lists with popularity weights) so a
/// population round-trips exactly. loadPopulation reads them back; the
/// result is interchangeable with a generated population, which makes the
/// generator just one possible data source — real census-derived files
/// could be dropped in the same format.

namespace chisimnet::pop {

/// Writes persons.tsv, places.tsv, activities.tsv and venues.tsv into
/// `directory` (created if missing).
void savePopulation(const SyntheticPopulation& population,
                    const std::filesystem::path& directory);

/// Loads a population from the files written by savePopulation. Validates
/// referential integrity (every place id a person references must exist).
SyntheticPopulation loadPopulation(const std::filesystem::path& directory);

/// Total bytes of the input-data files in `directory`.
std::uintmax_t populationFileBytes(const std::filesystem::path& directory);

}  // namespace chisimnet::pop
