#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/pop/types.hpp"
#include "chisimnet/util/rng.hpp"

/// Synthetic population generation (the census-data substitute, see
/// DESIGN.md §2). The generator produces a person table and a place table
/// with the same structural features chiSIM derives from Chicago census
/// data: a realistic age pyramid, households, neighborhood-local schools
/// split into classroom sub-compartments, size-skewed workplaces, Zipf-
/// popular shops/leisure venues and congregate institutions.

namespace chisimnet::pop {

struct PopulationConfig {
  std::uint32_t personCount = 50'000;
  std::uint64_t seed = 20170517;  // deterministic default

  /// Fractions per age band (child, teen, 19-44, 45-64, 65+); roughly the
  /// Chicago pyramid.
  std::array<double, kAgeGroupCount> ageFractions{0.19, 0.05, 0.42, 0.22, 0.12};

  /// Household size distribution for sizes 1..6 (census-like).
  std::array<double, 6> householdSizeWeights{0.30, 0.29, 0.16, 0.14, 0.07, 0.04};

  std::uint32_t personsPerNeighborhood = 2'000;

  /// School sizes are sampled log-uniformly in [schoolSizeMin, schoolSize]
  /// — the wide spread is what produces the children's "flat over two
  /// decades" within-group degree distribution (paper Fig 5): a student's
  /// contact set is bounded by their school's size.
  std::uint32_t schoolSize = 1000;     ///< largest school (max students)
  std::uint32_t schoolSizeMin = 80;    ///< smallest school
  /// Classroom sizes are sampled uniformly in
  /// [classroomSizeMin, classroomSize].
  std::uint32_t classroomSize = 30;    ///< largest classroom
  std::uint32_t classroomSizeMin = 15; ///< smallest classroom

  double employmentRate = 0.72;      ///< of 19-64 non-institutionalized adults
  double universityRate = 0.35;      ///< of 19-22 year olds
  double workplaceLogMean = 2.3;     ///< lognormal size of workplaces
  double workplaceLogSigma = 1.1;
  std::uint32_t workplaceMaxSize = 2'000;

  std::uint32_t shopsPer1000 = 6;    ///< errand venues per 1000 hood residents
  std::uint32_t leisurePer1000 = 4;
  double venueZipfExponent = 0.8;    ///< popularity skew of shops/leisure

  double retirementHomeRate = 0.06;  ///< of seniors
  std::uint32_t retirementHomeSize = 150;
  double prisonRate = 0.004;         ///< of 19-64 adults
  std::uint32_t personsPerPrison = 100'000;
  std::uint32_t personsPerUniversity = 100'000;
  std::uint32_t personsPerHospital = 50'000;
};

/// Per-neighborhood venue lists with Zipf popularity weights, used by the
/// schedule generator to pick errand/leisure destinations.
struct NeighborhoodVenues {
  std::vector<PlaceId> shops;
  std::vector<double> shopWeights;
  std::vector<PlaceId> leisure;
  std::vector<double> leisureWeights;
};

class SyntheticPopulation {
 public:
  /// Generates a full population from the config; deterministic in
  /// config.seed.
  static SyntheticPopulation generate(const PopulationConfig& config);

  /// Assembles a population from explicit person and place tables (e.g.
  /// loaded from input-data files). Venue lists, hospital lists and
  /// household indexes are derived from the place table; referential
  /// integrity of all place references is validated.
  static SyntheticPopulation fromParts(const PopulationConfig& config,
                                       std::vector<Person> persons,
                                       std::vector<Place> places);

  const PopulationConfig& config() const noexcept { return config_; }
  std::span<const Person> persons() const noexcept { return persons_; }
  std::span<const Place> places() const noexcept { return places_; }
  const Person& person(PersonId id) const { return persons_.at(id); }
  const Place& place(PlaceId id) const { return places_.at(id); }

  std::uint32_t neighborhoodCount() const noexcept { return neighborhoodCount_; }
  const NeighborhoodVenues& venues(std::uint32_t neighborhood) const {
    return venues_.at(neighborhood);
  }

  /// Citywide congregate places.
  std::span<const PlaceId> hospitals() const noexcept { return hospitals_; }

  /// Households located in a neighborhood (social-visit destinations).
  std::span<const PlaceId> households(std::uint32_t neighborhood) const {
    return householdsByHood_.at(neighborhood);
  }

  /// Number of persons in each age band.
  std::array<std::uint64_t, kAgeGroupCount> ageGroupCounts() const;

  /// Number of places of each type.
  std::array<std::uint64_t, kPlaceTypeCount> placeTypeCounts() const;

 private:
  /// Rebuilds venues_, hospitals_ and householdsByHood_ from places_ and
  /// config_ (venue popularity weights are positional Zipf weights, so the
  /// derived state is a pure function of the place table).
  void rebuildDerivedIndexes();

  PopulationConfig config_;
  std::vector<Person> persons_;
  std::vector<Place> places_;
  std::vector<NeighborhoodVenues> venues_;
  std::vector<PlaceId> hospitals_;
  std::vector<std::vector<PlaceId>> householdsByHood_;
  std::uint32_t neighborhoodCount_ = 0;
};

}  // namespace chisimnet::pop
