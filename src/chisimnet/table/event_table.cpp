#include "chisimnet/table/event_table.hpp"

#include <algorithm>
#include <numeric>

#include "chisimnet/util/error.hpp"

namespace chisimnet::table {

std::size_t PlaceIndex::find(PlaceId place) const noexcept {
  const auto it = std::lower_bound(placeIds.begin(), placeIds.end(), place);
  if (it == placeIds.end() || *it != place) {
    return npos;
  }
  return static_cast<std::size_t>(it - placeIds.begin());
}

EventTable::EventTable(std::span<const Event> events) { appendAll(events); }

void EventTable::append(const Event& event) {
  start_.push_back(event.start);
  end_.push_back(event.end);
  person_.push_back(event.person);
  activity_.push_back(event.activity);
  place_.push_back(event.place);
  sortedByStart_ = false;
}

void EventTable::appendAll(std::span<const Event> events) {
  reserve(size() + events.size());
  for (const Event& event : events) {
    append(event);
  }
}

void EventTable::reserve(std::uint64_t rows) {
  start_.reserve(rows);
  end_.reserve(rows);
  person_.reserve(rows);
  activity_.reserve(rows);
  place_.reserve(rows);
}

void EventTable::clear() {
  start_.clear();
  end_.clear();
  person_.clear();
  activity_.clear();
  place_.clear();
  runningMaxEnd_.clear();
  sortedByStart_ = false;
}

Event EventTable::row(RowIndex index) const {
  CHISIM_REQUIRE(index < size(), "row index out of range");
  return Event{start_[index], end_[index], person_[index], activity_[index],
               place_[index]};
}

void EventTable::sortByStart() {
  if (sortedByStart_) {
    return;
  }
  std::vector<RowIndex> order(size());
  std::iota(order.begin(), order.end(), RowIndex{0});
  std::sort(order.begin(), order.end(), [this](RowIndex a, RowIndex b) {
    if (start_[a] != start_[b]) return start_[a] < start_[b];
    if (end_[a] != end_[b]) return end_[a] < end_[b];
    return person_[a] < person_[b];
  });

  const auto permute = [&order](auto& column) {
    using Column = std::remove_reference_t<decltype(column)>;
    Column permuted;
    permuted.reserve(column.size());
    for (RowIndex source : order) {
      permuted.push_back(column[source]);
    }
    column = std::move(permuted);
  };
  permute(start_);
  permute(end_);
  permute(person_);
  permute(activity_);
  permute(place_);

  runningMaxEnd_.resize(size());
  Hour runningMax = 0;
  for (std::uint64_t i = 0; i < size(); ++i) {
    runningMax = std::max(runningMax, end_[i]);
    runningMaxEnd_[i] = runningMax;
  }
  sortedByStart_ = true;
}

std::vector<RowIndex> EventTable::rowsStartingIn(Hour windowStart,
                                                 Hour windowEnd) const {
  CHISIM_REQUIRE(sortedByStart_, "rowsStartingIn requires sortByStart()");
  const auto lo = std::lower_bound(start_.begin(), start_.end(), windowStart);
  const auto hi = std::lower_bound(lo, start_.end(), windowEnd);
  std::vector<RowIndex> rows;
  rows.reserve(static_cast<std::size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    rows.push_back(static_cast<RowIndex>(it - start_.begin()));
  }
  return rows;
}

std::vector<RowIndex> EventTable::rowsOverlapping(Hour windowStart,
                                                  Hour windowEnd) const {
  CHISIM_REQUIRE(sortedByStart_, "rowsOverlapping requires sortByStart()");
  std::vector<RowIndex> rows;
  if (windowStart >= windowEnd || empty()) {
    return rows;
  }
  // Rows at or beyond hiIdx start at/after windowEnd: no overlap possible.
  const auto hiIt = std::lower_bound(start_.begin(), start_.end(), windowEnd);
  const auto hiIdx = static_cast<std::uint64_t>(hiIt - start_.begin());
  if (hiIdx == 0) {
    return rows;
  }
  // runningMaxEnd_ is non-decreasing, so the first row whose prefix max end
  // exceeds windowStart marks the earliest possible overlap.
  const auto loIt = std::upper_bound(runningMaxEnd_.begin(),
                                     runningMaxEnd_.begin() + hiIdx, windowStart);
  for (auto i = static_cast<std::uint64_t>(loIt - runningMaxEnd_.begin());
       i < hiIdx; ++i) {
    if (end_[i] > windowStart) {
      rows.push_back(i);
    }
  }
  return rows;
}

EventTable EventTable::selectRows(std::span<const RowIndex> rowIndices) const {
  EventTable result;
  result.reserve(rowIndices.size());
  for (RowIndex index : rowIndices) {
    result.append(row(index));
  }
  return result;
}

EventTable EventTable::filter(
    const std::function<bool(const Event&)>& predicate) const {
  EventTable result;
  for (std::uint64_t i = 0; i < size(); ++i) {
    const Event event = row(i);
    if (predicate(event)) {
      result.append(event);
    }
  }
  return result;
}

namespace {

template <typename T>
std::vector<T> sortedUnique(std::vector<T> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

std::vector<PlaceId> EventTable::uniquePlaces() const {
  return sortedUnique(std::vector<PlaceId>(place_.begin(), place_.end()));
}

std::vector<PersonId> EventTable::uniquePersons() const {
  return sortedUnique(std::vector<PersonId>(person_.begin(), person_.end()));
}

PlaceIndex EventTable::buildPlaceIndex() const {
  PlaceIndex index;
  index.placeIds = uniquePlaces();
  index.offsets.assign(index.placeIds.size() + 1, 0);

  // Counting sort of row indices into place groups.
  for (PlaceId place : place_) {
    const std::size_t group = index.find(place);
    ++index.offsets[group + 1];
  }
  for (std::size_t g = 1; g <= index.placeIds.size(); ++g) {
    index.offsets[g] += index.offsets[g - 1];
  }
  index.rows.resize(size());
  std::vector<std::uint64_t> cursor(index.offsets.begin(),
                                    index.offsets.end() - 1);
  for (std::uint64_t i = 0; i < size(); ++i) {
    const std::size_t group = index.find(place_[i]);
    index.rows[cursor[group]++] = i;
  }
  return index;
}

Hour EventTable::maxEnd() const noexcept {
  Hour result = 0;
  for (Hour value : end_) {
    result = std::max(result, value);
  }
  return result;
}

}  // namespace chisimnet::table
