#pragma once

#include <filesystem>

#include "chisimnet/table/event_table.hpp"

/// Event-table interchange (the R-analyst hand-off, paper §IV-V: the
/// authors' analyses run in R, and §VI stresses the workflow's
/// accessibility "to data analysts who may be familiar with R"). TSV events
/// load directly into data.table/data.frame; the loader accepts the same
/// files back, so external tools can also produce event streams for the
/// synthesis pipeline.

namespace chisimnet::table {

/// Writes "start\tend\tperson\tactivity\tplace" with a header line.
void writeEventsTsv(const EventTable& events, const std::filesystem::path& path);

/// Reads a TSV written by writeEventsTsv (or any file with the same
/// five-column integer schema and a header line). Validates field counts
/// and start < end on every row.
EventTable readEventsTsv(const std::filesystem::path& path);

}  // namespace chisimnet::table
