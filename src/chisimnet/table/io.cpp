#include "chisimnet/table/io.hpp"

#include <charconv>
#include <fstream>
#include <string>

#include "chisimnet/util/error.hpp"

namespace chisimnet::table {

void writeEventsTsv(const EventTable& events,
                    const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  CHISIM_CHECK(out.good(), "cannot open for writing: " + path.string());
  out << "start\tend\tperson\tactivity\tplace\n";
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const Event event = events.row(row);
    out << event.start << '\t' << event.end << '\t' << event.person << '\t'
        << event.activity << '\t' << event.place << '\n';
  }
  CHISIM_CHECK(out.good(), "event TSV write failed: " + path.string());
}

EventTable readEventsTsv(const std::filesystem::path& path) {
  std::ifstream in(path);
  CHISIM_CHECK(in.good(), "cannot open for reading: " + path.string());

  EventTable events;
  std::string line;
  std::getline(in, line);  // header
  std::uint64_t lineNumber = 1;
  while (std::getline(in, line)) {
    ++lineNumber;
    if (line.empty()) {
      continue;
    }
    std::uint32_t fields[5];
    const char* cursor = line.data();
    const char* end = line.data() + line.size();
    for (int f = 0; f < 5; ++f) {
      const auto [ptr, ec] = std::from_chars(cursor, end, fields[f]);
      CHISIM_CHECK(ec == std::errc{},
                   "bad integer at line " + std::to_string(lineNumber) +
                       " of " + path.string());
      cursor = ptr;
      if (f < 4) {
        CHISIM_CHECK(cursor != end && *cursor == '\t',
                     "expected 5 tab-separated fields at line " +
                         std::to_string(lineNumber) + " of " + path.string());
        ++cursor;
      }
    }
    CHISIM_CHECK(cursor == end,
                 "trailing characters at line " + std::to_string(lineNumber) +
                     " of " + path.string());
    CHISIM_CHECK(fields[0] < fields[1],
                 "event with start >= end at line " +
                     std::to_string(lineNumber) + " of " + path.string());
    events.append(Event{fields[0], fields[1], fields[2], fields[3], fields[4]});
  }
  return events;
}

}  // namespace chisimnet::table
