#pragma once

#include <compare>
#include <cstdint>

/// The simulation log record schema (paper §III).
///
/// A log entry is written every time a person agent changes activities and
/// holds the activity interval plus the unique IDs of the person, activity
/// and place — five 4-byte unsigned integers, 20 bytes total. Times are in
/// simulation hours since the start of the run; the interval is half-open,
/// [start, end).

namespace chisimnet::table {

using Hour = std::uint32_t;
using PersonId = std::uint32_t;
using ActivityId = std::uint32_t;
using PlaceId = std::uint32_t;

struct Event {
  Hour start = 0;
  Hour end = 0;
  PersonId person = 0;
  ActivityId activity = 0;
  PlaceId place = 0;

  friend auto operator<=>(const Event&, const Event&) = default;
};

static_assert(sizeof(Event) == 20, "log schema is five packed u32 fields");

/// True when the event's interval [start, end) overlaps [windowStart,
/// windowEnd).
constexpr bool overlapsWindow(const Event& event, Hour windowStart,
                              Hour windowEnd) noexcept {
  return event.start < windowEnd && event.end > windowStart;
}

}  // namespace chisimnet::table
