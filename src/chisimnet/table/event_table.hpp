#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "chisimnet/table/event.hpp"

/// Columnar event table with binary-search subsetting.
///
/// This is the R data.table substitute (paper §IV.A.1-2): the log data frame
/// is keyed/sorted once, after which time-slice subsets and per-place
/// retrievals are sub-linear. Storage is struct-of-arrays so a scan over one
/// column (e.g. start times) touches only that column's memory.

namespace chisimnet::table {

using RowIndex = std::uint64_t;

/// CSR-style grouping of table rows by place ID, built once and then used to
/// hand each worker the rows for its assigned places in O(group size).
struct PlaceIndex {
  std::vector<PlaceId> placeIds;       ///< sorted unique place ids
  std::vector<std::uint64_t> offsets;  ///< size placeIds.size()+1 into rows
  std::vector<RowIndex> rows;          ///< row indices grouped by place

  /// Rows for the group at position `group` in placeIds.
  std::span<const RowIndex> groupRows(std::size_t group) const {
    return {rows.data() + offsets[group], rows.data() + offsets[group + 1]};
  }

  /// Locates a place id via binary search; returns npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(PlaceId place) const noexcept;
};

class EventTable {
 public:
  EventTable() = default;

  /// Bulk-construct from rows (unsorted is fine).
  explicit EventTable(std::span<const Event> events);

  void append(const Event& event);
  void appendAll(std::span<const Event> events);
  void reserve(std::uint64_t rows);
  void clear();

  std::uint64_t size() const noexcept { return start_.size(); }
  bool empty() const noexcept { return start_.empty(); }

  Event row(RowIndex index) const;

  std::span<const Hour> startColumn() const noexcept { return start_; }
  std::span<const Hour> endColumn() const noexcept { return end_; }
  std::span<const PersonId> personColumn() const noexcept { return person_; }
  std::span<const ActivityId> activityColumn() const noexcept { return activity_; }
  std::span<const PlaceId> placeColumn() const noexcept { return place_; }

  /// Sorts all columns by ascending start time (ties broken by end, person)
  /// and builds the running-max-of-end auxiliary column that accelerates
  /// overlap queries. Idempotent.
  void sortByStart();
  bool isSortedByStart() const noexcept { return sortedByStart_; }

  /// Row indices of events whose start lies in [windowStart, windowEnd).
  /// Requires sortByStart(). O(log n + answer).
  std::vector<RowIndex> rowsStartingIn(Hour windowStart, Hour windowEnd) const;

  /// Row indices of events whose interval overlaps [windowStart, windowEnd).
  /// Requires sortByStart(). Uses the running max of end times to skip the
  /// prefix of rows that cannot overlap, so cost is O(log n + scanned),
  /// where `scanned` is bounded by the rows from the first possible overlap
  /// to the last row starting before windowEnd.
  std::vector<RowIndex> rowsOverlapping(Hour windowStart, Hour windowEnd) const;

  /// A new table holding copies of the given rows (order preserved).
  EventTable selectRows(std::span<const RowIndex> rowIndices) const;

  /// A new table holding the rows matching a predicate.
  EventTable filter(const std::function<bool(const Event&)>& predicate) const;

  /// Sorted unique place ids over the whole table.
  std::vector<PlaceId> uniquePlaces() const;

  /// Sorted unique person ids over the whole table.
  std::vector<PersonId> uniquePersons() const;

  /// Groups all rows by place id.
  PlaceIndex buildPlaceIndex() const;

  /// Largest end time in the table (0 when empty).
  Hour maxEnd() const noexcept;

 private:
  std::vector<Hour> start_;
  std::vector<Hour> end_;
  std::vector<PersonId> person_;
  std::vector<ActivityId> activity_;
  std::vector<PlaceId> place_;
  /// runningMaxEnd_[i] = max(end_[0..i]); valid only when sortedByStart_.
  std::vector<Hour> runningMaxEnd_;
  bool sortedByStart_ = false;
};

}  // namespace chisimnet::table
