#include "chisimnet/runtime/wire.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace chisimnet::runtime::wire {

namespace {

template <typename T>
void putScalar(std::vector<std::byte>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T takeAt(std::span<const std::byte> bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

}  // namespace

std::vector<std::byte> encodeFrame(const Frame& frame) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  putScalar<std::uint32_t>(out, kFrameMagic);
  putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(frame.kind));
  putScalar<std::int32_t>(out, frame.tag);
  putScalar<std::uint64_t>(out,
                           static_cast<std::uint64_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

FrameReader::FrameReader(ReadFn read) : read_(std::move(read)) {}

bool FrameReader::readFully(std::span<std::byte> out, bool eofAllowedAtStart) {
  std::size_t have = 0;
  while (have < out.size()) {
    const std::size_t got = read_(out.data() + have, out.size() - have);
    if (got == 0) {
      if (have == 0 && eofAllowedAtStart) {
        return false;
      }
      throw std::runtime_error("torn wire frame: EOF after " +
                               std::to_string(have) + " of " +
                               std::to_string(out.size()) + " bytes");
    }
    have += got;
  }
  return true;
}

std::optional<Frame> FrameReader::next() {
  std::byte header[kFrameHeaderBytes];
  if (!readFully(std::span<std::byte>(header, kFrameHeaderBytes),
                 /*eofAllowedAtStart=*/true)) {
    return std::nullopt;  // clean EOF at a frame boundary
  }
  const std::span<const std::byte> view(header, kFrameHeaderBytes);
  const std::uint32_t magic = takeAt<std::uint32_t>(view, 0);
  CHISIM_CHECK(magic == kFrameMagic,
               "bad wire frame magic 0x" + std::to_string(magic) +
                   " (corrupt or desynchronized stream)");
  const std::uint32_t kind = takeAt<std::uint32_t>(view, 4);
  CHISIM_CHECK(kind >= static_cast<std::uint32_t>(FrameKind::kData) &&
                   kind <= static_cast<std::uint32_t>(FrameKind::kHelloAck),
               "unknown wire frame kind " + std::to_string(kind));
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.tag = takeAt<std::int32_t>(view, 8);
  const std::uint64_t length = takeAt<std::uint64_t>(view, 12);
  // Validate the declared length BEFORE sizing the allocation: a corrupt
  // header must not be able to OOM the receiver.
  validatePayloadLength(static_cast<std::int64_t>(length));
  frame.payload.resize(static_cast<std::size_t>(length));
  if (length > 0) {
    readFully(frame.payload, /*eofAllowedAtStart=*/false);
  }
  return frame;
}

ReadFn fdReadFn(int fd) {
  return [fd](std::byte* out, std::size_t capacity) -> std::size_t {
    while (true) {
      const ssize_t got = ::read(fd, out, capacity);
      if (got >= 0) {
        return static_cast<std::size_t>(got);
      }
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("socket read failed: ") +
                               std::strerror(errno));
    }
  };
}

ReadFn deadlineReadFn(int fd, std::chrono::steady_clock::time_point deadline) {
  return [fd, deadline](std::byte* out, std::size_t capacity) -> std::size_t {
    while (true) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      CHISIM_CHECK(remaining.count() > 0, "worker handshake timed out");
      struct pollfd pfd = {fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw std::runtime_error(std::string("poll failed: ") +
                                 std::strerror(errno));
      }
      if (ready == 0) {
        continue;  // loop re-checks the deadline
      }
      const ssize_t got = ::read(fd, out, capacity);
      if (got >= 0) {
        return static_cast<std::size_t>(got);
      }
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("socket read failed: ") +
                               std::strerror(errno));
    }
  };
}

bool writeAllFd(int fd, std::span<const std::byte> bytes) noexcept {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-wide SIGPIPE.
    const ssize_t wrote = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

void configureStreamSocket(int fd, bool tcp) noexcept {
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  if (!tcp) {
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
}

}  // namespace chisimnet::runtime::wire
