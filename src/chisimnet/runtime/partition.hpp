#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// Work partitioning for the adjacency stage (paper §IV.A.3).
///
/// The paper stresses that re-partitioning the collocation-matrix list by
/// nonzero count is "crucial to achieve even load balancing": without it
/// some workers idle while others grind through the few huge places. This
/// module provides the balanced strategy (greedy longest-processing-time,
/// LPT) plus the naive strategies used as the ablation baselines, and the
/// imbalance metrics the benches report.

namespace chisimnet::runtime {

struct Partition {
  /// assignment[w] lists the item indices handled by bin (worker) w.
  std::vector<std::vector<std::size_t>> assignment;
  /// loads[w] is the total weight assigned to bin w.
  std::vector<std::uint64_t> loads;

  /// Largest bin load; proportional to the stage's wall time when per-item
  /// cost tracks weight.
  std::uint64_t makespan() const noexcept;
  /// makespan / mean load; 1.0 is perfect balance.
  double imbalance() const noexcept;
  std::uint64_t totalLoad() const noexcept;
};

/// Greedy LPT: sort items by descending weight, always assign to the
/// currently lightest bin. Guarantees makespan <= (4/3 - 1/(3m)) * OPT.
Partition partitionGreedyLpt(std::span<const std::uint64_t> weights,
                             std::size_t bins);

/// Naive: item i goes to bin i % bins, ignoring weights.
Partition partitionRoundRobin(std::span<const std::uint64_t> weights,
                              std::size_t bins);

/// Naive: contiguous slices of (approximately) equal item counts.
Partition partitionContiguous(std::span<const std::uint64_t> weights,
                              std::size_t bins);

}  // namespace chisimnet::runtime
