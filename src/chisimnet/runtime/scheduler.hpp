#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

/// Discrete-event schedule (the Repast HPC ScheduleRunner substitute).
///
/// chiSIM is built on Repast HPC, whose models register actions on a shared
/// tick schedule ("at each simulation time step (1 hour) each agent decides
/// their next activity", paper §II). Scheduler reproduces that abstraction:
/// actions are enqueued at a tick with a priority, repeating actions
/// re-enqueue themselves with a fixed interval, and execution proceeds in
/// strict (tick, priority, insertion order) order. Each rank of the
/// distributed model runs its own scheduler; lockstep across ranks comes
/// from the communication pattern of the scheduled actions, exactly as in
/// Repast HPC.

namespace chisimnet::runtime {

using Tick = std::uint64_t;

class Scheduler {
 public:
  using Action = std::function<void(Tick)>;

  /// Lower values run earlier within a tick.
  enum Priority : int {
    kEarly = 0,
    kNormal = 100,
    kLate = 200,
  };

  /// Schedules a one-shot action at `tick`. Requires tick >= currentTick().
  void scheduleAt(Tick tick, Action action, int priority = kNormal);

  /// Schedules an action at `start` and then every `interval` ticks.
  /// Requires interval >= 1.
  void scheduleRepeating(Tick start, Tick interval, Action action,
                         int priority = kNormal);

  /// Requests that the run stop after the current tick completes; pending
  /// actions at later ticks are discarded by run().
  void stop() noexcept { stopped_ = true; }

  /// Executes actions in order until the queue is empty, an action calls
  /// stop(), or the next action's tick exceeds `endTick`.
  void run(Tick endTick);

  Tick currentTick() const noexcept { return currentTick_; }
  std::uint64_t executedActions() const noexcept { return executedActions_; }
  std::size_t pendingActions() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    Tick tick = 0;
    int priority = kNormal;
    std::uint64_t sequence = 0;  ///< insertion order tiebreaker
    Action action;
    Tick interval = 0;  ///< 0 = one-shot

    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.tick != b.tick) return a.tick > b.tick;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  Tick currentTick_ = 0;
  std::uint64_t nextSequence_ = 0;
  std::uint64_t executedActions_ = 0;
  bool stopped_ = false;
};

}  // namespace chisimnet::runtime
