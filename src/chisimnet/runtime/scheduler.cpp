#include "chisimnet/runtime/scheduler.hpp"

#include "chisimnet/util/error.hpp"

namespace chisimnet::runtime {

void Scheduler::scheduleAt(Tick tick, Action action, int priority) {
  CHISIM_REQUIRE(action != nullptr, "action must be callable");
  CHISIM_REQUIRE(tick >= currentTick_, "cannot schedule in the past");
  Entry entry;
  entry.tick = tick;
  entry.priority = priority;
  entry.sequence = nextSequence_++;
  entry.action = std::move(action);
  queue_.push(std::move(entry));
}

void Scheduler::scheduleRepeating(Tick start, Tick interval, Action action,
                                  int priority) {
  CHISIM_REQUIRE(action != nullptr, "action must be callable");
  CHISIM_REQUIRE(interval >= 1, "repeat interval must be >= 1");
  CHISIM_REQUIRE(start >= currentTick_, "cannot schedule in the past");
  Entry entry;
  entry.tick = start;
  entry.priority = priority;
  entry.sequence = nextSequence_++;
  entry.action = std::move(action);
  entry.interval = interval;
  queue_.push(std::move(entry));
}

void Scheduler::run(Tick endTick) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().tick > endTick) {
      break;
    }
    Entry entry = queue_.top();
    queue_.pop();
    currentTick_ = entry.tick;
    entry.action(entry.tick);
    ++executedActions_;
    if (entry.interval > 0 && !stopped_) {
      Entry repeat = std::move(entry);
      repeat.tick += repeat.interval;
      repeat.sequence = nextSequence_++;
      if (repeat.tick <= endTick) {
        queue_.push(std::move(repeat));
      }
    }
  }
}

}  // namespace chisimnet::runtime
