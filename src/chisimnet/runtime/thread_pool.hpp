#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Fixed-size worker pool plus a chunked parallel-for. Used by the Cluster
/// task farm and by callers that want shared-memory parallelism inside a
/// rank (the OpenMP-style layer of the paper's hybrid setup).

namespace chisimnet::runtime {

class ThreadPool {
 public:
  /// Spawns `threadCount` workers (>= 1).
  explicit ThreadPool(unsigned threadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues a task; tasks may run on any worker in any order.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void waitIdle();

 private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::uint64_t inFlight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across up to `workers` threads with
/// dynamic chunking. Exceptions from body propagate (first one wins).
void parallelFor(std::uint64_t count, unsigned workers,
                 const std::function<void(std::uint64_t)>& body);

}  // namespace chisimnet::runtime
