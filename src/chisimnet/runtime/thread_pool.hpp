#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

/// Fixed-size worker pool plus a chunked parallel-for. Used by the Cluster
/// task farm, the prefetching log loader, and by callers that want
/// shared-memory parallelism inside a rank (the OpenMP-style layer of the
/// paper's hybrid setup).

namespace chisimnet::runtime {

class ThreadPool {
 public:
  /// Spawns `threadCount` workers (>= 1).
  explicit ThreadPool(unsigned threadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues a fire-and-forget task; tasks may run on any worker in any
  /// order. An exception escaping the task is captured and rethrown from the
  /// next waitIdle() call (first one wins) instead of terminating the worker.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. An exception
  /// thrown by the callable surfaces from future.get(), not from waitIdle().
  template <class F>
  auto submitTask(F&& callable)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(callable));
    std::future<Result> future = task->get_future();
    // packaged_task captures its own exception, so this never trips the
    // fire-and-forget error path.
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until all submitted tasks have finished, then rethrows the first
  /// exception a fire-and-forget task raised since the last waitIdle(). The
  /// pool stays usable after a throw.
  void waitIdle();

 private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::uint64_t inFlight_ = 0;
  std::exception_ptr pendingError_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across up to `workers` threads with
/// dynamic chunking. Exceptions from body propagate (first one wins).
void parallelFor(std::uint64_t count, unsigned workers,
                 const std::function<void(std::uint64_t)>& body);

}  // namespace chisimnet::runtime
