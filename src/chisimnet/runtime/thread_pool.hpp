#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "chisimnet/util/timer.hpp"

/// Fixed-size worker pool plus a chunked parallel-for. Used by the Cluster
/// task farm, the prefetching log loader, and by callers that want
/// shared-memory parallelism inside a rank (the OpenMP-style layer of the
/// paper's hybrid setup).

namespace chisimnet::runtime {

class ThreadPool {
 public:
  /// Spawns `threadCount` workers (>= 1).
  explicit ThreadPool(unsigned threadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues a fire-and-forget task; tasks may run on any worker in any
  /// order. An exception escaping the task is captured and rethrown from the
  /// next waitIdle() call (first one wins) instead of terminating the worker.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. An exception
  /// thrown by the callable surfaces from future.get(), not from waitIdle().
  template <class F>
  auto submitTask(F&& callable)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(callable));
    std::future<Result> future = task->get_future();
    // packaged_task captures its own exception, so this never trips the
    // fire-and-forget error path.
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until all submitted tasks have finished, then rethrows the first
  /// exception a fire-and-forget task raised since the last waitIdle(). The
  /// pool stays usable after a throw.
  void waitIdle();

 private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable idle_;
  std::uint64_t inFlight_ = 0;
  std::exception_ptr pendingError_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across up to `workers` threads with
/// dynamic chunking. Exceptions from body propagate (first one wins).
void parallelFor(std::uint64_t count, unsigned workers,
                 const std::function<void(std::uint64_t)>& body);

/// Timing record of one treeReduce() call. `criticalSeconds` sums the
/// slowest merge of each level — the modeled parallel time of the tree,
/// which is what a multi-core host would observe (this repo's benches run
/// on one core, so wall time alone cannot show the log-depth win). Merges
/// are timed on the per-thread CPU clock so the model stays valid when
/// concurrent merges time-slice a smaller core count.
struct TreeReduceStats {
  unsigned depth = 0;             ///< number of merge levels (⌈log2 n⌉)
  std::uint64_t merges = 0;       ///< total pairwise merges (n-1)
  double criticalSeconds = 0.0;   ///< Σ per-level max merge seconds
};

/// Log-depth pairwise reduction of `items` into items[0]. Each level merges
/// disjoint (left, left+stride) pairs concurrently via parallelFor;
/// `merge(into, from)` must leave the sum in `into` and may gut `from`.
/// Odd leftovers at a level are carried to the next, so any item count —
/// including odd worker counts — folds in ⌈log2 n⌉ levels. Deterministic
/// for commutative+associative merges regardless of worker count.
template <class T, class Merge>
TreeReduceStats treeReduce(std::vector<T>& items, unsigned workers,
                           Merge&& merge) {
  TreeReduceStats stats;
  const std::uint64_t n = items.size();
  for (std::uint64_t stride = 1; stride < n; stride *= 2) {
    const std::uint64_t pairCount = (n - stride - 1) / (2 * stride) + 1;
    std::vector<double> mergeSeconds(pairCount, 0.0);
    parallelFor(pairCount,
                std::max<unsigned>(
                    1, std::min<std::uint64_t>(workers, pairCount)),
                [&](std::uint64_t k) {
                  const std::uint64_t left = 2 * stride * k;
                  util::ThreadCpuTimer timer;
                  merge(items[left], items[left + stride]);
                  mergeSeconds[k] = timer.seconds();
                });
    stats.criticalSeconds +=
        *std::max_element(mergeSeconds.begin(), mergeSeconds.end());
    stats.merges += pairCount;
    ++stats.depth;
  }
  return stats;
}

}  // namespace chisimnet::runtime
