#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Liveness primitives for the process transport.
///
/// The root process decides a worker is dead from two signals: the kernel
/// (SIGCHLD/waitpid, socket EOF) and silence (no pong for too long). The
/// HeartbeatBook keeps the per-peer "last heard from" clock that backs the
/// silence signal, and PeriodicTask runs the monitor loop that pings,
/// reaps, and respawns on a fixed cadence.

namespace chisimnet::runtime {

/// Thread-safe per-peer last-beat clock.
class HeartbeatBook {
 public:
  /// All peers start "just heard from" so a freshly spawned peer is not
  /// instantly overdue.
  explicit HeartbeatBook(int peerCount);

  int peerCount() const noexcept { return static_cast<int>(last_.size()); }

  /// Records a beat (pong received, frame received — any proof of life).
  void beat(int peer);

  /// Time since the last beat.
  std::chrono::steady_clock::duration age(int peer) const;

  /// True when `peer` has been silent longer than `limit`.
  bool overdue(int peer, std::chrono::milliseconds limit) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::chrono::steady_clock::time_point> last_;
};

/// Runs `tick` every `period` on a dedicated thread until stopped or
/// destroyed. The first tick fires one period after construction. stop()
/// (and the destructor) waits for an in-flight tick to finish.
class PeriodicTask {
 public:
  PeriodicTask(std::chrono::milliseconds period, std::function<void()> tick);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop() noexcept;

 private:
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace chisimnet::runtime
