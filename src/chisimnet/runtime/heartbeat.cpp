#include "chisimnet/runtime/heartbeat.hpp"

#include "chisimnet/util/error.hpp"

namespace chisimnet::runtime {

HeartbeatBook::HeartbeatBook(int peerCount)
    : last_(static_cast<std::size_t>(peerCount),
            std::chrono::steady_clock::now()) {
  CHISIM_REQUIRE(peerCount >= 0, "negative peer count");
}

void HeartbeatBook::beat(int peer) {
  CHISIM_REQUIRE(peer >= 0 && peer < peerCount(), "invalid peer");
  std::lock_guard<std::mutex> lock(mutex_);
  last_[static_cast<std::size_t>(peer)] = std::chrono::steady_clock::now();
}

std::chrono::steady_clock::duration HeartbeatBook::age(int peer) const {
  CHISIM_REQUIRE(peer >= 0 && peer < peerCount(), "invalid peer");
  std::lock_guard<std::mutex> lock(mutex_);
  return std::chrono::steady_clock::now() -
         last_[static_cast<std::size_t>(peer)];
}

bool HeartbeatBook::overdue(int peer, std::chrono::milliseconds limit) const {
  return age(peer) > limit;
}

PeriodicTask::PeriodicTask(std::chrono::milliseconds period,
                           std::function<void()> tick)
    : thread_([this, period, tick = std::move(tick)] {
        std::unique_lock<std::mutex> lock(mutex_);
        while (true) {
          if (wake_.wait_for(lock, period, [this] { return stop_; })) {
            return;
          }
          lock.unlock();
          tick();
          lock.lock();
        }
      }) {}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() noexcept {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace chisimnet::runtime
