#include "chisimnet/runtime/cluster.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::runtime {

Cluster::Cluster(unsigned workerCount) : workerCount_(workerCount) {
  CHISIM_REQUIRE(workerCount >= 1, "cluster needs at least one worker");
}

double Cluster::busyImbalance() const noexcept {
  if (busySeconds_.empty()) {
    return 1.0;
  }
  double total = 0.0;
  double peak = 0.0;
  for (double busy : busySeconds_) {
    total += busy;
    peak = std::max(peak, busy);
  }
  if (total <= 0.0) {
    return 1.0;
  }
  return peak / (total / static_cast<double>(busySeconds_.size()));
}

void Cluster::runWorkers(const std::function<void(unsigned)>& workerBody) {
  busySeconds_.assign(workerCount_, 0.0);
  util::WallTimer wall;

  std::mutex errorMutex;
  std::exception_ptr firstError;
  const auto guarded = [&](unsigned worker) {
    util::WallTimer busy;
    try {
      workerBody(worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) {
        firstError = std::current_exception();
      }
    }
    busySeconds_[worker] = busy.seconds();
  };

  std::vector<std::thread> threads;
  threads.reserve(workerCount_ - 1);
  for (unsigned worker = 1; worker < workerCount_; ++worker) {
    threads.emplace_back(guarded, worker);
  }
  guarded(0);
  for (std::thread& thread : threads) {
    thread.join();
  }
  wallSeconds_ = wall.seconds();
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

void Cluster::applyDynamic(
    std::size_t itemCount,
    const std::function<void(std::size_t, unsigned)>& body) {
  std::atomic<std::size_t> next{0};
  runWorkers([&](unsigned worker) {
    while (true) {
      const std::size_t item = next.fetch_add(1);
      if (item >= itemCount) {
        return;
      }
      body(item, worker);
    }
  });
}

void Cluster::applyPartitioned(
    const Partition& partition,
    const std::function<void(std::size_t, unsigned)>& body) {
  CHISIM_REQUIRE(partition.assignment.size() == workerCount_,
                 "partition bin count must equal worker count");
  runWorkers([&](unsigned worker) {
    for (std::size_t item : partition.assignment[worker]) {
      body(item, worker);
    }
  });
}

}  // namespace chisimnet::runtime
