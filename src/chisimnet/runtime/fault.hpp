#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Deterministic fault injection for the synthesis pipeline.
///
/// Long multi-rank synthesis runs fail in ways unit tests never exercise:
/// a worker rank dies mid-stage, a payload arrives truncated, a decode
/// stalls. This module lets tests (and benches) script those failures at
/// named injection points — sites — that are compiled in permanently:
///
///   prefetch.decode     PrefetchingLoader producer, before each batch decode
///   driver.load         serial (non-prefetch) batch load in the driver
///   driver.subset       driver stage 2 (slice + place index + scatter)
///   driver.collocation  driver stage 3
///   driver.partition    driver stage 4
///   driver.adjacency    driver stage 5
///   driver.reduce       driver stage 6
///   driver.batch        after a batch completes (post-checkpoint)
///   mp.service.command  RankTeam service loop, on each received command
///   mp.send             MessagePassingExecutor root, before each command send
///   mp.collect          MessagePassingExecutor root, before each reply wait
///   proc.send           ProcessTransport root, per outgoing wire frame
///                       (kTruncate = torn write; kKillRank = SIGKILL the
///                       destination worker process)
///   proc.worker.send    ProcessWorkerLink, per outgoing wire frame in the
///                       worker process (kTruncate = torn write)
///   spill.write         SpillRunWriter::finish, after the run body is on
///                       disk but BEFORE the tmp→final rename (kThrow models
///                       a crash mid-spill leaving only a .tmp orphan)
///   spill.merge         SpillingAccumulator compaction, before the k-way
///                       merge of live runs begins
///   abm.step            ABM rank loop, top of each simulated hour (both
///                       cores); ordinal = the simulated hour, so a spec's
///                       exact hit means "at hour H" regardless of thread
///                       interleaving
///   abm.migrate.send    ABM rank loop, before each migration batch send;
///                       ordinal = the simulated hour
///   abm.log.flush       EventLogger::flush, before the chunk write;
///                       ordinal = the 1-based flush number of that logger
///   abm.ckpt.write      sim-checkpoint save, before a rank's state file is
///                       written; ordinal = the checkpointed hour
///
/// A site costs one relaxed atomic load when no plan is installed — the
/// hooks are always present, never a build flavor — and sites fire at
/// batch/command granularity, never inside per-row loops.
///
/// Plans are deterministic: a spec fires on an exact 1-based hit ordinal of
/// its site (optionally restricted to one rank), or on every hit, or — for
/// randomized soak runs — with a seeded probability whose draw sequence
/// depends only on the plan seed and the hit order.

namespace chisimnet::runtime {

enum class FaultAction : std::uint32_t {
  kNone = 0,
  /// Throw FaultInjected at the site.
  kThrow,
  /// Sleep `delayMs` at the site (models a straggler / stalled I/O).
  kDelay,
  /// Shrink the site's payload to `truncateTo` bytes (models a torn wire
  /// frame); sites without a payload treat it as kNone.
  kTruncate,
  /// Returned to the caller, which must simulate a dead rank (a service
  /// loop returns without replying and stays silent forever). At
  /// proc.send it is real: the destination worker process is SIGKILLed.
  kKillRank,
  /// Raises SIGKILL against the *current* process — a real, unhandleable
  /// crash. Only meaningful inside a transport worker process (shipped
  /// there via the CHISIM_FAULT_PLAN environment plan); installing it in
  /// the root process kills the whole run.
  kKillProcess,
};

const char* faultActionName(FaultAction action) noexcept;

/// The exception kThrow raises. Derives from std::runtime_error so every
/// existing catch path treats it like a real runtime failure.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(std::string_view site, std::uint64_t hit);

  const std::string& site() const noexcept { return site_; }
  std::uint64_t hit() const noexcept { return hit_; }

 private:
  std::string site_;
  std::uint64_t hit_;
};

/// One scripted fault at one site.
struct FaultSpec {
  FaultAction action = FaultAction::kThrow;
  /// Fire on exactly this 1-based hit of the site; 0 = consider every hit.
  std::uint64_t hit = 0;
  /// When hit == 0: fire with this probability per hit (seeded, so the
  /// decision sequence is deterministic for a given plan seed). 1.0 fires
  /// on every hit.
  double probability = 1.0;
  /// Only fire when the site reports this rank; -1 matches any rank.
  int rank = -1;
  /// kDelay: milliseconds to sleep.
  std::uint32_t delayMs = 0;
  /// kTruncate: payload size to shrink to (no-op if already smaller).
  std::size_t truncateTo = 0;
};

/// Context a site passes to the plan. Everything is optional; a site that
/// has no rank or payload passes the defaults.
struct FaultSite {
  int rank = -1;
  /// Mutable payload for kTruncate sites (the bytes about to be sent).
  std::vector<std::byte>* payload = nullptr;
  /// Deterministic hit ordinal supplied by the site (e.g. the simulated
  /// hour at the ABM sites). When nonzero, an exact-hit spec matches
  /// `spec.hit == ordinal` instead of the global per-site hit counter —
  /// which interleaves nondeterministically when several rank threads
  /// fire the same site. 0 keeps the counter semantics.
  std::uint64_t ordinal = 0;
};

/// A scripted (or seeded-random) set of faults. Install with
/// fault::install / fault::ScopedFaultPlan; sites consult the installed
/// plan through fault::hit().
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0);

  /// Adds a fault at `site`; chainable. Thread-safe against firing sites.
  FaultPlan& at(std::string site, FaultSpec spec);

  /// Serializes seed + specs to a single line safe to ship through an
  /// environment variable across exec (CHISIM_FAULT_PLAN), so worker
  /// processes fault under the same plan as the root. Hit/acted counters
  /// are not carried: each process counts its own hits from zero.
  std::string encode() const;

  /// Inverse of encode(). Throws on malformed input.
  static std::unique_ptr<FaultPlan> decode(std::string_view text);

  /// Called by injection points. Applies kThrow (throws FaultInjected),
  /// kDelay (sleeps) and kTruncate (shrinks ctx.payload) internally;
  /// returns the action so callers can implement kKillRank.
  FaultAction fire(std::string_view site, FaultSite& ctx);

  /// Times `site` has fired fire() so far (hit, not necessarily acted on).
  std::uint64_t hitCount(std::string_view site) const;

  /// Times any spec actually acted at `site`.
  std::uint64_t actedCount(std::string_view site) const;

 private:
  mutable std::mutex mutex_;
  // std::map (not unordered_map) keeps lookups allocation-free for the
  // string_view -> string comparison via transparent less<>.
  std::map<std::string, std::vector<FaultSpec>, std::less<>> specs_;
  std::map<std::string, std::uint64_t, std::less<>> hits_;
  std::map<std::string, std::uint64_t, std::less<>> acted_;
  std::uint64_t seed_;
  std::uint64_t rngState_;
};

namespace fault {

/// Installs `plan` process-wide (nullptr uninstalls); returns the previous
/// plan. The caller keeps ownership and must keep the plan alive while
/// installed.
FaultPlan* install(FaultPlan* plan) noexcept;

/// True when a plan is installed. One relaxed atomic load — the entire
/// per-site cost when fault injection is idle.
bool armed() noexcept;

/// The currently installed plan (nullptr when disarmed). Used by the
/// process transport to forward the plan to spawned workers.
FaultPlan* current() noexcept;

/// Fires the installed plan at `site`; returns kNone when no plan is
/// installed. This is the function injection points call.
FaultAction hit(std::string_view site, FaultSite& ctx);
FaultAction hit(std::string_view site);

/// RAII plan installer for tests: installs on construction, restores the
/// previous plan on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan& plan) : previous_(install(&plan)) {}
  ~ScopedFaultPlan() { install(previous_); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan* previous_;
};

}  // namespace fault

}  // namespace chisimnet::runtime
