#include "chisimnet/runtime/tcp_transport.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/process_transport.hpp"  // bootstrap env names

extern char** environ;

namespace chisimnet::runtime {

namespace {

/// Reconnect backoff base; doubles per failed attempt, capped well below
/// any sane grace window so a worker gets several shots inside it.
constexpr std::uint64_t kDialBackoffMs = 50;
constexpr std::uint64_t kDialBackoffCapMs = 2000;

std::uint64_t envU64Or(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

int envIntOr(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

int envIntRequired(const char* name) {
  const char* value = std::getenv(name);
  CHISIM_CHECK(value != nullptr,
               std::string("missing worker bootstrap variable ") + name);
  return std::atoi(value);
}

/// getaddrinfo for a numeric-or-named IPv4 host. Throws on failure.
sockaddr_in resolveIpv4(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &results);
  CHISIM_CHECK(rc == 0 && results != nullptr,
               "cannot resolve host '" + host + "': " + ::gai_strerror(rc));
  sockaddr_in address{};
  std::memcpy(&address, results->ai_addr, sizeof(address));
  ::freeaddrinfo(results);
  address.sin_port = htons(port);
  return address;
}

}  // namespace

std::pair<std::string, std::uint16_t> parseHostPort(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  CHISIM_CHECK(colon != std::string::npos && colon > 0 &&
                   colon + 1 < spec.size(),
               "malformed address '" + spec + "' (expected host:port)");
  const long port = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
  CHISIM_CHECK(port > 0 && port <= 65535,
               "bad port in address '" + spec + "'");
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

int dialOnce(const std::string& host, std::uint16_t port,
             std::chrono::milliseconds timeout, int rank) {
  if (fault::armed()) {
    FaultSite ctx;
    ctx.rank = rank;
    fault::hit("tcp.connect", ctx);  // kThrow fails this attempt
  }
  const sockaddr_in address = resolveIpv4(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CHISIM_CHECK(fd >= 0,
               std::string("socket() failed: ") + std::strerror(errno));
  wire::configureStreamSocket(fd, /*tcp=*/true);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                           sizeof(address));
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect to " + host + ":" +
                             std::to_string(port) + " failed: " + detail);
  }
  if (rc != 0) {
    // Await writability with the per-attempt deadline, then surface the
    // asynchronous connect result via SO_ERROR.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        ::close(fd);
        throw std::runtime_error("connect to " + host + ":" +
                                 std::to_string(port) + " timed out");
      }
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0 && errno == EINTR) {
        continue;
      }
      if (ready > 0) {
        break;
      }
    }
    int soError = 0;
    socklen_t errorLen = sizeof(soError);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &errorLen);
    if (soError != 0) {
      ::close(fd);
      throw std::runtime_error("connect to " + host + ":" +
                               std::to_string(port) +
                               " failed: " + std::strerror(soError));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for frame I/O
  return fd;
}

int dialWithRetry(const std::string& host, std::uint16_t port,
                  std::chrono::milliseconds perAttemptTimeout, int retries,
                  std::uint64_t backoffMs, int rank) {
  std::string lastError = "no attempts made";
  std::uint64_t backoff = backoffMs;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min<std::uint64_t>(backoff * 2, kDialBackoffCapMs);
    }
    try {
      return dialOnce(host, port, perAttemptTimeout, rank);
    } catch (const std::exception& error) {
      lastError = error.what();
    }
  }
  throw std::runtime_error("dial " + host + ":" + std::to_string(port) +
                           " exhausted " + std::to_string(retries + 1) +
                           " attempts; last error: " + lastError);
}

// -------------------------------------------------------------- root end

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)), beats_(options_.rankCount) {
  CHISIM_REQUIRE(options_.rankCount >= 1, "transport needs at least one rank");
  CHISIM_REQUIRE(options_.heartbeatMs >= 1, "heartbeat period must be >= 1ms");
  CHISIM_REQUIRE(options_.heartbeatMissLimit >= 2,
                 "heartbeat miss limit must be >= 2");
  CHISIM_REQUIRE(options_.connectTimeoutMs >= 1,
                 "connect timeout must be >= 1ms");
  CHISIM_REQUIRE(options_.connectRetries >= 0, "negative connect retries");
  slots_.reserve(static_cast<std::size_t>(options_.rankCount));
  for (int rank = 0; rank < options_.rankCount; ++rank) {
    slots_.push_back(std::make_unique<Slot>());
  }
  pumps_.resize(static_cast<std::size_t>(options_.rankCount));

  // Bind + listen before any worker exists so every dial target is valid.
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CHISIM_CHECK(listenFd_ >= 0,
               std::string("socket() failed: ") + std::strerror(errno));
  wire::configureStreamSocket(listenFd_, /*tcp=*/false);  // CLOEXEC only
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address = resolveIpv4(options_.listenHost, options_.listenPort);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listenFd_, options_.rankCount + 8) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("cannot listen on " + options_.listenHost + ":" +
                             std::to_string(options_.listenPort) + ": " +
                             detail);
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &boundLen);
  port_ = ntohs(bound.sin_port);

  acceptThread_ = std::thread([this] { acceptLoop(); });
  try {
    if (options_.spawnWorkers) {
      for (int rank = 1; rank < options_.rankCount; ++rank) {
        spawnWorker(rank);
      }
    }
  } catch (...) {
    shuttingDown_ = true;
    ::shutdown(listenFd_, SHUT_RDWR);
    acceptThread_.join();
    for (auto& s : slots_) {
      if (s->pid > 0) {
        ::kill(s->pid, SIGKILL);
        ::waitpid(s->pid, nullptr, 0);
      }
      shutdownSlotFd(*s);
    }
    for (std::thread& pump : pumps_) {
      if (pump.joinable()) {
        pump.join();
      }
    }
    for (auto& s : slots_) {
      closeSlotFd(*s);
    }
    ::close(listenFd_);
    listenFd_ = -1;
    throw;
  }
  monitor_ = std::make_unique<PeriodicTask>(
      std::chrono::milliseconds(options_.heartbeatMs),
      [this] { monitorTick(); });
}

TcpTransport::~TcpTransport() {
  shuttingDown_ = true;
  monitor_.reset();  // joins the monitor thread
  ::shutdown(listenFd_, SHUT_RDWR);
  if (acceptThread_.joinable()) {
    acceptThread_.join();  // poll timeout bounds the wait either way
  }
  aborted_ = true;
  rootQueue_.notifyAll();

  // Spawn mode: after quiesce() + stop commands the local children exit on
  // their own; give them a moment before escalating to SIGKILL. External
  // workers are not ours to reap — closing their connections (below) is
  // their exit cue.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::vector<pid_t> waiting;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    for (auto& s : slots_) {
      if (s->pid > 0) {
        waiting.push_back(s->pid);
      }
    }
  }
  while (!waiting.empty() && std::chrono::steady_clock::now() < deadline) {
    for (auto it = waiting.begin(); it != waiting.end();) {
      if (::waitpid(*it, nullptr, WNOHANG) == *it) {
        it = waiting.erase(it);
      } else {
        ++it;
      }
    }
    if (!waiting.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  for (const pid_t pid : waiting) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }

  for (auto& s : slots_) {
    shutdownSlotFd(*s);  // wakes each pump with EOF
  }
  for (std::thread& pump : pumps_) {
    if (pump.joinable()) {
      pump.join();
    }
  }
  for (std::thread& pump : retiredPumps_) {
    if (pump.joinable()) {
      pump.join();
    }
  }
  for (auto& s : slots_) {
    closeSlotFd(*s);
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
  }
}

TcpTransport::Slot& TcpTransport::slot(int rank) const {
  CHISIM_REQUIRE(rank >= 1 && rank < options_.rankCount,
                 "invalid worker rank");
  return *slots_[static_cast<std::size_t>(rank)];
}

std::string TcpTransport::connectAddressFor(int rank) const {
  const std::size_t index = static_cast<std::size_t>(rank - 1);
  if (index < options_.connectAddresses.size() &&
      !options_.connectAddresses[index].empty()) {
    return options_.connectAddresses[index];
  }
  // Workers dial back to this root; an any-address bind is reachable via
  // loopback from spawned (local) children.
  const std::string host = options_.listenHost == "0.0.0.0"
                               ? std::string("127.0.0.1")
                               : options_.listenHost;
  return host + ":" + std::to_string(port_);
}

void TcpTransport::spawnWorker(int rank) {
  // Build argv/envp BEFORE fork: the child of a multithreaded parent may
  // only call async-signal-safe functions, so no allocation after fork.
  const std::string exe =
      options_.executable.empty() ? "/proc/self/exe" : options_.executable;
  std::vector<std::string> env;
  for (char** entry = environ; *entry != nullptr; ++entry) {
    const std::string_view view(*entry);
    if (view.starts_with(std::string(kWorkerFdEnv) + "=") ||
        view.starts_with(std::string(kWorkerTcpEnv) + "=") ||
        view.starts_with(std::string(kWorkerRankEnv) + "=") ||
        view.starts_with(std::string(kWorkerRankCountEnv) + "=") ||
        view.starts_with(std::string(kWorkerConnectTimeoutEnv) + "=") ||
        view.starts_with(std::string(kWorkerConnectRetriesEnv) + "=") ||
        view.starts_with(std::string(kWorkerFaultPlanEnv) + "=")) {
      continue;
    }
    env.emplace_back(view);
  }
  env.push_back(std::string(kWorkerTcpEnv) + "=" + connectAddressFor(rank));
  env.push_back(std::string(kWorkerRankEnv) + "=" + std::to_string(rank));
  env.push_back(std::string(kWorkerRankCountEnv) + "=" +
                std::to_string(options_.rankCount));
  env.push_back(std::string(kWorkerConnectTimeoutEnv) + "=" +
                std::to_string(options_.connectTimeoutMs));
  env.push_back(std::string(kWorkerConnectRetriesEnv) + "=" +
                std::to_string(options_.connectRetries));
  if (FaultPlan* plan = fault::current()) {
    env.push_back(std::string(kWorkerFaultPlanEnv) + "=" + plan->encode());
  }
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (std::string& entry : env) {
    envp.push_back(entry.data());
  }
  envp.push_back(nullptr);
  std::string exeArg = exe;
  std::string workerFlag = "--worker";
  char* argv[] = {exeArg.data(), workerFlag.data(), nullptr};

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);  // exec failed; the dial never comes, waitForWorkers fails
  }
  CHISIM_CHECK(pid > 0, std::string("fork failed: ") + std::strerror(errno));
  std::lock_guard<std::mutex> lock(stateMutex_);
  slot(rank).pid = pid;
}

void TcpTransport::acceptLoop() {
  while (!shuttingDown_.load()) {
    struct pollfd pfd = {listenFd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(options_.heartbeatMs));
    if (shuttingDown_.load()) {
      return;
    }
    if (ready <= 0) {
      continue;  // timeout or EINTR; loop re-checks the shutdown flag
    }
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      return;  // listen socket is gone (shutdown path)
    }
    wire::configureStreamSocket(fd, /*tcp=*/true);
    // Inline handshake with a deadline. A dialer that stalls, lies about
    // its rank or epoch, sends garbage, or claims an oversize payload is
    // dropped by closing ITS socket; the transport and every other
    // connection stay healthy.
    bool admitted = false;
    try {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(
              std::max<std::uint64_t>(1000, options_.connectTimeoutMs));
      wire::FrameReader reader(wire::deadlineReadFn(fd, deadline));
      auto frame = reader.next();
      CHISIM_CHECK(frame.has_value() &&
                       frame->kind == wire::FrameKind::kHello &&
                       frame->payload.size() == sizeof(std::uint64_t),
                   "malformed worker hello");
      const int rank = frame->tag;
      std::uint64_t claimed = 0;
      std::memcpy(&claimed, frame->payload.data(), sizeof(claimed));
      if (fault::armed()) {
        FaultSite ctx;
        ctx.rank = rank;
        fault::hit("tcp.accept", ctx);  // kThrow refuses this dial
      }
      admitted = admitWorker(fd, rank, claimed);
    } catch (...) {
      admitted = false;
    }
    if (!admitted) {
      ::close(fd);
    }
  }
}

bool TcpTransport::admitWorker(int fd, int rank, std::uint64_t claimedEpoch) {
  if (rank < 1 || rank >= options_.rankCount) {
    return false;
  }
  Slot& s = slot(rank);
  std::uint64_t granted = 0;
  bool isReconnect = false;
  std::string reconnectDetail;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    if (shuttingDown_.load() || quiesced_.load() || aborted_.load()) {
      return false;  // winding down: no new peers
    }
    if (s.permanentlyDead || s.forsaken) {
      return false;  // the driver already reassigned this rank's work
    }
    if (s.live || s.deadPending) {
      // live: double-connect for an occupied slot — refused. deadPending:
      // the previous connection's death is still being classified; the
      // dialer's backoff retry lands after the monitor's next tick.
      return false;
    }
    if (claimedEpoch != s.epoch) {
      return false;  // stale-epoch zombie (or an impostor guessing)
    }
    granted = s.epoch + 1;
    isReconnect = s.epoch > 0;
    reconnectDetail = s.lastDeathDetail;
  }

  // Ack (granted epoch + application payload) before the slot goes live:
  // per-connection ordering guarantees the worker holds its parameters
  // before the first command arrives.
  wire::Frame ack;
  ack.kind = wire::FrameKind::kHelloAck;
  ack.tag = static_cast<std::int32_t>(granted);
  ack.payload = options_.helloPayload;
  if (!wire::writeAllFd(fd, wire::encodeFrame(ack))) {
    return false;
  }

  {
    std::lock_guard<std::mutex> stateLock(stateMutex_);
    std::lock_guard<std::mutex> writeLock(s.writeMutex);
    s.fd = fd;
    s.epoch = granted;
    s.live = true;
    s.deadPending = false;
    s.reconnecting = false;
    s.lastDeathDetail.clear();
    if (isReconnect) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      noteEvent(WorkerEvent::Kind::kReconnect, rank, reconnectDetail);
    }
  }
  beats_.beat(rank);
  {
    // Install the new pump under stateMutex_: the monitor moves a dead
    // connection's handle out under the same lock (before clearing
    // deadPending), so the slot's handle is either empty or a finished
    // thread here, and the assignment cannot race the monitor's join.
    std::lock_guard<std::mutex> lock(stateMutex_);
    if (pumps_[static_cast<std::size_t>(rank)].joinable()) {
      retiredPumps_.push_back(
          std::move(pumps_[static_cast<std::size_t>(rank)]));
    }
    pumps_[static_cast<std::size_t>(rank)] = std::thread(
        [this, rank, granted, fd] { pumpLoop(rank, granted, fd); });
  }
  return true;
}

void TcpTransport::pumpLoop(int rank, std::uint64_t epoch, int fd) {
  std::string detail = "socket EOF";
  try {
    wire::FrameReader reader(wire::fdReadFn(fd));
    while (true) {
      auto frame = reader.next();
      if (!frame.has_value()) {
        break;
      }
      beats_.beat(rank);
      switch (frame->kind) {
        case wire::FrameKind::kData: {
          Message message;
          message.source = rank;
          message.tag = frame->tag;
          message.payload = std::move(frame->payload);
          rootQueue_.post(std::move(message));
          break;
        }
        case wire::FrameKind::kPong:
          break;
        default:
          break;
      }
    }
  } catch (const std::exception& error) {
    detail = error.what();
  }
  flagDeath(rank, epoch, detail);
}

void TcpTransport::shutdownSlotFd(Slot& s) noexcept {
  std::lock_guard<std::mutex> lock(s.writeMutex);
  if (s.fd >= 0) {
    ::shutdown(s.fd, SHUT_RDWR);
  }
}

void TcpTransport::closeSlotFd(Slot& s) noexcept {
  std::lock_guard<std::mutex> lock(s.writeMutex);
  if (s.fd >= 0) {
    ::close(s.fd);
    s.fd = -1;
  }
}

void TcpTransport::flagDeath(int rank, std::uint64_t epoch,
                             const std::string& detail) {
  if (shuttingDown_.load()) {
    return;
  }
  std::lock_guard<std::mutex> lock(stateMutex_);
  Slot& s = slot(rank);
  if (s.epoch != epoch || !s.live) {
    return;  // stale: the slot was already re-admitted or flagged
  }
  s.live = false;
  s.deadPending = true;
  s.lastDeathDetail = detail;
}

void TcpTransport::noteEvent(WorkerEvent::Kind kind, int rank,
                             std::string detail) {
  WorkerEvent event;
  event.kind = kind;
  event.rank = rank;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
}

void TcpTransport::monitorTick() {
  if (shuttingDown_.load() || aborted_.load()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();

  // Pass 1, REMOTE-SAFE liveness only: a connection silent past the miss
  // limit is presumed half-open and poisoned — no SIGKILL, no waitpid; if
  // the worker is actually alive it notices the EOF and re-dials. The one
  // local-child concession: spawn-mode pids are reaped opportunistically
  // (avoiding zombies and letting the grace window short-circuit — a
  // reaped child can never re-dial), strictly guarded on pid > 0 so
  // external-worker slots never touch process APIs.
  const auto silenceLimit = std::chrono::milliseconds(
      options_.heartbeatMs *
      static_cast<std::uint64_t>(options_.heartbeatMissLimit));
  for (int rank = 1; rank < options_.rankCount; ++rank) {
    Slot& s = slot(rank);
    pid_t pid = -1;
    bool live = false;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      pid = s.pid;
      live = s.live;
    }
    if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == pid) {
      std::lock_guard<std::mutex> lock(stateMutex_);
      s.pid = -1;  // reaped; never waited on again
      s.processGone = true;
    }
    if (live && beats_.overdue(rank, silenceLimit)) {
      shutdownSlotFd(s);  // pump turns the EOF into a flagged death
    }
  }

  // Pass 2: ping live workers.
  wire::Frame ping;
  ping.kind = wire::FrameKind::kPing;
  const std::vector<std::byte> pingBytes = wire::encodeFrame(ping);
  for (int rank = 1; rank < options_.rankCount; ++rank) {
    Slot& s = slot(rank);
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      if (!s.live) {
        continue;
      }
    }
    std::lock_guard<std::mutex> lock(s.writeMutex);
    if (s.fd >= 0 && !wire::writeAllFd(s.fd, pingBytes)) {
      ::shutdown(s.fd, SHUT_RDWR);
    }
  }

  // Pass 3: classify flagged deaths and expired grace windows. A fresh
  // death opens the reconnect window (unless we are quiescing, the rank is
  // forsaken, its local child is known gone, or grace is disabled); a
  // window that outlives reconnectGraceMs becomes permanent loss.
  struct Closed {
    int rank;
    bool permanent;
    int fd;            // dead connection's descriptor, detached under lock
    std::thread pump;  // dead connection's reader, moved out under the lock
  };
  std::vector<Closed> closed;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    for (int rank = 1; rank < options_.rankCount; ++rank) {
      Slot& s = slot(rank);
      if (s.deadPending) {
        s.deadPending = false;
        const bool silent = quiesced_.load() || s.forsaken;
        const bool hopeless =
            silent || s.processGone || options_.reconnectGraceMs == 0;
        if (hopeless) {
          s.permanentlyDead = true;
          if (!silent) {
            noteEvent(WorkerEvent::Kind::kPermanentDeath, rank,
                      s.lastDeathDetail);
          }
        } else {
          s.reconnecting = true;
          s.disconnectAt = now;
        }
        // Detach the dead connection's fd and pump handle under the lock:
        // once deadPending clears, the accept thread may re-admit this
        // slot and install a fresh connection, which the close/join below
        // must never touch.
        int oldFd = -1;
        {
          std::lock_guard<std::mutex> writeLock(s.writeMutex);
          oldFd = s.fd;
          s.fd = -1;
        }
        closed.push_back({rank, hopeless, oldFd,
                          std::move(pumps_[static_cast<std::size_t>(rank)])});
        continue;
      }
      if (s.reconnecting &&
          (s.processGone ||
           now - s.disconnectAt >
               std::chrono::milliseconds(options_.reconnectGraceMs))) {
        s.reconnecting = false;
        s.permanentlyDead = true;
        noteEvent(WorkerEvent::Kind::kPermanentDeath, rank,
                  s.lastDeathDetail + "; reconnect grace expired");
        rootQueue_.notifyAll();  // recvFor waiters re-check permanent death
      }
    }
  }

  for (Closed& entry : closed) {
    // The pump for the dead connection has flagged its death and is
    // exiting; join it before the fd can be closed and its number reused.
    if (entry.pump.joinable()) {
      entry.pump.join();
    }
    if (entry.fd >= 0) {
      ::close(entry.fd);
    }
    if (entry.permanent) {
      rootQueue_.notifyAll();
    }
  }
}

bool TcpTransport::waitForWorkers(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    bool allLive = true;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      for (int rank = 1; rank < options_.rankCount; ++rank) {
        if (!slot(rank).live) {
          allLive = false;
          break;
        }
      }
    }
    if (allLive) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline ||
        shuttingDown_.load() || aborted_.load()) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void TcpTransport::send(int self, int dest, int tag,
                        std::span<const std::byte> payload) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the tcp transport");
  CHISIM_REQUIRE(dest >= 0 && dest < options_.rankCount,
                 "invalid destination rank");
  validatePayloadLength(static_cast<std::int64_t>(payload.size()));
  if (dest == 0) {
    Message message;
    message.source = 0;
    message.tag = tag;
    message.payload.assign(payload.begin(), payload.end());
    rootQueue_.post(std::move(message));
    return;
  }
  wire::Frame frame;
  frame.kind = wire::FrameKind::kData;
  frame.tag = tag;
  frame.payload.assign(payload.begin(), payload.end());
  std::vector<std::byte> encoded = wire::encodeFrame(frame);
  Slot& s = slot(dest);
  if (fault::armed()) {
    FaultSite ctx;
    ctx.rank = dest;
    ctx.payload = &encoded;
    fault::hit("tcp.delay", ctx);  // kDelay stalls this frame
    if (fault::hit("tcp.drop", ctx) == FaultAction::kKillRank) {
      // Scripted connection drop (a partition, not a process death): the
      // pump sees EOF, the slot opens its grace window, and the — still
      // alive — worker re-dials. kTruncate instead tears the frame below,
      // which poisons the WORKER's read side and likewise forces a
      // re-dial.
      shutdownSlotFd(s);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(s.writeMutex);
  if (s.fd < 0) {
    // Disconnected or permanently dead: drop. The driver's per-command
    // timeout resends after backoff, which lands on the re-admitted
    // worker or times out into markLost.
    return;
  }
  if (!wire::writeAllFd(s.fd, encoded)) {
    ::shutdown(s.fd, SHUT_RDWR);  // poisoned; pump turns this into a death
  }
}

Message TcpTransport::recv(int self, int source, int tag) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the tcp transport");
  Message out;
  const auto result = rootQueue_.wait(
      out, source, tag, std::nullopt, [this, source] {
        return aborted_.load() || (source >= 1 && isPermanentlyDead(source));
      });
  if (result == MessageQueue::WaitResult::kInterrupted) {
    CHISIM_CHECK(!aborted_.load(), "transport aborted while receiving");
    throw std::runtime_error("rank " + std::to_string(source) +
                             " is permanently lost; no reply will ever "
                             "arrive");
  }
  return out;
}

std::optional<Message> TcpTransport::recvFor(int self,
                                             std::chrono::milliseconds timeout,
                                             int source, int tag) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the tcp transport");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Message out;
  const auto result = rootQueue_.wait(
      out, source, tag, deadline, [this, source] {
        return aborted_.load() || (source >= 1 && isPermanentlyDead(source));
      });
  if (result == MessageQueue::WaitResult::kInterrupted) {
    CHISIM_CHECK(!aborted_.load(), "transport aborted while receiving");
    return std::nullopt;  // permanently dead source: fail fast, not at the
                          // deadline — the driver converges to markLost
  }
  if (result == MessageQueue::WaitResult::kTimeout) {
    return std::nullopt;
  }
  return out;
}

bool TcpTransport::tryRecv(int self, Message& out, int source, int tag) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the tcp transport");
  return rootQueue_.tryRecv(out, source, tag);
}

std::size_t TcpTransport::pendingMessages(int self) const {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the tcp transport");
  return rootQueue_.pending();
}

void TcpTransport::barrier(int /*self*/) {
  throw std::runtime_error(
      "the tcp transport has no barrier (workers are root-driven)");
}

void TcpTransport::abort() noexcept {
  aborted_ = true;
  rootQueue_.notifyAll();
}

void TcpTransport::quiesce() noexcept { quiesced_ = true; }

void TcpTransport::forsakeRank(int rank) {
  if (rank == 0) {
    return;
  }
  Slot& s = slot(rank);
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    s.forsaken = true;
    s.permanentlyDead = true;
    s.reconnecting = false;
    s.live = false;
    pid = s.pid;
  }
  if (pid > 0) {
    ::kill(pid, SIGKILL);  // local spawn-mode child only; reaped later
  }
  shutdownSlotFd(s);
  rootQueue_.notifyAll();
}

bool TcpTransport::isPermanentlyDead(int rank) const {
  if (rank == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(stateMutex_);
  return slot(rank).permanentlyDead;
}

pid_t TcpTransport::workerPid(int rank) const {
  std::lock_guard<std::mutex> lock(stateMutex_);
  const Slot& s = slot(rank);
  return s.live ? s.pid : -1;
}

std::vector<TcpTransport::WorkerEvent> TcpTransport::drainEvents() {
  std::lock_guard<std::mutex> lock(stateMutex_);
  std::vector<WorkerEvent> out;
  out.swap(events_);
  return out;
}

// ------------------------------------------------------------ worker end

bool TcpWorkerLink::isTcpWorkerProcess() {
  return std::getenv(kWorkerTcpEnv) != nullptr;
}

TcpWorkerLink::TcpWorkerLink()
    : rank_(envIntRequired(kWorkerRankEnv)),
      rankCount_(envIntRequired(kWorkerRankCountEnv)),
      connectTimeoutMs_(envU64Or(kWorkerConnectTimeoutEnv, 5000)),
      connectRetries_(envIntOr(kWorkerConnectRetriesEnv, 5)) {
  const char* spec = std::getenv(kWorkerTcpEnv);
  CHISIM_CHECK(spec != nullptr,
               std::string("missing worker bootstrap variable ") +
                   kWorkerTcpEnv);
  std::tie(host_, port_) = parseHostPort(spec);
  CHISIM_CHECK(rank_ >= 1 && rank_ < rankCount_, "invalid worker rank");
  CHISIM_CHECK(connectTimeoutMs_ >= 1, "connect timeout must be >= 1ms");
  CHISIM_CHECK(connectRetries_ >= 0, "negative connect retries");
}

TcpWorkerLink::~TcpWorkerLink() {
  shuttingDown_ = true;
  {
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }
  if (pump_.joinable()) {
    pump_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

TcpWorkerLink::Dialed TcpWorkerLink::dialAndHello(std::uint64_t claimedEpoch) {
  // The dial and the hello exchange retry as one unit: a refused handshake
  // (the root closing our socket — stale epoch, occupied slot, a death
  // still being classified) counts as a failed attempt, so the backoff
  // naturally paces re-admission against the root's monitor cadence.
  std::string lastError = "no attempts made";
  std::uint64_t backoff = kDialBackoffMs;
  for (int attempt = 0; attempt <= connectRetries_; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min<std::uint64_t>(backoff * 2, kDialBackoffCapMs);
    }
    int fd = -1;
    try {
      fd = dialOnce(host_, port_,
                    std::chrono::milliseconds(connectTimeoutMs_), rank_);
      wire::Frame hello;
      hello.kind = wire::FrameKind::kHello;
      hello.tag = rank_;
      hello.payload.resize(sizeof(std::uint64_t));
      std::memcpy(hello.payload.data(), &claimedEpoch, sizeof(claimedEpoch));
      CHISIM_CHECK(wire::writeAllFd(fd, wire::encodeFrame(hello)),
                   "failed to send worker hello");
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(connectTimeoutMs_);
      wire::FrameReader reader(wire::deadlineReadFn(fd, deadline));
      auto ack = reader.next();
      CHISIM_CHECK(ack.has_value() &&
                       ack->kind == wire::FrameKind::kHelloAck,
                   "root refused the hello (connection closed)");
      Dialed out;
      out.fd = fd;
      out.epoch = static_cast<std::uint64_t>(ack->tag);
      out.payload = std::move(ack->payload);
      return out;
    } catch (const std::exception& error) {
      lastError = error.what();
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }
  throw std::runtime_error("worker rank " + std::to_string(rank_) +
                           " exhausted " +
                           std::to_string(connectRetries_ + 1) +
                           " connect attempts to " + host_ + ":" +
                           std::to_string(port_) +
                           "; last error: " + lastError);
}

TcpWorkerLink::Hello TcpWorkerLink::handshake() {
  CHISIM_REQUIRE(!pump_.joinable(), "handshake already performed");
  Dialed dialed = dialAndHello(/*claimedEpoch=*/0);
  fd_ = dialed.fd;
  epoch_ = dialed.epoch;
  Hello hello;
  hello.epoch = dialed.epoch;
  hello.payload = std::move(dialed.payload);
  pump_ = std::thread([this] { pumpLoop(); });
  return hello;
}

void TcpWorkerLink::pumpLoop() {
  while (true) {
    try {
      wire::FrameReader reader(wire::fdReadFn(fd_));
      while (true) {
        auto frame = reader.next();
        if (!frame.has_value()) {
          break;  // root closed (or dropped) the connection
        }
        switch (frame->kind) {
          case wire::FrameKind::kData: {
            Message message;
            message.source = 0;
            message.tag = frame->tag;
            message.payload = std::move(frame->payload);
            queue_.post(std::move(message));
            break;
          }
          case wire::FrameKind::kPing: {
            wire::Frame pong;
            pong.kind = wire::FrameKind::kPong;
            pong.tag = frame->tag;
            std::lock_guard<std::mutex> lock(writeMutex_);
            (void)wire::writeAllFd(fd_, wire::encodeFrame(pong));
            break;
          }
          default:
            break;  // stray hello/ack/pong: ignore
        }
      }
    } catch (...) {
      // Torn or corrupt frame: this connection can no longer be trusted.
    }
    if (shuttingDown_.load()) {
      break;
    }
    // Connection lost while the worker is healthy: re-dial inside the
    // root's grace window, replaying the hello with the last granted
    // epoch. Commands lost mid-drop are re-sent by the root's retry path;
    // a reply torn mid-send is discarded root-side and regenerated when
    // the command is re-executed (stage bodies are pure).
    try {
      Dialed dialed = dialAndHello(epoch_);
      std::lock_guard<std::mutex> lock(writeMutex_);
      if (fd_ >= 0) {
        ::close(fd_);
      }
      fd_ = dialed.fd;
      epoch_ = dialed.epoch;
    } catch (...) {
      break;  // budget exhausted or the root gave up on us: exit
    }
  }
  closed_ = true;
  queue_.notifyAll();
}

Message TcpWorkerLink::recv() {
  Message out;
  const auto result = queue_.wait(out, 0, kAnyTag, std::nullopt,
                                  [this] { return closed_.load(); });
  CHISIM_CHECK(result == MessageQueue::WaitResult::kMessage,
               "root connection closed");
  return out;
}

void TcpWorkerLink::send(int tag, std::span<const std::byte> payload) {
  validatePayloadLength(static_cast<std::int64_t>(payload.size()));
  wire::Frame frame;
  frame.kind = wire::FrameKind::kData;
  frame.tag = tag;
  frame.payload.assign(payload.begin(), payload.end());
  const std::vector<std::byte> encoded = wire::encodeFrame(frame);
  std::lock_guard<std::mutex> lock(writeMutex_);
  // A failed or torn write means this connection is dying; the pump will
  // re-dial and the root's retry re-requests whatever was lost.
  (void)wire::writeAllFd(fd_, encoded);
}

}  // namespace chisimnet::runtime
