#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/heartbeat.hpp"
#include "chisimnet/runtime/wire.hpp"

/// Process-isolated worker transport.
///
/// The paper's synthesis runs on real MPI processes; this transport is the
/// corresponding real process boundary for chisimnet. The root process
/// fork/execs N-1 worker processes (re-entering the chisim binary — or any
/// binary whose main() calls the worker entry first — via a hidden
/// `--worker` mode driven by environment variables) and speaks the CSF1
/// length-framed protocol (runtime/wire.hpp) over Unix-domain stream
/// socketpairs. Only rank 0 lives in this process: ProcessTransport
/// implements the root side of the Transport API, while workers use
/// ProcessWorkerLink directly.
///
/// ## Liveness and the respawn state machine
///
/// Each worker slot moves through:
///
///   spawning -> live -> dead -+-> respawning -> live (spawns <= max)
///                             +-> permanently dead   (budget exhausted,
///                                                     forsaken, or quiesced)
///
/// Death is detected three ways: waitpid (SIGCHLD reaping in the monitor
/// tick), socket EOF / torn frame in the pump thread, and heartbeat
/// silence (no pong for heartbeatMissLimit periods -> SIGKILL + dead). A
/// respawn re-execs a fresh process for the same rank with a bumped epoch
/// and replays the hello handshake (carrying the application payload, e.g.
/// serialized stage parameters) before the slot goes live again. Once
/// permanently dead, recvFor() on that source returns nullopt immediately
/// so the driver's retry loop converges to markLost + reassignment without
/// waiting out its full deadline.
///
/// Sends to a dead or respawning slot are dropped silently: the driver's
/// per-command timeout/retry (PR 3) re-sends after backoff, which is
/// exactly the at-least-once delivery the command protocol already
/// tolerates via epoch-stamped replies.

namespace chisimnet::runtime {

/// Environment variables that carry the worker bootstrap across exec.
inline constexpr const char* kWorkerFdEnv = "CHISIM_WORKER_FD";
inline constexpr const char* kWorkerRankEnv = "CHISIM_WORKER_RANK";
inline constexpr const char* kWorkerRankCountEnv = "CHISIM_WORKER_RANKS";
inline constexpr const char* kWorkerFaultPlanEnv = "CHISIM_FAULT_PLAN";

/// Worker-process end of the transport. Constructed from the bootstrap
/// environment inside the exec'd child.
class ProcessWorkerLink {
 public:
  /// True when this process was exec'd as a transport worker (bootstrap
  /// env present). Binaries embedding a worker entry call this first
  /// thing in main().
  static bool isWorkerProcess();

  ProcessWorkerLink();
  ~ProcessWorkerLink();

  ProcessWorkerLink(const ProcessWorkerLink&) = delete;
  ProcessWorkerLink& operator=(const ProcessWorkerLink&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return rankCount_; }

  struct Hello {
    std::uint64_t epoch = 0;
    std::vector<std::byte> payload;
  };

  /// Performs the worker side of the handshake: reads the root's hello
  /// frame, acks it, and starts the background pump (which answers pings
  /// and queues data frames). Call exactly once, before recv/send.
  Hello handshake();

  /// Next data message from the root (source 0). Throws when the root
  /// connection closes — the worker's cue to exit.
  Message recv();

  /// Sends a data frame to the root. Injection site "proc.worker.send"
  /// fires per frame (kTruncate tears the frame; the root rejects it and
  /// drops this worker).
  void send(int tag, std::span<const std::byte> payload);

 private:
  void pumpLoop(wire::FrameReader reader);

  int fd_ = -1;
  int rank_ = -1;
  int rankCount_ = 0;
  std::mutex writeMutex_;
  MessageQueue queue_;
  std::atomic<bool> closed_{false};
  std::thread pump_;
};

struct ProcessTransportOptions {
  /// Total ranks including the local root (rank 0); spawns rankCount-1
  /// worker processes.
  int rankCount = 0;

  /// Monitor cadence: ping period, reap period, respawn latency.
  std::uint64_t heartbeatMs = 250;

  /// A worker silent for heartbeatMissLimit * heartbeatMs is presumed hung
  /// and SIGKILLed (then respawned or declared lost like any death).
  int heartbeatMissLimit = 8;

  /// Times a single rank may be re-execed after its process dies. 0
  /// disables respawn (first death is permanent loss).
  int maxRespawns = 1;

  /// Worker binary; empty means /proc/self/exe (re-enter this binary).
  std::string executable;

  /// Application handshake payload carried in the hello frame and
  /// replayed verbatim to every respawned worker (e.g. serialized stage
  /// parameters the worker needs before its first command).
  std::vector<std::byte> helloPayload;
};

/// Root side of the process transport (rank 0 is the calling process).
class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(ProcessTransportOptions options);
  ~ProcessTransport() override;

  int size() const noexcept override { return options_.rankCount; }
  void send(int self, int dest, int tag,
            std::span<const std::byte> payload) override;
  Message recv(int self, int source, int tag) override;
  std::optional<Message> recvFor(int self, std::chrono::milliseconds timeout,
                                 int source, int tag) override;
  bool tryRecv(int self, Message& out, int source, int tag) override;
  std::size_t pendingMessages(int self) const override;
  void barrier(int self) override;
  void abort() noexcept override;
  void quiesce() noexcept override;
  void forsakeRank(int rank) override;

  /// True once `rank` is out of respawn budget (or forsaken) — the driver
  /// should mark it lost.
  bool isPermanentlyDead(int rank) const;

  /// Current pid of the worker backing `rank`, or -1 when none is live.
  /// Lets tests deliver a raw external SIGKILL.
  pid_t workerPid(int rank) const;

  /// Worker lifecycle events since the last drain (for the driver's fault
  /// log / SynthesisReport counters).
  struct WorkerEvent {
    enum class Kind { kRespawn, kPermanentDeath };
    Kind kind = Kind::kRespawn;
    int rank = -1;
    std::string detail;
  };
  std::vector<WorkerEvent> drainEvents();

  std::uint64_t respawnCount() const {
    return respawns_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::mutex writeMutex;     // serializes frame writes; guards fd for I/O
    int fd = -1;               // -1 when no live connection
    pid_t pid = -1;
    int spawns = 0;            // completed spawn attempts for this rank
    std::uint64_t epoch = 0;   // bumped per spawn; hello tag
    bool live = false;         // handshake done, pump running
    bool deadPending = false;  // pump/reap noticed death; monitor decides
    bool permanentlyDead = false;
    bool forsaken = false;
    std::string lastDeathDetail;
  };

  Slot& slot(int rank) const;

  /// socketpair + fork + exec + hello handshake; on success installs fd,
  /// pid and pump thread into the slot. Throws on failure. Caller holds
  /// spawnMutex_.
  void spawnWorker(int rank);

  /// Reader thread for one worker connection; posts data frames into the
  /// root queue, records pongs, and flags death on EOF / torn frames.
  void pumpLoop(int rank, std::uint64_t epoch, int fd);

  /// Poisons the connection so the pump wakes with EOF; does not close.
  void shutdownSlotFd(Slot& s) noexcept;

  /// Closes the slot's fd under the write mutex (safe against in-flight
  /// sends; prevents fd-number reuse races).
  void closeSlotFd(Slot& s) noexcept;

  void monitorTick();
  void flagDeath(int rank, std::uint64_t epoch, const std::string& detail);
  void noteEvent(WorkerEvent::Kind kind, int rank, std::string detail);

  ProcessTransportOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  MessageQueue rootQueue_;
  HeartbeatBook beats_;

  mutable std::mutex stateMutex_;  // slot lifecycle fields + events
  std::vector<WorkerEvent> events_;
  std::vector<std::thread> retiredPumps_;
  std::vector<std::thread> pumps_;  // one live pump per slot, joined in dtor

  std::mutex spawnMutex_;  // serializes socketpair+fork (fd inheritance)
  std::atomic<bool> aborted_{false};
  std::atomic<bool> quiesced_{false};
  std::atomic<bool> shuttingDown_{false};
  std::atomic<std::uint64_t> respawns_{0};
  std::unique_ptr<PeriodicTask> monitor_;
};

}  // namespace chisimnet::runtime
