#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/heartbeat.hpp"
#include "chisimnet/runtime/wire.hpp"

/// Multi-host TCP transport.
///
/// Rank 0 listens; the N-1 workers dial in over TCP and speak the same
/// CSF1 framing as the socketpair process transport (runtime/wire.hpp),
/// with TCP_NODELAY + keepalive on every connection. Workers are launched
/// three ways:
///
///   - loopback CI mode (default): the root fork/execs local worker
///     processes pointed at its own 127.0.0.1 ephemeral port — same
///     machine, but separate processes, separate filesystems-as-far-as-
///     the-protocol-knows, real TCP;
///   - a job file of per-rank `host:port` connect targets (the CLI turns
///     spawning off and waits for workers launched out-of-band against
///     those addresses; with spawnWorkers the transport can instead fork
///     local workers pointed at them);
///   - externally: `chisim worker --connect host:port --rank N` on any
///     machine, with the root started under `--tcp-listen host:port`.
///
/// ## Handshake (direction reversed vs the process transport)
///
/// The WORKER sends the hello: kind=hello, tag=rank, payload=[claimed
/// epoch u64] — 0 on the first dial, the last granted epoch on a re-dial.
/// The root validates (rank in range, slot not live, claimed epoch matches
/// the slot's — a stale-epoch zombie or a double-connect is refused by
/// closing the socket) and answers kind=hello-ack, tag=granted epoch,
/// payload=application hello bytes (serialized stage parameters). Because
/// TCP preserves per-connection order, the worker holds the parameters
/// before any command can arrive.
///
/// ## Liveness: the remote slot machine
///
/// There is no respawn over TCP — the root cannot re-exec a remote
/// process. Instead, each slot moves through:
///
///   connecting -> live -> disconnected -> reconnecting -+-> live
///                                                       +-> permanently
///                                                           dead
///
/// Death signals are REMOTE-SAFE only: socket EOF / torn frame in the
/// pump, and ping silence (heartbeatMissLimit * heartbeatMs without any
/// frame), which poisons the connection — never waitpid, never SIGKILL
/// (local-child assumptions; loopback-spawned children are the one
/// exception, reaped opportunistically and killed only at destruction). A
/// worker that re-dials within reconnectGraceMs replays the hello with its
/// last epoch, gets a bumped one, and resumes: the driver's per-command
/// timeout/retry re-sends anything lost mid-flight, which the epoch-
/// stamped reply protocol already tolerates. A worker that stays away past
/// the grace window is declared permanently dead and recvFor() on it fails
/// fast, so the driver converges to markLost + reassignment.
///
/// ## Fault sites
///
///   tcp.accept    root, per parsed hello (rank known)   kThrow refuses
///   tcp.connect   worker, per dial attempt              kThrow fails it
///   tcp.delay     root send path, per frame             kDelay stalls
///   tcp.drop      root send path, per frame             kKillRank drops
///                 the connection (the live worker re-dials — the
///                 reconnect path); kTruncate tears the frame (the worker
///                 poisons its read side and re-dials)
///
/// Addressing is `host:port` strings end to end; the transport trusts its
/// network (see DESIGN.md §3.10 for the TLS seam).

namespace chisimnet::runtime {

/// Environment variables that carry the TCP worker bootstrap across exec
/// (rank / rank-count / fault-plan reuse the process transport's names).
inline constexpr const char* kWorkerTcpEnv = "CHISIM_WORKER_TCP";
inline constexpr const char* kWorkerConnectTimeoutEnv =
    "CHISIM_WORKER_CONNECT_TIMEOUT_MS";
inline constexpr const char* kWorkerConnectRetriesEnv =
    "CHISIM_WORKER_CONNECT_RETRIES";

/// Splits "host:port" (the last ':' separates the port, so bracketless
/// IPv6 is not supported — documented). Throws on malformed input.
std::pair<std::string, std::uint16_t> parseHostPort(const std::string& spec);

/// Dials host:port once with a poll()-based timeout (non-blocking connect,
/// restored to blocking on success). Returns the connected fd, already
/// configured via wire::configureStreamSocket(fd, /*tcp=*/true). Throws on
/// failure or timeout. Fires fault site "tcp.connect" (rank = `rank`) per
/// attempt when a plan is armed.
int dialOnce(const std::string& host, std::uint16_t port,
             std::chrono::milliseconds timeout, int rank);

/// dialOnce with `1 + retries` total attempts and exponential backoff
/// (base `backoffMs`, doubling, capped) between them. Throws when every
/// attempt fails.
int dialWithRetry(const std::string& host, std::uint16_t port,
                  std::chrono::milliseconds perAttemptTimeout, int retries,
                  std::uint64_t backoffMs, int rank);

struct TcpTransportOptions {
  /// Total ranks including the local root (rank 0).
  int rankCount = 0;

  /// Monitor cadence: ping period and silence-detection granularity.
  std::uint64_t heartbeatMs = 250;

  /// A connection silent for heartbeatMissLimit * heartbeatMs is presumed
  /// half-open and poisoned (shutdown; the worker, if alive, re-dials).
  int heartbeatMissLimit = 8;

  /// Per-attempt connect/handshake timeout.
  std::uint64_t connectTimeoutMs = 5000;

  /// Additional dial attempts after the first (worker side, propagated to
  /// spawned workers; also bounds the root's wait for initial connects).
  int connectRetries = 5;

  /// How long a disconnected worker may take to re-dial before the rank
  /// is declared permanently dead. 0 = no grace: first disconnect is
  /// permanent loss.
  std::uint64_t reconnectGraceMs = 3000;

  /// Listen address. Port 0 binds an ephemeral port (loopback CI mode).
  std::string listenHost = "127.0.0.1";
  std::uint16_t listenPort = 0;

  /// Loopback mode: fork/exec one local worker process per rank, pointed
  /// at connectAddresses[rank-1] (or this root's own listen address when
  /// the list is empty/short). false = external workers dial in on their
  /// own (`chisim worker --connect`).
  bool spawnWorkers = true;

  /// Per-worker connect targets, one per rank 1..rankCount-1 (the "job
  /// file" of host:port slots). Empty entries and missing tails default
  /// to the root's own listen address.
  std::vector<std::string> connectAddresses;

  /// Worker binary for spawn mode; empty means /proc/self/exe.
  std::string executable;

  /// Application handshake payload carried in every hello-ack (e.g.
  /// serialized stage parameters), including reconnect replays.
  std::vector<std::byte> helloPayload;
};

/// Root side of the TCP transport (rank 0 is the calling process).
class TcpTransport final : public Transport {
 public:
  /// Binds, listens, and (in spawn mode) launches the local workers. Does
  /// NOT wait for them to connect — call waitForWorkers() before first
  /// use so external workers can be started against the bound port.
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  /// The bound listen port (resolves port 0 to the ephemeral choice).
  std::uint16_t port() const noexcept { return port_; }

  /// Blocks until every worker slot has completed its first handshake;
  /// false on timeout.
  bool waitForWorkers(std::chrono::milliseconds timeout);

  int size() const noexcept override { return options_.rankCount; }
  void send(int self, int dest, int tag,
            std::span<const std::byte> payload) override;
  Message recv(int self, int source, int tag) override;
  std::optional<Message> recvFor(int self, std::chrono::milliseconds timeout,
                                 int source, int tag) override;
  bool tryRecv(int self, Message& out, int source, int tag) override;
  std::size_t pendingMessages(int self) const override;
  void barrier(int self) override;
  void abort() noexcept override;
  void quiesce() noexcept override;
  void forsakeRank(int rank) override;

  /// True once `rank` is past its reconnect grace (or forsaken) — the
  /// driver should mark it lost.
  bool isPermanentlyDead(int rank) const;

  /// Spawn mode: current pid of the local worker backing `rank`, or -1
  /// (always -1 for external workers). Lets tests deliver a raw SIGKILL.
  pid_t workerPid(int rank) const;

  /// Worker lifecycle events since the last drain (for the driver's fault
  /// log / SynthesisReport counters).
  struct WorkerEvent {
    enum class Kind { kReconnect, kPermanentDeath };
    Kind kind = Kind::kReconnect;
    int rank = -1;
    std::string detail;
  };
  std::vector<WorkerEvent> drainEvents();

  std::uint64_t reconnectCount() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::mutex writeMutex;     // serializes frame writes; guards fd for I/O
    int fd = -1;               // -1 when no live connection
    pid_t pid = -1;            // spawn-mode child; -1 for external workers
    std::uint64_t epoch = 0;   // last granted epoch; bumped per hello
    bool live = false;         // handshake done, pump running
    bool deadPending = false;  // pump noticed death; monitor classifies
    bool reconnecting = false;  // waiting out the grace window
    std::chrono::steady_clock::time_point disconnectAt{};
    bool permanentlyDead = false;
    bool forsaken = false;
    bool processGone = false;  // spawn mode: child reaped; no re-dial can come
    std::string lastDeathDetail;
  };

  Slot& slot(int rank) const;

  /// fork/exec one local worker pointed at `connectAddresses[rank-1]`.
  void spawnWorker(int rank);

  /// Accept-loop thread body: accepts dials and re-dials for the life of
  /// the transport, running the hello handshake inline (deadline reads; a
  /// bad, oversize, stale-epoch, or double-connect hello just closes that
  /// socket — the transport itself is never poisoned by a bad dialer).
  void acceptLoop();

  /// Validates one parsed hello and, if granted, installs the connection
  /// into its slot (ack written, pump started). Returns false when the
  /// dial was refused (caller closes the fd).
  bool admitWorker(int fd, int rank, std::uint64_t claimedEpoch);

  /// Reader thread for one worker connection; posts data frames into the
  /// root queue and flags death on EOF / torn frames.
  void pumpLoop(int rank, std::uint64_t epoch, int fd);

  /// Poisons the connection so the pump wakes with EOF; does not close.
  void shutdownSlotFd(Slot& s) noexcept;

  /// Closes the slot's fd under the write mutex (safe against in-flight
  /// sends; prevents fd-number reuse races).
  void closeSlotFd(Slot& s) noexcept;

  void monitorTick();
  void flagDeath(int rank, std::uint64_t epoch, const std::string& detail);
  void noteEvent(WorkerEvent::Kind kind, int rank, std::string detail);
  std::string connectAddressFor(int rank) const;

  TcpTransportOptions options_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
  MessageQueue rootQueue_;
  HeartbeatBook beats_;

  mutable std::mutex stateMutex_;  // slot lifecycle fields + events
  std::vector<WorkerEvent> events_;
  std::vector<std::thread> retiredPumps_;
  std::vector<std::thread> pumps_;  // one live pump per slot, joined in dtor

  std::atomic<bool> aborted_{false};
  std::atomic<bool> quiesced_{false};
  std::atomic<bool> shuttingDown_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::thread acceptThread_;
  std::unique_ptr<PeriodicTask> monitor_;
};

/// Worker-process end of the TCP transport: dials the root, replays the
/// hello on reconnect, and presents the same recv/send surface as
/// ProcessWorkerLink so the synthesis worker loop is transport-agnostic.
class TcpWorkerLink {
 public:
  /// True when this process was launched as a TCP transport worker
  /// (CHISIM_WORKER_TCP present).
  static bool isTcpWorkerProcess();

  /// Bootstraps from the environment (spawn mode / `chisim worker` after
  /// it seeds the env).
  TcpWorkerLink();
  ~TcpWorkerLink();

  TcpWorkerLink(const TcpWorkerLink&) = delete;
  TcpWorkerLink& operator=(const TcpWorkerLink&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return rankCount_; }

  struct Hello {
    std::uint64_t epoch = 0;
    std::vector<std::byte> payload;
  };

  /// Dials (with per-attempt timeout + exponential backoff), sends the
  /// worker hello, reads the ack, and starts the background pump — which
  /// answers pings, queues data frames, and on connection loss re-dials
  /// transparently, replaying the hello with the last granted epoch.
  /// Call exactly once, before recv/send.
  Hello handshake();

  /// Next data message from the root. Blocks across reconnects; throws
  /// only when the link is permanently down (re-dial budget exhausted or
  /// the root refused re-admission) — the worker's cue to exit.
  Message recv();

  /// Sends a data frame to the root. A failed write (connection mid-drop)
  /// is swallowed: the root's per-command retry re-requests after the
  /// reconnect, and command execution is idempotent.
  void send(int tag, std::span<const std::byte> payload);

 private:
  struct Dialed {
    int fd = -1;
    std::uint64_t epoch = 0;
    std::vector<std::byte> payload;
  };

  /// dial + hello + ack as one retried unit (a refused handshake counts
  /// as a failed attempt). Throws when the budget is exhausted.
  Dialed dialAndHello(std::uint64_t claimedEpoch);

  void pumpLoop();

  std::string host_;
  std::uint16_t port_ = 0;
  int rank_ = -1;
  int rankCount_ = 0;
  std::uint64_t connectTimeoutMs_ = 5000;
  int connectRetries_ = 5;
  std::uint64_t epoch_ = 0;
  int fd_ = -1;
  std::mutex writeMutex_;  // serializes frame writes; guards fd_ swap
  MessageQueue queue_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> shuttingDown_{false};
  std::thread pump_;
};

}  // namespace chisimnet::runtime
