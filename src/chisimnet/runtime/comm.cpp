#include "chisimnet/runtime/comm.hpp"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <thread>

namespace chisimnet::runtime {

namespace {

constexpr int kBarrierTag = kReservedTagBase + 0;  // reserved (doc only)
constexpr int kGatherTag = kReservedTagBase + 1;
constexpr int kBroadcastTag = kReservedTagBase + 2;

[[maybe_unused]] constexpr int kReservedTagsEnd = kReservedTagBase + 3;

// 0 = unresolved; resolved lazily so a test override set before the first
// message wins over the environment.
std::atomic<std::uint64_t> payloadCeiling{0};

std::uint64_t resolvePayloadCeiling() noexcept {
  if (const char* env = std::getenv("CHISIMNET_MAX_PAYLOAD_BYTES")) {
    std::uint64_t parsed = 0;
    const char* end = env;
    while (*end != '\0') {
      ++end;
    }
    const auto [ptr, ec] = std::from_chars(env, end, parsed);
    if (ec == std::errc{} && ptr == end && parsed > 0) {
      return parsed;
    }
  }
  return kMaxPayloadBytes;
}

}  // namespace

std::uint64_t maxPayloadBytes() noexcept {
  std::uint64_t ceiling = payloadCeiling.load(std::memory_order_relaxed);
  if (ceiling == 0) {
    ceiling = resolvePayloadCeiling();
    payloadCeiling.store(ceiling, std::memory_order_relaxed);
  }
  return ceiling;
}

void setMaxPayloadBytesForTesting(std::uint64_t bytes) noexcept {
  payloadCeiling.store(bytes, std::memory_order_relaxed);
}

void validatePayloadLength(std::int64_t declaredBytes) {
  CHISIM_CHECK(declaredBytes >= 0,
               "negative payload length in message header: " +
                   std::to_string(declaredBytes));
  const std::uint64_t ceiling = maxPayloadBytes();
  CHISIM_CHECK(static_cast<std::uint64_t>(declaredBytes) <= ceiling,
               "payload length " + std::to_string(declaredBytes) +
                   " exceeds the " + std::to_string(ceiling) +
                   "-byte message limit (corrupt or hostile header)");
}

// ---------------------------------------------------------------- queue

void MessageQueue::post(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    messages_.push_back(std::move(message));
  }
  ready_.notify_all();
}

void MessageQueue::notifyAll() noexcept {
  // Taking the lock (even empty-handed) prevents a lost wakeup against a
  // waiter that just evaluated its predicate and is about to block.
  { std::lock_guard<std::mutex> lock(mutex_); }
  ready_.notify_all();
}

std::size_t MessageQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_.size();
}

bool MessageQueue::matchAndPop(int source, int tag, Message& out) {
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    const bool sourceMatch = source == kAnySource || it->source == source;
    const bool tagMatch = tag == kAnyTag || it->tag == tag;
    if (sourceMatch && tagMatch) {
      out = std::move(*it);
      messages_.erase(it);
      return true;
    }
  }
  return false;
}

bool MessageQueue::tryRecv(Message& out, int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return matchAndPop(source, tag, out);
}

MessageQueue::WaitResult MessageQueue::wait(
    Message& out, int source, int tag,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const std::function<bool()>& interrupted) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (matchAndPop(source, tag, out)) {
      return WaitResult::kMessage;
    }
    if (interrupted && interrupted()) {
      return WaitResult::kInterrupted;
    }
    if (deadline.has_value()) {
      if (ready_.wait_until(lock, *deadline) == std::cv_status::timeout) {
        // One last look: the message may have raced in with the timeout.
        if (matchAndPop(source, tag, out)) {
          return WaitResult::kMessage;
        }
        return WaitResult::kTimeout;
      }
    } else {
      ready_.wait(lock);
    }
  }
}

// --------------------------------------------------------------- handle

void RankHandle::send(int dest, int tag, std::span<const std::byte> payload) {
  transport_->send(rank_, dest, tag, payload);
}

Message RankHandle::recv(int source, int tag) {
  return transport_->recv(rank_, source, tag);
}

std::optional<Message> RankHandle::recvFor(std::chrono::milliseconds timeout,
                                           int source, int tag) {
  return transport_->recvFor(rank_, timeout, source, tag);
}

bool RankHandle::tryRecv(Message& out, int source, int tag) {
  return transport_->tryRecv(rank_, out, source, tag);
}

std::size_t RankHandle::pendingMessages() const {
  return transport_->pendingMessages(rank_);
}

void RankHandle::barrier() { transport_->barrier(rank_); }

std::vector<std::vector<std::byte>> RankHandle::gather(
    int root, std::span<const std::byte> bytes) {
  CHISIM_REQUIRE(root >= 0 && root < size(), "invalid root rank");
  if (rank_ != root) {
    send(root, kGatherTag, bytes);
    return {};
  }
  std::vector<std::vector<std::byte>> buffers(size());
  buffers[root].assign(bytes.begin(), bytes.end());
  for (int source = 0; source < size(); ++source) {
    if (source == root) {
      continue;
    }
    buffers[source] = recv(source, kGatherTag).payload;
  }
  return buffers;
}

std::vector<std::byte> RankHandle::broadcast(int root,
                                             std::span<const std::byte> bytes) {
  CHISIM_REQUIRE(root >= 0 && root < size(), "invalid root rank");
  if (rank_ == root) {
    for (int dest = 0; dest < size(); ++dest) {
      if (dest != root) {
        send(dest, kBroadcastTag, bytes);
      }
    }
    return std::vector<std::byte>(bytes.begin(), bytes.end());
  }
  return recv(root, kBroadcastTag).payload;
}

std::uint64_t RankHandle::allReduceU64(
    std::uint64_t value,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op) {
  constexpr int root = 0;
  const auto bytes = std::as_bytes(std::span<const std::uint64_t>(&value, 1));
  const auto buffers = gather(root, bytes);
  std::uint64_t reduced = value;
  if (rank_ == root) {
    bool first = true;
    for (const auto& buffer : buffers) {
      std::uint64_t contribution = 0;
      CHISIM_CHECK(buffer.size() == sizeof(std::uint64_t),
                   "allReduceU64 payload size mismatch");
      std::memcpy(&contribution, buffer.data(), sizeof(contribution));
      reduced = first ? contribution : op(reduced, contribution);
      first = false;
    }
  }
  const auto out = broadcast(
      root, std::as_bytes(std::span<const std::uint64_t>(&reduced, 1)));
  std::uint64_t result = 0;
  std::memcpy(&result, out.data(), sizeof(result));
  return result;
}

std::uint64_t RankHandle::allReduceMinU64(std::uint64_t value) {
  return allReduceU64(value, [](std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  });
}

// --------------------------------------------------------- communicator

Communicator::Communicator(int rankCount) {
  CHISIM_REQUIRE(rankCount > 0, "communicator needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(rankCount));
  for (int i = 0; i < rankCount; ++i) {
    mailboxes_.push_back(std::make_unique<MessageQueue>());
  }
}

RankHandle Communicator::handle(int rank) {
  CHISIM_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  return RankHandle(this, rank);
}

void Communicator::send(int self, int dest, int tag,
                        std::span<const std::byte> payload) {
  CHISIM_REQUIRE(dest >= 0 && dest < size(), "invalid destination rank");
  validatePayloadLength(static_cast<std::int64_t>(payload.size()));
  Message message;
  message.source = self;
  message.tag = tag;
  message.payload.assign(payload.begin(), payload.end());
  mailboxes_[static_cast<std::size_t>(dest)]->post(std::move(message));
}

Message Communicator::recv(int self, int source, int tag) {
  Message out;
  const auto result =
      mailboxes_[static_cast<std::size_t>(self)]->wait(
          out, source, tag, std::nullopt, [this] { return aborted(); });
  CHISIM_CHECK(result == MessageQueue::WaitResult::kMessage,
               "communicator aborted while receiving");
  return out;
}

std::optional<Message> Communicator::recvFor(int self,
                                             std::chrono::milliseconds timeout,
                                             int source, int tag) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Message out;
  const auto result =
      mailboxes_[static_cast<std::size_t>(self)]->wait(
          out, source, tag, deadline, [this] { return aborted(); });
  CHISIM_CHECK(result != MessageQueue::WaitResult::kInterrupted,
               "communicator aborted while receiving");
  if (result == MessageQueue::WaitResult::kTimeout) {
    return std::nullopt;
  }
  return out;
}

bool Communicator::tryRecv(int self, Message& out, int source, int tag) {
  return mailboxes_[static_cast<std::size_t>(self)]->tryRecv(out, source, tag);
}

std::size_t Communicator::pendingMessages(int self) const {
  return mailboxes_[static_cast<std::size_t>(self)]->pending();
}

void Communicator::barrier(int /*self*/) {
  (void)kBarrierTag;
  std::unique_lock<std::mutex> lock(barrierMutex_);
  const std::uint64_t generation = barrierGeneration_;
  if (++barrierWaiting_ == size()) {
    barrierWaiting_ = 0;
    ++barrierGeneration_;
    barrierReady_.notify_all();
    return;
  }
  barrierReady_.wait(lock, [this, generation] {
    return barrierGeneration_ != generation || aborted();
  });
  CHISIM_CHECK(!aborted(), "communicator aborted in barrier");
}

void Communicator::abort() noexcept {
  aborted_ = true;
  for (auto& box : mailboxes_) {
    box->notifyAll();
  }
  barrierReady_.notify_all();
}

// ----------------------------------------------------------------- team

RankTeam::RankTeam(int rankCount, std::function<void(RankHandle&)> service)
    : transport_(std::make_unique<Communicator>(rankCount)),
      root_(transport_.get(), 0),
      health_(static_cast<std::size_t>(rankCount), RankHealth::kHealthy) {
  Transport* transport = transport_.get();
  threads_.reserve(static_cast<std::size_t>(rankCount - 1));
  for (int rank = 1; rank < rankCount; ++rank) {
    threads_.emplace_back([this, transport, rank, service] {
      RankHandle handle(transport, rank);
      try {
        service(handle);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errorMutex_);
          if (!firstError_) {
            firstError_ = std::current_exception();
          }
        }
        transport->abort();
      }
    });
  }
}

RankTeam::RankTeam(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)),
      root_(transport_.get(), 0),
      health_(static_cast<std::size_t>(transport_->size()),
              RankHealth::kHealthy) {
  CHISIM_REQUIRE(transport_ != nullptr, "rank team needs a transport");
}

RankTeam::~RankTeam() {
  // Wake services blocked in recv/barrier; a service that already consumed
  // its stop command has returned and is unaffected. On an external
  // transport this tears down the wire (worker processes see EOF).
  transport_->abort();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void RankTeam::markLost(int rank) {
  CHISIM_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  CHISIM_REQUIRE(rank != 0, "rank 0 is the caller and cannot be lost");
  {
    std::lock_guard<std::mutex> lock(healthMutex_);
    health_[static_cast<std::size_t>(rank)] = RankHealth::kLost;
  }
  transport_->forsakeRank(rank);
}

bool RankTeam::isLive(int rank) const {
  return health(rank) == RankHealth::kHealthy;
}

RankTeam::RankHealth RankTeam::health(int rank) const {
  CHISIM_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  std::lock_guard<std::mutex> lock(healthMutex_);
  return health_[static_cast<std::size_t>(rank)];
}

int RankTeam::liveCount() const {
  std::lock_guard<std::mutex> lock(healthMutex_);
  int live = 0;
  for (const RankHealth state : health_) {
    live += state == RankHealth::kHealthy ? 1 : 0;
  }
  return live;
}

std::exception_ptr RankTeam::serviceError() const {
  std::lock_guard<std::mutex> lock(errorMutex_);
  return firstError_;
}

void RankTeam::rethrowServiceError() {
  if (const std::exception_ptr error = serviceError()) {
    std::rethrow_exception(error);
  }
}

void Communicator::run(int rankCount,
                       const std::function<void(RankHandle&)>& body) {
  Communicator comm(rankCount);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(rankCount));
  std::mutex errorMutex;
  std::exception_ptr firstError;

  for (int rank = 0; rank < rankCount; ++rank) {
    threads.emplace_back([&comm, &body, &errorMutex, &firstError, rank] {
      RankHandle handle = comm.handle(rank);
      try {
        body(handle);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errorMutex);
          if (!firstError) {
            firstError = std::current_exception();
          }
        }
        comm.abort();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace chisimnet::runtime
