#include "chisimnet/runtime/comm.hpp"

#include <exception>
#include <thread>

namespace chisimnet::runtime {

namespace {

constexpr int kBarrierTag = kReservedTagBase + 0;  // reserved (doc only)
constexpr int kGatherTag = kReservedTagBase + 1;
constexpr int kBroadcastTag = kReservedTagBase + 2;

[[maybe_unused]] constexpr int kReservedTagsEnd = kReservedTagBase + 3;

}  // namespace

int RankHandle::size() const noexcept { return comm_->size(); }

void validatePayloadLength(std::int64_t declaredBytes) {
  CHISIM_CHECK(declaredBytes >= 0,
               "negative payload length in message header: " +
                   std::to_string(declaredBytes));
  CHISIM_CHECK(static_cast<std::uint64_t>(declaredBytes) <= kMaxPayloadBytes,
               "payload length " + std::to_string(declaredBytes) +
                   " exceeds the " + std::to_string(kMaxPayloadBytes) +
                   "-byte message limit (corrupt or hostile header)");
}

void RankHandle::send(int dest, int tag, std::span<const std::byte> payload) {
  CHISIM_REQUIRE(dest >= 0 && dest < comm_->size(), "invalid destination rank");
  validatePayloadLength(static_cast<std::int64_t>(payload.size()));
  Message message;
  message.source = rank_;
  message.tag = tag;
  message.payload.assign(payload.begin(), payload.end());
  comm_->post(dest, std::move(message));
}

Message RankHandle::recv(int source, int tag) {
  auto& box = *comm_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mutex);
  Message out;
  while (true) {
    if (comm_->matchAndPop(box, source, tag, out)) {
      return out;
    }
    CHISIM_CHECK(!comm_->aborted(), "communicator aborted while receiving");
    box.ready.wait(lock);
  }
}

std::optional<Message> RankHandle::recvFor(std::chrono::milliseconds timeout,
                                           int source, int tag) {
  auto& box = *comm_->mailboxes_[rank_];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(box.mutex);
  Message out;
  while (true) {
    if (comm_->matchAndPop(box, source, tag, out)) {
      return out;
    }
    CHISIM_CHECK(!comm_->aborted(), "communicator aborted while receiving");
    if (box.ready.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look: the message may have raced in with the timeout.
      if (comm_->matchAndPop(box, source, tag, out)) {
        return out;
      }
      return std::nullopt;
    }
  }
}

bool RankHandle::tryRecv(Message& out, int source, int tag) {
  auto& box = *comm_->mailboxes_[rank_];
  std::lock_guard<std::mutex> lock(box.mutex);
  return comm_->matchAndPop(box, source, tag, out);
}

std::size_t RankHandle::pendingMessages() const {
  const auto& box = *comm_->mailboxes_[rank_];
  std::lock_guard<std::mutex> lock(box.mutex);
  return box.messages.size();
}

void RankHandle::barrier() {
  (void)kBarrierTag;
  std::unique_lock<std::mutex> lock(comm_->barrierMutex_);
  const std::uint64_t generation = comm_->barrierGeneration_;
  if (++comm_->barrierWaiting_ == comm_->size()) {
    comm_->barrierWaiting_ = 0;
    ++comm_->barrierGeneration_;
    comm_->barrierReady_.notify_all();
    return;
  }
  comm_->barrierReady_.wait(lock, [this, generation] {
    return comm_->barrierGeneration_ != generation || comm_->aborted();
  });
  CHISIM_CHECK(!comm_->aborted(), "communicator aborted in barrier");
}

std::vector<std::vector<std::byte>> RankHandle::gather(
    int root, std::span<const std::byte> bytes) {
  CHISIM_REQUIRE(root >= 0 && root < size(), "invalid root rank");
  if (rank_ != root) {
    send(root, kGatherTag, bytes);
    return {};
  }
  std::vector<std::vector<std::byte>> buffers(size());
  buffers[root].assign(bytes.begin(), bytes.end());
  for (int source = 0; source < size(); ++source) {
    if (source == root) {
      continue;
    }
    buffers[source] = recv(source, kGatherTag).payload;
  }
  return buffers;
}

std::vector<std::byte> RankHandle::broadcast(int root,
                                             std::span<const std::byte> bytes) {
  CHISIM_REQUIRE(root >= 0 && root < size(), "invalid root rank");
  if (rank_ == root) {
    for (int dest = 0; dest < size(); ++dest) {
      if (dest != root) {
        send(dest, kBroadcastTag, bytes);
      }
    }
    return std::vector<std::byte>(bytes.begin(), bytes.end());
  }
  return recv(root, kBroadcastTag).payload;
}

std::uint64_t RankHandle::allReduceU64(
    std::uint64_t value,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op) {
  constexpr int root = 0;
  const auto bytes = std::as_bytes(std::span<const std::uint64_t>(&value, 1));
  const auto buffers = gather(root, bytes);
  std::uint64_t reduced = value;
  if (rank_ == root) {
    bool first = true;
    for (const auto& buffer : buffers) {
      std::uint64_t contribution = 0;
      CHISIM_CHECK(buffer.size() == sizeof(std::uint64_t),
                   "allReduceU64 payload size mismatch");
      std::memcpy(&contribution, buffer.data(), sizeof(contribution));
      reduced = first ? contribution : op(reduced, contribution);
      first = false;
    }
  }
  const auto out = broadcast(
      root, std::as_bytes(std::span<const std::uint64_t>(&reduced, 1)));
  std::uint64_t result = 0;
  std::memcpy(&result, out.data(), sizeof(result));
  return result;
}

Communicator::Communicator(int rankCount) {
  CHISIM_REQUIRE(rankCount > 0, "communicator needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(rankCount));
  for (int i = 0; i < rankCount; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

RankHandle Communicator::handle(int rank) {
  CHISIM_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  return RankHandle(this, rank);
}

void Communicator::post(int dest, Message message) {
  auto& box = *mailboxes_[dest];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.ready.notify_all();
}

bool Communicator::matchAndPop(Mailbox& box, int source, int tag,
                               Message& out) {
  for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
    const bool sourceMatch = source == kAnySource || it->source == source;
    const bool tagMatch = tag == kAnyTag || it->tag == tag;
    if (sourceMatch && tagMatch) {
      out = std::move(*it);
      box.messages.erase(it);
      return true;
    }
  }
  return false;
}

void Communicator::abort() noexcept {
  aborted_ = true;
  for (auto& box : mailboxes_) {
    box->ready.notify_all();
  }
  barrierReady_.notify_all();
}

RankTeam::RankTeam(int rankCount, std::function<void(RankHandle&)> service)
    : comm_(rankCount),
      root_(comm_.handle(0)),
      health_(static_cast<std::size_t>(rankCount), RankHealth::kHealthy) {
  threads_.reserve(static_cast<std::size_t>(rankCount - 1));
  for (int rank = 1; rank < rankCount; ++rank) {
    threads_.emplace_back([this, rank, service] {
      RankHandle handle = comm_.handle(rank);
      try {
        service(handle);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errorMutex_);
          if (!firstError_) {
            firstError_ = std::current_exception();
          }
        }
        comm_.abort();
      }
    });
  }
}

RankTeam::~RankTeam() {
  // Wake services blocked in recv/barrier; a service that already consumed
  // its stop command has returned and is unaffected.
  comm_.abort();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void RankTeam::markLost(int rank) {
  CHISIM_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  CHISIM_REQUIRE(rank != 0, "rank 0 is the caller and cannot be lost");
  std::lock_guard<std::mutex> lock(healthMutex_);
  health_[static_cast<std::size_t>(rank)] = RankHealth::kLost;
}

bool RankTeam::isLive(int rank) const {
  return health(rank) == RankHealth::kHealthy;
}

RankTeam::RankHealth RankTeam::health(int rank) const {
  CHISIM_REQUIRE(rank >= 0 && rank < size(), "invalid rank");
  std::lock_guard<std::mutex> lock(healthMutex_);
  return health_[static_cast<std::size_t>(rank)];
}

int RankTeam::liveCount() const {
  std::lock_guard<std::mutex> lock(healthMutex_);
  int live = 0;
  for (const RankHealth state : health_) {
    live += state == RankHealth::kHealthy ? 1 : 0;
  }
  return live;
}

std::exception_ptr RankTeam::serviceError() const {
  std::lock_guard<std::mutex> lock(errorMutex_);
  return firstError_;
}

void RankTeam::rethrowServiceError() {
  if (const std::exception_ptr error = serviceError()) {
    std::rethrow_exception(error);
  }
}

void Communicator::run(int rankCount,
                       const std::function<void(RankHandle&)>& body) {
  Communicator comm(rankCount);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(rankCount));
  std::mutex errorMutex;
  std::exception_ptr firstError;

  for (int rank = 0; rank < rankCount; ++rank) {
    threads.emplace_back([&comm, &body, &errorMutex, &firstError, rank] {
      RankHandle handle = comm.handle(rank);
      try {
        body(handle);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errorMutex);
          if (!firstError) {
            firstError = std::current_exception();
          }
        }
        comm.abort();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace chisimnet::runtime
