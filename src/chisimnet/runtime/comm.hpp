#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "chisimnet/util/error.hpp"

/// Message-passing substrate (the MPI substitute).
///
/// The paper runs chiSIM on Repast HPC over MPI: places live on ranks,
/// agents migrate between ranks by message, and each rank logs its own
/// events. This module reproduces that structure behind a pluggable
/// `Transport`: the default `Communicator` keeps ranks as threads and
/// mailboxes as the wire, while `ProcessTransport`
/// (process_transport.hpp) moves ranks into separate OS processes over
/// Unix-domain sockets. Every rank-level algorithm (migration,
/// scatter/reduce synthesis) runs unchanged on either. Semantics follow
/// MPI where it matters: point-to-point messages between a (source, dest,
/// tag) triple are non-overtaking, recv blocks, collectives are executed
/// by all ranks in the same order (SPMD).

namespace chisimnet::runtime {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for collectives.
inline constexpr int kReservedTagBase = 1 << 24;

/// Default ceiling on a single message payload. In-process this bounds a
/// runaway serialization bug; on the socket transport it is the value a
/// received length header is validated against before any allocation
/// happens. At city scale a whole-matrix stage-5 reply CAN legitimately
/// approach this, which is why oversized synthesis replies spill to run
/// files and cross the wire as paths (net/mp_protocol) instead of aborting
/// against the cap.
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

/// The effective payload ceiling: kMaxPayloadBytes unless overridden by
/// the CHISIMNET_MAX_PAYLOAD_BYTES environment variable (read once, so
/// exec'd worker processes inherit the root's value) or by
/// setMaxPayloadBytesForTesting(). Tests lower it to force the spill-reply
/// path without gigabyte fixtures.
std::uint64_t maxPayloadBytes() noexcept;

/// Overrides the effective ceiling for this process (0 restores the
/// env/default resolution on the next query).
void setMaxPayloadBytesForTesting(std::uint64_t bytes) noexcept;

/// Validates a payload length as read off a wire header (or any untrusted
/// framing) BEFORE it is used to size an allocation. Rejects negative
/// lengths and lengths above maxPayloadBytes() with a clear error naming
/// both, instead of letting vector::resize() abort the process or OOM.
void validatePayloadLength(std::int64_t declaredBytes);

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;

  /// Reinterprets the payload as a vector of trivially copyable T.
  template <typename T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CHISIM_CHECK(payload.size() % sizeof(T) == 0,
                 "payload size not a multiple of element size");
    std::vector<T> values(payload.size() / sizeof(T));
    if (!payload.empty()) {
      std::memcpy(values.data(), payload.data(), payload.size());
    }
    return values;
  }

  template <typename T>
  T value() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CHISIM_CHECK(payload.size() == sizeof(T), "payload is not a single T");
    T out;
    std::memcpy(&out, payload.data(), sizeof(T));
    return out;
  }
};

/// Thread-safe mailbox of messages matched by (source, tag), FIFO per
/// pair. Shared by the in-process Communicator (one per rank) and the
/// socket transport (one for the root endpoint, fed by reader threads).
class MessageQueue {
 public:
  void post(Message message);

  /// Wakes every waiter so it re-evaluates its `interrupted` predicate.
  /// Call after changing any external state a waiter might be gated on
  /// (abort flags, rank death).
  void notifyAll() noexcept;

  std::size_t pending() const;

  bool tryRecv(Message& out, int source, int tag);

  enum class WaitResult { kMessage, kTimeout, kInterrupted };

  /// Waits until a message matching (source, tag) arrives (-> kMessage,
  /// `out` filled), `deadline` passes (-> kTimeout), or `interrupted()`
  /// returns true (-> kInterrupted). Pass nullopt as the deadline for an
  /// unbounded wait. A queued match always wins over both timeout and
  /// interruption: messages delivered before an abort are still received.
  WaitResult wait(
      Message& out, int source, int tag,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      const std::function<bool()>& interrupted);

 private:
  bool matchAndPop(int source, int tag, Message& out);

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Message> messages_;
};

/// The wire under a rank group. `self` is the calling rank; in-process
/// every rank calls in, on the socket transport only the root endpoint
/// (rank 0) lives in this process and workers speak the frame protocol
/// directly (see ProcessWorkerLink).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int size() const noexcept = 0;
  virtual void send(int self, int dest, int tag,
                    std::span<const std::byte> payload) = 0;
  virtual Message recv(int self, int source, int tag) = 0;
  virtual std::optional<Message> recvFor(int self,
                                         std::chrono::milliseconds timeout,
                                         int source, int tag) = 0;
  virtual bool tryRecv(int self, Message& out, int source, int tag) = 0;
  virtual std::size_t pendingMessages(int self) const = 0;
  virtual void barrier(int self) = 0;

  /// Wakes every blocked receive with an error; used on teardown after a
  /// failure so no thread deadlocks in recv.
  virtual void abort() noexcept = 0;

  /// Announces orderly shutdown: from here on, peers disappearing is
  /// expected and must not be treated as failure (no respawn, no error).
  /// Called by drivers before they send stop commands. No-op in-process.
  virtual void quiesce() noexcept {}

  /// Permanently gives up on `rank`: stop monitoring it, stop respawning
  /// it, reap whatever backs it. Called when a driver marks the rank
  /// lost. No-op in-process (the service thread exits via abort/stop).
  virtual void forsakeRank(int /*rank*/) {}
};

/// A single rank's endpoint. All methods are called from that rank's
/// thread. A thin, copyable view over a Transport.
class RankHandle {
 public:
  RankHandle(Transport* transport, int rank)
      : transport_(transport), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return transport_->size(); }

  /// Sends bytes to `dest` (non-blocking, buffered).
  void send(int dest, int tag, std::span<const std::byte> payload);

  /// Sends a trivially copyable value.
  template <typename T>
  void sendValue(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, std::as_bytes(std::span<const T>(&value, 1)));
  }

  /// Sends a contiguous vector of trivially copyable elements.
  template <typename T>
  void sendVector(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, std::as_bytes(values));
  }

  /// Blocks until a message matching (source, tag) arrives; kAnySource /
  /// kAnyTag act as wildcards. Matching is FIFO per (source, tag) pair.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// recv with a deadline: blocks at most `timeout` and returns nullopt if
  /// no matching message arrived by then. The per-command deadline the
  /// fault-tolerant executor uses to detect lost ranks. On the socket
  /// transport this also returns nullopt early once `source` is known to
  /// be permanently dead.
  std::optional<Message> recvFor(std::chrono::milliseconds timeout,
                                 int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  bool tryRecv(Message& out, int source = kAnySource, int tag = kAnyTag);

  /// Number of queued messages (diagnostic).
  std::size_t pendingMessages() const;

  // ---- collectives (all ranks must call in the same order) ----

  void barrier();

  /// Gathers each rank's bytes at root; returns size() buffers at root
  /// (indexed by rank), empty elsewhere.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::span<const std::byte> bytes);

  /// Broadcasts root's bytes to every rank; returns the bytes everywhere.
  std::vector<std::byte> broadcast(int root, std::span<const std::byte> bytes);

  /// Reduces a u64 with a binary op at root (returned at every rank via a
  /// follow-up broadcast, i.e. allreduce semantics).
  std::uint64_t allReduceU64(std::uint64_t value,
                             const std::function<std::uint64_t(
                                 std::uint64_t, std::uint64_t)>& op);

  /// allReduceU64 with min — the agreement primitive of the event-driven
  /// ABM core's first lookahead round.
  std::uint64_t allReduceMinU64(std::uint64_t value);

 private:
  Transport* transport_;
  int rank_;
};

/// Shared state for a fixed-size group of in-process ranks (threads).
class Communicator : public Transport {
 public:
  explicit Communicator(int rankCount);

  int size() const noexcept override {
    return static_cast<int>(mailboxes_.size());
  }
  RankHandle handle(int rank);

  void send(int self, int dest, int tag,
            std::span<const std::byte> payload) override;
  Message recv(int self, int source, int tag) override;
  std::optional<Message> recvFor(int self, std::chrono::milliseconds timeout,
                                 int source, int tag) override;
  bool tryRecv(int self, Message& out, int source, int tag) override;
  std::size_t pendingMessages(int self) const override;
  void barrier(int self) override;
  void abort() noexcept override;

  /// Runs `body(rankHandle)` on `rankCount` threads, one per rank, and
  /// joins. The first exception thrown by any rank is rethrown after all
  /// threads finish (remaining ranks may deadlock-free drain because all
  /// blocking recvs are woken by the abort flag).
  static void run(int rankCount,
                  const std::function<void(RankHandle&)>& body);

 private:
  bool aborted() const noexcept { return aborted_; }

  std::vector<std::unique_ptr<MessageQueue>> mailboxes_;

  // Generation-counting barrier.
  std::mutex barrierMutex_;
  std::condition_variable barrierReady_;
  int barrierWaiting_ = 0;
  std::uint64_t barrierGeneration_ = 0;

  std::atomic<bool> aborted_ = false;
};

/// Persistent rank group for iterative root-driven algorithms.
///
/// Communicator::run spawns and joins one thread per rank for a single SPMD
/// body — fine for one-shot jobs, wasteful for pipelines that issue many
/// rounds of scatter/compute/reduce (one batch per round). RankTeam keeps
/// the ranks alive instead: the constructing thread acts as rank 0 and
/// drives the group through `root()`, while ranks 1..rankCount-1 each run
/// `service(handle)` on a background thread. A service is typically a
/// command loop — recv a command from rank 0, perform a stage, repeat until
/// a stop command — so the same threads serve every round.
///
/// Alternatively a team can be built over an external Transport (the
/// socket transport) whose workers live in other OS processes; the team
/// then owns no service threads and the transport owns worker lifetime.
///
/// Shutdown: the service must return for the team to join cleanly (send it
/// a stop command before destruction). The destructor additionally aborts
/// the transport, so services blocked mid-recv (e.g. after a root-side
/// failure) wake, throw, and exit rather than deadlock the join. Messages
/// already delivered are matched before the abort flag is checked, so a
/// stop command sent just before destruction is always honored.
///
/// A service body that throws records the first error (retrievable via
/// serviceError()/rethrowServiceError()) and aborts the communicator, which
/// makes the root's next blocking call throw "communicator aborted".
///
/// Health: each rank carries a health state so a fault-tolerant driver can
/// route around a worker that died or stopped answering. The team itself
/// never marks a rank — detection (reply deadline, failed reply, silent
/// exit) lives in the executor, which calls markLost(); the team just keeps
/// the book so every stage sees one consistent live set. markLost also
/// forsakes the rank at the transport (kills and stops respawning a worker
/// process; no-op in-process).
class RankTeam {
 public:
  enum class RankHealth { kHealthy, kLost };

  /// In-process team: ranks 1..rankCount-1 run `service` on threads.
  RankTeam(int rankCount, std::function<void(RankHandle&)> service);

  /// Team over an external transport (worker ranks live elsewhere, e.g.
  /// in other processes). The team owns the transport and no threads.
  explicit RankTeam(std::unique_ptr<Transport> transport);

  ~RankTeam();

  RankTeam(const RankTeam&) = delete;
  RankTeam& operator=(const RankTeam&) = delete;

  int size() const noexcept { return transport_->size(); }

  /// The calling thread's endpoint (rank 0). Only the constructing thread
  /// may use it.
  RankHandle& root() noexcept { return root_; }

  /// The wire under the team (for quiesce() before orderly shutdown).
  Transport& transport() noexcept { return *transport_; }

  /// First exception thrown by a service thread, if any.
  std::exception_ptr serviceError() const;

  /// Rethrows the first service error; no-op when none occurred.
  void rethrowServiceError();

  /// Marks `rank` permanently lost; idempotent. Rank 0 (the caller) cannot
  /// be marked lost.
  void markLost(int rank);
  bool isLive(int rank) const;
  RankHealth health(int rank) const;
  /// Ranks still healthy (always >= 1: rank 0).
  int liveCount() const;
  /// Ranks marked lost so far.
  int lostCount() const { return size() - liveCount(); }

 private:
  std::unique_ptr<Transport> transport_;
  RankHandle root_;
  mutable std::mutex errorMutex_;
  std::exception_ptr firstError_;
  mutable std::mutex healthMutex_;
  std::vector<RankHealth> health_;
  std::vector<std::thread> threads_;
};

}  // namespace chisimnet::runtime
