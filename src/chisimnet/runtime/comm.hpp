#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "chisimnet/util/error.hpp"

/// In-process message-passing substrate (the MPI substitute).
///
/// The paper runs chiSIM on Repast HPC over MPI: places live on ranks,
/// agents migrate between ranks by message, and each rank logs its own
/// events. This module reproduces that structure with ranks as threads and
/// mailboxes as the transport, so every rank-level algorithm (migration,
/// scatter/reduce synthesis) runs unchanged in one process. Semantics follow
/// MPI where it matters: point-to-point messages between a (source, dest,
/// tag) triple are non-overtaking, recv blocks, collectives are executed by
/// all ranks in the same order (SPMD).

namespace chisimnet::runtime {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for collectives.
inline constexpr int kReservedTagBase = 1 << 24;

/// Hard ceiling on a single message payload. In-process this bounds a
/// runaway serialization bug; on the future socket transport it is the
/// value a received length header is validated against before any
/// allocation happens. 1 GiB is far above the largest legitimate frame
/// (a full per-rank matrix batch at Chicago scale is tens of MiB).
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

/// Validates a payload length as read off a wire header (or any untrusted
/// framing) BEFORE it is used to size an allocation. Rejects negative
/// lengths and lengths above kMaxPayloadBytes with a clear error naming
/// both, instead of letting vector::resize() abort the process or OOM.
void validatePayloadLength(std::int64_t declaredBytes);

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;

  /// Reinterprets the payload as a vector of trivially copyable T.
  template <typename T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CHISIM_CHECK(payload.size() % sizeof(T) == 0,
                 "payload size not a multiple of element size");
    std::vector<T> values(payload.size() / sizeof(T));
    if (!payload.empty()) {
      std::memcpy(values.data(), payload.data(), payload.size());
    }
    return values;
  }

  template <typename T>
  T value() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CHISIM_CHECK(payload.size() == sizeof(T), "payload is not a single T");
    T out;
    std::memcpy(&out, payload.data(), sizeof(T));
    return out;
  }
};

class Communicator;

/// A single rank's endpoint. All methods are called from that rank's thread.
class RankHandle {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Sends bytes to `dest` (non-blocking, buffered).
  void send(int dest, int tag, std::span<const std::byte> payload);

  /// Sends a trivially copyable value.
  template <typename T>
  void sendValue(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, std::as_bytes(std::span<const T>(&value, 1)));
  }

  /// Sends a contiguous vector of trivially copyable elements.
  template <typename T>
  void sendVector(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, std::as_bytes(values));
  }

  /// Blocks until a message matching (source, tag) arrives; kAnySource /
  /// kAnyTag act as wildcards. Matching is FIFO per (source, tag) pair.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// recv with a deadline: blocks at most `timeout` and returns nullopt if
  /// no matching message arrived by then. The per-command deadline the
  /// fault-tolerant executor uses to detect lost ranks.
  std::optional<Message> recvFor(std::chrono::milliseconds timeout,
                                 int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  bool tryRecv(Message& out, int source = kAnySource, int tag = kAnyTag);

  /// Number of queued messages (diagnostic).
  std::size_t pendingMessages() const;

  // ---- collectives (all ranks must call in the same order) ----

  void barrier();

  /// Gathers each rank's bytes at root; returns size() buffers at root
  /// (indexed by rank), empty elsewhere.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::span<const std::byte> bytes);

  /// Broadcasts root's bytes to every rank; returns the bytes everywhere.
  std::vector<std::byte> broadcast(int root, std::span<const std::byte> bytes);

  /// Reduces a u64 with a binary op at root (returned at every rank via a
  /// follow-up broadcast, i.e. allreduce semantics).
  std::uint64_t allReduceU64(std::uint64_t value,
                             const std::function<std::uint64_t(
                                 std::uint64_t, std::uint64_t)>& op);

 private:
  friend class Communicator;
  RankHandle(Communicator* comm, int rank) : comm_(comm), rank_(rank) {}

  Communicator* comm_;
  int rank_;
};

/// Shared state for a fixed-size group of ranks.
class Communicator {
 public:
  explicit Communicator(int rankCount);

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  RankHandle handle(int rank);

  /// Runs `body(rankHandle)` on `rankCount` threads, one per rank, and
  /// joins. The first exception thrown by any rank is rethrown after all
  /// threads finish (remaining ranks may deadlock-free drain because all
  /// blocking recvs are woken by the abort flag).
  static void run(int rankCount,
                  const std::function<void(RankHandle&)>& body);

 private:
  friend class RankHandle;

  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable ready;
    std::deque<Message> messages;
  };

  void post(int dest, Message message);
  bool matchAndPop(Mailbox& box, int source, int tag, Message& out);

  void abort() noexcept;
  bool aborted() const noexcept { return aborted_; }

  friend class RankTeam;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Generation-counting barrier.
  std::mutex barrierMutex_;
  std::condition_variable barrierReady_;
  int barrierWaiting_ = 0;
  std::uint64_t barrierGeneration_ = 0;

  std::atomic<bool> aborted_ = false;
};

/// Persistent rank group for iterative root-driven algorithms.
///
/// Communicator::run spawns and joins one thread per rank for a single SPMD
/// body — fine for one-shot jobs, wasteful for pipelines that issue many
/// rounds of scatter/compute/reduce (one batch per round). RankTeam keeps
/// the ranks alive instead: the constructing thread acts as rank 0 and
/// drives the group through `root()`, while ranks 1..rankCount-1 each run
/// `service(handle)` on a background thread. A service is typically a
/// command loop — recv a command from rank 0, perform a stage, repeat until
/// a stop command — so the same threads serve every round.
///
/// Shutdown: the service must return for the team to join cleanly (send it
/// a stop command before destruction). The destructor additionally aborts
/// the communicator, so services blocked mid-recv (e.g. after a root-side
/// failure) wake, throw, and exit rather than deadlock the join. Messages
/// already delivered are matched before the abort flag is checked, so a
/// stop command sent just before destruction is always honored.
///
/// A service body that throws records the first error (retrievable via
/// serviceError()/rethrowServiceError()) and aborts the communicator, which
/// makes the root's next blocking call throw "communicator aborted".
///
/// Health: each rank carries a health state so a fault-tolerant driver can
/// route around a worker that died or stopped answering. The team itself
/// never marks a rank — detection (reply deadline, failed reply, silent
/// exit) lives in the executor, which calls markLost(); the team just keeps
/// the book so every stage sees one consistent live set.
class RankTeam {
 public:
  enum class RankHealth { kHealthy, kLost };

  RankTeam(int rankCount, std::function<void(RankHandle&)> service);
  ~RankTeam();

  RankTeam(const RankTeam&) = delete;
  RankTeam& operator=(const RankTeam&) = delete;

  int size() const noexcept { return comm_.size(); }

  /// The calling thread's endpoint (rank 0). Only the constructing thread
  /// may use it.
  RankHandle& root() noexcept { return root_; }

  /// First exception thrown by a service thread, if any.
  std::exception_ptr serviceError() const;

  /// Rethrows the first service error; no-op when none occurred.
  void rethrowServiceError();

  /// Marks `rank` permanently lost; idempotent. Rank 0 (the caller) cannot
  /// be marked lost.
  void markLost(int rank);
  bool isLive(int rank) const;
  RankHealth health(int rank) const;
  /// Ranks still healthy (always >= 1: rank 0).
  int liveCount() const;
  /// Ranks marked lost so far.
  int lostCount() const { return size() - liveCount(); }

 private:
  Communicator comm_;
  RankHandle root_;
  mutable std::mutex errorMutex_;
  std::exception_ptr firstError_;
  mutable std::mutex healthMutex_;
  std::vector<RankHealth> health_;
  std::vector<std::thread> threads_;
};

}  // namespace chisimnet::runtime
