#include "chisimnet/runtime/process_transport.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "chisimnet/runtime/fault.hpp"

extern char** environ;

namespace chisimnet::runtime {

namespace {

int envInt(const char* name) {
  const char* value = std::getenv(name);
  CHISIM_CHECK(value != nullptr,
               std::string("missing worker bootstrap variable ") + name);
  return std::atoi(value);
}

}  // namespace

// ------------------------------------------------------------ worker end

bool ProcessWorkerLink::isWorkerProcess() {
  return std::getenv(kWorkerFdEnv) != nullptr;
}

ProcessWorkerLink::ProcessWorkerLink()
    : fd_(envInt(kWorkerFdEnv)),
      rank_(envInt(kWorkerRankEnv)),
      rankCount_(envInt(kWorkerRankCountEnv)) {
  CHISIM_CHECK(fd_ >= 0, "invalid worker socket descriptor");
  CHISIM_CHECK(rank_ >= 1 && rank_ < rankCount_, "invalid worker rank");
}

ProcessWorkerLink::~ProcessWorkerLink() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (pump_.joinable()) {
    pump_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

ProcessWorkerLink::Hello ProcessWorkerLink::handshake() {
  CHISIM_REQUIRE(!pump_.joinable(), "handshake already performed");
  wire::FrameReader reader(wire::fdReadFn(fd_));
  auto frame = reader.next();
  CHISIM_CHECK(frame.has_value() && frame->kind == wire::FrameKind::kHello,
               "worker expected a hello frame from the root");
  Hello hello;
  hello.epoch = static_cast<std::uint64_t>(frame->tag);
  hello.payload = std::move(frame->payload);
  wire::Frame ack;
  ack.kind = wire::FrameKind::kHelloAck;
  ack.tag = frame->tag;
  {
    std::lock_guard<std::mutex> lock(writeMutex_);
    CHISIM_CHECK(wire::writeAllFd(fd_, wire::encodeFrame(ack)),
                 "worker failed to ack the hello frame");
  }
  pump_ = std::thread([this, reader = std::move(reader)]() mutable {
    pumpLoop(std::move(reader));
  });
  return hello;
}

void ProcessWorkerLink::pumpLoop(wire::FrameReader reader) {
  try {
    while (true) {
      auto frame = reader.next();
      if (!frame.has_value()) {
        break;  // root closed the connection
      }
      switch (frame->kind) {
        case wire::FrameKind::kData: {
          Message message;
          message.source = 0;
          message.tag = frame->tag;
          message.payload = std::move(frame->payload);
          queue_.post(std::move(message));
          break;
        }
        case wire::FrameKind::kPing: {
          wire::Frame pong;
          pong.kind = wire::FrameKind::kPong;
          pong.tag = frame->tag;
          std::lock_guard<std::mutex> lock(writeMutex_);
          if (!wire::writeAllFd(fd_, wire::encodeFrame(pong))) {
            closed_ = true;
            queue_.notifyAll();
            return;
          }
          break;
        }
        default:
          break;  // stray hello/ack/pong: ignore
      }
    }
  } catch (...) {
    // Torn or corrupt frame: the stream can no longer be trusted.
  }
  closed_ = true;
  queue_.notifyAll();
}

Message ProcessWorkerLink::recv() {
  Message out;
  const auto result = queue_.wait(out, 0, kAnyTag, std::nullopt,
                                  [this] { return closed_.load(); });
  CHISIM_CHECK(result == MessageQueue::WaitResult::kMessage,
               "root connection closed");
  return out;
}

void ProcessWorkerLink::send(int tag, std::span<const std::byte> payload) {
  validatePayloadLength(static_cast<std::int64_t>(payload.size()));
  wire::Frame frame;
  frame.kind = wire::FrameKind::kData;
  frame.tag = tag;
  frame.payload.assign(payload.begin(), payload.end());
  std::vector<std::byte> encoded = wire::encodeFrame(frame);
  if (fault::armed()) {
    FaultSite ctx;
    ctx.rank = rank_;
    ctx.payload = &encoded;
    fault::hit("proc.worker.send", ctx);
  }
  std::lock_guard<std::mutex> lock(writeMutex_);
  // A failed or torn write means the root will poison this connection; the
  // worker keeps running and exits when its read side reaches EOF.
  (void)wire::writeAllFd(fd_, encoded);
}

// -------------------------------------------------------------- root end

ProcessTransport::ProcessTransport(ProcessTransportOptions options)
    : options_(std::move(options)), beats_(options_.rankCount) {
  CHISIM_REQUIRE(options_.rankCount >= 1, "transport needs at least one rank");
  CHISIM_REQUIRE(options_.heartbeatMs >= 1, "heartbeat period must be >= 1ms");
  CHISIM_REQUIRE(options_.heartbeatMissLimit >= 2,
                 "heartbeat miss limit must be >= 2");
  CHISIM_REQUIRE(options_.maxRespawns >= 0, "negative respawn budget");
  slots_.reserve(static_cast<std::size_t>(options_.rankCount));
  for (int rank = 0; rank < options_.rankCount; ++rank) {
    slots_.push_back(std::make_unique<Slot>());
  }
  pumps_.resize(static_cast<std::size_t>(options_.rankCount));
  try {
    std::lock_guard<std::mutex> spawnLock(spawnMutex_);
    for (int rank = 1; rank < options_.rankCount; ++rank) {
      spawnWorker(rank);
    }
  } catch (...) {
    shuttingDown_ = true;
    for (auto& s : slots_) {
      if (s->pid > 0) {
        ::kill(s->pid, SIGKILL);
        ::waitpid(s->pid, nullptr, 0);
      }
      shutdownSlotFd(*s);
    }
    for (std::thread& pump : pumps_) {
      if (pump.joinable()) {
        pump.join();
      }
    }
    for (auto& s : slots_) {
      closeSlotFd(*s);
    }
    throw;
  }
  monitor_ = std::make_unique<PeriodicTask>(
      std::chrono::milliseconds(options_.heartbeatMs),
      [this] { monitorTick(); });
}

ProcessTransport::~ProcessTransport() {
  shuttingDown_ = true;
  monitor_.reset();  // joins the monitor thread; no more respawns
  aborted_ = true;
  rootQueue_.notifyAll();

  // Grace period: after quiesce() + stop commands the workers exit on
  // their own; give them a moment before escalating to SIGKILL.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::vector<pid_t> waiting;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    for (auto& s : slots_) {
      if (s->pid > 0) {
        waiting.push_back(s->pid);
      }
    }
  }
  while (!waiting.empty() && std::chrono::steady_clock::now() < deadline) {
    for (auto it = waiting.begin(); it != waiting.end();) {
      if (::waitpid(*it, nullptr, WNOHANG) == *it) {
        it = waiting.erase(it);
      } else {
        ++it;
      }
    }
    if (!waiting.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  for (const pid_t pid : waiting) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }

  for (auto& s : slots_) {
    shutdownSlotFd(*s);  // wakes the pump with EOF
  }
  for (std::thread& pump : pumps_) {
    if (pump.joinable()) {
      pump.join();
    }
  }
  for (std::thread& pump : retiredPumps_) {
    if (pump.joinable()) {
      pump.join();
    }
  }
  for (auto& s : slots_) {
    closeSlotFd(*s);
  }
}

ProcessTransport::Slot& ProcessTransport::slot(int rank) const {
  CHISIM_REQUIRE(rank >= 1 && rank < options_.rankCount,
                 "invalid worker rank");
  return *slots_[static_cast<std::size_t>(rank)];
}

void ProcessTransport::spawnWorker(int rank) {
  Slot& s = slot(rank);
  const std::uint64_t epoch = s.epoch + 1;

  int fds[2] = {-1, -1};
  CHISIM_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
               std::string("socketpair failed: ") + std::strerror(errno));
  // Parent end must not leak into later-spawned siblings (spawns are
  // serialized under spawnMutex_, so no fork happens between socketpair
  // and this fcntl); the child end stays inheritable for exec.
  wire::configureStreamSocket(fds[0], /*tcp=*/false);

  const std::string exe =
      options_.executable.empty() ? "/proc/self/exe" : options_.executable;

  // Build argv/envp BEFORE fork: the child of a multithreaded parent may
  // only call async-signal-safe functions, so no allocation after fork.
  std::vector<std::string> env;
  for (char** entry = environ; *entry != nullptr; ++entry) {
    const std::string_view view(*entry);
    if (view.starts_with(std::string(kWorkerFdEnv) + "=") ||
        view.starts_with(std::string(kWorkerRankEnv) + "=") ||
        view.starts_with(std::string(kWorkerRankCountEnv) + "=") ||
        view.starts_with(std::string(kWorkerFaultPlanEnv) + "=")) {
      continue;
    }
    env.emplace_back(view);
  }
  env.push_back(std::string(kWorkerFdEnv) + "=" + std::to_string(fds[1]));
  env.push_back(std::string(kWorkerRankEnv) + "=" + std::to_string(rank));
  env.push_back(std::string(kWorkerRankCountEnv) + "=" +
                std::to_string(options_.rankCount));
  if (FaultPlan* plan = fault::current()) {
    env.push_back(std::string(kWorkerFaultPlanEnv) + "=" + plan->encode());
  }
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (std::string& entry : env) {
    envp.push_back(entry.data());
  }
  envp.push_back(nullptr);
  std::string exeArg = exe;
  std::string workerFlag = "--worker";
  char* argv[] = {exeArg.data(), workerFlag.data(), nullptr};

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);  // exec failed; parent sees instant EOF + exit status
  }
  ::close(fds[1]);
  if (pid < 0) {
    ::close(fds[0]);
    throw std::runtime_error(std::string("fork failed: ") + std::strerror(errno));
  }

  // Hello handshake, synchronous with a deadline: the worker must prove it
  // booted (and received the replayed application payload) before the slot
  // goes live.
  const auto handshakeDeadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          std::max<std::uint64_t>(10000, options_.heartbeatMs *
                                             static_cast<std::uint64_t>(
                                                 options_.heartbeatMissLimit)));
  bool acked = false;
  try {
    wire::Frame hello;
    hello.kind = wire::FrameKind::kHello;
    hello.tag = static_cast<std::int32_t>(epoch);
    hello.payload = options_.helloPayload;
    CHISIM_CHECK(wire::writeAllFd(fds[0], wire::encodeFrame(hello)),
                 "failed to send hello to worker");
    wire::FrameReader reader(wire::deadlineReadFn(fds[0], handshakeDeadline));
    while (!acked) {
      auto frame = reader.next();
      CHISIM_CHECK(frame.has_value(), "worker exited during handshake");
      if (frame->kind == wire::FrameKind::kHelloAck &&
          frame->tag == static_cast<std::int32_t>(epoch)) {
        acked = true;
      }
    }
  } catch (...) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    ::close(fds[0]);
    throw;
  }

  {
    std::lock_guard<std::mutex> stateLock(stateMutex_);
    std::lock_guard<std::mutex> writeLock(s.writeMutex);
    s.fd = fds[0];
    s.pid = pid;
    s.epoch = epoch;
    s.spawns += 1;
    s.live = true;
    s.deadPending = false;
    s.lastDeathDetail.clear();
  }
  beats_.beat(rank);
  if (pumps_[static_cast<std::size_t>(rank)].joinable()) {
    retiredPumps_.push_back(
        std::move(pumps_[static_cast<std::size_t>(rank)]));
  }
  const int fd = fds[0];
  pumps_[static_cast<std::size_t>(rank)] =
      std::thread([this, rank, epoch, fd] { pumpLoop(rank, epoch, fd); });
}

void ProcessTransport::pumpLoop(int rank, std::uint64_t epoch, int fd) {
  std::string detail = "socket EOF";
  try {
    wire::FrameReader reader(wire::fdReadFn(fd));
    while (true) {
      auto frame = reader.next();
      if (!frame.has_value()) {
        break;
      }
      beats_.beat(rank);
      switch (frame->kind) {
        case wire::FrameKind::kData: {
          Message message;
          message.source = rank;
          message.tag = frame->tag;
          message.payload = std::move(frame->payload);
          rootQueue_.post(std::move(message));
          break;
        }
        case wire::FrameKind::kPong:
          break;
        default:
          break;
      }
    }
  } catch (const std::exception& error) {
    detail = error.what();
  }
  flagDeath(rank, epoch, detail);
}

void ProcessTransport::shutdownSlotFd(Slot& s) noexcept {
  std::lock_guard<std::mutex> lock(s.writeMutex);
  if (s.fd >= 0) {
    ::shutdown(s.fd, SHUT_RDWR);
  }
}

void ProcessTransport::closeSlotFd(Slot& s) noexcept {
  std::lock_guard<std::mutex> lock(s.writeMutex);
  if (s.fd >= 0) {
    ::close(s.fd);
    s.fd = -1;
  }
}

void ProcessTransport::flagDeath(int rank, std::uint64_t epoch,
                                 const std::string& detail) {
  if (shuttingDown_.load()) {
    return;
  }
  std::lock_guard<std::mutex> lock(stateMutex_);
  Slot& s = slot(rank);
  if (s.epoch != epoch || !s.live) {
    return;  // stale: the slot was already respawned or flagged
  }
  s.live = false;
  s.deadPending = true;
  s.lastDeathDetail = detail;
}

void ProcessTransport::noteEvent(WorkerEvent::Kind kind, int rank,
                                 std::string detail) {
  WorkerEvent event;
  event.kind = kind;
  event.rank = rank;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
}

void ProcessTransport::monitorTick() {
  if (shuttingDown_.load() || aborted_.load()) {
    return;
  }

  // Pass 1: reap exited children and SIGKILL heartbeat-silent ones. Both
  // just poison the connection; the pump thread turns the resulting EOF
  // into a deadPending flag (the single death-flagging path).
  //
  // waitpid-reaping and silence-SIGKILL are LOCAL-CHILD operations: they
  // only apply to slots backed by a pid this process forked (pid > 0). A
  // slot without a local pid — possible once a transport hosts remote
  // peers, as the TCP transport does — must never reach waitpid or kill;
  // its only death signals are socket EOF and ping silence, and silence is
  // handled by poisoning the fd alone.
  const auto silenceLimit = std::chrono::milliseconds(
      options_.heartbeatMs *
      static_cast<std::uint64_t>(options_.heartbeatMissLimit));
  for (int rank = 1; rank < options_.rankCount; ++rank) {
    Slot& s = slot(rank);
    pid_t pid = -1;
    bool live = false;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      pid = s.pid;
      live = s.live;
    }
    const bool hasLocalChild = pid > 0;
    if (hasLocalChild && ::waitpid(pid, nullptr, WNOHANG) == pid) {
      {
        std::lock_guard<std::mutex> lock(stateMutex_);
        s.pid = -1;  // reaped; never waited on again
      }
      shutdownSlotFd(s);
      continue;
    }
    if (live && beats_.overdue(rank, silenceLimit)) {
      if (hasLocalChild) {
        ::kill(pid, SIGKILL);  // presumed hung; reaped next tick
      }
      shutdownSlotFd(s);
    }
  }

  // Pass 2: ping live workers.
  wire::Frame ping;
  ping.kind = wire::FrameKind::kPing;
  const std::vector<std::byte> pingBytes = wire::encodeFrame(ping);
  for (int rank = 1; rank < options_.rankCount; ++rank) {
    Slot& s = slot(rank);
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      if (!s.live) {
        continue;
      }
    }
    std::lock_guard<std::mutex> lock(s.writeMutex);
    if (s.fd >= 0 && !wire::writeAllFd(s.fd, pingBytes)) {
      ::shutdown(s.fd, SHUT_RDWR);
    }
  }

  // Pass 3: classify flagged deaths — respawn while budget remains,
  // otherwise declare the rank permanently dead.
  struct Decision {
    int rank;
    bool respawn;
    std::string detail;
  };
  std::vector<Decision> decisions;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    for (int rank = 1; rank < options_.rankCount; ++rank) {
      Slot& s = slot(rank);
      if (!s.deadPending) {
        continue;
      }
      s.deadPending = false;
      const bool respawn = !quiesced_.load() && !s.forsaken &&
                           s.spawns <= options_.maxRespawns;
      if (!respawn) {
        s.permanentlyDead = true;
        if (!quiesced_.load() && !s.forsaken) {
          noteEvent(WorkerEvent::Kind::kPermanentDeath, rank,
                    s.lastDeathDetail);
        }
      }
      decisions.push_back({rank, respawn, s.lastDeathDetail});
    }
  }

  for (const Decision& decision : decisions) {
    Slot& s = slot(decision.rank);
    // The pump for the dead connection has flagged its death and is
    // exiting; join it before the fd can be closed and its number reused.
    std::thread& pump = pumps_[static_cast<std::size_t>(decision.rank)];
    if (pump.joinable()) {
      pump.join();
    }
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      if (s.pid > 0) {
        // EOF/torn-frame death without an exit yet (e.g. worker closed the
        // socket but lingers, or was poisoned root-side): make it final.
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, nullptr, 0);
        s.pid = -1;
      }
    }
    closeSlotFd(s);
    if (!decision.respawn) {
      rootQueue_.notifyAll();  // recvFor waiters re-check permanent death
      continue;
    }
    try {
      std::lock_guard<std::mutex> spawnLock(spawnMutex_);
      spawnWorker(decision.rank);
      respawns_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(stateMutex_);
      noteEvent(WorkerEvent::Kind::kRespawn, decision.rank, decision.detail);
    } catch (const std::exception& error) {
      std::lock_guard<std::mutex> lock(stateMutex_);
      s.permanentlyDead = true;
      noteEvent(WorkerEvent::Kind::kPermanentDeath, decision.rank,
                decision.detail + "; respawn failed: " + error.what());
      rootQueue_.notifyAll();
    }
  }
}

void ProcessTransport::send(int self, int dest, int tag,
                            std::span<const std::byte> payload) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the process transport");
  CHISIM_REQUIRE(dest >= 0 && dest < options_.rankCount,
                 "invalid destination rank");
  validatePayloadLength(static_cast<std::int64_t>(payload.size()));
  if (dest == 0) {
    Message message;
    message.source = 0;
    message.tag = tag;
    message.payload.assign(payload.begin(), payload.end());
    rootQueue_.post(std::move(message));
    return;
  }
  wire::Frame frame;
  frame.kind = wire::FrameKind::kData;
  frame.tag = tag;
  frame.payload.assign(payload.begin(), payload.end());
  std::vector<std::byte> encoded = wire::encodeFrame(frame);
  if (fault::armed()) {
    FaultSite ctx;
    ctx.rank = dest;
    ctx.payload = &encoded;
    if (fault::hit("proc.send", ctx) == FaultAction::kKillRank) {
      // Scripted root-side kill: a real SIGKILL against the worker.
      const pid_t pid = workerPid(dest);
      if (pid > 0) {
        ::kill(pid, SIGKILL);
      }
      return;
    }
  }
  Slot& s = slot(dest);
  std::lock_guard<std::mutex> lock(s.writeMutex);
  if (s.fd < 0) {
    // Dead or respawning: drop. The driver's per-command timeout resends
    // after backoff, which lands on the respawned worker or times out
    // into markLost.
    return;
  }
  if (!wire::writeAllFd(s.fd, encoded)) {
    ::shutdown(s.fd, SHUT_RDWR);  // poisoned; pump turns this into a death
  }
}

Message ProcessTransport::recv(int self, int source, int tag) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the process transport");
  Message out;
  const auto result = rootQueue_.wait(
      out, source, tag, std::nullopt, [this, source] {
        return aborted_.load() || (source >= 1 && isPermanentlyDead(source));
      });
  if (result == MessageQueue::WaitResult::kInterrupted) {
    CHISIM_CHECK(!aborted_.load(), "transport aborted while receiving");
    throw std::runtime_error("rank " + std::to_string(source) +
                      " is permanently lost; no reply will ever arrive");
  }
  return out;
}

std::optional<Message> ProcessTransport::recvFor(
    int self, std::chrono::milliseconds timeout, int source, int tag) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the process transport");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Message out;
  const auto result = rootQueue_.wait(
      out, source, tag, deadline, [this, source] {
        return aborted_.load() || (source >= 1 && isPermanentlyDead(source));
      });
  if (result == MessageQueue::WaitResult::kInterrupted) {
    CHISIM_CHECK(!aborted_.load(), "transport aborted while receiving");
    return std::nullopt;  // permanently dead source: fail fast, not at the
                          // deadline — the driver converges to markLost
  }
  if (result == MessageQueue::WaitResult::kTimeout) {
    return std::nullopt;
  }
  return out;
}

bool ProcessTransport::tryRecv(int self, Message& out, int source, int tag) {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the process transport");
  return rootQueue_.tryRecv(out, source, tag);
}

std::size_t ProcessTransport::pendingMessages(int self) const {
  CHISIM_REQUIRE(self == 0, "only rank 0 is local to the process transport");
  return rootQueue_.pending();
}

void ProcessTransport::barrier(int /*self*/) {
  throw std::runtime_error(
      "the process transport has no barrier (workers are root-driven)");
}

void ProcessTransport::abort() noexcept {
  aborted_ = true;
  rootQueue_.notifyAll();
}

void ProcessTransport::quiesce() noexcept { quiesced_ = true; }

void ProcessTransport::forsakeRank(int rank) {
  if (rank == 0) {
    return;
  }
  Slot& s = slot(rank);
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    s.forsaken = true;
    s.permanentlyDead = true;
    s.live = false;
    pid = s.pid;
  }
  if (pid > 0) {
    ::kill(pid, SIGKILL);  // reaped by the monitor (or the destructor)
  }
  shutdownSlotFd(s);
  rootQueue_.notifyAll();
}

bool ProcessTransport::isPermanentlyDead(int rank) const {
  if (rank == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(stateMutex_);
  return slot(rank).permanentlyDead;
}

pid_t ProcessTransport::workerPid(int rank) const {
  std::lock_guard<std::mutex> lock(stateMutex_);
  const Slot& s = slot(rank);
  return s.live ? s.pid : -1;
}

std::vector<ProcessTransport::WorkerEvent> ProcessTransport::drainEvents() {
  std::lock_guard<std::mutex> lock(stateMutex_);
  std::vector<WorkerEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace chisimnet::runtime
