#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "chisimnet/runtime/partition.hpp"

/// SNOW-style master/worker task farm (paper §IV.A).
///
/// The paper's R implementation dispatches collocation- and adjacency-matrix
/// jobs from a root process to SNOW/Rmpi workers. Cluster reproduces the
/// pattern: a master thread scatters item indices to worker threads, either
/// dynamically (workers pull the next item — how SNOW's load balancing
/// behaves) or statically from an explicit Partition (how the paper's
/// nnz-based list partitioning behaves). Per-worker busy time is recorded so
/// benches can report the idle-worker effect the paper warns about.

namespace chisimnet::runtime {

class Cluster {
 public:
  explicit Cluster(unsigned workerCount);

  unsigned workerCount() const noexcept { return workerCount_; }

  /// Runs body(item, worker) for every item in [0, itemCount), workers
  /// pulling items dynamically. Exceptions propagate (first one wins).
  void applyDynamic(std::size_t itemCount,
                    const std::function<void(std::size_t, unsigned)>& body);

  /// Runs body(item, worker) with worker w processing exactly
  /// partition.assignment[w], in order. Requires the partition to have
  /// exactly workerCount() bins.
  void applyPartitioned(const Partition& partition,
                        const std::function<void(std::size_t, unsigned)>& body);

  /// Per-worker busy seconds of the most recent apply call.
  std::span<const double> workerBusySeconds() const noexcept {
    return busySeconds_;
  }

  /// Wall seconds of the most recent apply call.
  double lastWallSeconds() const noexcept { return wallSeconds_; }

  /// max(busy) / mean(busy) for the most recent apply; 1.0 is balanced.
  double busyImbalance() const noexcept;

 private:
  void runWorkers(const std::function<void(unsigned)>& workerBody);

  unsigned workerCount_;
  std::vector<double> busySeconds_;
  double wallSeconds_ = 0.0;
};

}  // namespace chisimnet::runtime
