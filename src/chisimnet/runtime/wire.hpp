#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "chisimnet/runtime/comm.hpp"

/// CSF1 wire framing and shared stream-socket plumbing.
///
/// One frame codec serves every transport that crosses a process boundary:
/// the socketpair-based process transport (process_transport.hpp) and the
/// TCP transport (tcp_transport.hpp) speak byte-identical frames, so a
/// worker neither knows nor cares which socket kind carried its commands.
///
/// ## Frame format (all integers little-endian, host order)
///
///   magic   u32   0x43534631 ("CSF1")
///   kind    u32   1=data 2=ping 3=pong 4=hello 5=hello-ack
///   tag     i32   message tag (data), rank/epoch (hello/hello-ack)
///   length  u64   payload bytes that follow; validated against
///                 kMaxPayloadBytes BEFORE any allocation
///
/// A short read inside a frame (torn header or payload), a bad magic, an
/// unknown kind, or an oversized length all poison the connection: the
/// reader closes it and the peer is handled through the transport's death
/// path rather than trusting any further bytes.

namespace chisimnet::runtime::wire {

inline constexpr std::uint32_t kFrameMagic = 0x43534631u;  // "CSF1"
inline constexpr std::size_t kFrameHeaderBytes = 20;

enum class FrameKind : std::uint32_t {
  kData = 1,
  kPing = 2,
  kPong = 3,
  kHello = 4,
  kHelloAck = 5,
};

struct Frame {
  FrameKind kind = FrameKind::kData;
  std::int32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Serializes header + payload into one buffer (written with a single
/// writeAll so a frame is never interleaved with another writer's bytes;
/// writers hold a per-connection write mutex).
std::vector<std::byte> encodeFrame(const Frame& frame);

/// Byte source for FrameReader: fills `out` with up to `capacity` bytes,
/// returns the count actually read (may be short — stream sockets split
/// frames arbitrarily), or 0 for EOF. Throws on I/O errors.
using ReadFn = std::function<std::size_t(std::byte* out, std::size_t capacity)>;

/// Incremental frame decoder over a stream of possibly-short reads.
/// Separated from the socket so tests can feed it adversarial streams
/// (split headers, zero-length and kMaxPayloadBytes-sized payloads, torn
/// tails, bad magic) without a live file descriptor.
class FrameReader {
 public:
  explicit FrameReader(ReadFn read);

  /// Next complete frame; nullopt on clean EOF at a frame boundary.
  /// Throws on torn frames (EOF mid-frame), bad magic, unknown kind, or a
  /// length above kMaxPayloadBytes — the connection must be discarded.
  std::optional<Frame> next();

 private:
  /// Fills `out` completely; false when EOF arrives before the first byte
  /// (only allowed at a frame boundary), throws when EOF tears the middle.
  bool readFully(std::span<std::byte> out, bool eofAllowedAtStart);

  ReadFn read_;
};

/// ReadFn over a file descriptor with EINTR retry.
ReadFn fdReadFn(int fd);

/// ReadFn over `fd` that gives up at `deadline` (handshake reads only; a
/// steady-state pump blocks indefinitely and is woken by shutdown()).
/// Throws when the deadline passes before the requested bytes arrive.
ReadFn deadlineReadFn(int fd, std::chrono::steady_clock::time_point deadline);

/// Writes all bytes to `fd`, looping over partial writes and EINTR, using
/// send(MSG_NOSIGNAL) so a dead peer yields EPIPE instead of SIGPIPE.
/// Returns false on any write error (the connection should be considered
/// poisoned); never throws.
bool writeAllFd(int fd, std::span<const std::byte> bytes) noexcept;

/// One place for stream-socket setup shared by the socketpair and TCP
/// paths: CLOEXEC always (a transport fd must never leak across an exec
/// into a later-spawned sibling), and for TCP sockets TCP_NODELAY (the
/// protocol is request/reply over small frames; Nagle only adds latency)
/// plus SO_KEEPALIVE (a dead peer on a quiet connection is eventually
/// surfaced as an error even without application pings). Write errors from
/// dead peers are handled uniformly via writeAllFd's MSG_NOSIGNAL — no
/// per-socket SIGPIPE configuration is needed.
void configureStreamSocket(int fd, bool tcp) noexcept;

}  // namespace chisimnet::runtime::wire
