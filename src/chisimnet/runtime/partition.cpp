#include "chisimnet/runtime/partition.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "chisimnet/util/error.hpp"

namespace chisimnet::runtime {

std::uint64_t Partition::makespan() const noexcept {
  std::uint64_t result = 0;
  for (std::uint64_t load : loads) {
    result = std::max(result, load);
  }
  return result;
}

double Partition::imbalance() const noexcept {
  const std::uint64_t total = totalLoad();
  if (total == 0 || loads.empty()) {
    return 1.0;
  }
  const double meanLoad =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(makespan()) / meanLoad;
}

std::uint64_t Partition::totalLoad() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t load : loads) {
    total += load;
  }
  return total;
}

namespace {

Partition emptyPartition(std::size_t bins) {
  Partition partition;
  partition.assignment.resize(bins);
  partition.loads.assign(bins, 0);
  return partition;
}

}  // namespace

Partition partitionGreedyLpt(std::span<const std::uint64_t> weights,
                             std::size_t bins) {
  CHISIM_REQUIRE(bins > 0, "need at least one bin");
  Partition partition = emptyPartition(bins);

  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&weights](auto a, auto b) {
    return weights[a] > weights[b];
  });

  // Min-heap of (load, bin).
  using Entry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t bin = 0; bin < bins; ++bin) {
    heap.emplace(0, bin);
  }
  for (std::size_t item : order) {
    auto [load, bin] = heap.top();
    heap.pop();
    partition.assignment[bin].push_back(item);
    partition.loads[bin] = load + weights[item];
    heap.emplace(partition.loads[bin], bin);
  }
  return partition;
}

Partition partitionRoundRobin(std::span<const std::uint64_t> weights,
                              std::size_t bins) {
  CHISIM_REQUIRE(bins > 0, "need at least one bin");
  Partition partition = emptyPartition(bins);
  for (std::size_t item = 0; item < weights.size(); ++item) {
    const std::size_t bin = item % bins;
    partition.assignment[bin].push_back(item);
    partition.loads[bin] += weights[item];
  }
  return partition;
}

Partition partitionContiguous(std::span<const std::uint64_t> weights,
                              std::size_t bins) {
  CHISIM_REQUIRE(bins > 0, "need at least one bin");
  Partition partition = emptyPartition(bins);
  const std::size_t count = weights.size();
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const std::size_t begin = count * bin / bins;
    const std::size_t end = count * (bin + 1) / bins;
    for (std::size_t item = begin; item < end; ++item) {
      partition.assignment[bin].push_back(item);
      partition.loads[bin] += weights[item];
    }
  }
  return partition;
}

}  // namespace chisimnet::runtime
