#include "chisimnet/runtime/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include <unistd.h>

#include "chisimnet/util/error.hpp"

namespace chisimnet::runtime {

namespace {

std::atomic<FaultPlan*> g_plan{nullptr};

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* faultActionName(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kThrow:
      return "throw";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kTruncate:
      return "truncate";
    case FaultAction::kKillRank:
      return "kill-rank";
    case FaultAction::kKillProcess:
      return "kill-process";
  }
  return "unknown";
}

FaultInjected::FaultInjected(std::string_view site, std::uint64_t hit)
    : std::runtime_error("injected fault at site '" + std::string(site) +
                         "' (hit " + std::to_string(hit) + ")"),
      site_(site),
      hit_(hit) {}

FaultPlan::FaultPlan(std::uint64_t seed)
    : seed_(seed), rngState_(seed * 0x2545F4914F6CDD1Dull + 1) {}

FaultPlan& FaultPlan::at(std::string site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_[std::move(site)].push_back(spec);
  return *this;
}

FaultAction FaultPlan::fire(std::string_view site, FaultSite& ctx) {
  FaultSpec chosen;
  std::uint64_t hitNumber = 0;
  std::uint64_t matchOrdinal = 0;
  bool act = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto hitIt = hits_.find(site);
    if (hitIt != hits_.end()) {
      hitNumber = ++hitIt->second;
    } else {
      hitNumber = ++hits_[std::string(site)];
    }
    // Sites that know a deterministic position (the ABM sites pass the
    // simulated hour) match exact-hit specs on that ordinal; the global
    // counter is only meaningful when one thread drives the site.
    matchOrdinal = ctx.ordinal != 0 ? ctx.ordinal : hitNumber;
    const auto it = specs_.find(site);
    if (it != specs_.end()) {
      for (const FaultSpec& spec : it->second) {
        if (spec.rank != -1 && spec.rank != ctx.rank) {
          continue;
        }
        if (spec.hit != 0) {
          if (spec.hit != matchOrdinal) {
            continue;
          }
        } else if (spec.probability < 1.0) {
          const double draw = static_cast<double>(splitmix64(rngState_) >> 11) *
                              0x1.0p-53;
          if (draw >= spec.probability) {
            continue;
          }
        }
        chosen = spec;
        act = true;
        break;
      }
    }
    if (act) {
      const auto actedIt = acted_.find(site);
      if (actedIt != acted_.end()) {
        ++actedIt->second;
      } else {
        ++acted_[std::string(site)];
      }
    }
  }
  if (!act) {
    return FaultAction::kNone;
  }
  switch (chosen.action) {
    case FaultAction::kNone:
      return FaultAction::kNone;
    case FaultAction::kThrow:
      throw FaultInjected(site, matchOrdinal);
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(chosen.delayMs));
      return FaultAction::kDelay;
    case FaultAction::kTruncate:
      if (ctx.payload == nullptr) {
        return FaultAction::kNone;  // site has nothing to truncate
      }
      ctx.payload->resize(std::min(ctx.payload->size(), chosen.truncateTo));
      return FaultAction::kTruncate;
    case FaultAction::kKillRank:
      return FaultAction::kKillRank;
    case FaultAction::kKillProcess:
      // A real, unhandleable crash of this process — the whole point of
      // shipping the plan into a transport worker.
      ::kill(::getpid(), SIGKILL);
      return FaultAction::kKillProcess;  // unreachable
  }
  return FaultAction::kNone;
}

std::string FaultPlan::encode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "v1;" + std::to_string(seed_);
  char buffer[64];
  for (const auto& [site, specs] : specs_) {
    for (const FaultSpec& spec : specs) {
      std::snprintf(buffer, sizeof(buffer), "%.17g", spec.probability);
      out += ";" + site + "," +
             std::to_string(static_cast<std::uint32_t>(spec.action)) + "," +
             std::to_string(spec.hit) + "," + buffer + "," +
             std::to_string(spec.rank) + "," + std::to_string(spec.delayMs) +
             "," + std::to_string(spec.truncateTo);
    }
  }
  return out;
}

std::unique_ptr<FaultPlan> FaultPlan::decode(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(';', begin);
    fields.emplace_back(text.substr(
        begin, end == std::string_view::npos ? std::string_view::npos
                                             : end - begin));
    if (end == std::string_view::npos) {
      break;
    }
    begin = end + 1;
  }
  CHISIM_CHECK(fields.size() >= 2 && fields[0] == "v1",
               "malformed fault plan encoding");
  auto plan = std::make_unique<FaultPlan>(
      std::strtoull(fields[1].c_str(), nullptr, 10));
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    const std::size_t comma = field.find(',');
    CHISIM_CHECK(comma != std::string::npos,
                 "malformed fault plan spec: " + field);
    FaultSpec spec;
    std::uint32_t action = 0;
    std::uint64_t hit = 0;
    double probability = 1.0;
    int rank = -1;
    std::uint32_t delayMs = 0;
    std::uint64_t truncateTo = 0;
    const int parsed = std::sscanf(
        field.c_str() + comma + 1, "%" SCNu32 ",%" SCNu64 ",%lg,%d,%" SCNu32
        ",%" SCNu64,
        &action, &hit, &probability, &rank, &delayMs, &truncateTo);
    CHISIM_CHECK(parsed == 6, "malformed fault plan spec: " + field);
    spec.action = static_cast<FaultAction>(action);
    spec.hit = hit;
    spec.probability = probability;
    spec.rank = rank;
    spec.delayMs = delayMs;
    spec.truncateTo = static_cast<std::size_t>(truncateTo);
    plan->at(field.substr(0, comma), spec);
  }
  return plan;
}

std::uint64_t FaultPlan::hitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::actedCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = acted_.find(site);
  return it == acted_.end() ? 0 : it->second;
}

namespace fault {

FaultPlan* install(FaultPlan* plan) noexcept {
  return g_plan.exchange(plan, std::memory_order_acq_rel);
}

bool armed() noexcept {
  return g_plan.load(std::memory_order_relaxed) != nullptr;
}

FaultPlan* current() noexcept {
  return g_plan.load(std::memory_order_acquire);
}

FaultAction hit(std::string_view site, FaultSite& ctx) {
  // Acquire pairs with install()'s release so the plan's contents are
  // visible to whichever thread fires the site; still one uncontended
  // atomic load (free on x86, a fence-less ldar on arm) when idle.
  FaultPlan* plan = g_plan.load(std::memory_order_acquire);
  if (plan == nullptr) {
    return FaultAction::kNone;
  }
  return plan->fire(site, ctx);
}

FaultAction hit(std::string_view site) {
  FaultSite ctx;
  return hit(site, ctx);
}

}  // namespace fault

}  // namespace chisimnet::runtime
