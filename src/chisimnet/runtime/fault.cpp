#include "chisimnet/runtime/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace chisimnet::runtime {

namespace {

std::atomic<FaultPlan*> g_plan{nullptr};

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* faultActionName(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kThrow:
      return "throw";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kTruncate:
      return "truncate";
    case FaultAction::kKillRank:
      return "kill-rank";
  }
  return "unknown";
}

FaultInjected::FaultInjected(std::string_view site, std::uint64_t hit)
    : std::runtime_error("injected fault at site '" + std::string(site) +
                         "' (hit " + std::to_string(hit) + ")"),
      site_(site),
      hit_(hit) {}

FaultPlan::FaultPlan(std::uint64_t seed) : rngState_(seed * 0x2545F4914F6CDD1Dull + 1) {}

FaultPlan& FaultPlan::at(std::string site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_[std::move(site)].push_back(spec);
  return *this;
}

FaultAction FaultPlan::fire(std::string_view site, FaultSite& ctx) {
  FaultSpec chosen;
  std::uint64_t hitNumber = 0;
  bool act = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto hitIt = hits_.find(site);
    if (hitIt != hits_.end()) {
      hitNumber = ++hitIt->second;
    } else {
      hitNumber = ++hits_[std::string(site)];
    }
    const auto it = specs_.find(site);
    if (it != specs_.end()) {
      for (const FaultSpec& spec : it->second) {
        if (spec.rank != -1 && spec.rank != ctx.rank) {
          continue;
        }
        if (spec.hit != 0) {
          if (spec.hit != hitNumber) {
            continue;
          }
        } else if (spec.probability < 1.0) {
          const double draw = static_cast<double>(splitmix64(rngState_) >> 11) *
                              0x1.0p-53;
          if (draw >= spec.probability) {
            continue;
          }
        }
        chosen = spec;
        act = true;
        break;
      }
    }
    if (act) {
      const auto actedIt = acted_.find(site);
      if (actedIt != acted_.end()) {
        ++actedIt->second;
      } else {
        ++acted_[std::string(site)];
      }
    }
  }
  if (!act) {
    return FaultAction::kNone;
  }
  switch (chosen.action) {
    case FaultAction::kNone:
      return FaultAction::kNone;
    case FaultAction::kThrow:
      throw FaultInjected(site, hitNumber);
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(chosen.delayMs));
      return FaultAction::kDelay;
    case FaultAction::kTruncate:
      if (ctx.payload == nullptr) {
        return FaultAction::kNone;  // site has nothing to truncate
      }
      ctx.payload->resize(std::min(ctx.payload->size(), chosen.truncateTo));
      return FaultAction::kTruncate;
    case FaultAction::kKillRank:
      return FaultAction::kKillRank;
  }
  return FaultAction::kNone;
}

std::uint64_t FaultPlan::hitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::actedCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = acted_.find(site);
  return it == acted_.end() ? 0 : it->second;
}

namespace fault {

FaultPlan* install(FaultPlan* plan) noexcept {
  return g_plan.exchange(plan, std::memory_order_acq_rel);
}

bool armed() noexcept {
  return g_plan.load(std::memory_order_relaxed) != nullptr;
}

FaultAction hit(std::string_view site, FaultSite& ctx) {
  // Acquire pairs with install()'s release so the plan's contents are
  // visible to whichever thread fires the site; still one uncontended
  // atomic load (free on x86, a fence-less ldar on arm) when idle.
  FaultPlan* plan = g_plan.load(std::memory_order_acquire);
  if (plan == nullptr) {
    return FaultAction::kNone;
  }
  return plan->fire(site, ctx);
}

FaultAction hit(std::string_view site) {
  FaultSite ctx;
  return hit(site, ctx);
}

}  // namespace fault

}  // namespace chisimnet::runtime
