#include "chisimnet/runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "chisimnet/util/error.hpp"

namespace chisimnet::runtime {

ThreadPool::ThreadPool(unsigned threadCount) {
  CHISIM_REQUIRE(threadCount >= 1, "thread pool needs at least one thread");
  threads_.reserve(threadCount);
  for (unsigned i = 0; i < threadCount; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CHISIM_REQUIRE(!stopping_, "cannot submit to a stopping pool");
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
  if (pendingError_) {
    std::exception_ptr error = std::exchange(pendingError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !pendingError_) {
        pendingError_ = error;
      }
      --inFlight_;
      if (inFlight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallelFor(std::uint64_t count, unsigned workers,
                 const std::function<void(std::uint64_t)>& body) {
  if (count == 0) {
    return;
  }
  workers = std::max(1u, workers);
  if (workers == 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::uint64_t> next{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;
  // Chunk size balances scheduling overhead against dynamic balance.
  const std::uint64_t chunk = std::max<std::uint64_t>(1, count / (workers * 8));

  const auto drain = [&] {
    while (true) {
      const std::uint64_t begin = next.fetch_add(chunk);
      if (begin >= count) {
        return;
      }
      const std::uint64_t end = std::min(count, begin + chunk);
      try {
        for (std::uint64_t i = begin; i < end; ++i) {
          body(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) {
          firstError = std::current_exception();
        }
        next.store(count);  // stop handing out work
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    threads.emplace_back(drain);
  }
  drain();
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace chisimnet::runtime
