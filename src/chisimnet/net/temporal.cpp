#include "chisimnet/net/temporal.hpp"

#include <algorithm>
#include <functional>

#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::net {

namespace {

std::vector<TemporalSlice> slicesOver(
    const SynthesisConfig& config, table::Hour sliceHours,
    const std::function<sparse::SymmetricAdjacency(const SynthesisConfig&)>&
        synthesize) {
  CHISIM_REQUIRE(sliceHours > 0, "slice width must be positive");
  CHISIM_REQUIRE(config.windowStart < config.windowEnd,
                 "time window must be non-empty");
  std::vector<TemporalSlice> slices;
  for (table::Hour start = config.windowStart; start < config.windowEnd;
       start += sliceHours) {
    TemporalSlice slice;
    slice.start = start;
    slice.end = std::min<table::Hour>(config.windowEnd, start + sliceHours);
    SynthesisConfig sliceConfig = config;
    sliceConfig.windowStart = slice.start;
    sliceConfig.windowEnd = slice.end;
    slice.adjacency = synthesize(sliceConfig);
    slices.push_back(std::move(slice));
  }
  return slices;
}

}  // namespace

std::vector<TemporalSlice> synthesizeSlices(
    const std::vector<std::filesystem::path>& logFiles,
    const SynthesisConfig& config, table::Hour sliceHours) {
  return slicesOver(config, sliceHours,
                    [&logFiles](const SynthesisConfig& sliceConfig) {
                      NetworkSynthesizer synthesizer(sliceConfig);
                      return synthesizer.synthesizeAdjacency(logFiles);
                    });
}

std::vector<TemporalSlice> synthesizeSlices(const table::EventTable& events,
                                            const SynthesisConfig& config,
                                            table::Hour sliceHours) {
  return slicesOver(config, sliceHours,
                    [&events](const SynthesisConfig& sliceConfig) {
                      NetworkSynthesizer synthesizer(sliceConfig);
                      return synthesizer.synthesizeAdjacency(events);
                    });
}

double edgeJaccard(const sparse::SymmetricAdjacency& a,
                   const sparse::SymmetricAdjacency& b) {
  if (a.edgeCount() == 0 && b.edgeCount() == 0) {
    return 1.0;
  }
  std::uint64_t shared = 0;
  for (const sparse::AdjacencyTriplet& triplet : a.toTriplets()) {
    shared += b.weight(triplet.i, triplet.j) > 0 ? 1 : 0;
  }
  const std::uint64_t unionSize = a.edgeCount() + b.edgeCount() - shared;
  return unionSize == 0 ? 1.0
                        : static_cast<double>(shared) /
                              static_cast<double>(unionSize);
}

double edgePersistence(const sparse::SymmetricAdjacency& a,
                       const sparse::SymmetricAdjacency& b) {
  if (a.edgeCount() == 0) {
    return 1.0;
  }
  std::uint64_t shared = 0;
  for (const sparse::AdjacencyTriplet& triplet : a.toTriplets()) {
    shared += b.weight(triplet.i, triplet.j) > 0 ? 1 : 0;
  }
  return static_cast<double>(shared) / static_cast<double>(a.edgeCount());
}

}  // namespace chisimnet::net
