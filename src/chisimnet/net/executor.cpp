#include "chisimnet/net/executor.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>

#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

runtime::Partition SynthesisExecutor::repartition(
    std::span<const std::uint64_t> weights) const {
  return config_.balancedPartition
             ? runtime::partitionGreedyLpt(weights, config_.workers)
             : runtime::partitionContiguous(weights, config_.workers);
}

void SynthesisExecutor::reduceSums(
    std::vector<sparse::SymmetricAdjacency>& workerSums,
    sparse::SymmetricAdjacency& result) {
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = config_.treeReduce;
  lastReduce_.mergedSums = workerSums.size();
  if (config_.treeReduce && workerSums.size() > 1) {
    const runtime::TreeReduceStats stats = runtime::treeReduce(
        workerSums, config_.workers,
        [](sparse::SymmetricAdjacency& into, sparse::SymmetricAdjacency& from) {
          into.merge(from);
          from = sparse::SymmetricAdjacency(0);  // release the merged table
        });
    lastReduce_.depth = stats.depth;
    lastReduce_.criticalSeconds = stats.criticalSeconds;
    // The fold into the cross-batch accumulator stays on the critical path
    // whichever shape ran, so it counts toward the modeled time too. Both
    // shapes use the thread-CPU clock, matching treeReduce's merge timing.
    util::ThreadCpuTimer timer;
    result.merge(workerSums.front());
    lastReduce_.criticalSeconds += timer.seconds();
  } else {
    util::ThreadCpuTimer timer;
    for (const sparse::SymmetricAdjacency& workerSum : workerSums) {
      result.merge(workerSum);
    }
    lastReduce_.criticalSeconds = timer.seconds();
  }
  workerSums.clear();
}

SharedMemoryExecutor::SharedMemoryExecutor(const SynthesisConfig& config)
    : SynthesisExecutor(config), cluster_(config.workers) {}

void SharedMemoryExecutor::scatterPlaces(const table::EventTable& events,
                                         const table::PlaceIndex& index) {
  // Workers share the address space; "scattering" is pinning the slice.
  events_ = &events;
  index_ = &index;
}

std::vector<sparse::CollocationMatrix> SharedMemoryExecutor::mapCollocation() {
  CHISIM_REQUIRE(events_ != nullptr && index_ != nullptr,
                 "mapCollocation before scatterPlaces");
  // Workers pull places dynamically (matches SNOW's dispatch of place-id
  // subsets).
  std::vector<sparse::CollocationMatrix> matrices(index_->placeIds.size());
  cluster_.applyDynamic(
      index_->placeIds.size(), [&](std::size_t group, unsigned) {
        matrices[group] = sparse::buildCollocationMatrix(
            *events_, *index_, group, config_.windowStart, config_.windowEnd);
      });
  events_ = nullptr;
  index_ = nullptr;
  // Drop empty matrices (places with no presence inside the window).
  std::erase_if(matrices,
                [](const sparse::CollocationMatrix& m) { return m.nnz() == 0; });
  return matrices;
}

void SharedMemoryExecutor::mapAdjacency(
    const std::vector<sparse::CollocationMatrix>& matrices,
    const runtime::Partition& partition) {
  if (config_.memoryBudgetBytes > 0) {
    // Budgeted stage 5: each worker sums into a flushing SpillingSum whose
    // threshold is an eighth of its budget share — the sink keeps the other
    // half of the budget for the cross-batch shards and their spill-sort
    // transient. Run-file names carry worker and batch indices so adopted
    // files from earlier batches are never overwritten.
    CHISIM_REQUIRE(!config_.spillDir.empty(),
                   "memory budget requires a spill directory");
    const std::uint64_t threshold = std::max<std::uint64_t>(
        config_.memoryBudgetBytes / (8 * std::max(1u, config_.workers)), 1);
    // splitRows routes every flush to its reduce-shard owner at write
    // time (shard-pure runs), unless the serial merge was requested —
    // that path keeps the legacy one-run-per-flush layout.
    const std::uint32_t splitRows = resolvedReduceShards(config_) > 1
                                        ? resolvedMergeRowsPerShard(config_)
                                        : 0;
    spillSums_.clear();
    for (unsigned w = 0; w < config_.workers; ++w) {
      spillSums_.push_back(std::make_unique<sparse::SpillingSum>(
          config_.spillDir,
          "w" + std::to_string(w) + ".b" + std::to_string(batchCounter_) +
              ".",
          threshold, splitRows));
    }
    ++batchCounter_;
    cluster_.applyPartitioned(
        partition, [&](std::size_t item, unsigned worker) {
          spillSums_[worker]->addCollocation(matrices[item], config_.method);
        });
    return;
  }
  workerSums_.clear();
  workerSums_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workerSums_.emplace_back(1024);
  }
  cluster_.applyPartitioned(partition, [&](std::size_t item, unsigned worker) {
    workerSums_[worker].addCollocation(matrices[item], config_.method);
  });
}

void SharedMemoryExecutor::reduce(sparse::SymmetricAdjacency& result) {
  CHISIM_REQUIRE(spillSums_.empty(),
                 "budgeted stage 5 must reduce into a spilling accumulator");
  reduceSums(workerSums_, result);
}

void SharedMemoryExecutor::reduceInto(sparse::SpillingAccumulator& sink) {
  CHISIM_REQUIRE(!spillSums_.empty(),
                 "reduceInto without a budgeted mapAdjacency");
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = false;  // the sink replaces the pairwise tree
  lastReduce_.mergedSums = spillSums_.size();
  // The worker maps lived beside the sink's resident shards; their summed
  // historical peaks are reported as the (pessimistic) stage-5 transient.
  std::uint64_t workerPeak = 0;
  for (const auto& sum : spillSums_) {
    workerPeak += sum->peakBytes();
  }
  sink.noteWorkerPeak(workerPeak);
  util::ThreadCpuTimer timer;
  for (const auto& sum : spillSums_) {
    for (const sparse::SpillRunInfo& run : sum->runs()) {
      sink.adoptRunFile(run);  // already on disk: ownership moves, no copy
    }
    const std::vector<sparse::AdjacencyTriplet> remainder =
        sum->drainInMemory();
    sink.addSortedRun(remainder);
    sink.addKernelStats(sum->kernelStats());
  }
  lastReduce_.criticalSeconds = timer.seconds();
  spillSums_.clear();
}

std::vector<sparse::ShardSegment> SharedMemoryExecutor::mergeSpillShards(
    const std::vector<sparse::SpillingAccumulator::ShardRunGroup>& groups,
    const std::function<void(const sparse::ShardSegment&)>& onSegment) {
  CHISIM_REQUIRE(!config_.spillDir.empty(),
                 "sharded merge requires a spill directory");
  // Stable ownership: group g belongs to owner g % owners, and each owner
  // merges its groups in ascending shard order. One cluster item per
  // owner, so the owners run concurrently while a shard's merge stays
  // single-threaded (segment bytes never depend on scheduling).
  const unsigned owners = std::max(1u, resolvedReduceShards(config_));
  std::vector<std::vector<std::size_t>> byOwner(owners);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    byOwner[g % owners].push_back(g);
  }
  std::vector<sparse::ShardSegment> segments(groups.size());
  std::mutex mutex;
  cluster_.applyDynamic(owners, [&](std::size_t owner, unsigned) {
    for (const std::size_t g : byOwner[owner]) {
      const sparse::SpillingAccumulator::ShardRunGroup& group = groups[g];
      const std::filesystem::path segmentFile =
          config_.spillDir / ("seg." + std::to_string(group.shard) + ".cseg");
      sparse::ShardSegment segment = sparse::mergeShardRuns(
          group.shard, group.runs, segmentFile, config_.mergeReadahead);
      segment.owner = static_cast<unsigned>(owner);
      const std::lock_guard<std::mutex> lock(mutex);
      segments[g] = segment;
      onSegment(segment);
    }
  });
  return segments;
}

double SharedMemoryExecutor::adjacencyBusyImbalance() const noexcept {
  return cluster_.busyImbalance();
}

std::unique_ptr<SynthesisExecutor> makeExecutor(const SynthesisConfig& config) {
  if (config.backend == SynthesisBackend::kMessagePassing) {
    return std::make_unique<MessagePassingExecutor>(config);
  }
  return std::make_unique<SharedMemoryExecutor>(config);
}

}  // namespace chisimnet::net
