#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "chisimnet/net/mp_protocol.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/runtime/cluster.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/partition.hpp"
#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/table/event_table.hpp"

/// Pluggable dispatch substrate for synthesis stages 2-6 (paper §IV.A).
///
/// The paper presents one synthesis algorithm with two dispatch substrates:
/// a SNOW fork cluster (shared memory) for a single node and Rmpi ranks
/// (message passing) for larger clusters. NetworkSynthesizer owns the
/// stage sequencing, batching, prefetch, and timing; a SynthesisExecutor
/// owns only how each stage's work reaches the workers and how results
/// come back. One driver, two backends — the message-passing path inherits
/// batching, prefetch, and per-stage timing from the driver instead of
/// reimplementing the pipeline.
///
/// Stage protocol, called by the driver once per batch, in order:
///   scatterPlaces   stage 2 tail: hand the place-grouped slice to workers
///   mapCollocation  stage 3: per-place collocation matrices, returned to
///                   the driver (the paper's "returned to the root")
///   repartition     stage 4: weight-based partition of the matrix list
///   mapAdjacency    stage 5: per-worker adjacency sums A_l = x·xᵀ
///   reduce          stage 6: fold the worker sums into the running result
///
/// Lifetimes: the events/index passed to scatterPlaces must stay alive
/// through the following mapCollocation call; matrices passed to
/// mapAdjacency must stay alive for its duration.

namespace chisimnet::runtime {
class ProcessTransport;
class TcpTransport;
}  // namespace chisimnet::runtime

namespace chisimnet::net {

/// Shape and modeled timing of one stage-6 reduce.
struct ReduceStats {
  bool tree = false;             ///< folded via the log-depth merge tree
  unsigned depth = 0;            ///< merge-tree levels (0 = serial)
  std::uint64_t mergedSums = 0;  ///< worker sums folded into the result
  /// Modeled parallel time: Σ over levels of that level's slowest merge
  /// (equals total merge time when serial).
  double criticalSeconds = 0.0;
};

class SynthesisExecutor {
 public:
  explicit SynthesisExecutor(const SynthesisConfig& config)
      : config_(config) {}
  virtual ~SynthesisExecutor() = default;

  SynthesisExecutor(const SynthesisExecutor&) = delete;
  SynthesisExecutor& operator=(const SynthesisExecutor&) = delete;

  virtual SynthesisBackend backend() const noexcept = 0;

  /// Stage 2 (dispatch tail): make the window-filtered events of each place
  /// group available to the workers that will build its matrix. Message
  /// passing ships the groups; shared memory only pins references.
  virtual void scatterPlaces(const table::EventTable& events,
                             const table::PlaceIndex& index) = 0;

  /// Stage 3: build one collocation matrix per scattered place group and
  /// return the non-empty ones to the driver.
  virtual std::vector<sparse::CollocationMatrix> mapCollocation() = 0;

  /// Stage 4: partition matrices (by the driver-computed weights) across
  /// workers. Identical for both substrates — the partition is computed
  /// where the matrix list lives (the root).
  virtual runtime::Partition repartition(
      std::span<const std::uint64_t> weights) const;

  /// Stage 5: compute per-worker adjacency sums for the partition. The
  /// sums stay inside the executor — in-memory at the root (shared) or as
  /// sorted triplet runs returned by the ranks (message passing) — until
  /// the following reduce() folds them.
  virtual void mapAdjacency(
      const std::vector<sparse::CollocationMatrix>& matrices,
      const runtime::Partition& partition) = 0;

  /// Stage 6: fold the worker sums held since mapAdjacency into `result`,
  /// via a log-depth pairwise merge tree (config.treeReduce, the default)
  /// or the serial one-at-a-time root merge (the ablation baseline).
  virtual void reduce(sparse::SymmetricAdjacency& result) = 0;

  /// Stage 6 under a memory budget: fold the worker sums into the
  /// disk-spilling cross-batch accumulator instead of a dense map. Worker
  /// spill runs transfer as files (adopted by the sink, never rebuilt in
  /// memory) and in-memory remainders as sorted runs; each backend also
  /// reports its stage-5 worker peak bytes through sink.noteWorkerPeak(),
  /// surfaced separately from the budget-enforced accumulator peak.
  virtual void reduceInto(sparse::SpillingAccumulator& sink) = 0;

  /// Stage-6 tail under a budget: merge each row-range shard's spill runs
  /// into a sorted CADJ payload segment, the shards distributed across
  /// this substrate's workers/ranks by stable round-robin ownership so
  /// no single thread funnels the external merge. `onSegment` fires once
  /// per completed segment, never concurrently — the driver checkpoints
  /// from it mid-merge. Returns one segment per group, in unspecified
  /// order (callers sort by shard before concatenating).
  virtual std::vector<sparse::ShardSegment> mergeSpillShards(
      const std::vector<sparse::SpillingAccumulator::ShardRunGroup>& groups,
      const std::function<void(const sparse::ShardSegment&)>& onSegment) = 0;

  /// Shape and modeled timing of the last reduce().
  const ReduceStats& lastReduceStats() const noexcept { return lastReduce_; }

  /// Observed busy-time imbalance of the last mapAdjacency; 1.0 if the
  /// substrate cannot observe it.
  virtual double adjacencyBusyImbalance() const noexcept { return 1.0; }

  /// Cumulative payload bytes moved root->workers / workers->root since
  /// the last resetTransferCounters(); zero on no-wire substrates.
  virtual std::uint64_t bytesScattered() const noexcept { return 0; }
  virtual std::uint64_t bytesReturned() const noexcept { return 0; }
  virtual void resetTransferCounters() noexcept {}

  /// Recovery actions (retries, rank losses) taken since the last drain,
  /// for the driver to fold into SynthesisReport::faults. Empty on
  /// substrates with nothing to recover from.
  virtual std::vector<FaultEvent> drainFaultEvents() { return {}; }

  /// Workers still able to take stage work (ranks not declared lost).
  virtual int liveWorkers() const noexcept {
    return static_cast<int>(config_.workers);
  }

 protected:
  /// Serial/tree fold over root-held worker sums — the shared path for
  /// backends whose sums are already in memory at the root. Consumes the
  /// sums and records lastReduce_.
  void reduceSums(std::vector<sparse::SymmetricAdjacency>& workerSums,
                  sparse::SymmetricAdjacency& result);

  const SynthesisConfig config_;
  ReduceStats lastReduce_;
};

/// Worker threads over shared memory — the paper's SNOW fork cluster.
/// Collocation work is pulled dynamically (SNOW's own load balancing);
/// the adjacency stage follows the explicit nnz partition. No bytes move.
class SharedMemoryExecutor final : public SynthesisExecutor {
 public:
  explicit SharedMemoryExecutor(const SynthesisConfig& config);

  SynthesisBackend backend() const noexcept override {
    return SynthesisBackend::kSharedMemory;
  }
  void scatterPlaces(const table::EventTable& events,
                     const table::PlaceIndex& index) override;
  std::vector<sparse::CollocationMatrix> mapCollocation() override;
  void mapAdjacency(const std::vector<sparse::CollocationMatrix>& matrices,
                    const runtime::Partition& partition) override;
  void reduce(sparse::SymmetricAdjacency& result) override;
  void reduceInto(sparse::SpillingAccumulator& sink) override;
  /// Owners are worker threads: shard groups are assigned round-robin to
  /// `resolvedReduceShards(config)` owners and each owner merges its
  /// groups in ascending shard order on the cluster.
  std::vector<sparse::ShardSegment> mergeSpillShards(
      const std::vector<sparse::SpillingAccumulator::ShardRunGroup>& groups,
      const std::function<void(const sparse::ShardSegment&)>& onSegment)
      override;
  double adjacencyBusyImbalance() const noexcept override;

 private:
  runtime::Cluster cluster_;
  const table::EventTable* events_ = nullptr;
  const table::PlaceIndex* index_ = nullptr;
  std::vector<sparse::SymmetricAdjacency> workerSums_;  ///< stage 5 → 6
  /// Budgeted stage 5: each worker sums into its own flushing SpillingSum
  /// (threshold ≈ budget/(8·workers)) instead of an unbounded map.
  std::vector<std::unique_ptr<sparse::SpillingSum>> spillSums_;
  /// Distinguishes run-file names across batches (adopted files outlive
  /// the mapAdjacency that wrote them).
  std::uint64_t batchCounter_ = 0;
};

/// Message-passing ranks — the paper's Rmpi path, with its exact data
/// flow: the root scatters place event groups, workers build collocation
/// matrices and return them serialized, the root re-partitions and
/// re-scatters the matrix list, workers sum adjacencies and return them.
/// Rank 0 is the driver thread; ranks 1..workers-1 are a persistent
/// runtime::RankTeam command loop, so the same ranks serve every batch.
/// All payloads (including rank 0's self-delivery) go through the sparse
/// wire format and are counted in bytesScattered/bytesReturned.
///
/// Fault tolerance: every stage round trip is one framed command message
/// and one framed reply, stamped with an epoch. A worker that hits a
/// recoverable error replies status=failed instead of dying; a worker that
/// dies silently is detected by the per-command deadline
/// (config.commandTimeoutMs). Under FaultPolicy::kDegrade the root retries
/// a failed command with exponential backoff up to commandMaxAttempts,
/// then marks the rank lost and re-partitions its work items across the
/// surviving ranks (the root included), so the batch completes with the
/// exact same result. Epochs let the root discard stale replies from
/// retried commands; stage bodies are pure, so duplicate execution after a
/// timeout race is harmless.
///
/// Transports: with MpTransport::kInProcess (default) the ranks are
/// RankTeam service threads in this process; with kProcess they are
/// fork/exec'd OS processes behind runtime::ProcessTransport, speaking the
/// identical command protocol over Unix-domain sockets. A worker process
/// that crashes is respawned by the transport (config.maxRespawns) while
/// the in-flight command rides the existing timeout/retry path; once the
/// respawn budget is exhausted, the death feeds the same markLost +
/// reassignment flow as an in-process loss. With kTcp the workers dial
/// rank 0 over TCP (runtime::TcpTransport) — a dropped connection is
/// survived by worker-initiated reconnect inside a grace window, and one
/// that never returns feeds the same markLost + reassignment flow. Under
/// kTcp the workers need no shared filesystem: stage commands carry
/// shipRuns, workers spill into private local directories, and run-file
/// bytes travel to the root as mp::kShipTag chunks ahead of the replies
/// that reference them (the root materializes them into its own spill
/// directory before decoding the reply).
class MessagePassingExecutor final : public SynthesisExecutor {
 public:
  explicit MessagePassingExecutor(const SynthesisConfig& config);
  ~MessagePassingExecutor() override;

  SynthesisBackend backend() const noexcept override {
    return SynthesisBackend::kMessagePassing;
  }
  void scatterPlaces(const table::EventTable& events,
                     const table::PlaceIndex& index) override;
  std::vector<sparse::CollocationMatrix> mapCollocation() override;
  /// Partitions across the live ranks only, so a batch after a rank loss
  /// spreads stage-5 work over exactly the ranks that can still take it.
  runtime::Partition repartition(
      std::span<const std::uint64_t> weights) const override;
  void mapAdjacency(const std::vector<sparse::CollocationMatrix>& matrices,
                    const runtime::Partition& partition) override;
  /// Rank-pair merge tree over the sorted triplet runs the adjacency stage
  /// returned: each level pairs up runs, ships the pairs to the live ranks
  /// (rank 0 inline), and two-pointer-merges them — no hash rebuild.
  /// config.treeReduce=false instead inserts the runs one rank at a time
  /// (the pre-tree baseline). Lost-rank reassignment applies per level.
  /// Runs too large to cross the wire inline arrive and travel as spill
  /// files (mp::RunRef) and are streamed, never rebuilt whole in memory.
  void reduce(sparse::SymmetricAdjacency& result) override;
  /// Budgeted stage 6: worker run files are adopted by the sink directly
  /// (a rename-scoped ownership transfer — zero copy), inline runs are
  /// inserted, and the workers' peak bytes reported via noteWorkerPeak().
  void reduceInto(sparse::SpillingAccumulator& sink) override;
  /// Owners are live ranks: shard groups travel round-robin as
  /// kCmdMergeShard commands (rank 0 executes its share inline), with the
  /// stage-level retry and lost-rank reassignment semantics of every
  /// other command. Segments come back as file references; run files are
  /// read directly off the shared filesystem, never shipped.
  std::vector<sparse::ShardSegment> mergeSpillShards(
      const std::vector<sparse::SpillingAccumulator::ShardRunGroup>& groups,
      const std::function<void(const sparse::ShardSegment&)>& onSegment)
      override;
  double adjacencyBusyImbalance() const noexcept override {
    return busyImbalance_;
  }
  std::uint64_t bytesScattered() const noexcept override {
    return bytesScattered_;
  }
  std::uint64_t bytesReturned() const noexcept override {
    return bytesReturned_;
  }
  void resetTransferCounters() noexcept override {
    bytesScattered_ = 0;
    bytesReturned_ = 0;
  }
  std::vector<FaultEvent> drainFaultEvents() override;
  int liveWorkers() const noexcept override { return team_->liveCount(); }

 private:
  /// One in-flight command on a rank, kept so the root can resend it and,
  /// on permanent loss, rebuild the work items for reassignment.
  struct Pending {
    bool active = false;
    std::uint32_t command = 0;
    std::uint64_t epoch = 0;
    int attempts = 0;
    std::vector<std::byte> body;       ///< serialized stage input (resend)
    std::vector<std::size_t> items;    ///< work item indices (reassignment)
  };

  /// Worker-side command loop run by every in-process service rank.
  /// (Worker processes run the same protocol via maybeRunSynthesisWorker.)
  void serviceLoop(runtime::RankHandle& handle) const;

  /// Ranks currently able to take work, rank 0 first.
  std::vector<int> liveRanks() const;
  /// Executes one level of the reduce merge tree over reduceRuns_.
  void mergeRunsLevel();
  /// Frames and sends `body` as `command` to `rank`, recording it in
  /// pending_ for retry/reassignment.
  void sendCommand(int rank, std::uint32_t command,
                   std::vector<std::size_t> items, std::vector<std::byte> body);
  /// Waits for rank's reply to its pending command, retrying failed or
  /// timed-out attempts per config. Returns the reply body, or nullopt once
  /// the rank has been declared lost (its items stay in pending_ for the
  /// caller to reassign).
  std::optional<std::vector<std::byte>> awaitReply(int rank);
  /// Collects every active pending command of `command`, reassigning the
  /// items of lost ranks across survivors until all items are accounted
  /// for. buildBody serializes a fresh body for reassigned items; onReply
  /// consumes each successful reply body.
  void collectStage(
      std::uint32_t command,
      const std::function<std::vector<std::byte>(
          std::span<const std::size_t>)>& buildBody,
      const std::function<void(std::span<const std::byte>)>& onReply);

  int ranks_;
  std::uint64_t bytesScattered_ = 0;
  std::uint64_t bytesReturned_ = 0;
  double busyImbalance_ = 1.0;
  std::uint64_t nextEpoch_ = 1;
  std::vector<Pending> pending_;
  std::vector<FaultEvent> faultEvents_;
  const table::EventTable* events_ = nullptr;
  const table::PlaceIndex* index_ = nullptr;
  /// Sorted triplet runs returned by the adjacency stage — inline or as
  /// spill-file references — consumed by reduce()/reduceInto(); plus the
  /// kernel counters that traveled beside them.
  std::vector<mp::RunRef> reduceRuns_;
  sparse::AdjacencyKernelStats runKernelStats_;
  /// Σ of worker peakLocalBytes from the last mapAdjacency (budget
  /// accounting: these maps were alive concurrently with the sink).
  std::uint64_t workerPeakBytes_ = 0;
  /// Uniquifies worker-side spill-file names per command body.
  std::uint64_t nextRunToken_ = 0;
  /// The socket transport behind team_ when config.transport is kProcess
  /// (non-owning; the team owns it); nullptr for the in-process transport.
  runtime::ProcessTransport* processTransport_ = nullptr;
  /// The TCP transport behind team_ when config.transport is kTcp
  /// (non-owning; the team owns it); nullptr otherwise.
  runtime::TcpTransport* tcpTransport_ = nullptr;
  /// True when stage commands run with shipRuns: worker file runs arrive
  /// as kShipTag chunks and decode points must localizeRun() every ref.
  bool shipRuns_ = false;
  /// Root-side assembler of in-flight kShipTag run files (pimpl — holds
  /// open output streams keyed by run name).
  class RunShipSink;
  std::unique_ptr<RunShipSink> shipSink_;
  /// Drains every kShipTag chunk `rank` has delivered into shipSink_
  /// (called at each reply receipt — chunks precede the reply that
  /// references them on the connection).
  void drainShippedRuns(int rank);
  /// Rewrites a shipped ref into the root-side file the sink materialized
  /// (<spillDir>/<name>); identity for inline and plain file refs.
  mp::RunRef localizeRun(mp::RunRef ref) const;
  /// Must be constructed last: service threads read config_/ranks_.
  std::unique_ptr<runtime::RankTeam> team_;
};

/// Builds the executor for config.backend.
std::unique_ptr<SynthesisExecutor> makeExecutor(const SynthesisConfig& config);

/// Worker-process entry for the socket transport. When this process was
/// exec'd as a transport worker (runtime::ProcessWorkerLink bootstrap env
/// present), runs the synthesis command service against the root and
/// returns its exit code; returns nullopt for a normal invocation. Every
/// binary that can act as a worker (the CLI, the distributed tests, the
/// fault soak) calls this first thing in main() and exits with the
/// returned code when engaged.
std::optional<int> maybeRunSynthesisWorker();

}  // namespace chisimnet::net
