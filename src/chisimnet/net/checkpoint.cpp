#include "chisimnet/net/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::net {

namespace {

constexpr const char* kManifestMagic = "CHKP1";
/// In-flight snapshot header: magic u32 "CINF" | version u32 | crc32 u32
/// over the body | body.
constexpr std::uint32_t kInflightMagic = 0x464E4943u;  // "CINF"
constexpr std::uint32_t kInflightVersion = 1;

std::filesystem::path manifestPath(const std::filesystem::path& dir) {
  return dir / kCheckpointManifestName;
}

void put32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>(value >> shift));
  }
}

void put64(std::vector<std::byte>& out, std::uint64_t value) {
  put32(out, static_cast<std::uint32_t>(value));
  put32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t take32(std::span<const std::byte> bytes, std::size_t& cursor) {
  CHISIM_CHECK(cursor + 4 <= bytes.size(),
               "truncated in-flight batch snapshot");
  const std::uint32_t value =
      static_cast<std::uint32_t>(bytes[cursor]) |
      (static_cast<std::uint32_t>(bytes[cursor + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[cursor + 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[cursor + 3]) << 24);
  cursor += 4;
  return value;
}

std::uint64_t take64(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t low = take32(bytes, cursor);
  const std::uint64_t high = take32(bytes, cursor);
  return low | (high << 32);
}

void putString(std::vector<std::byte>& out, const std::string& text) {
  put32(out, static_cast<std::uint32_t>(text.size()));
  const auto bytes =
      std::as_bytes(std::span<const char>(text.data(), text.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::string takeString(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint32_t length = take32(bytes, cursor);
  CHISIM_CHECK(cursor + length <= bytes.size(),
               "truncated in-flight batch snapshot");
  std::string text(reinterpret_cast<const char*>(bytes.data() + cursor),
                   length);
  cursor += length;
  return text;
}

/// Body: [filesInBatch u64][sorted u32][eventCount u64][events raw]
///       [quarantineCount u32][per entry: chunkIndex u64 (two's
///       complement), byteOffset u64, path string, reason string].
std::vector<std::byte> encodeInflight(const InflightBatch& inflight) {
  std::vector<std::byte> body;
  const std::uint64_t rows = inflight.events.size();
  body.reserve(32 + rows * sizeof(table::Event));
  put64(body, inflight.filesInBatch);
  put32(body, inflight.events.isSortedByStart() ? 1 : 0);
  put64(body, rows);
  for (table::RowIndex row = 0; row < rows; ++row) {
    const table::Event event = inflight.events.row(row);
    const auto bytes = std::as_bytes(std::span<const table::Event>(&event, 1));
    body.insert(body.end(), bytes.begin(), bytes.end());
  }
  put32(body, static_cast<std::uint32_t>(inflight.quarantined.size()));
  for (const elog::QuarantinedFile& entry : inflight.quarantined) {
    put64(body, static_cast<std::uint64_t>(entry.chunkIndex));
    put64(body, entry.byteOffset);
    putString(body, entry.file.string());
    putString(body, entry.reason);
  }
  return body;
}

InflightBatch decodeInflight(std::span<const std::byte> body) {
  std::size_t cursor = 0;
  InflightBatch inflight;
  inflight.filesInBatch = take64(body, cursor);
  const bool sorted = take32(body, cursor) != 0;
  const std::uint64_t rows = take64(body, cursor);
  CHISIM_CHECK(rows <= (body.size() - cursor) / sizeof(table::Event),
               "in-flight batch snapshot declares more events than its "
               "bytes can hold");
  std::vector<table::Event> events(static_cast<std::size_t>(rows));
  if (rows > 0) {
    std::memcpy(events.data(), body.data() + cursor,
                rows * sizeof(table::Event));
    cursor += rows * sizeof(table::Event);
  }
  inflight.events = table::EventTable(events);
  if (sorted) {
    // The snapshot preserved row order, so the stable re-sort reproduces
    // the exact pre-crash table.
    inflight.events.sortByStart();
  }
  const std::uint32_t quarantineCount = take32(body, cursor);
  for (std::uint32_t i = 0; i < quarantineCount; ++i) {
    elog::QuarantinedFile entry;
    entry.chunkIndex = static_cast<std::int64_t>(take64(body, cursor));
    entry.byteOffset = take64(body, cursor);
    entry.file = takeString(body, cursor);
    entry.reason = takeString(body, cursor);
    inflight.quarantined.push_back(std::move(entry));
  }
  CHISIM_CHECK(cursor == body.size(),
               "in-flight batch snapshot has trailing bytes");
  return inflight;
}

}  // namespace

std::uint32_t checkpointConfigHash(
    const SynthesisConfig& config,
    const std::vector<std::filesystem::path>& files) {
  // Only fields that determine the output for a given file list; perf
  // knobs (workers, prefetch, partitioning) are free to change across a
  // resume — the summed adjacency does not depend on them.
  std::string text;
  text += std::to_string(config.windowStart) + "|";
  text += std::to_string(config.windowEnd) + "|";
  text += std::to_string(static_cast<int>(config.method)) + "|";
  text += std::to_string(config.filesPerBatch) + "|";
  for (const std::filesystem::path& file : files) {
    text += file.filename().string() + "|";
  }
  return util::crc32(
      std::as_bytes(std::span<const char>(text.data(), text.size())));
}

namespace {

std::string writeInflightSnapshot(const std::filesystem::path& dir,
                                  std::uint64_t filesConsumed,
                                  const InflightBatch& inflight) {
  const std::string inflightName =
      "inflight." + std::to_string(filesConsumed) + ".evt";
  const std::vector<std::byte> body = encodeInflight(inflight);
  const std::filesystem::path path = dir / inflightName;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CHISIM_CHECK(out.good(),
               "cannot write in-flight batch snapshot: " + path.string());
  util::writeU32(out, kInflightMagic);
  util::writeU32(out, kInflightVersion);
  util::writeU32(out, util::crc32(body));
  util::writeBytes(out, body);
  out.flush();
  CHISIM_CHECK(out.good(),
               "in-flight batch snapshot write failed: " + path.string());
  return inflightName;
}

/// Writes the manifest via temp file + rename (atomic on POSIX).
void writeManifestFile(const std::filesystem::path& dir,
                       const CheckpointManifest& manifest,
                       const std::string& adjacencyName,
                       const std::string& inflightName) {
  const std::filesystem::path tmp = dir / "manifest.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    CHISIM_CHECK(out.good(),
                 "cannot write checkpoint manifest: " + tmp.string());
    out << kManifestMagic << "\n";
    out << "files_consumed " << manifest.filesConsumed << "\n";
    out << "batches_done " << manifest.batchesDone << "\n";
    out << "config_hash " << manifest.configHash << "\n";
    if (manifest.spillMode) {
      out << "spill_mode 1\n";
      for (const SpillRunEntry& run : manifest.spillRuns) {
        // Tab-separated like quarantine lines; run names carry no tabs.
        // An inverted key range (1 > 0) encodes "range unknown" — a real
        // range always has firstKey <= lastKey.
        out << "spill\t" << run.file << "\t" << run.triplets << "\t"
            << run.bytes << "\t" << (run.hasKeyRange ? run.firstKey : 1)
            << "\t" << (run.hasKeyRange ? run.lastKey : 0) << "\n";
      }
      for (const MergeSegmentEntry& segment : manifest.mergeSegments) {
        out << "mergeseg\t" << segment.shard << "\t" << segment.file << "\t"
            << segment.triplets << "\t" << segment.bytes << "\t"
            << segment.crc << "\n";
      }
    } else {
      out << "adjacency " << adjacencyName << "\n";
    }
    if (!inflightName.empty()) {
      out << "inflight " << inflightName << "\n";
    }
    for (const elog::QuarantinedFile& entry : manifest.quarantined) {
      // Tab-separated; the free-text reason goes last.
      out << "quarantine\t" << entry.chunkIndex << "\t" << entry.byteOffset
          << "\t" << entry.file.string() << "\t" << entry.reason << "\n";
    }
    out.flush();
    CHISIM_CHECK(out.good(),
                 "checkpoint manifest write failed: " + tmp.string());
  }
  std::filesystem::rename(tmp, manifestPath(dir));
}

/// Garbage-collects superseded adjacency and in-flight files after the
/// manifest rename. An empty `adjacencyName` (spill mode) removes every
/// .cadj — a spill manifest references none.
void collectStaleSnapshots(const std::filesystem::path& dir,
                           const std::string& adjacencyName,
                           const std::string& inflightName) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const bool staleAdjacency = name.starts_with("adjacency.") &&
                                name.ends_with(".cadj") &&
                                name != adjacencyName;
    const bool staleInflight = name.starts_with("inflight.") &&
                               name.ends_with(".evt") && name != inflightName;
    if (staleAdjacency || staleInflight) {
      std::error_code ignored;
      std::filesystem::remove(entry.path(), ignored);
    }
  }
}

}  // namespace

void saveCheckpoint(const std::filesystem::path& dir,
                    const CheckpointManifest& manifest,
                    const sparse::SymmetricAdjacency& adjacency,
                    const InflightBatch* inflight) {
  CHISIM_REQUIRE(!manifest.spillMode,
                 "spill-mode manifests go through saveSpillCheckpoint");
  std::filesystem::create_directories(dir);

  // 1. The adjacency (and in-flight snapshot), under cursor-stamped names
  //    the manifest will point at. A crash mid-write leaves the old
  //    manifest pointing at the old (complete) files.
  const std::string adjacencyName =
      "adjacency." + std::to_string(manifest.filesConsumed) + ".cadj";
  sparse::saveAdjacency(adjacency, dir / adjacencyName);

  std::string inflightName;
  if (inflight != nullptr) {
    inflightName =
        writeInflightSnapshot(dir, manifest.filesConsumed, *inflight);
  }

  // 2. The manifest, via temp file + rename (atomic on POSIX).
  writeManifestFile(dir, manifest, adjacencyName, inflightName);

  // 3. Garbage-collect superseded adjacency and in-flight files.
  collectStaleSnapshots(dir, adjacencyName, inflightName);
}

void saveSpillCheckpoint(const std::filesystem::path& dir,
                         const CheckpointManifest& manifest,
                         const std::filesystem::path& spillDir,
                         const InflightBatch* inflight, bool gcSpillDir) {
  CHISIM_REQUIRE(manifest.spillMode,
                 "saveSpillCheckpoint needs a spill-mode manifest");
  std::filesystem::create_directories(dir);

  // The accumulated state needs no snapshot step: every run the manifest
  // names already landed on disk via tmp+rename when it was spilled. Only
  // the in-flight batch (if any) and the manifest itself get written here.
  std::string inflightName;
  if (inflight != nullptr) {
    inflightName =
        writeInflightSnapshot(dir, manifest.filesConsumed, *inflight);
  }
  writeManifestFile(dir, manifest, /*adjacencyName=*/"", inflightName);

  // GC: snapshots the spill manifest supersedes (all .cadj, stale .evt),
  // then spill files the new manifest does not reference — compaction
  // inputs whose output run took their place, worker-run orphans of a
  // crashed batch, and .tmp husks of interrupted spills. Safe only here,
  // after the rename: until then the previous manifest may name them.
  collectStaleSnapshots(dir, /*adjacencyName=*/"", inflightName);
  if (!gcSpillDir) {
    return;
  }
  std::set<std::string> referenced;
  for (const SpillRunEntry& run : manifest.spillRuns) {
    referenced.insert(run.file);
  }
  for (const MergeSegmentEntry& segment : manifest.mergeSegments) {
    referenced.insert(segment.file);
  }
  if (std::filesystem::exists(spillDir)) {
    for (const auto& entry : std::filesystem::directory_iterator(spillDir)) {
      const std::string name = entry.path().filename().string();
      const bool spillFile =
          name.ends_with(".spl") || name.ends_with(".spl.tmp") ||
          name.ends_with(".cseg") || name.ends_with(".cseg.tmp");
      if (spillFile && !referenced.contains(name)) {
        std::error_code ignored;
        std::filesystem::remove(entry.path(), ignored);
      }
    }
  }
}

std::optional<CheckpointManifest> loadCheckpointManifest(
    const std::filesystem::path& dir) {
  const std::filesystem::path path = manifestPath(dir);
  std::ifstream in(path);
  if (!in.good()) {
    return std::nullopt;
  }
  std::string magic;
  std::getline(in, magic);
  CHISIM_CHECK(magic == kManifestMagic,
               "not a checkpoint manifest: " + path.string());
  CheckpointManifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line.starts_with("spill\t")) {
      // spill\t<file>\t<triplets>\t<bytes>[\t<firstKey>\t<lastKey>]
      // The key-range tail is absent in manifests from older builds; an
      // inverted range (first > last) means "unknown".
      std::vector<std::string> fields;
      std::size_t begin = 0;
      while (begin <= line.size()) {
        const std::size_t tab = line.find('\t', begin);
        if (tab == std::string::npos) {
          fields.push_back(line.substr(begin));
          break;
        }
        fields.push_back(line.substr(begin, tab - begin));
        begin = tab + 1;
      }
      CHISIM_CHECK(fields.size() == 4 || fields.size() == 6,
                   "malformed spill line in " + path.string());
      SpillRunEntry run;
      run.file = fields[1];
      run.triplets = std::stoull(fields[2]);
      run.bytes = std::stoull(fields[3]);
      if (fields.size() == 6) {
        const std::uint64_t first = std::stoull(fields[4]);
        const std::uint64_t last = std::stoull(fields[5]);
        if (first <= last) {
          run.hasKeyRange = true;
          run.firstKey = first;
          run.lastKey = last;
        }
      }
      CHISIM_CHECK(!run.file.empty(),
                   "spill line names no file in " + path.string());
      manifest.spillRuns.push_back(std::move(run));
      continue;
    }
    if (line.starts_with("mergeseg\t")) {
      // mergeseg\t<shard>\t<file>\t<triplets>\t<bytes>\t<crc>
      std::vector<std::string> fields;
      std::size_t begin = 0;
      while (begin <= line.size()) {
        const std::size_t tab = line.find('\t', begin);
        if (tab == std::string::npos) {
          fields.push_back(line.substr(begin));
          break;
        }
        fields.push_back(line.substr(begin, tab - begin));
        begin = tab + 1;
      }
      CHISIM_CHECK(fields.size() == 6,
                   "malformed mergeseg line in " + path.string());
      MergeSegmentEntry segment;
      segment.shard = static_cast<std::uint32_t>(std::stoul(fields[1]));
      segment.file = fields[2];
      segment.triplets = std::stoull(fields[3]);
      segment.bytes = std::stoull(fields[4]);
      segment.crc = static_cast<std::uint32_t>(std::stoul(fields[5]));
      CHISIM_CHECK(!segment.file.empty(),
                   "mergeseg line names no file in " + path.string());
      manifest.mergeSegments.push_back(std::move(segment));
      continue;
    }
    if (line.starts_with("quarantine\t")) {
      // quarantine\t<chunkIndex>\t<byteOffset>\t<path>\t<reason>
      std::vector<std::string> fields;
      std::size_t begin = 0;
      while (fields.size() < 4) {
        const std::size_t tab = line.find('\t', begin);
        CHISIM_CHECK(tab != std::string::npos,
                     "malformed quarantine line in " + path.string());
        fields.push_back(line.substr(begin, tab - begin));
        begin = tab + 1;
      }
      elog::QuarantinedFile entry;
      entry.chunkIndex = std::stoll(fields[1]);
      entry.byteOffset = std::stoull(fields[2]);
      entry.file = fields[3];
      entry.reason = line.substr(begin);
      manifest.quarantined.push_back(std::move(entry));
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "files_consumed") {
      fields >> manifest.filesConsumed;
    } else if (key == "batches_done") {
      fields >> manifest.batchesDone;
    } else if (key == "config_hash") {
      fields >> manifest.configHash;
    } else if (key == "adjacency") {
      fields >> manifest.adjacencyFile;
    } else if (key == "spill_mode") {
      int value = 0;
      fields >> value;
      manifest.spillMode = value != 0;
    } else if (key == "inflight") {
      fields >> manifest.inflightFile;
    } else {
      CHISIM_CHECK(false, "unknown manifest key '" + key +
                              "' in " + path.string());
    }
    CHISIM_CHECK(!fields.fail(),
                 "malformed manifest line in " + path.string());
  }
  // A spill-mode manifest carries its state as run files (possibly zero of
  // them: an all-empty prefix of batches is legal); anything else must
  // name a dense snapshot.
  CHISIM_CHECK(manifest.spillMode || !manifest.adjacencyFile.empty(),
               "manifest names no adjacency file: " + path.string());
  CHISIM_CHECK(manifest.spillMode || manifest.spillRuns.empty(),
               "manifest lists spill runs without spill_mode: " +
                   path.string());
  CHISIM_CHECK(manifest.spillMode || manifest.mergeSegments.empty(),
               "manifest lists merge segments without spill_mode: " +
                   path.string());
  return manifest;
}

sparse::SymmetricAdjacency loadCheckpointAdjacency(
    const std::filesystem::path& dir, const CheckpointManifest& manifest) {
  CHISIM_REQUIRE(!manifest.spillMode,
                 "spill-mode checkpoints restore from run files, not a "
                 ".cadj snapshot");
  return sparse::loadAdjacency(dir / manifest.adjacencyFile);
}

std::optional<InflightBatch> loadCheckpointInflight(
    const std::filesystem::path& dir, const CheckpointManifest& manifest) {
  if (manifest.inflightFile.empty()) {
    return std::nullopt;
  }
  const std::filesystem::path path = dir / manifest.inflightFile;
  std::ifstream in(path, std::ios::binary);
  CHISIM_CHECK(in.good(), "manifest names a missing in-flight batch "
                          "snapshot: " + path.string());
  CHISIM_CHECK(util::readU32(in) == kInflightMagic,
               "not an in-flight batch snapshot: " + path.string());
  CHISIM_CHECK(util::readU32(in) == kInflightVersion,
               "unsupported in-flight batch snapshot version: " +
                   path.string());
  const std::uint32_t crc = util::readU32(in);
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> body(raw.size());
  if (!raw.empty()) {
    std::memcpy(body.data(), raw.data(), raw.size());
  }
  CHISIM_CHECK(util::crc32(body) == crc,
               "in-flight batch snapshot is corrupt (CRC mismatch): " +
                   path.string());
  return decodeInflight(body);
}

}  // namespace chisimnet::net
