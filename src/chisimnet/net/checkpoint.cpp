#include "chisimnet/net/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::net {

namespace {

constexpr const char* kManifestMagic = "CHKP1";

std::filesystem::path manifestPath(const std::filesystem::path& dir) {
  return dir / kCheckpointManifestName;
}

}  // namespace

std::uint32_t checkpointConfigHash(
    const SynthesisConfig& config,
    const std::vector<std::filesystem::path>& files) {
  // Only fields that determine the output for a given file list; perf
  // knobs (workers, prefetch, partitioning) are free to change across a
  // resume — the summed adjacency does not depend on them.
  std::string text;
  text += std::to_string(config.windowStart) + "|";
  text += std::to_string(config.windowEnd) + "|";
  text += std::to_string(static_cast<int>(config.method)) + "|";
  text += std::to_string(config.filesPerBatch) + "|";
  for (const std::filesystem::path& file : files) {
    text += file.filename().string() + "|";
  }
  return util::crc32(
      std::as_bytes(std::span<const char>(text.data(), text.size())));
}

void saveCheckpoint(const std::filesystem::path& dir,
                    const CheckpointManifest& manifest,
                    const sparse::SymmetricAdjacency& adjacency) {
  std::filesystem::create_directories(dir);

  // 1. The adjacency, under a cursor-stamped name the manifest will point
  //    at. A crash mid-write leaves the old manifest pointing at the old
  //    (complete) file.
  const std::string adjacencyName =
      "adjacency." + std::to_string(manifest.filesConsumed) + ".cadj";
  sparse::saveAdjacency(adjacency, dir / adjacencyName);

  // 2. The manifest, via temp file + rename (atomic on POSIX).
  const std::filesystem::path tmp = dir / "manifest.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    CHISIM_CHECK(out.good(),
                 "cannot write checkpoint manifest: " + tmp.string());
    out << kManifestMagic << "\n";
    out << "files_consumed " << manifest.filesConsumed << "\n";
    out << "batches_done " << manifest.batchesDone << "\n";
    out << "config_hash " << manifest.configHash << "\n";
    out << "adjacency " << adjacencyName << "\n";
    for (const elog::QuarantinedFile& entry : manifest.quarantined) {
      // Tab-separated; the free-text reason goes last.
      out << "quarantine\t" << entry.chunkIndex << "\t" << entry.byteOffset
          << "\t" << entry.file.string() << "\t" << entry.reason << "\n";
    }
    out.flush();
    CHISIM_CHECK(out.good(),
                 "checkpoint manifest write failed: " + tmp.string());
  }
  std::filesystem::rename(tmp, manifestPath(dir));

  // 3. Garbage-collect superseded adjacency files.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("adjacency.") && name.ends_with(".cadj") &&
        name != adjacencyName) {
      std::error_code ignored;
      std::filesystem::remove(entry.path(), ignored);
    }
  }
}

std::optional<CheckpointManifest> loadCheckpointManifest(
    const std::filesystem::path& dir) {
  const std::filesystem::path path = manifestPath(dir);
  std::ifstream in(path);
  if (!in.good()) {
    return std::nullopt;
  }
  std::string magic;
  std::getline(in, magic);
  CHISIM_CHECK(magic == kManifestMagic,
               "not a checkpoint manifest: " + path.string());
  CheckpointManifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line.starts_with("quarantine\t")) {
      // quarantine\t<chunkIndex>\t<byteOffset>\t<path>\t<reason>
      std::vector<std::string> fields;
      std::size_t begin = 0;
      while (fields.size() < 4) {
        const std::size_t tab = line.find('\t', begin);
        CHISIM_CHECK(tab != std::string::npos,
                     "malformed quarantine line in " + path.string());
        fields.push_back(line.substr(begin, tab - begin));
        begin = tab + 1;
      }
      elog::QuarantinedFile entry;
      entry.chunkIndex = std::stoll(fields[1]);
      entry.byteOffset = std::stoull(fields[2]);
      entry.file = fields[3];
      entry.reason = line.substr(begin);
      manifest.quarantined.push_back(std::move(entry));
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "files_consumed") {
      fields >> manifest.filesConsumed;
    } else if (key == "batches_done") {
      fields >> manifest.batchesDone;
    } else if (key == "config_hash") {
      fields >> manifest.configHash;
    } else if (key == "adjacency") {
      fields >> manifest.adjacencyFile;
    } else {
      CHISIM_CHECK(false, "unknown manifest key '" + key +
                              "' in " + path.string());
    }
    CHISIM_CHECK(!fields.fail(),
                 "malformed manifest line in " + path.string());
  }
  CHISIM_CHECK(!manifest.adjacencyFile.empty(),
               "manifest names no adjacency file: " + path.string());
  return manifest;
}

sparse::SymmetricAdjacency loadCheckpointAdjacency(
    const std::filesystem::path& dir, const CheckpointManifest& manifest) {
  return sparse::loadAdjacency(dir / manifest.adjacencyFile);
}

}  // namespace chisimnet::net
