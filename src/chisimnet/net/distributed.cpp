#include "chisimnet/net/distributed.hpp"

#include <mutex>

#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/partition.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

namespace {

constexpr int kRoot = 0;
constexpr int kEventsTag = 100;    ///< stage 2: root -> worker event groups
constexpr int kMatrixTag = 101;    ///< stage 3: worker -> root matrices
constexpr int kBatchTag = 102;     ///< stage 4: root -> worker matrix batches
constexpr int kSumTag = 103;       ///< stage 5: worker -> root adjacency sums

/// Stage-2 payload: [placeCount u32][per place: eventCount u32]
/// followed by a second message with the concatenated events.
struct EventScatter {
  std::vector<std::uint32_t> header;
  std::vector<table::Event> events;
};

std::vector<std::byte> packMatrices(
    const std::vector<sparse::CollocationMatrix>& matrices) {
  // [count u32][per matrix: byteLength u32 + payload]
  std::vector<std::byte> packed;
  const auto put32 = [&packed](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      packed.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  put32(static_cast<std::uint32_t>(matrices.size()));
  for (const sparse::CollocationMatrix& matrix : matrices) {
    const std::vector<std::byte> bytes = matrix.toBytes();
    put32(static_cast<std::uint32_t>(bytes.size()));
    packed.insert(packed.end(), bytes.begin(), bytes.end());
  }
  return packed;
}

std::vector<sparse::CollocationMatrix> unpackMatrices(
    std::span<const std::byte> packed) {
  std::size_t cursor = 0;
  const auto take32 = [&packed, &cursor]() {
    CHISIM_CHECK(cursor + 4 <= packed.size(), "truncated matrix pack");
    const std::uint32_t value =
        static_cast<std::uint32_t>(packed[cursor]) |
        (static_cast<std::uint32_t>(packed[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(packed[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(packed[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  const std::uint32_t count = take32();
  std::vector<sparse::CollocationMatrix> matrices;
  matrices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t length = take32();
    CHISIM_CHECK(cursor + length <= packed.size(), "truncated matrix pack");
    matrices.push_back(
        sparse::CollocationMatrix::fromBytes(packed.subspan(cursor, length)));
    cursor += length;
  }
  return matrices;
}

}  // namespace

sparse::SymmetricAdjacency synthesizeDistributed(
    const std::vector<std::filesystem::path>& logFiles,
    const SynthesisConfig& config, DistributedReport* report) {
  CHISIM_REQUIRE(!logFiles.empty(), "no log files given");
  CHISIM_REQUIRE(config.windowStart < config.windowEnd,
                 "time window must be non-empty");
  CHISIM_REQUIRE(config.workers >= 1, "need at least one rank");

  util::WallTimer total;
  DistributedReport localReport;
  sparse::SymmetricAdjacency result(1024);

  const int ranks = static_cast<int>(config.workers);
  runtime::Communicator::run(ranks, [&](runtime::RankHandle& rank) {
    const int self = rank.rank();

    // ---- stage 1-2: root loads serially and scatters place groups -------
    if (self == kRoot) {
      table::EventTable events =
          elog::loadEvents(logFiles, config.windowStart, config.windowEnd);
      localReport.logEntriesLoaded = events.size();
      const table::PlaceIndex index = events.buildPlaceIndex();

      // Round-robin place groups across ranks (the colloc stage is roughly
      // uniform per row; the nnz balancing happens in stage 4).
      std::vector<EventScatter> scatters(static_cast<std::size_t>(ranks));
      for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
        EventScatter& scatter = scatters[group % ranks];
        const auto rows = index.groupRows(group);
        scatter.header.push_back(static_cast<std::uint32_t>(rows.size()));
        for (table::RowIndex row : rows) {
          scatter.events.push_back(events.row(row));
        }
      }
      for (int dest = 0; dest < ranks; ++dest) {
        const EventScatter& scatter = scatters[static_cast<std::size_t>(dest)];
        rank.sendVector<std::uint32_t>(dest, kEventsTag, scatter.header);
        rank.sendVector<table::Event>(dest, kEventsTag, scatter.events);
        localReport.bytesScattered += scatter.events.size() * sizeof(table::Event);
      }
    }

    // ---- stage 3: every rank builds its collocation matrices -------------
    const auto header = rank.recv(kRoot, kEventsTag).as<std::uint32_t>();
    const auto myEvents = rank.recv(kRoot, kEventsTag).as<table::Event>();
    std::vector<sparse::CollocationMatrix> built;
    std::size_t eventCursor = 0;
    for (std::uint32_t groupSize : header) {
      const std::span<const table::Event> groupEvents(
          myEvents.data() + eventCursor, groupSize);
      eventCursor += groupSize;
      CHISIM_CHECK(!groupEvents.empty(), "empty place group scattered");
      sparse::CollocationMatrix matrix(groupEvents.front().place, groupEvents,
                                       config.windowStart, config.windowEnd);
      if (matrix.nnz() > 0) {
        built.push_back(std::move(matrix));
      }
    }
    // Return the matrix list to the root (paper: "saved in a list and
    // returned to the root process").
    const std::vector<std::byte> packed = packMatrices(built);
    rank.send(kRoot, kMatrixTag, packed);

    // ---- stage 4: root re-partitions by nnz and re-scatters ---------------
    if (self == kRoot) {
      std::vector<sparse::CollocationMatrix> all;
      for (int source = 0; source < ranks; ++source) {
        const runtime::Message message = rank.recv(source, kMatrixTag);
        localReport.bytesReturned += message.payload.size();
        for (sparse::CollocationMatrix& matrix :
             unpackMatrices(message.payload)) {
          all.push_back(std::move(matrix));
        }
      }
      localReport.placesProcessed = all.size();
      std::vector<std::uint64_t> weights;
      weights.reserve(all.size());
      for (const sparse::CollocationMatrix& matrix : all) {
        weights.push_back(matrix.nnz());
        localReport.collocationNnz += matrix.nnz();
      }
      const runtime::Partition partition =
          config.balancedPartition
              ? runtime::partitionGreedyLpt(weights, config.workers)
              : runtime::partitionContiguous(weights, config.workers);
      localReport.partitionImbalance = partition.imbalance();
      for (int dest = 0; dest < ranks; ++dest) {
        std::vector<sparse::CollocationMatrix> batch;
        for (std::size_t item :
             partition.assignment[static_cast<std::size_t>(dest)]) {
          batch.push_back(std::move(all[item]));
        }
        rank.send(dest, kBatchTag, packMatrices(batch));
      }
    }

    // ---- stage 5: every rank computes and sums its adjacencies -----------
    const runtime::Message batchMessage = rank.recv(kRoot, kBatchTag);
    const auto batch = unpackMatrices(batchMessage.payload);
    sparse::SymmetricAdjacency sum(1024);
    for (const sparse::CollocationMatrix& matrix : batch) {
      sum.addCollocation(matrix, config.method);
    }
    const std::vector<sparse::AdjacencyTriplet> triplets = sum.toTriplets();
    rank.sendVector<sparse::AdjacencyTriplet>(kRoot, kSumTag, triplets);

    // ---- stage 6: root reduces worker sums -------------------------------
    if (self == kRoot) {
      for (int source = 0; source < ranks; ++source) {
        const auto sumTriplets =
            rank.recv(source, kSumTag).as<sparse::AdjacencyTriplet>();
        for (const sparse::AdjacencyTriplet& triplet : sumTriplets) {
          result.add(triplet.i, triplet.j, triplet.weight);
        }
      }
    }
  });

  localReport.edges = result.edgeCount();
  localReport.totalSeconds = total.seconds();
  if (report != nullptr) {
    *report = localReport;
  }
  return result;
}

}  // namespace chisimnet::net
