#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/sparse/adjacency.hpp"

/// Message-passing backend for the collocation-network synthesis — the
/// Rmpi code path of the paper (§IV.A: "For larger clusters the use of an
/// MPI backend through the Rmpi library allows for parallelization across a
/// much larger number of processes").
///
/// Data flow is exactly the paper's:
///   1. rank 0 (the root) serially loads the log files and builds the
///      place index,
///   2. the root scatters each worker its subset of place event groups,
///   3. workers build sparse collocation matrices and return them to the
///      root as a list,
///   4. the root partitions the combined matrix list by nonzero count
///      (greedy LPT — the crucial balancing step) and re-scatters it,
///   5. workers compute and locally sum per-place adjacencies A_l = x·xᵀ,
///   6. the root reduces the worker sums into the final sparse triangular
///      adjacency.
///
/// The result is bit-identical to the shared-memory NetworkSynthesizer.

namespace chisimnet::net {

struct DistributedReport {
  std::uint64_t logEntriesLoaded = 0;
  std::uint64_t placesProcessed = 0;
  std::uint64_t collocationNnz = 0;
  std::uint64_t edges = 0;
  std::uint64_t bytesScattered = 0;   ///< stage-2 event payloads
  std::uint64_t bytesReturned = 0;    ///< stage-3 matrix payloads
  double partitionImbalance = 1.0;
  double totalSeconds = 0.0;
};

/// Runs the pipeline on `config.workers` message-passing ranks. Uses
/// config.windowStart/windowEnd/method/balancedPartition; filesPerBatch is
/// ignored (single batch).
sparse::SymmetricAdjacency synthesizeDistributed(
    const std::vector<std::filesystem::path>& logFiles,
    const SynthesisConfig& config, DistributedReport* report = nullptr);

}  // namespace chisimnet::net
