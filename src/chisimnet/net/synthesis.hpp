#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/graph/graph.hpp"
#include "chisimnet/runtime/partition.hpp"
#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/table/event_table.hpp"

/// The paper's core contribution (§IV): parallel synthesis of the person
/// collocation network from simulation log data.
///
/// Pipeline per batch of log files:
///   1. the log files are decoded into an event table — by default on a
///      background prefetcher that loads batch k+1 while batch k is in
///      stages 2-6, taking file I/O off the compute critical path,
///   2. the time slice is subset, unique place ids extracted, and place
///      groups handed to the executor's workers,
///   3. workers build one sparse p×t collocation matrix per place,
///   4. the matrix list is re-partitioned by nonzero count (LPT) for even
///      load balance — the step §IV.A.3 calls crucial,
///   5. workers compute per-place adjacencies A_l = x·xᵀ and sum their set,
///   6. worker sums are reduced into a single sparse upper-triangular
///      adjacency, and batches are summed into the final network.
///
/// Stages 2-6 are dispatched through a pluggable SynthesisExecutor
/// (executor.hpp), with one implementation per dispatch substrate of the
/// paper: shared-memory workers (SNOW fork cluster) and message-passing
/// ranks (Rmpi). Both run the exact same driver, so batching, prefetch,
/// per-stage timing, and the report shape are backend-independent.

namespace chisimnet::net {

class SynthesisExecutor;

/// Dispatch substrate for stages 2-6 (paper §IV.A: SNOW vs Rmpi).
enum class SynthesisBackend {
  /// Worker threads over shared memory (runtime::Cluster) — the SNOW fork
  /// cluster of the paper, no serialization between stages.
  kSharedMemory,
  /// Message-passing ranks (runtime::comm) with the paper's root-scatter /
  /// return / re-scatter / reduce data flow; collocation matrices travel as
  /// serialized bytes and the report carries the byte accounting.
  kMessagePassing,
};

inline const char* backendName(SynthesisBackend backend) noexcept {
  return backend == SynthesisBackend::kSharedMemory ? "shared" : "mp";
}

/// Where the message-passing ranks live (kMessagePassing backend only).
enum class MpTransport {
  /// Ranks are RankTeam service threads in this process, mailboxes are the
  /// wire (the default; no crash isolation, no serialization of the wire
  /// frames beyond the command payloads).
  kInProcess,
  /// Ranks are fork/exec'd OS processes speaking length-framed Unix-domain
  /// socket streams (runtime::ProcessTransport). A worker crash — real
  /// SIGKILL included — is survived by respawn and/or the rank-loss
  /// reassignment path, with bit-identical output.
  kProcess,
  /// Ranks dial rank 0 over TCP (runtime::TcpTransport) speaking the same
  /// CSF1 frames — the multi-host story. A dropped connection is survived
  /// by worker-initiated reconnect inside a grace window (epoch-replayed
  /// handshake) and/or the same rank-loss reassignment path; spill runs
  /// ship their bytes over the wire, so workers need no shared filesystem.
  kTcp,
};

inline const char* mpTransportName(MpTransport transport) noexcept {
  switch (transport) {
    case MpTransport::kInProcess:
      return "inproc";
    case MpTransport::kProcess:
      return "process";
    case MpTransport::kTcp:
      return "tcp";
  }
  return "unknown";
}

/// How the pipeline responds to recoverable failures (corrupt input files,
/// failed worker commands).
enum class FaultPolicy {
  /// First failure aborts the whole run with the original error (default —
  /// matches the paper's batch jobs, where a failed job is simply re-run).
  kFailFast,
  /// Degrade gracefully: quarantine undecodable input files and retry /
  /// route around failing ranks, reporting exactly what was excluded so
  /// the caller can judge whether the degraded network is usable.
  kDegrade,
};

inline const char* faultPolicyName(FaultPolicy policy) noexcept {
  return policy == FaultPolicy::kFailFast ? "failfast" : "degrade";
}

/// One recovery action the pipeline took, in the order it happened.
struct FaultEvent {
  enum class Kind {
    kCommandRetry,     ///< a worker command failed/timed out and was retried
    kRankLost,         ///< a rank was declared dead; its work reassigned
    kWorkerRespawn,    ///< a dead worker process was re-execed for its rank
    kWorkerReconnect,  ///< a disconnected TCP worker re-dialed and resumed
    kFileQuarantined,  ///< an input file was excluded as undecodable
    kResume,           ///< the run restarted from a checkpoint
    kCheckpoint,       ///< a batch checkpoint was persisted
  };
  Kind kind = Kind::kCommandRetry;
  int rank = -1;            ///< affected rank, -1 when not rank-scoped
  std::uint64_t batch = 0;  ///< batch counter at the time of the event
  std::string detail;       ///< human-readable specifics
};

inline const char* faultEventKindName(FaultEvent::Kind kind) noexcept {
  switch (kind) {
    case FaultEvent::Kind::kCommandRetry:
      return "command-retry";
    case FaultEvent::Kind::kRankLost:
      return "rank-lost";
    case FaultEvent::Kind::kWorkerRespawn:
      return "worker-respawn";
    case FaultEvent::Kind::kWorkerReconnect:
      return "worker-reconnect";
    case FaultEvent::Kind::kFileQuarantined:
      return "file-quarantined";
    case FaultEvent::Kind::kResume:
      return "resume";
    case FaultEvent::Kind::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

struct SynthesisConfig {
  table::Hour windowStart = 0;
  table::Hour windowEnd = 168;
  unsigned workers = 4;
  SynthesisBackend backend = SynthesisBackend::kSharedMemory;
  /// Per-place x·xᵀ kernel. kLocalAccumulate (default) gathers each
  /// place's pairs in local row coordinates and emits once per distinct
  /// pair; kSpGemm is the paper-faithful per-pair-hour global insert. All
  /// methods produce bit-identical adjacencies.
  sparse::AdjacencyMethod method = sparse::AdjacencyMethod::kLocalAccumulate;
  /// true: stage 6 folds worker sums through a log-depth pairwise merge
  /// tree (thread-pool merges on shared memory, rank-pair sorted-run
  /// merges on message passing); false: the serial one-at-a-time root
  /// merge (the ablation baseline). Output is identical either way, so
  /// this is a perf knob and not part of the checkpoint config hash.
  bool treeReduce = true;
  /// true: nnz-based LPT re-partitioning (the paper's scheme);
  /// false: contiguous equal-count lists (the naive ablation baseline).
  bool balancedPartition = true;
  /// true (default): weigh each matrix by nnz times its mean simultaneous
  /// occupancy (nnz² / occupied hours) instead of plain nnz, so hub places
  /// — whose x·xᵀ cost grows faster than their person-hours — are
  /// partitioned by a closer proxy of adjacency cost. Defaulted on after
  /// bench_partition_ablation showed consistently lower busy imbalance and
  /// makespan on skewed populations (EXPERIMENTS.md); false restores the
  /// paper's plain-nnz §IV.A.3 scheme.
  bool occupancyWeight = true;
  /// Files per batch when synthesizing from disk; 0 processes all files in
  /// one batch. Batches are independent and their adjacencies are summed,
  /// mirroring the paper's batched cluster jobs (§V).
  std::size_t filesPerBatch = 0;
  /// true: decode batch k+1 on a background loader while batch k is being
  /// processed (two-stage pipeline); false: serial load-then-process.
  bool prefetch = true;
  /// Max decoded batches the prefetcher buffers ahead of the compute thread.
  std::size_t prefetchDepth = 2;
  /// Threads the prefetcher uses to decode the files of one batch in
  /// parallel; 0 uses `workers`. Requires prefetch — configuring decode
  /// workers with prefetch disabled is a hard error, not a silent ignore.
  unsigned decodeWorkers = 0;

  // ---- fault tolerance ----

  FaultPolicy faultPolicy = FaultPolicy::kFailFast;
  /// Degrade mode: abort anyway once more than this many input files have
  /// been quarantined (a blast-radius bound). 0 = no limit. Requires
  /// kDegrade — a limit under failfast is a hard config error.
  std::size_t maxQuarantinedFiles = 0;
  /// Message-passing backend: deadline for one worker command round trip.
  /// 0 disables the deadline — a silently dead rank then hangs the root
  /// (the pre-fault-tolerance behavior); recoverable worker errors are
  /// still retried under kDegrade since those need no timer.
  std::uint64_t commandTimeoutMs = 0;
  /// Degrade mode: attempts per worker command (first try included) before
  /// the rank is declared lost and its work reassigned to survivors.
  int commandMaxAttempts = 3;
  /// Base of the exponential backoff between command retries.
  std::uint64_t commandBackoffMs = 10;

  // ---- process / tcp transport (kMessagePassing backend only) ----

  /// Where the ranks live: service threads in this process (default),
  /// fork/exec'd worker processes over Unix-domain sockets, or TCP-dialing
  /// workers (possibly on other hosts). The process and tcp transports
  /// under kDegrade require commandTimeoutMs > 0 — a crashed worker never
  /// replies, so without a deadline the root would hang on it instead of
  /// retrying into the respawn/reconnect/reassignment path.
  MpTransport transport = MpTransport::kInProcess;
  /// Process transport: times a rank's worker process is re-execed after
  /// it dies before the rank is abandoned to the loss/reassignment path.
  /// 0 disables respawn (first death is permanent loss).
  int maxRespawns = 1;
  /// Process/tcp transport: heartbeat ping period (also the liveness
  /// monitor cadence, so ~the respawn/reconnect-detection latency). A
  /// worker silent for 8 periods is presumed hung and dropped.
  std::uint64_t heartbeatMs = 250;
  /// Process/tcp transport: worker binary to exec; empty re-enters the
  /// current binary (/proc/self/exe), whose main() must call
  /// maybeRunSynthesisWorker() first.
  std::string workerExecutable;

  // ---- tcp transport (transport == kTcp only) ----

  /// Per-attempt deadline of a worker's dial + hello handshake.
  std::uint64_t connectTimeoutMs = 5000;
  /// Extra dial attempts after the first (exponential backoff between
  /// them) before a worker gives up — both at startup and on reconnect.
  int connectRetries = 5;
  /// How long a disconnected worker's slot waits for it to re-dial before
  /// the rank is declared permanently dead and its work reassigned. 0 =
  /// every disconnect is immediately permanent.
  std::uint64_t reconnectGraceMs = 3000;
  /// Root listen address as "host:port"; empty = 127.0.0.1 on an ephemeral
  /// port with workers spawned locally (loopback CI mode).
  std::string tcpListen;
  /// Job file of worker connect addresses, one "host:port" per line for
  /// ranks 1..N-1 (what each worker should dial — normally this root's
  /// address as reachable from that host). Empty = every worker dials the
  /// listen address. Requires tcpListen; workers are then NOT spawned
  /// locally — they are launched out-of-band via `chisim worker`.
  std::string tcpJob;
  /// When non-empty, persist a checkpoint (accumulated adjacency + cursor
  /// manifest) into this directory after every file batch.
  std::filesystem::path checkpointDir;
  /// Resume from the checkpoint in checkpointDir instead of starting from
  /// scratch. Requires checkpointDir; a missing/mismatched checkpoint is a
  /// hard error (resuming the wrong run must not silently corrupt output).
  bool resume = false;

  // ---- memory budget (out-of-core accumulation) ----

  /// When > 0, bound the accumulator memory of the run: the cross-batch
  /// adjacency accumulates in a row-range-sharded SpillingAccumulator that
  /// spills CRC-framed sorted runs to spillDir whenever resident bytes
  /// approach the budget, and stage 5 workers flush their partial sums the
  /// same way; the final network is an external-memory k-way merge of the
  /// live runs. Output is bit-identical to the unbounded path (u64 adds
  /// are order-independent and the merge sums duplicates), so the budget
  /// is a perf/footprint knob and not part of the checkpoint config hash —
  /// a run checkpointed unbounded can resume bounded and vice versa.
  /// 0 = unbounded (the original all-in-memory accumulator).
  std::uint64_t memoryBudgetBytes = 0;
  /// Run-file directory for the budgeted path and for oversized
  /// message-passing replies (which spill to disk and cross the wire as a
  /// file path once they would exceed runtime::maxPayloadBytes()). Empty
  /// resolves to checkpointDir/"spill" when checkpointing (so spill runs
  /// are covered by the checkpoint manifest) or to a unique directory
  /// under the system temp dir that the synthesizer removes on
  /// destruction. Note the message-passing process transport requires the
  /// workers to share this filesystem (they are local fork/exec children,
  /// so they do); the tcp transport does not — its workers spill into
  /// private local directories and ship run bytes over the wire, and this
  /// directory is where the root materializes them.
  std::filesystem::path spillDir;

  // ---- sharded external merge (stage-6 spill reduce) ----

  /// Owners of the stage-6 external merge: the spill runs are grouped by
  /// row-range shard and the shards distributed round-robin across this
  /// many owners (worker threads on the shared backend, ranks on message
  /// passing), each running an independent loser-tree merge. The final
  /// CADJ is the byte-identical concatenation of the per-shard segments,
  /// so the output does not depend on this knob (it stays outside the
  /// checkpoint config hash). 0 = auto (= workers); 1 = the serial
  /// single-merge baseline.
  unsigned reduceShards = 0;
  /// Row-range width of one merge shard (the granularity owners balance
  /// over, and the unit the final concatenation is ordered by). 0 = auto:
  /// 2^18 rows divided by the resolved owner count, floored at 1. Exposed
  /// mainly so tests and benches can force multi-shard layouts on small
  /// populations.
  std::uint32_t mergeRowsPerShard = 0;
  /// Read-side prefetch policy of the merge's run readers (per-run
  /// double-buffered frame decode by default; kFadvise adds OS readahead
  /// hints on top).
  sparse::SpillReadahead mergeReadahead =
      sparse::SpillReadahead::kDoubleBuffer;
};

/// Resolved owner count of the sharded external merge (reduceShards,
/// with 0 = the configured worker count).
unsigned resolvedReduceShards(const SynthesisConfig& config) noexcept;

/// Resolved row-range width of one merge shard (mergeRowsPerShard, with
/// 0 = 2^18 / owners so each owner has work to balance).
std::uint32_t resolvedMergeRowsPerShard(const SynthesisConfig& config) noexcept;

/// Timing and size metrics of the last synthesis run. One report type
/// serves both backends; fields a backend has no source for (e.g. comm
/// bytes on shared memory) stay zero.
struct SynthesisReport {
  SynthesisBackend backend = SynthesisBackend::kSharedMemory;

  std::uint64_t logEntriesLoaded = 0;
  std::uint64_t placesProcessed = 0;
  std::uint64_t collocationNnz = 0;   ///< total person-hours across places
  std::uint64_t edges = 0;            ///< nonzeros of the final adjacency
  std::uint64_t batches = 0;

  double loadSeconds = 0.0;       ///< stage 1: file load + table build
  /// Load seconds that actually blocked the compute thread. Without
  /// prefetching this equals loadSeconds; with prefetching it is only the
  /// time spent waiting on the background loader.
  double loadExposedSeconds = 0.0;
  /// Load seconds hidden behind stage 2-6 compute (loadSeconds minus the
  /// exposed part, clamped at 0).
  double loadOverlappedSeconds = 0.0;
  bool prefetchEnabled = false;
  double prefetchMeanOccupancy = 0.0;   ///< ready-buffer fill at each take
  std::uint64_t prefetchPeakOccupancy = 0;
  double subsetSeconds = 0.0;     ///< stage 2: slice + place index + scatter
  double collocationSeconds = 0.0;///< stage 3: collocation matrices
  double partitionSeconds = 0.0;  ///< stage 4: weight partitioning
  double adjacencySeconds = 0.0;  ///< stage 5: x·xᵀ products
  double reduceSeconds = 0.0;     ///< stage 6: worker-sum reduction
  double totalSeconds = 0.0;

  /// Weight imbalance (makespan / mean) of the adjacency-stage partition.
  double partitionImbalance = 1.0;
  /// Observed busy-time imbalance of the adjacency stage workers.
  double adjacencyBusyImbalance = 1.0;
  std::vector<std::uint64_t> partitionLoads;

  /// Payload bytes the root shipped to workers (event groups + matrix
  /// batches) and workers shipped back (matrix lists + adjacency sums).
  /// Counts every scatter/return payload including rank 0's self-delivery,
  /// so the figure tracks serialization volume, not NIC traffic. Zero on
  /// backends with no wire (shared memory).
  std::uint64_t bytesScattered = 0;
  std::uint64_t bytesReturned = 0;

  // ---- adjacency kernel (kLocalAccumulate only; zero otherwise) ----

  std::uint64_t kernelDensePlaces = 0;  ///< places on the triangular array
  std::uint64_t kernelHashPlaces = 0;   ///< places on the local hash
  std::uint64_t kernelPairHourUpdates = 0;  ///< local increments
  std::uint64_t kernelGlobalEmits = 0;  ///< distinct-pair global inserts

  // ---- stage-6 reduce shape ----

  bool treeReduceEnabled = false;
  unsigned reduceTreeDepth = 0;  ///< deepest merge tree of any batch
  std::uint64_t reduceMergedSums = 0;   ///< worker sums folded, all batches
  /// Modeled parallel reduce time: per tree level, only the slowest merge
  /// is on the critical path; this sums those maxima (equals the serial
  /// merge time when treeReduce is off). On a multi-core host this is what
  /// stage 6 would cost; single-core wall time cannot show the win.
  double reduceCriticalSeconds = 0.0;

  // ---- fault section: every recovery action of the run ----

  std::vector<FaultEvent> faults;
  /// Input files excluded by quarantine (degrade mode); the surviving
  /// output equals a clean run over exactly the other files.
  std::vector<elog::QuarantinedFile> quarantined;
  std::uint64_t commandRetries = 0;  ///< worker commands retried
  int ranksLost = 0;                 ///< ranks declared dead this run
  /// Process transport: dead worker processes re-execed for their rank.
  std::uint64_t workersRespawned = 0;
  /// Tcp transport: disconnected workers that re-dialed inside the grace
  /// window and resumed their rank (epoch-replayed handshake).
  std::uint64_t workersReconnected = 0;
  bool resumed = false;              ///< run started from a checkpoint
  std::uint64_t checkpointsWritten = 0;
  std::uint64_t filesSkippedByResume = 0;
  /// Resume restored a checkpointed in-flight batch (decoded events that
  /// had not been processed when the run died), skipping its re-decode.
  bool inflightRestored = false;

  // ---- memory budget / spill section (memoryBudgetBytes > 0) ----

  std::uint64_t memoryBudgetBytes = 0;  ///< the configured cap (0 = off)
  std::uint64_t spillRunsWritten = 0;   ///< sorted run files produced
  std::uint64_t spilledTriplets = 0;    ///< triplet rows that went to disk
  std::uint64_t spilledBytes = 0;       ///< run-file bytes written
  std::uint64_t spillCompactions = 0;   ///< live-run k-way compactions
  /// Max observed resident accumulator bytes (cross-batch shards + the
  /// spill-sort transient). The budget guarantee the tests assert:
  /// peakAccumulatorBytes ≤ memoryBudgetBytes.
  std::uint64_t peakAccumulatorBytes = 0;
  /// Max concurrent stage-5 worker bytes (summed per-worker historical
  /// peaks — pessimistic). Bounded by each worker's flush threshold
  /// (budget / (8 · workers)) plus the largest single place's pair block:
  /// per-place kernels cannot flush mid-place, so one crowded place sets
  /// the floor regardless of the budget.
  std::uint64_t peakStage5Bytes = 0;

  // ---- sharded external merge (synthesizeToFile under a budget) ----

  unsigned reduceShardsUsed = 0;  ///< resolved merge owner count
  std::uint64_t mergeSegmentsWritten = 0;  ///< per-shard segments merged
  /// Segments restored intact from a checkpoint and spliced without
  /// re-merging (kill-during-merge resume).
  std::uint64_t mergeSegmentsReused = 0;
  /// Straddling/unknown-range runs rewritten into shard-pure runs before
  /// the merge (zero when every spill was routed at flush time).
  std::uint64_t spillRunsSplit = 0;
  /// Output entries pre-reserved by merge sinks from summed per-run row
  /// counts (TripletMerger / PairCountMap reservations).
  std::uint64_t mergeReservedEntries = 0;
  /// Σ thread-CPU seconds across all shard merges (the serial-equivalent
  /// merge work).
  double mergeSeconds = 0.0;
  /// Modeled parallel merge time: max per-owner sum of shard merge
  /// seconds — what the external merge costs when every owner runs
  /// concurrently (single-core wall time cannot show the win).
  double mergeCriticalSeconds = 0.0;
};

class NetworkSynthesizer {
 public:
  explicit NetworkSynthesizer(SynthesisConfig config);
  ~NetworkSynthesizer();

  NetworkSynthesizer(const NetworkSynthesizer&) = delete;
  NetworkSynthesizer& operator=(const NetworkSynthesizer&) = delete;

  /// Synthesizes the collocation adjacency from per-rank log files,
  /// batch by batch. Under a memory budget the pipeline accumulates
  /// out-of-core and this materializes the merged result in memory at the
  /// end — use synthesizeToFile() when even the final triplet list must
  /// stay off the heap.
  sparse::SymmetricAdjacency synthesizeAdjacency(
      const std::vector<std::filesystem::path>& logFiles);

  /// Synthesizes from an in-memory event table (single batch).
  sparse::SymmetricAdjacency synthesizeAdjacency(const table::EventTable& events);

  /// Fully out-of-core synthesis: runs the batched pipeline, then streams
  /// the external k-way merge of the spilled runs straight into a CADJ1
  /// file at `outPath` (bytes identical to saveTriplets of the in-memory
  /// result). Returns the edge count. Requires memoryBudgetBytes > 0.
  std::uint64_t synthesizeToFile(
      const std::vector<std::filesystem::path>& logFiles,
      const std::filesystem::path& outPath);

  /// Convenience: adjacency -> graph.
  graph::Graph synthesizeGraph(
      const std::vector<std::filesystem::path>& logFiles);
  graph::Graph synthesizeGraph(const table::EventTable& events);

  const SynthesisConfig& config() const noexcept { return config_; }
  const SynthesisReport& report() const noexcept { return report_; }

 private:
  /// Runs stages 2-6 on one batch table, accumulating into exactly one of
  /// `dense` (unbounded path) or `sink` (memory-budgeted path).
  void processBatch(const table::EventTable& events,
                    sparse::SymmetricAdjacency* dense,
                    sparse::SpillingAccumulator* sink);

  /// Runs the full batched file pipeline (resume, prefetch, checkpoints)
  /// into the chosen accumulator; shared by the in-memory and to-file
  /// entry points.
  void runFilePipeline(const std::vector<std::filesystem::path>& logFiles,
                       sparse::SymmetricAdjacency* dense,
                       sparse::SpillingAccumulator* sink);

  /// Stage-4 weight of one matrix (nnz, or occupancy-scaled per config).
  std::uint64_t partitionWeight(const sparse::CollocationMatrix& matrix) const;

  /// Sharded tail of synthesizeToFile (resolvedReduceShards > 1): builds
  /// the shard merge plan, reuses validated segments restored by a resume,
  /// runs the remaining shards through the executor's owners (with a
  /// per-segment checkpoint when checkpointing), and splices the segments
  /// into `outPath` in ascending shard order. Returns the edge count.
  std::uint64_t mergeShardsToFile(
      const std::vector<std::filesystem::path>& logFiles,
      sparse::SpillingAccumulator& sink, const std::filesystem::path& outPath);

  SynthesisConfig config_;
  SynthesisReport report_;
  std::unique_ptr<SynthesisExecutor> executor_;
  /// Set when spillDir was auto-resolved to a temp dir this instance owns
  /// (and removes on destruction).
  std::filesystem::path ownedSpillDir_;
  /// Merge segments restored by a resume (shard, file name, identity) for
  /// synthesizeToFile to splice without re-merging; cleared per pipeline
  /// run. Kept as opaque tuples to avoid a checkpoint.hpp dependency here.
  struct RestoredSegment {
    std::uint32_t shard = 0;
    std::string file;
    std::uint64_t triplets = 0;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
  };
  std::vector<RestoredSegment> restoredSegments_;
};

/// Reference implementation for correctness tests: computes pairwise
/// collocation weights by brute force — for every hour and place, every
/// pair of present persons — without any of the pipeline machinery.
sparse::SymmetricAdjacency bruteForceAdjacency(const table::EventTable& events,
                                               table::Hour windowStart,
                                               table::Hour windowEnd);

}  // namespace chisimnet::net
