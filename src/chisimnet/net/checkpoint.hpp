#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/sparse/adjacency.hpp"

/// Batch checkpoint/resume for synthesis runs (the long-haul counterpart
/// of the paper's batched cluster jobs, §V): after each file batch the
/// driver can persist the accumulated adjacency plus a cursor manifest, so
/// a killed run restarts from the last completed batch instead of from
/// scratch. Adjacency accumulation is order-independent u64 addition and
/// the CADJ container round-trips triplets exactly, so a resumed run is
/// bit-identical to an uninterrupted one.
///
/// Crash safety: the adjacency (and, when present, the in-flight batch
/// snapshot) is written first under a batch-stamped name
/// (adjacency.<filesConsumed>.cadj / inflight.<filesConsumed>.evt), then
/// the manifest referencing them is written to a temp file and atomically
/// renamed over manifest.chkp, then stale batch-stamped files are deleted.
/// A crash at any point leaves either the previous consistent checkpoint
/// or the new one — never a manifest pointing at a half-written file.
///
/// In-flight batch: with prefetching, the background loader typically has
/// batch k+1 fully decoded while the checkpoint after batch k is written.
/// That decoded-but-unprocessed table is persisted beside the adjacency,
/// so a resume hands it straight to the compute stages and skips one batch
/// of file re-decode. The snapshot is integrity-checked (CRC32) and purely
/// an accelerator: its contents equal what re-decoding those files would
/// produce, so the resumed output is bit-identical either way.

namespace chisimnet::net {

inline constexpr const char* kCheckpointManifestName = "manifest.chkp";

/// One live spill run in a spill-mode checkpoint. Under a memory budget the
/// accumulated adjacency is a set of sorted run files, not a dense map;
/// the manifest names them instead of a .cadj snapshot. The run files are
/// already durable when the manifest is written — each landed via
/// tmp+rename when it was spilled — so spill-mode checkpoints skip the
/// snapshot write entirely.
struct SpillRunEntry {
  /// File name within the spill directory (config.spillDir; defaults to
  /// <checkpointDir>/spill for checkpointing runs).
  std::string file;
  std::uint64_t triplets = 0;
  std::uint64_t bytes = 0;
  /// Packed-key range of the run, recorded so a resumed run can tell
  /// shard-pure runs from straddlers without re-reading them. Manifests
  /// written before this field existed restore with hasKeyRange=false —
  /// the sharded merge then treats those runs as straddlers (correct,
  /// just one extra split pass).
  bool hasKeyRange = false;
  std::uint64_t firstKey = 0;
  std::uint64_t lastKey = 0;
};

/// One completed per-shard merge segment recorded mid-merge. A resume that
/// finds these re-merges only the shards without a segment; the recorded
/// ones are spliced into the final CADJ as-is (their CRC is re-verified at
/// splice time).
struct MergeSegmentEntry {
  std::uint32_t shard = 0;  ///< fine-shard index (lowId / rowsPerShard)
  /// Segment file name within the spill directory.
  std::string file;
  std::uint64_t triplets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

struct CheckpointManifest {
  /// Input files fully consumed (attempted, including quarantined ones).
  std::uint64_t filesConsumed = 0;
  std::uint64_t batchesDone = 0;
  /// Hash over the output-relevant config fields and the full input file
  /// list; a resume against a different run is rejected.
  std::uint32_t configHash = 0;
  /// Adjacency file name within the checkpoint directory. Empty in spill
  /// mode, where spillRuns carries the accumulated state instead.
  std::string adjacencyFile;
  /// True when the checkpoint references spill run files instead of a
  /// dense adjacency snapshot. Either mode can resume the other — the sum
  /// is order-independent and the budget is outside the config hash.
  bool spillMode = false;
  /// Live spill runs at checkpoint time (spill mode only).
  std::vector<SpillRunEntry> spillRuns;
  /// Per-shard merge segments completed so far (spill mode only; populated
  /// by the checkpoints the driver writes between shard merges, so a kill
  /// during the external merge resumes with only the unfinished shards).
  std::vector<MergeSegmentEntry> mergeSegments;
  /// In-flight batch snapshot file name; empty when the checkpoint carries
  /// none (no prefetch, or the loader had nothing decoded yet).
  std::string inflightFile;
  /// Quarantine list accumulated so far (degrade mode), carried across the
  /// resume so the final report still names every excluded input.
  std::vector<elog::QuarantinedFile> quarantined;
};

/// A decoded-but-unprocessed batch: the next batch the run would have
/// computed on when it died. Restoring it on resume skips its re-decode.
struct InflightBatch {
  table::EventTable events;
  /// Files of this batch that failed to decode (degrade mode).
  std::vector<elog::QuarantinedFile> quarantined;
  /// Input files this batch spans (cursor advance when it completes).
  std::uint64_t filesInBatch = 0;
};

/// Hash of the fields that determine the output for a given file list.
std::uint32_t checkpointConfigHash(
    const SynthesisConfig& config,
    const std::vector<std::filesystem::path>& files);

/// Persists `adjacency` + `manifest` into `dir` (created if missing) with
/// the crash-safe ordering described above. When `inflight` is non-null,
/// its snapshot is persisted and referenced by the manifest; the
/// manifest's own inflightFile field is ignored (the name is derived from
/// the cursor).
void saveCheckpoint(const std::filesystem::path& dir,
                    const CheckpointManifest& manifest,
                    const sparse::SymmetricAdjacency& adjacency,
                    const InflightBatch* inflight = nullptr);

/// Spill-mode variant: `manifest.spillRuns` must already name the live run
/// files (all durable — spilled via tmp+rename before this call). Writes
/// the in-flight snapshot if given, renames the manifest into place, then
/// garbage-collects `.spl`/`.spl.tmp` and `.cseg`/`.cseg.tmp` files in
/// `spillDir` the new manifest does not reference (superseded compaction
/// inputs, orphans of crashed spills, husks of killed shard merges) plus
/// stale `.cadj`/`.evt` files in `dir`. Pass `gcSpillDir = false` for
/// checkpoints written while other threads are still merging into
/// `spillDir`: the sweep would delete their in-flight `.cseg.tmp` files
/// (and freshly renamed segments this manifest predates). The parallel
/// merge GCs once at its serial entry point instead.
void saveSpillCheckpoint(const std::filesystem::path& dir,
                         const CheckpointManifest& manifest,
                         const std::filesystem::path& spillDir,
                         const InflightBatch* inflight = nullptr,
                         bool gcSpillDir = true);

/// Reads the manifest in `dir`; nullopt when none exists.
std::optional<CheckpointManifest> loadCheckpointManifest(
    const std::filesystem::path& dir);

/// Loads the adjacency a manifest points at.
sparse::SymmetricAdjacency loadCheckpointAdjacency(
    const std::filesystem::path& dir, const CheckpointManifest& manifest);

/// Loads the in-flight batch snapshot a manifest points at; nullopt when
/// the checkpoint carries none. Throws on a corrupt snapshot (CRC or
/// structure mismatch) — a resume must not silently compute on torn data.
std::optional<InflightBatch> loadCheckpointInflight(
    const std::filesystem::path& dir, const CheckpointManifest& manifest);

}  // namespace chisimnet::net
