#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/sparse/adjacency.hpp"

/// Batch checkpoint/resume for synthesis runs (the long-haul counterpart
/// of the paper's batched cluster jobs, §V): after each file batch the
/// driver can persist the accumulated adjacency plus a cursor manifest, so
/// a killed run restarts from the last completed batch instead of from
/// scratch. Adjacency accumulation is order-independent u64 addition and
/// the CADJ container round-trips triplets exactly, so a resumed run is
/// bit-identical to an uninterrupted one.
///
/// Crash safety: the adjacency is written first under a batch-stamped name
/// (adjacency.<filesConsumed>.cadj), then the manifest referencing it is
/// written to a temp file and atomically renamed over manifest.chkp, then
/// stale adjacency files are deleted. A crash at any point leaves either
/// the previous consistent checkpoint or the new one — never a manifest
/// pointing at a half-written matrix.

namespace chisimnet::net {

inline constexpr const char* kCheckpointManifestName = "manifest.chkp";

struct CheckpointManifest {
  /// Input files fully consumed (attempted, including quarantined ones).
  std::uint64_t filesConsumed = 0;
  std::uint64_t batchesDone = 0;
  /// Hash over the output-relevant config fields and the full input file
  /// list; a resume against a different run is rejected.
  std::uint32_t configHash = 0;
  /// Adjacency file name within the checkpoint directory.
  std::string adjacencyFile;
  /// Quarantine list accumulated so far (degrade mode), carried across the
  /// resume so the final report still names every excluded input.
  std::vector<elog::QuarantinedFile> quarantined;
};

/// Hash of the fields that determine the output for a given file list.
std::uint32_t checkpointConfigHash(
    const SynthesisConfig& config,
    const std::vector<std::filesystem::path>& files);

/// Persists `adjacency` + `manifest` into `dir` (created if missing) with
/// the crash-safe ordering described above.
void saveCheckpoint(const std::filesystem::path& dir,
                    const CheckpointManifest& manifest,
                    const sparse::SymmetricAdjacency& adjacency);

/// Reads the manifest in `dir`; nullopt when none exists.
std::optional<CheckpointManifest> loadCheckpointManifest(
    const std::filesystem::path& dir);

/// Loads the adjacency a manifest points at.
sparse::SymmetricAdjacency loadCheckpointAdjacency(
    const std::filesystem::path& dir, const CheckpointManifest& manifest);

}  // namespace chisimnet::net
