#include "chisimnet/net/mp_protocol.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net::mp {

void put32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>(value >> shift));
  }
}

void put64(std::vector<std::byte>& out, std::uint64_t value) {
  put32(out, static_cast<std::uint32_t>(value));
  put32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t take32(std::span<const std::byte> bytes, std::size_t& cursor) {
  CHISIM_CHECK(cursor + 4 <= bytes.size(), "truncated frame");
  const std::uint32_t value =
      static_cast<std::uint32_t>(bytes[cursor]) |
      (static_cast<std::uint32_t>(bytes[cursor + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[cursor + 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[cursor + 3]) << 24);
  cursor += 4;
  return value;
}

std::uint64_t take64(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t low = take32(bytes, cursor);
  const std::uint64_t high = take32(bytes, cursor);
  return low | (high << 32);
}

void putDouble(std::vector<std::byte>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put64(out, bits);
}

double takeDouble(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t bits = take64(bytes, cursor);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void putTriplets(std::vector<std::byte>& out,
                 std::span<const sparse::AdjacencyTriplet> triplets) {
  put64(out, triplets.size());
  const auto bytes = std::as_bytes(triplets);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<sparse::AdjacencyTriplet> takeTriplets(
    std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t count = take64(bytes, cursor);
  CHISIM_CHECK(
      count <= (bytes.size() - cursor) / sizeof(sparse::AdjacencyTriplet),
      "triplet run declares more entries than its bytes can hold");
  std::vector<sparse::AdjacencyTriplet> triplets(
      static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(triplets.data(), bytes.data() + cursor,
                count * sizeof(sparse::AdjacencyTriplet));
    cursor += count * sizeof(sparse::AdjacencyTriplet);
  }
  return triplets;
}

std::vector<std::byte> packMatrices(
    const std::vector<sparse::CollocationMatrix>& matrices) {
  // [count u32][per matrix: byteLength u32 + payload]
  std::vector<std::byte> packed;
  put32(packed, static_cast<std::uint32_t>(matrices.size()));
  for (const sparse::CollocationMatrix& matrix : matrices) {
    const std::vector<std::byte> bytes = matrix.toBytes();
    put32(packed, static_cast<std::uint32_t>(bytes.size()));
    packed.insert(packed.end(), bytes.begin(), bytes.end());
  }
  return packed;
}

std::vector<sparse::CollocationMatrix> unpackMatrices(
    std::span<const std::byte> packed) {
  std::size_t cursor = 0;
  const std::uint32_t count = take32(packed, cursor);
  // Bound the declared count by what the remaining bytes could possibly
  // hold (each matrix costs at least its 4-byte length prefix) before it
  // drives any allocation or loop.
  CHISIM_CHECK(count <= (packed.size() - cursor) / 4,
               "matrix pack declares more matrices than its bytes can hold");
  std::vector<sparse::CollocationMatrix> matrices;
  matrices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t length = take32(packed, cursor);
    CHISIM_CHECK(cursor + length <= packed.size(), "truncated matrix pack");
    matrices.push_back(
        sparse::CollocationMatrix::fromBytes(packed.subspan(cursor, length)));
    cursor += length;
  }
  return matrices;
}

std::vector<std::byte> frameCommand(std::uint32_t command, std::uint64_t epoch,
                                    std::span<const std::byte> body) {
  std::vector<std::byte> frame;
  frame.reserve(kCommandHeaderBytes + body.size());
  put32(frame, command);
  put64(frame, epoch);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::vector<std::byte> frameReply(std::uint32_t command, std::uint32_t status,
                                  std::uint64_t epoch,
                                  std::span<const std::byte> body) {
  std::vector<std::byte> frame;
  frame.reserve(kReplyHeaderBytes + body.size());
  put32(frame, command);
  put32(frame, status);
  put64(frame, epoch);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::span<const std::byte> stringBytes(const std::string& text) {
  return std::as_bytes(std::span<const char>(text.data(), text.size()));
}

std::vector<std::byte> encodeStageParams(const StageParams& params) {
  std::vector<std::byte> bytes;
  bytes.reserve(12);
  put32(bytes, params.windowStart);
  put32(bytes, params.windowEnd);
  put32(bytes, static_cast<std::uint32_t>(params.method));
  return bytes;
}

StageParams decodeStageParams(std::span<const std::byte> bytes) {
  std::size_t cursor = 0;
  StageParams params;
  params.windowStart = take32(bytes, cursor);
  params.windowEnd = take32(bytes, cursor);
  params.method = static_cast<sparse::AdjacencyMethod>(take32(bytes, cursor));
  CHISIM_CHECK(cursor == bytes.size(), "malformed stage parameter payload");
  return params;
}

std::vector<std::byte> executeSynthesisCommand(
    const StageParams& params, std::uint32_t command,
    std::span<const std::byte> body) {
  switch (command) {
    case kCmdCollocation: {
      // Body: [groupCount u32][per group: eventCount u32][events].
      std::size_t cursor = 0;
      const std::uint32_t groupCount = take32(body, cursor);
      CHISIM_CHECK(groupCount <= (body.size() - cursor) / 4,
                   "event scatter declares more groups than its bytes hold");
      std::vector<std::uint32_t> groupSizes(groupCount);
      std::uint64_t totalEvents = 0;
      for (std::uint32_t& size : groupSizes) {
        size = take32(body, cursor);
        totalEvents += size;
      }
      CHISIM_CHECK(cursor + totalEvents * sizeof(table::Event) == body.size(),
                   "event scatter size mismatch");
      std::vector<table::Event> events(totalEvents);
      if (totalEvents > 0) {
        std::memcpy(events.data(), body.data() + cursor,
                    totalEvents * sizeof(table::Event));
      }
      std::vector<sparse::CollocationMatrix> built;
      std::size_t eventCursor = 0;
      for (std::uint32_t groupSize : groupSizes) {
        const std::span<const table::Event> groupEvents(
            events.data() + eventCursor, groupSize);
        eventCursor += groupSize;
        CHISIM_CHECK(!groupEvents.empty(), "empty place group scattered");
        sparse::CollocationMatrix matrix(groupEvents.front().place,
                                         groupEvents, params.windowStart,
                                         params.windowEnd);
        if (matrix.nnz() > 0) {
          built.push_back(std::move(matrix));
        }
      }
      // Return the matrix list to the root (paper: "saved in a list and
      // returned to the root process").
      return packMatrices(built);
    }
    case kCmdAdjacency: {
      // Body: packed matrix batch.
      // Reply: [busySeconds f64][kernel stats 4×u64][sorted triplet run].
      const auto batch = unpackMatrices(body);
      util::WallTimer busy;
      sparse::SymmetricAdjacency sum(1024);
      for (const sparse::CollocationMatrix& matrix : batch) {
        sum.addCollocation(matrix, params.method);
      }
      const std::vector<sparse::AdjacencyTriplet> triplets = sum.toTriplets();
      const double busySeconds = busy.seconds();
      const sparse::AdjacencyKernelStats& stats = sum.kernelStats();
      std::vector<std::byte> reply;
      reply.reserve(5 * 8 + 8 +
                    triplets.size() * sizeof(sparse::AdjacencyTriplet));
      putDouble(reply, busySeconds);
      put64(reply, stats.densePlaces);
      put64(reply, stats.hashPlaces);
      put64(reply, stats.pairHourUpdates);
      put64(reply, stats.globalEmits);
      putTriplets(reply, triplets);
      return reply;
    }
    case kCmdMergeRuns: {
      // Body: [pairCount u32][per pair: run A, run B (length-prefixed,
      // (i,j)-sorted)]. Reply: [busySeconds f64][pairCount u32][per pair:
      // merged run]. Pure function of its body, so a retried or duplicated
      // command is harmless — exactly like the other stage commands.
      std::size_t cursor = 0;
      const std::uint32_t pairCount = take32(body, cursor);
      // Thread-CPU clock: the reduce critical-path model must not count
      // time-slicing against co-scheduled rank threads as merge work.
      util::ThreadCpuTimer busy;
      std::vector<std::byte> merged;
      for (std::uint32_t pair = 0; pair < pairCount; ++pair) {
        const std::vector<sparse::AdjacencyTriplet> runA =
            takeTriplets(body, cursor);
        const std::vector<sparse::AdjacencyTriplet> runB =
            takeTriplets(body, cursor);
        putTriplets(merged, sparse::mergeSortedTriplets(runA, runB));
      }
      CHISIM_CHECK(cursor == body.size(), "merge-runs body size mismatch");
      std::vector<std::byte> reply;
      reply.reserve(8 + 4 + merged.size());
      putDouble(reply, busy.seconds());
      put32(reply, pairCount);
      reply.insert(reply.end(), merged.begin(), merged.end());
      return reply;
    }
    default:
      CHISIM_CHECK(false, "unknown synthesis executor command " +
                              std::to_string(command));
  }
  return {};
}

ServiceOutcome serviceSynthesisCommand(const StageParams& params, int rank,
                                       std::span<const std::byte> frame,
                                       std::vector<std::byte>& reply) {
  std::uint32_t command = 0;
  std::uint64_t epoch = 0;
  bool headerOk = false;
  try {
    std::size_t cursor = 0;
    command = take32(frame, cursor);
    epoch = take64(frame, cursor);
    headerOk = true;
  } catch (const std::exception&) {
    // Truncated below even the header: reply failed with epoch 0, which
    // the root treats as matching whatever command is outstanding.
  }
  if (headerOk && command == kCmdStop) {
    return ServiceOutcome::kStop;
  }
  try {
    CHISIM_CHECK(headerOk, "truncated command frame");
    runtime::FaultSite site{rank, nullptr};
    if (runtime::fault::hit("mp.service.command", site) ==
        runtime::FaultAction::kKillRank) {
      return ServiceOutcome::kDie;  // simulate a rank dying silently mid-run
    }
    const std::vector<std::byte> body = executeSynthesisCommand(
        params, command, frame.subspan(kCommandHeaderBytes));
    reply = frameReply(command, kStatusOk, epoch, body);
  } catch (const std::exception& error) {
    // Recoverable worker failure: report it and stay in the loop so the
    // root can retry.
    const std::string what = error.what();
    reply = frameReply(command, kStatusFailed, epoch, stringBytes(what));
  }
  return ServiceOutcome::kReply;
}

}  // namespace chisimnet::net::mp
