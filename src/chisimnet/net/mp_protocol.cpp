#include "chisimnet/net/mp_protocol.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net::mp {

namespace {

/// Headroom kept under runtime::maxPayloadBytes() when deciding whether a
/// run still fits inline in a reply (frame headers, stats, refs).
constexpr std::uint64_t kReplySlackBytes = 4096;

std::uint64_t runRefTriplets(const RunRef& ref) noexcept {
  return ref.isFile() ? ref.triplets : ref.inlineRun.size();
}

/// Opens a RunRef as a pull stream. Inline refs are viewed, not copied —
/// the ref must outlive the source.
std::unique_ptr<sparse::TripletSource> openRunRef(const RunRef& ref) {
  if (ref.isFile()) {
    return std::make_unique<sparse::SpillRunReader>(ref.file);
  }
  return std::make_unique<sparse::SpanTripletSource>(
      std::span<const sparse::AdjacencyTriplet>(ref.inlineRun));
}

/// Under run shipping, converts a local file ref into a shipped ref: the
/// bytes stream to the root on kShipTag, the reply carries the bare name,
/// and the local file is deleted (a retried command re-executes the pure
/// body and re-ships). A no-op for inline refs or without a shipper.
RunRef maybeShip(const StageParams& params, RunShipper* shipper, RunRef ref) {
  if (!params.shipRuns || shipper == nullptr || !ref.isFile() ||
      ref.shipped) {
    return ref;
  }
  const std::filesystem::path local(ref.file);
  ref.file = shipper->ship(local, ref.bytes);
  ref.shipped = true;
  std::error_code ignored;
  std::filesystem::remove(local, ignored);
  return ref;
}

}  // namespace

void put32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>(value >> shift));
  }
}

void put64(std::vector<std::byte>& out, std::uint64_t value) {
  put32(out, static_cast<std::uint32_t>(value));
  put32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t take32(std::span<const std::byte> bytes, std::size_t& cursor) {
  CHISIM_CHECK(cursor + 4 <= bytes.size(), "truncated frame");
  const std::uint32_t value =
      static_cast<std::uint32_t>(bytes[cursor]) |
      (static_cast<std::uint32_t>(bytes[cursor + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[cursor + 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[cursor + 3]) << 24);
  cursor += 4;
  return value;
}

std::uint64_t take64(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t low = take32(bytes, cursor);
  const std::uint64_t high = take32(bytes, cursor);
  return low | (high << 32);
}

void putDouble(std::vector<std::byte>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put64(out, bits);
}

double takeDouble(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t bits = take64(bytes, cursor);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void putTriplets(std::vector<std::byte>& out,
                 std::span<const sparse::AdjacencyTriplet> triplets) {
  put64(out, triplets.size());
  const auto bytes = std::as_bytes(triplets);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<sparse::AdjacencyTriplet> takeTriplets(
    std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t count = take64(bytes, cursor);
  CHISIM_CHECK(
      count <= (bytes.size() - cursor) / sizeof(sparse::AdjacencyTriplet),
      "triplet run declares more entries than its bytes can hold");
  std::vector<sparse::AdjacencyTriplet> triplets(
      static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(triplets.data(), bytes.data() + cursor,
                count * sizeof(sparse::AdjacencyTriplet));
    cursor += count * sizeof(sparse::AdjacencyTriplet);
  }
  return triplets;
}

void putString(std::vector<std::byte>& out, const std::string& text) {
  put32(out, static_cast<std::uint32_t>(text.size()));
  const auto bytes = stringBytes(text);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::string takeString(std::span<const std::byte> bytes,
                       std::size_t& cursor) {
  const std::uint32_t length = take32(bytes, cursor);
  CHISIM_CHECK(length <= bytes.size() - cursor,
               "string declares more bytes than the frame holds");
  std::string text(length, '\0');
  if (length > 0) {
    std::memcpy(text.data(), bytes.data() + cursor, length);
    cursor += length;
  }
  return text;
}

void putRunRef(std::vector<std::byte>& out, const RunRef& ref) {
  if (ref.isFile()) {
    put32(out, ref.shipped ? 2 : 1);
    putString(out, ref.file);
    put64(out, ref.triplets);
    put64(out, ref.bytes);
    put32(out, ref.hasKeyRange ? 1 : 0);
    put64(out, ref.firstKey);
    put64(out, ref.lastKey);
  } else {
    put32(out, 0);
    putTriplets(out, ref.inlineRun);
  }
}

RunRef takeRunRef(std::span<const std::byte> bytes, std::size_t& cursor) {
  RunRef ref;
  const std::uint32_t mode = take32(bytes, cursor);
  if (mode == 1 || mode == 2) {
    ref.shipped = mode == 2;
    ref.file = takeString(bytes, cursor);
    CHISIM_CHECK(!ref.file.empty(),
                 ref.shipped ? "shipped run ref with an empty name"
                             : "file run ref with an empty path");
    ref.triplets = take64(bytes, cursor);
    ref.bytes = take64(bytes, cursor);
    ref.hasKeyRange = take32(bytes, cursor) != 0;
    ref.firstKey = take64(bytes, cursor);
    ref.lastKey = take64(bytes, cursor);
  } else {
    CHISIM_CHECK(mode == 0,
                 "unknown run ref mode " + std::to_string(mode));
    ref.inlineRun = takeTriplets(bytes, cursor);
  }
  return ref;
}

std::vector<std::byte> encodeShipChunk(const std::string& name,
                                       std::uint64_t offset,
                                       std::uint64_t total,
                                       std::span<const std::byte> data) {
  std::vector<std::byte> chunk;
  chunk.reserve(4 + name.size() + 16 + data.size());
  putString(chunk, name);
  put64(chunk, offset);
  put64(chunk, total);
  chunk.insert(chunk.end(), data.begin(), data.end());
  return chunk;
}

ShipChunkView decodeShipChunk(std::span<const std::byte> bytes) {
  std::size_t cursor = 0;
  ShipChunkView view;
  view.name = takeString(bytes, cursor);
  CHISIM_CHECK(!view.name.empty(), "ship chunk with an empty run name");
  view.offset = take64(bytes, cursor);
  view.total = take64(bytes, cursor);
  view.data = bytes.subspan(cursor);
  CHISIM_CHECK(view.offset + view.data.size() <= view.total,
               "ship chunk overruns its declared total");
  return view;
}

std::vector<std::byte> packMatrices(
    const std::vector<sparse::CollocationMatrix>& matrices) {
  // [count u32][per matrix: byteLength u32 + payload]
  std::vector<std::byte> packed;
  put32(packed, static_cast<std::uint32_t>(matrices.size()));
  for (const sparse::CollocationMatrix& matrix : matrices) {
    const std::vector<std::byte> bytes = matrix.toBytes();
    put32(packed, static_cast<std::uint32_t>(bytes.size()));
    packed.insert(packed.end(), bytes.begin(), bytes.end());
  }
  return packed;
}

std::vector<sparse::CollocationMatrix> unpackMatrices(
    std::span<const std::byte> packed) {
  std::size_t cursor = 0;
  const std::uint32_t count = take32(packed, cursor);
  // Bound the declared count by what the remaining bytes could possibly
  // hold (each matrix costs at least its 4-byte length prefix) before it
  // drives any allocation or loop.
  CHISIM_CHECK(count <= (packed.size() - cursor) / 4,
               "matrix pack declares more matrices than its bytes can hold");
  std::vector<sparse::CollocationMatrix> matrices;
  matrices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t length = take32(packed, cursor);
    CHISIM_CHECK(cursor + length <= packed.size(), "truncated matrix pack");
    matrices.push_back(
        sparse::CollocationMatrix::fromBytes(packed.subspan(cursor, length)));
    cursor += length;
  }
  return matrices;
}

std::vector<std::byte> frameCommand(std::uint32_t command, std::uint64_t epoch,
                                    std::span<const std::byte> body) {
  std::vector<std::byte> frame;
  frame.reserve(kCommandHeaderBytes + body.size());
  put32(frame, command);
  put64(frame, epoch);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::vector<std::byte> frameReply(std::uint32_t command, std::uint32_t status,
                                  std::uint64_t epoch,
                                  std::span<const std::byte> body) {
  std::vector<std::byte> frame;
  frame.reserve(kReplyHeaderBytes + body.size());
  put32(frame, command);
  put32(frame, status);
  put64(frame, epoch);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::span<const std::byte> stringBytes(const std::string& text) {
  return std::as_bytes(std::span<const char>(text.data(), text.size()));
}

std::vector<std::byte> encodeStageParams(const StageParams& params) {
  std::vector<std::byte> bytes;
  bytes.reserve(24 + params.spillDir.size());
  put32(bytes, params.windowStart);
  put32(bytes, params.windowEnd);
  put32(bytes, static_cast<std::uint32_t>(params.method));
  put64(bytes, params.spillThresholdBytes);
  putString(bytes, params.spillDir);
  put32(bytes, params.splitRows);
  put32(bytes, params.shipRuns ? 1 : 0);
  return bytes;
}

StageParams decodeStageParams(std::span<const std::byte> bytes) {
  std::size_t cursor = 0;
  StageParams params;
  params.windowStart = take32(bytes, cursor);
  params.windowEnd = take32(bytes, cursor);
  params.method = static_cast<sparse::AdjacencyMethod>(take32(bytes, cursor));
  params.spillThresholdBytes = take64(bytes, cursor);
  params.spillDir = takeString(bytes, cursor);
  params.splitRows = take32(bytes, cursor);
  params.shipRuns = take32(bytes, cursor) != 0;
  CHISIM_CHECK(cursor == bytes.size(), "malformed stage parameter payload");
  return params;
}

std::vector<std::byte> executeSynthesisCommand(
    const StageParams& params, std::uint32_t command,
    std::span<const std::byte> body, RunShipper* shipper) {
  switch (command) {
    case kCmdCollocation: {
      // Body: [groupCount u32][per group: eventCount u32][events].
      std::size_t cursor = 0;
      const std::uint32_t groupCount = take32(body, cursor);
      CHISIM_CHECK(groupCount <= (body.size() - cursor) / 4,
                   "event scatter declares more groups than its bytes hold");
      std::vector<std::uint32_t> groupSizes(groupCount);
      std::uint64_t totalEvents = 0;
      for (std::uint32_t& size : groupSizes) {
        size = take32(body, cursor);
        totalEvents += size;
      }
      CHISIM_CHECK(cursor + totalEvents * sizeof(table::Event) == body.size(),
                   "event scatter size mismatch");
      std::vector<table::Event> events(totalEvents);
      if (totalEvents > 0) {
        std::memcpy(events.data(), body.data() + cursor,
                    totalEvents * sizeof(table::Event));
      }
      std::vector<sparse::CollocationMatrix> built;
      std::size_t eventCursor = 0;
      for (std::uint32_t groupSize : groupSizes) {
        const std::span<const table::Event> groupEvents(
            events.data() + eventCursor, groupSize);
        eventCursor += groupSize;
        CHISIM_CHECK(!groupEvents.empty(), "empty place group scattered");
        sparse::CollocationMatrix matrix(groupEvents.front().place,
                                         groupEvents, params.windowStart,
                                         params.windowEnd);
        if (matrix.nnz() > 0) {
          built.push_back(std::move(matrix));
        }
      }
      // Return the matrix list to the root (paper: "saved in a list and
      // returned to the root process").
      return packMatrices(built);
    }
    case kCmdAdjacency: {
      // Body: [runToken u64][packed matrix batch]. The token makes this
      // rank's spill-file names unique per command body, so retries rewrite
      // the same files (deterministic content, tmp+rename) while a
      // reassigned body — which gets a fresh token — never collides with a
      // half-dead rank still executing the old one.
      // Reply: [busySeconds f64][kernel stats 5×u64][spill stats 4×u64]
      //        [runCount u32][RunRef × runCount].
      std::size_t cursor = 0;
      const std::uint64_t token = take64(body, cursor);
      const auto batch = unpackMatrices(body.subspan(cursor));
      util::WallTimer busy;
      sparse::SpillingSum sum(params.spillDir,
                              "t" + std::to_string(token) + ".",
                              params.spillThresholdBytes, params.splitRows);
      for (const sparse::CollocationMatrix& matrix : batch) {
        sum.addCollocation(matrix, params.method);
      }
      std::vector<sparse::AdjacencyTriplet> remainder = sum.drainInMemory();
      const double busySeconds = busy.seconds();
      const sparse::AdjacencyKernelStats& stats = sum.kernelStats();

      std::vector<RunRef> refs;
      for (const sparse::SpillRunInfo& info : sum.runs()) {
        RunRef ref;
        ref.file = info.file.string();
        ref.triplets = info.triplets;
        ref.bytes = info.bytes;
        ref.hasKeyRange = info.hasKeyRange;
        ref.firstKey = info.firstKey;
        ref.lastKey = info.lastKey;
        refs.push_back(maybeShip(params, shipper, std::move(ref)));
      }
      WorkerSpillStats spill;
      spill.flushes = sum.flushes();
      spill.peakLocalBytes = sum.peakBytes();
      for (const sparse::SpillRunInfo& info : sum.runs()) {
        spill.spilledTriplets += info.triplets;
        spill.spilledBytes += info.bytes;
      }
      if (!remainder.empty()) {
        const std::uint64_t inlineBytes =
            remainder.size() * sizeof(sparse::AdjacencyTriplet);
        if (inlineBytes + kReplySlackBytes <= runtime::maxPayloadBytes()) {
          RunRef ref;
          ref.inlineRun = std::move(remainder);
          refs.push_back(std::move(ref));
        } else {
          // The remainder alone would overflow the transport frame: spill
          // it and return the path — the scale-ceiling fix.
          CHISIM_CHECK(!params.spillDir.empty(),
                       "adjacency reply exceeds the payload limit and no "
                       "spill directory is configured");
          sparse::SpillRunWriter writer(
              std::filesystem::path(params.spillDir) /
              ("t" + std::to_string(token) + ".f.spl"));
          writer.append(std::span<const sparse::AdjacencyTriplet>(remainder));
          const sparse::SpillRunInfo info = writer.finish();
          spill.spilledTriplets += info.triplets;
          spill.spilledBytes += info.bytes;
          RunRef ref;
          ref.file = info.file.string();
          ref.triplets = info.triplets;
          ref.bytes = info.bytes;
          ref.hasKeyRange = info.hasKeyRange;
          ref.firstKey = info.firstKey;
          ref.lastKey = info.lastKey;
          refs.push_back(maybeShip(params, shipper, std::move(ref)));
        }
      }

      std::vector<std::byte> reply;
      putDouble(reply, busySeconds);
      put64(reply, stats.densePlaces);
      put64(reply, stats.hashPlaces);
      put64(reply, stats.pairHourUpdates);
      put64(reply, stats.globalEmits);
      put64(reply, stats.mergeReservedEntries);
      put64(reply, spill.flushes);
      put64(reply, spill.spilledTriplets);
      put64(reply, spill.spilledBytes);
      put64(reply, spill.peakLocalBytes);
      put32(reply, static_cast<std::uint32_t>(refs.size()));
      for (const RunRef& ref : refs) {
        putRunRef(reply, ref);
      }
      return reply;
    }
    case kCmdMergeRuns: {
      // Body: [runToken u64][pairCount u32][per pair: RunRef A, RunRef B
      // ((i,j)-sorted runs, inline or file)]. Reply: [busySeconds f64]
      // [pairCount u32][per pair: merged RunRef]. A merged run whose inline
      // form would overflow the payload limit streams to
      // <spillDir>/t<token>.m<pair>.spl instead. Pure function of its body
      // (file contents included), so a retried or duplicated command is
      // harmless — exactly like the other stage commands.
      std::size_t cursor = 0;
      const std::uint64_t token = take64(body, cursor);
      const std::uint32_t pairCount = take32(body, cursor);
      // Thread-CPU clock: the reduce critical-path model must not count
      // time-slicing against co-scheduled rank threads as merge work.
      util::ThreadCpuTimer busy;
      std::vector<std::byte> merged;
      std::uint64_t inlineBytesSoFar = 0;
      for (std::uint32_t pair = 0; pair < pairCount; ++pair) {
        const RunRef runA = takeRunRef(body, cursor);
        const RunRef runB = takeRunRef(body, cursor);
        std::vector<std::unique_ptr<sparse::TripletSource>> sources;
        sources.push_back(openRunRef(runA));
        sources.push_back(openRunRef(runB));
        sparse::TripletMerger merger(std::move(sources));
        // Projection is the pre-merge total (merged size is ≤ that), so an
        // output routed inline is guaranteed to fit.
        const std::uint64_t projectedBytes =
            (runRefTriplets(runA) + runRefTriplets(runB)) *
            sizeof(sparse::AdjacencyTriplet);
        RunRef out;
        if (inlineBytesSoFar + projectedBytes + kReplySlackBytes >
            runtime::maxPayloadBytes()) {
          CHISIM_CHECK(!params.spillDir.empty(),
                       "merged run exceeds the payload limit and no spill "
                       "directory is configured");
          sparse::SpillRunWriter writer(
              std::filesystem::path(params.spillDir) /
              ("t" + std::to_string(token) + ".m" + std::to_string(pair) +
               ".spl"));
          sparse::AdjacencyTriplet triplet;
          while (merger.next(triplet)) {
            writer.append(triplet);
          }
          const sparse::SpillRunInfo info = writer.finish();
          out.file = info.file.string();
          out.triplets = info.triplets;
          out.bytes = info.bytes;
          out.hasKeyRange = info.hasKeyRange;
          out.firstKey = info.firstKey;
          out.lastKey = info.lastKey;
        } else {
          out.inlineRun.reserve(
              static_cast<std::size_t>(projectedBytes /
                                       sizeof(sparse::AdjacencyTriplet)));
          sparse::AdjacencyTriplet triplet;
          while (merger.next(triplet)) {
            out.inlineRun.push_back(triplet);
          }
          inlineBytesSoFar +=
              out.inlineRun.size() * sizeof(sparse::AdjacencyTriplet);
        }
        putRunRef(merged, maybeShip(params, shipper, std::move(out)));
      }
      CHISIM_CHECK(cursor == body.size(), "merge-runs body size mismatch");
      std::vector<std::byte> reply;
      reply.reserve(8 + 4 + merged.size());
      putDouble(reply, busy.seconds());
      put32(reply, pairCount);
      reply.insert(reply.end(), merged.begin(), merged.end());
      return reply;
    }
    case kCmdMergeShard: {
      // Body: [runToken u64][readahead u32][shardCount u32][per shard:
      // shard u32, runCount u32, RunRef × runCount (file runs, shard-pure)].
      // Reply: [busySeconds f64][shardCount u32][per shard: shard u32,
      // mergeSeconds f64, segment file string, triplets u64, bytes u64,
      // crc u32]. Segment names carry the token, so a retried body rewrites
      // its own files (deterministic content, tmp+rename) while a
      // reassigned body — fresh token — never collides with a half-dead
      // rank still merging the old one.
      std::size_t cursor = 0;
      const std::uint64_t token = take64(body, cursor);
      const auto readahead =
          static_cast<sparse::SpillReadahead>(take32(body, cursor));
      const std::uint32_t shardCount = take32(body, cursor);
      CHISIM_CHECK(!params.spillDir.empty(),
                   "shard merge needs a spill directory");
      util::ThreadCpuTimer busy;
      std::vector<std::byte> segments;
      for (std::uint32_t s = 0; s < shardCount; ++s) {
        const std::uint32_t shard = take32(body, cursor);
        const std::uint32_t runCount = take32(body, cursor);
        std::vector<sparse::SpillRunInfo> runs;
        runs.reserve(runCount);
        for (std::uint32_t r = 0; r < runCount; ++r) {
          const RunRef ref = takeRunRef(body, cursor);
          CHISIM_CHECK(ref.isFile(), "shard merge inputs must be run files");
          sparse::SpillRunInfo info;
          info.file = ref.file;
          info.triplets = ref.triplets;
          info.bytes = ref.bytes;
          info.hasKeyRange = ref.hasKeyRange;
          info.firstKey = ref.firstKey;
          info.lastKey = ref.lastKey;
          runs.push_back(std::move(info));
        }
        const std::filesystem::path segmentFile =
            std::filesystem::path(params.spillDir) /
            ("seg." + std::to_string(shard) + ".t" + std::to_string(token) +
             ".cseg");
        const sparse::ShardSegment segment =
            sparse::mergeShardRuns(shard, runs, segmentFile, readahead);
        put32(segments, shard);
        putDouble(segments, segment.mergeSeconds);
        putString(segments, segment.file.string());
        put64(segments, segment.triplets);
        put64(segments, segment.bytes);
        put32(segments, segment.crc);
      }
      CHISIM_CHECK(cursor == body.size(), "merge-shard body size mismatch");
      std::vector<std::byte> reply;
      reply.reserve(8 + 4 + segments.size());
      putDouble(reply, busy.seconds());
      put32(reply, shardCount);
      reply.insert(reply.end(), segments.begin(), segments.end());
      return reply;
    }
    default:
      CHISIM_CHECK(false, "unknown synthesis executor command " +
                              std::to_string(command));
  }
  return {};
}

ServiceOutcome serviceSynthesisCommand(const StageParams& params, int rank,
                                       std::span<const std::byte> frame,
                                       std::vector<std::byte>& reply,
                                       RunShipper* shipper) {
  std::uint32_t command = 0;
  std::uint64_t epoch = 0;
  bool headerOk = false;
  try {
    std::size_t cursor = 0;
    command = take32(frame, cursor);
    epoch = take64(frame, cursor);
    headerOk = true;
  } catch (const std::exception&) {
    // Truncated below even the header: reply failed with epoch 0, which
    // the root treats as matching whatever command is outstanding.
  }
  if (headerOk && command == kCmdStop) {
    return ServiceOutcome::kStop;
  }
  try {
    CHISIM_CHECK(headerOk, "truncated command frame");
    runtime::FaultSite site{rank, nullptr};
    if (runtime::fault::hit("mp.service.command", site) ==
        runtime::FaultAction::kKillRank) {
      return ServiceOutcome::kDie;  // simulate a rank dying silently mid-run
    }
    const std::vector<std::byte> body = executeSynthesisCommand(
        params, command, frame.subspan(kCommandHeaderBytes), shipper);
    reply = frameReply(command, kStatusOk, epoch, body);
  } catch (const std::exception& error) {
    // Recoverable worker failure: report it and stay in the loop so the
    // root can retry.
    const std::string what = error.what();
    reply = frameReply(command, kStatusFailed, epoch, stringBytes(what));
  }
  return ServiceOutcome::kReply;
}

}  // namespace chisimnet::net::mp
