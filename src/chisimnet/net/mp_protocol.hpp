#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/table/event.hpp"

/// Wire protocol of the message-passing synthesis backend.
///
/// One framed command per stage round trip, one framed reply back. The
/// protocol used to live in executor_mp.cpp's anonymous namespace; it is a
/// module of its own so the exact same command service runs in two places:
/// the in-process RankTeam service threads and the exec'd worker processes
/// of the socket transport (runtime::ProcessTransport). Both decode the
/// same frames, execute the same stage kernels, and produce byte-identical
/// replies — which is what makes `--transport process` transparent to the
/// driver.
///
/// Frames (all integers little-endian):
///   command  [command u32][epoch u64][stage body]
///   reply    [command u32][status u32][epoch u64][body or error text]
///
/// Epochs let the root match replies to the newest attempt of a retried
/// command and discard stale ones. Stage bodies are pure functions of
/// their bytes, so duplicate execution after a timeout race is harmless.

namespace chisimnet::net::mp {

inline constexpr int kRoot = 0;
inline constexpr int kCommandTag = 99;  ///< root -> worker framed commands
inline constexpr int kReplyTag = 100;   ///< worker -> root framed replies
inline constexpr int kShipTag = 101;    ///< worker -> root run-file chunks,
                                        ///< sent AHEAD of the reply that
                                        ///< references them (per-connection
                                        ///< ordering makes the reply the
                                        ///< commit point)

enum Command : std::uint32_t {
  kCmdCollocation = 1,
  kCmdAdjacency = 2,
  kCmdStop = 3,
  kCmdMergeRuns = 4,   ///< one reduce-tree level: merge sorted triplet runs
  kCmdMergeShard = 5,  ///< merge the spill runs of row-range shards into
                       ///< CADJ payload segments (stage-6 external merge)
};

inline constexpr std::uint32_t kStatusOk = 0;
inline constexpr std::uint32_t kStatusFailed = 1;

/// Command frame: [command u32][epoch u64][stage body].
inline constexpr std::size_t kCommandHeaderBytes = 4 + 8;
/// Reply frame: [command u32][status u32][epoch u64][body or error text].
inline constexpr std::size_t kReplyHeaderBytes = 4 + 4 + 8;

// ---- byte codec ----

void put32(std::vector<std::byte>& out, std::uint32_t value);
void put64(std::vector<std::byte>& out, std::uint64_t value);
std::uint32_t take32(std::span<const std::byte> bytes, std::size_t& cursor);
std::uint64_t take64(std::span<const std::byte> bytes, std::size_t& cursor);
void putDouble(std::vector<std::byte>& out, double value);
double takeDouble(std::span<const std::byte> bytes, std::size_t& cursor);

/// Length-prefixed triplet run: [count u64][count × AdjacencyTriplet].
void putTriplets(std::vector<std::byte>& out,
                 std::span<const sparse::AdjacencyTriplet> triplets);
std::vector<sparse::AdjacencyTriplet> takeTriplets(
    std::span<const std::byte> bytes, std::size_t& cursor);

/// Length-prefixed UTF-8 string: [length u32][bytes].
void putString(std::vector<std::byte>& out, const std::string& text);
std::string takeString(std::span<const std::byte> bytes, std::size_t& cursor);

/// A sorted triplet run: inline in the frame, a CSPL1 spill file on a
/// filesystem shared with the root, or — when the transport spans hosts
/// with no shared filesystem — a *shipped* file whose bytes were streamed
/// to the root on kShipTag ahead of the reply. Workers return a non-inline
/// form whenever the run was flushed to disk under the memory budget OR an
/// inline reply would exceed runtime::maxPayloadBytes() — the fix for the
/// silent 1 GiB scale ceiling: a city-scale stage-5 sum crosses the wire
/// as a path (or as framed chunks), not as a gigabyte frame the transport
/// would reject.
struct RunRef {
  std::vector<sparse::AdjacencyTriplet> inlineRun;
  std::string file;             ///< empty = inline; shipped mode: bare name
  bool shipped = false;         ///< bytes travelled on kShipTag; `file` is
                                ///< a name the root resolves into its own
                                ///< spill directory
  std::uint64_t triplets = 0;   ///< file mode: rows the file holds
  std::uint64_t bytes = 0;      ///< file mode: file size on disk
  /// Packed-key range of a file run, carried across the wire so the root's
  /// sharded merge planner can tell shard-pure worker runs from straddlers
  /// without re-reading the files.
  bool hasKeyRange = false;
  std::uint64_t firstKey = 0;
  std::uint64_t lastKey = 0;
  bool isFile() const noexcept { return !file.empty(); }
};

/// [mode u32: 0 inline | 1 file | 2 shipped][inline: putTriplets |
/// file/shipped: putString + triplets u64 + bytes u64 + hasRange u32 +
/// firstKey u64 + lastKey u64]
void putRunRef(std::vector<std::byte>& out, const RunRef& ref);
RunRef takeRunRef(std::span<const std::byte> bytes, std::size_t& cursor);

/// One kShipTag frame: [name string][offset u64][total u64][raw bytes].
/// Chunks of one file arrive in order on one connection; offset 0 restarts
/// the file (a retried command re-ships from scratch), and offset+size ==
/// total completes it.
std::vector<std::byte> encodeShipChunk(const std::string& name,
                                       std::uint64_t offset,
                                       std::uint64_t total,
                                       std::span<const std::byte> data);

struct ShipChunkView {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t total = 0;
  std::span<const std::byte> data;  ///< view into the decoded frame
};
ShipChunkView decodeShipChunk(std::span<const std::byte> bytes);

/// Worker-side hook that moves a run file's bytes to the root when the
/// filesystems are not shared. ship() streams the file on kShipTag and
/// returns the bare name the reply's shipped RunRef should carry.
class RunShipper {
 public:
  virtual ~RunShipper() = default;
  virtual std::string ship(const std::filesystem::path& file,
                           std::uint64_t bytes) = 0;
};

/// Worker-side spill activity returned beside each adjacency reply.
struct WorkerSpillStats {
  std::uint64_t flushes = 0;          ///< in-memory sum flushes to disk
  std::uint64_t spilledTriplets = 0;  ///< rows written to run files
  std::uint64_t spilledBytes = 0;     ///< run-file bytes written
  std::uint64_t peakLocalBytes = 0;   ///< worker's max in-memory footprint
};

/// [count u32][per matrix: byteLength u32 + payload]
std::vector<std::byte> packMatrices(
    const std::vector<sparse::CollocationMatrix>& matrices);
std::vector<sparse::CollocationMatrix> unpackMatrices(
    std::span<const std::byte> packed);

std::vector<std::byte> frameCommand(std::uint32_t command, std::uint64_t epoch,
                                    std::span<const std::byte> body);
std::vector<std::byte> frameReply(std::uint32_t command, std::uint32_t status,
                                  std::uint64_t epoch,
                                  std::span<const std::byte> body);
std::span<const std::byte> stringBytes(const std::string& text);

// ---- stage parameters ----

/// The slice of SynthesisConfig a worker needs to execute stage commands.
/// Travels as the transport's hello payload, so an exec'd (or respawned)
/// worker process computes with exactly the root's parameters.
struct StageParams {
  table::Hour windowStart = 0;
  table::Hour windowEnd = 0;
  sparse::AdjacencyMethod method = sparse::AdjacencyMethod::kLocalAccumulate;
  /// Stage-5 worker flush threshold (≈ budget/(8·workers)); 0 = keep the
  /// whole partial sum in memory (unbudgeted).
  std::uint64_t spillThresholdBytes = 0;
  /// Directory for worker spill runs and oversized-reply files; must be
  /// shared with the root (workers are local processes/threads). Empty
  /// only when no budget is set AND replies are guaranteed to fit inline.
  std::string spillDir;
  /// Row-range width of one reduce shard. Non-zero makes workers partition
  /// each stage-5 flush at shard boundaries, so every run they return is
  /// shard-pure and the root's sharded merge never has to split it. 0 =
  /// one run per flush (serial-merge runs, the legacy layout).
  std::uint32_t splitRows = 0;
  /// True when the worker and root may not share a filesystem (the TCP
  /// transport). The worker then spills into a private local directory and
  /// ships every file run's bytes to the root on kShipTag instead of
  /// returning a path. The root clears this for its own inline execution.
  bool shipRuns = false;
};

std::vector<std::byte> encodeStageParams(const StageParams& params);
StageParams decodeStageParams(std::span<const std::byte> bytes);

// ---- command service ----

/// Executes one stage command body and returns the reply body. Pure with
/// respect to (params, command, body) — run by service ranks on command,
/// by worker processes, and by rank 0 inline (the root is also a worker).
/// Throws on malformed bodies or unknown commands. When params.shipRuns is
/// set and a shipper is given, file runs are streamed through it and the
/// reply carries shipped refs (the local files are deleted after shipping,
/// so a retried command re-executes and re-ships deterministically).
std::vector<std::byte> executeSynthesisCommand(const StageParams& params,
                                               std::uint32_t command,
                                               std::span<const std::byte> body,
                                               RunShipper* shipper = nullptr);

enum class ServiceOutcome {
  kReply,  ///< `reply` holds a framed reply to send to the root
  kStop,   ///< orderly stop command: exit the service loop
  kDie,    ///< injected kKillRank: go silent (no reply, exit the loop)
};

/// One turn of the worker command loop, shared by the in-process service
/// threads and the socket-transport worker processes: parses the command
/// frame (tolerating frames truncated below the header — those get a
/// status=failed reply with epoch 0, which the root matches against
/// whatever is outstanding), fires the "mp.service.command" fault site,
/// executes the command, and frames the reply. Never throws: any execution
/// error becomes a status=failed reply so the root can retry.
ServiceOutcome serviceSynthesisCommand(const StageParams& params, int rank,
                                       std::span<const std::byte> frame,
                                       std::vector<std::byte>& reply,
                                       RunShipper* shipper = nullptr);

}  // namespace chisimnet::net::mp
