#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>

#include "chisimnet/net/executor.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

namespace {

constexpr int kRoot = 0;
constexpr int kCommandTag = 99;    ///< root -> worker stage commands
constexpr int kEventsTag = 100;    ///< stage 2: root -> worker event groups
constexpr int kMatrixTag = 101;    ///< stage 3: worker -> root matrices
constexpr int kBatchTag = 102;     ///< stage 4: root -> worker matrix batches
constexpr int kSumTag = 103;       ///< stage 5: worker -> root adjacency sums
constexpr int kBusyTag = 104;      ///< stage 5: worker -> root busy seconds

enum Command : int {
  kCmdCollocation = 1,
  kCmdAdjacency = 2,
  kCmdStop = 3,
};

/// Stage-2 payload: [per place: eventCount u32] in one message followed by
/// a second message with the concatenated events.
struct EventScatter {
  std::vector<std::uint32_t> header;
  std::vector<table::Event> events;
};

std::vector<std::byte> packMatrices(
    const std::vector<sparse::CollocationMatrix>& matrices) {
  // [count u32][per matrix: byteLength u32 + payload]
  std::vector<std::byte> packed;
  const auto put32 = [&packed](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      packed.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  put32(static_cast<std::uint32_t>(matrices.size()));
  for (const sparse::CollocationMatrix& matrix : matrices) {
    const std::vector<std::byte> bytes = matrix.toBytes();
    put32(static_cast<std::uint32_t>(bytes.size()));
    packed.insert(packed.end(), bytes.begin(), bytes.end());
  }
  return packed;
}

std::vector<sparse::CollocationMatrix> unpackMatrices(
    std::span<const std::byte> packed) {
  std::size_t cursor = 0;
  const auto take32 = [&packed, &cursor]() {
    CHISIM_CHECK(cursor + 4 <= packed.size(), "truncated matrix pack");
    const std::uint32_t value =
        static_cast<std::uint32_t>(packed[cursor]) |
        (static_cast<std::uint32_t>(packed[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(packed[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(packed[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  const std::uint32_t count = take32();
  std::vector<sparse::CollocationMatrix> matrices;
  matrices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t length = take32();
    CHISIM_CHECK(cursor + length <= packed.size(), "truncated matrix pack");
    matrices.push_back(
        sparse::CollocationMatrix::fromBytes(packed.subspan(cursor, length)));
    cursor += length;
  }
  return matrices;
}

}  // namespace

MessagePassingExecutor::MessagePassingExecutor(const SynthesisConfig& config)
    : SynthesisExecutor(config),
      ranks_(static_cast<int>(config.workers)),
      team_(ranks_, [this](runtime::RankHandle& handle) { serviceLoop(handle); }) {}

MessagePassingExecutor::~MessagePassingExecutor() {
  // Idle services are parked at the command recv; a stop command lets them
  // return so the team joins without relying on the destructor's abort.
  // (Services wedged mid-stage after a root-side failure are woken by the
  // RankTeam destructor's abort instead.)
  for (int dest = 1; dest < ranks_; ++dest) {
    team_.root().sendValue<int>(dest, kCommandTag, kCmdStop);
  }
}

void MessagePassingExecutor::serviceLoop(runtime::RankHandle& handle) const {
  while (true) {
    const int command = handle.recv(kRoot, kCommandTag).value<int>();
    switch (command) {
      case kCmdCollocation:
        stageCollocation(handle);
        break;
      case kCmdAdjacency:
        stageAdjacency(handle);
        break;
      case kCmdStop:
        return;
      default:
        CHISIM_CHECK(false, "unknown synthesis executor command");
    }
  }
}

void MessagePassingExecutor::stageCollocation(
    runtime::RankHandle& handle) const {
  const auto header = handle.recv(kRoot, kEventsTag).as<std::uint32_t>();
  const auto myEvents = handle.recv(kRoot, kEventsTag).as<table::Event>();
  std::vector<sparse::CollocationMatrix> built;
  std::size_t eventCursor = 0;
  for (std::uint32_t groupSize : header) {
    const std::span<const table::Event> groupEvents(
        myEvents.data() + eventCursor, groupSize);
    eventCursor += groupSize;
    CHISIM_CHECK(!groupEvents.empty(), "empty place group scattered");
    sparse::CollocationMatrix matrix(groupEvents.front().place, groupEvents,
                                     config_.windowStart, config_.windowEnd);
    if (matrix.nnz() > 0) {
      built.push_back(std::move(matrix));
    }
  }
  // Return the matrix list to the root (paper: "saved in a list and
  // returned to the root process").
  handle.send(kRoot, kMatrixTag, packMatrices(built));
}

void MessagePassingExecutor::stageAdjacency(runtime::RankHandle& handle) const {
  const runtime::Message batchMessage = handle.recv(kRoot, kBatchTag);
  const auto batch = unpackMatrices(batchMessage.payload);
  util::WallTimer busy;
  sparse::SymmetricAdjacency sum(1024);
  for (const sparse::CollocationMatrix& matrix : batch) {
    sum.addCollocation(matrix, config_.method);
  }
  const std::vector<sparse::AdjacencyTriplet> triplets = sum.toTriplets();
  const double busySeconds = busy.seconds();
  handle.sendVector<sparse::AdjacencyTriplet>(kRoot, kSumTag, triplets);
  handle.sendValue<double>(kRoot, kBusyTag, busySeconds);
}

void MessagePassingExecutor::scatterPlaces(const table::EventTable& events,
                                           const table::PlaceIndex& index) {
  // Round-robin place groups across ranks: the collocation stage is roughly
  // uniform per event row, and the nnz balancing happens at repartition.
  std::vector<EventScatter> scatters(static_cast<std::size_t>(ranks_));
  for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
    EventScatter& scatter = scatters[group % static_cast<std::size_t>(ranks_)];
    const auto rows = index.groupRows(group);
    scatter.header.push_back(static_cast<std::uint32_t>(rows.size()));
    for (table::RowIndex row : rows) {
      scatter.events.push_back(events.row(row));
    }
  }
  runtime::RankHandle& root = team_.root();
  for (int dest = 0; dest < ranks_; ++dest) {
    const EventScatter& scatter = scatters[static_cast<std::size_t>(dest)];
    root.sendVector<std::uint32_t>(dest, kEventsTag, scatter.header);
    root.sendVector<table::Event>(dest, kEventsTag, scatter.events);
    bytesScattered_ += scatter.header.size() * sizeof(std::uint32_t) +
                       scatter.events.size() * sizeof(table::Event);
    if (dest != kRoot) {
      // Data first, then the command: services start building while the
      // driver is still between stage calls.
      root.sendValue<int>(dest, kCommandTag, kCmdCollocation);
    }
  }
}

std::vector<sparse::CollocationMatrix>
MessagePassingExecutor::mapCollocation() {
  runtime::RankHandle& root = team_.root();
  try {
    // The root is a worker too: build its own share before collecting.
    stageCollocation(root);
    std::vector<sparse::CollocationMatrix> all;
    for (int source = 0; source < ranks_; ++source) {
      const runtime::Message message = root.recv(source, kMatrixTag);
      bytesReturned_ += message.payload.size();
      for (sparse::CollocationMatrix& matrix :
           unpackMatrices(message.payload)) {
        all.push_back(std::move(matrix));
      }
    }
    return all;
  } catch (...) {
    // A service failure aborts the communicator and surfaces here as a
    // generic "aborted" error; prefer the originating exception.
    team_.rethrowServiceError();
    throw;
  }
}

std::vector<sparse::SymmetricAdjacency> MessagePassingExecutor::mapAdjacency(
    const std::vector<sparse::CollocationMatrix>& matrices,
    const runtime::Partition& partition) {
  CHISIM_REQUIRE(partition.assignment.size() ==
                     static_cast<std::size_t>(ranks_),
                 "partition bin count must equal rank count");
  runtime::RankHandle& root = team_.root();
  try {
    for (int dest = 0; dest < ranks_; ++dest) {
      std::vector<sparse::CollocationMatrix> batch;
      for (std::size_t item :
           partition.assignment[static_cast<std::size_t>(dest)]) {
        batch.push_back(matrices[item]);
      }
      const std::vector<std::byte> packed = packMatrices(batch);
      bytesScattered_ += packed.size();
      root.send(dest, kBatchTag, packed);
      if (dest != kRoot) {
        root.sendValue<int>(dest, kCommandTag, kCmdAdjacency);
      }
    }
    stageAdjacency(root);

    std::vector<sparse::SymmetricAdjacency> workerSums;
    workerSums.reserve(static_cast<std::size_t>(ranks_));
    std::vector<double> busySeconds(static_cast<std::size_t>(ranks_), 0.0);
    for (int source = 0; source < ranks_; ++source) {
      const runtime::Message message = root.recv(source, kSumTag);
      bytesReturned_ += message.payload.size();
      sparse::SymmetricAdjacency sum(1024);
      for (const sparse::AdjacencyTriplet& triplet :
           message.as<sparse::AdjacencyTriplet>()) {
        sum.add(triplet.i, triplet.j, triplet.weight);
      }
      workerSums.push_back(std::move(sum));
      busySeconds[static_cast<std::size_t>(source)] =
          root.recv(source, kBusyTag).value<double>();
    }

    double total = 0.0;
    double peak = 0.0;
    for (double seconds : busySeconds) {
      total += seconds;
      peak = std::max(peak, seconds);
    }
    busyImbalance_ =
        total > 0.0 ? peak / (total / static_cast<double>(ranks_)) : 1.0;
    return workerSums;
  } catch (...) {
    team_.rethrowServiceError();
    throw;
  }
}

}  // namespace chisimnet::net
