#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "chisimnet/net/executor.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

namespace {

constexpr int kRoot = 0;
constexpr int kCommandTag = 99;  ///< root -> worker framed commands
constexpr int kReplyTag = 100;   ///< worker -> root framed replies

enum Command : std::uint32_t {
  kCmdCollocation = 1,
  kCmdAdjacency = 2,
  kCmdStop = 3,
  kCmdMergeRuns = 4,  ///< one reduce-tree level: merge sorted triplet runs
};

constexpr std::uint32_t kStatusOk = 0;
constexpr std::uint32_t kStatusFailed = 1;

/// Command frame: [command u32][epoch u64][stage body].
constexpr std::size_t kCommandHeaderBytes = 4 + 8;
/// Reply frame: [command u32][status u32][epoch u64][body or error text].
constexpr std::size_t kReplyHeaderBytes = 4 + 4 + 8;

void put32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>(value >> shift));
  }
}

void put64(std::vector<std::byte>& out, std::uint64_t value) {
  put32(out, static_cast<std::uint32_t>(value));
  put32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t take32(std::span<const std::byte> bytes, std::size_t& cursor) {
  CHISIM_CHECK(cursor + 4 <= bytes.size(), "truncated frame");
  const std::uint32_t value =
      static_cast<std::uint32_t>(bytes[cursor]) |
      (static_cast<std::uint32_t>(bytes[cursor + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[cursor + 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[cursor + 3]) << 24);
  cursor += 4;
  return value;
}

std::uint64_t take64(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t low = take32(bytes, cursor);
  const std::uint64_t high = take32(bytes, cursor);
  return low | (high << 32);
}

void putDouble(std::vector<std::byte>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put64(out, bits);
}

double takeDouble(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t bits = take64(bytes, cursor);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Length-prefixed triplet run: [count u64][count × AdjacencyTriplet].
void putTriplets(std::vector<std::byte>& out,
                 std::span<const sparse::AdjacencyTriplet> triplets) {
  put64(out, triplets.size());
  const auto bytes = std::as_bytes(triplets);
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<sparse::AdjacencyTriplet> takeTriplets(
    std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t count = take64(bytes, cursor);
  CHISIM_CHECK(
      count <= (bytes.size() - cursor) / sizeof(sparse::AdjacencyTriplet),
      "triplet run declares more entries than its bytes can hold");
  std::vector<sparse::AdjacencyTriplet> triplets(
      static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(triplets.data(), bytes.data() + cursor,
                count * sizeof(sparse::AdjacencyTriplet));
    cursor += count * sizeof(sparse::AdjacencyTriplet);
  }
  return triplets;
}

std::vector<std::byte> packMatrices(
    const std::vector<sparse::CollocationMatrix>& matrices) {
  // [count u32][per matrix: byteLength u32 + payload]
  std::vector<std::byte> packed;
  put32(packed, static_cast<std::uint32_t>(matrices.size()));
  for (const sparse::CollocationMatrix& matrix : matrices) {
    const std::vector<std::byte> bytes = matrix.toBytes();
    put32(packed, static_cast<std::uint32_t>(bytes.size()));
    packed.insert(packed.end(), bytes.begin(), bytes.end());
  }
  return packed;
}

std::vector<sparse::CollocationMatrix> unpackMatrices(
    std::span<const std::byte> packed) {
  std::size_t cursor = 0;
  const std::uint32_t count = take32(packed, cursor);
  // Bound the declared count by what the remaining bytes could possibly
  // hold (each matrix costs at least its 4-byte length prefix) before it
  // drives any allocation or loop.
  CHISIM_CHECK(count <= (packed.size() - cursor) / 4,
               "matrix pack declares more matrices than its bytes can hold");
  std::vector<sparse::CollocationMatrix> matrices;
  matrices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t length = take32(packed, cursor);
    CHISIM_CHECK(cursor + length <= packed.size(), "truncated matrix pack");
    matrices.push_back(
        sparse::CollocationMatrix::fromBytes(packed.subspan(cursor, length)));
    cursor += length;
  }
  return matrices;
}

std::vector<std::byte> frameCommand(std::uint32_t command, std::uint64_t epoch,
                                    std::span<const std::byte> body) {
  std::vector<std::byte> frame;
  frame.reserve(kCommandHeaderBytes + body.size());
  put32(frame, command);
  put64(frame, epoch);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::vector<std::byte> frameReply(std::uint32_t command, std::uint32_t status,
                                  std::uint64_t epoch,
                                  std::span<const std::byte> body) {
  std::vector<std::byte> frame;
  frame.reserve(kReplyHeaderBytes + body.size());
  put32(frame, command);
  put32(frame, status);
  put64(frame, epoch);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::span<const std::byte> stringBytes(const std::string& text) {
  return std::as_bytes(std::span<const char>(text.data(), text.size()));
}

}  // namespace

MessagePassingExecutor::MessagePassingExecutor(const SynthesisConfig& config)
    : SynthesisExecutor(config),
      ranks_(static_cast<int>(config.workers)),
      pending_(static_cast<std::size_t>(config.workers)),
      team_(ranks_, [this](runtime::RankHandle& handle) { serviceLoop(handle); }) {}

MessagePassingExecutor::~MessagePassingExecutor() {
  // Idle services are parked at the command recv; a stop command lets them
  // return so the team joins without relying on the destructor's abort.
  // (Services wedged mid-stage after a root-side failure are woken by the
  // RankTeam destructor's abort instead. Lost ranks already exited; their
  // stop frame just sits in the mailbox.)
  for (int dest = 1; dest < ranks_; ++dest) {
    team_.root().send(dest, kCommandTag, frameCommand(kCmdStop, 0, {}));
  }
}

void MessagePassingExecutor::serviceLoop(runtime::RankHandle& handle) const {
  while (true) {
    runtime::Message message = handle.recv(kRoot, kCommandTag);
    std::uint32_t command = 0;
    std::uint64_t epoch = 0;
    bool headerOk = false;
    try {
      std::size_t cursor = 0;
      command = take32(message.payload, cursor);
      epoch = take64(message.payload, cursor);
      headerOk = true;
    } catch (const std::exception&) {
      // Truncated below even the header: reply failed with epoch 0, which
      // the root treats as matching whatever command is outstanding.
    }
    if (headerOk && command == kCmdStop) {
      return;
    }
    try {
      CHISIM_CHECK(headerOk, "truncated command frame");
      runtime::FaultSite site{handle.rank(), nullptr};
      if (runtime::fault::hit("mp.service.command", site) ==
          runtime::FaultAction::kKillRank) {
        return;  // simulate a rank dying silently mid-run
      }
      const std::vector<std::byte> reply = executeCommand(
          command,
          std::span<const std::byte>(message.payload).subspan(
              kCommandHeaderBytes));
      handle.send(kRoot, kReplyTag,
                  frameReply(command, kStatusOk, epoch, reply));
    } catch (const std::exception& error) {
      // Recoverable worker failure: report it and stay in the loop so the
      // root can retry; only an unknown-to-C++ error escapes to the
      // RankTeam abort path.
      const std::string what = error.what();
      handle.send(kRoot, kReplyTag,
                  frameReply(command, kStatusFailed, epoch, stringBytes(what)));
    }
  }
}

std::vector<std::byte> MessagePassingExecutor::executeCommand(
    std::uint32_t command, std::span<const std::byte> body) const {
  switch (command) {
    case kCmdCollocation: {
      // Body: [groupCount u32][per group: eventCount u32][events].
      std::size_t cursor = 0;
      const std::uint32_t groupCount = take32(body, cursor);
      CHISIM_CHECK(groupCount <= (body.size() - cursor) / 4,
                   "event scatter declares more groups than its bytes hold");
      std::vector<std::uint32_t> groupSizes(groupCount);
      std::uint64_t totalEvents = 0;
      for (std::uint32_t& size : groupSizes) {
        size = take32(body, cursor);
        totalEvents += size;
      }
      CHISIM_CHECK(cursor + totalEvents * sizeof(table::Event) == body.size(),
                   "event scatter size mismatch");
      std::vector<table::Event> events(totalEvents);
      if (totalEvents > 0) {
        std::memcpy(events.data(), body.data() + cursor,
                    totalEvents * sizeof(table::Event));
      }
      std::vector<sparse::CollocationMatrix> built;
      std::size_t eventCursor = 0;
      for (std::uint32_t groupSize : groupSizes) {
        const std::span<const table::Event> groupEvents(
            events.data() + eventCursor, groupSize);
        eventCursor += groupSize;
        CHISIM_CHECK(!groupEvents.empty(), "empty place group scattered");
        sparse::CollocationMatrix matrix(groupEvents.front().place,
                                         groupEvents, config_.windowStart,
                                         config_.windowEnd);
        if (matrix.nnz() > 0) {
          built.push_back(std::move(matrix));
        }
      }
      // Return the matrix list to the root (paper: "saved in a list and
      // returned to the root process").
      return packMatrices(built);
    }
    case kCmdAdjacency: {
      // Body: packed matrix batch.
      // Reply: [busySeconds f64][kernel stats 4×u64][sorted triplet run].
      const auto batch = unpackMatrices(body);
      util::WallTimer busy;
      sparse::SymmetricAdjacency sum(1024);
      for (const sparse::CollocationMatrix& matrix : batch) {
        sum.addCollocation(matrix, config_.method);
      }
      const std::vector<sparse::AdjacencyTriplet> triplets = sum.toTriplets();
      const double busySeconds = busy.seconds();
      const sparse::AdjacencyKernelStats& stats = sum.kernelStats();
      std::vector<std::byte> reply;
      reply.reserve(5 * 8 + 8 +
                    triplets.size() * sizeof(sparse::AdjacencyTriplet));
      putDouble(reply, busySeconds);
      put64(reply, stats.densePlaces);
      put64(reply, stats.hashPlaces);
      put64(reply, stats.pairHourUpdates);
      put64(reply, stats.globalEmits);
      putTriplets(reply, triplets);
      return reply;
    }
    case kCmdMergeRuns: {
      // Body: [pairCount u32][per pair: run A, run B (length-prefixed,
      // (i,j)-sorted)]. Reply: [busySeconds f64][pairCount u32][per pair:
      // merged run]. Pure function of its body, so a retried or duplicated
      // command is harmless — exactly like the other stage commands.
      std::size_t cursor = 0;
      const std::uint32_t pairCount = take32(body, cursor);
      // Thread-CPU clock: the reduce critical-path model must not count
      // time-slicing against co-scheduled rank threads as merge work.
      util::ThreadCpuTimer busy;
      std::vector<std::byte> merged;
      for (std::uint32_t pair = 0; pair < pairCount; ++pair) {
        const std::vector<sparse::AdjacencyTriplet> runA =
            takeTriplets(body, cursor);
        const std::vector<sparse::AdjacencyTriplet> runB =
            takeTriplets(body, cursor);
        putTriplets(merged, sparse::mergeSortedTriplets(runA, runB));
      }
      CHISIM_CHECK(cursor == body.size(), "merge-runs body size mismatch");
      std::vector<std::byte> reply;
      reply.reserve(8 + 4 + merged.size());
      putDouble(reply, busy.seconds());
      put32(reply, pairCount);
      reply.insert(reply.end(), merged.begin(), merged.end());
      return reply;
    }
    default:
      CHISIM_CHECK(false, "unknown synthesis executor command " +
                              std::to_string(command));
  }
  return {};
}

std::vector<int> MessagePassingExecutor::liveRanks() const {
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(ranks_));
  for (int rank = 0; rank < ranks_; ++rank) {
    if (team_.isLive(rank)) {
      live.push_back(rank);
    }
  }
  return live;
}

void MessagePassingExecutor::sendCommand(int rank, std::uint32_t command,
                                         std::vector<std::size_t> items,
                                         std::vector<std::byte> body) {
  Pending& pending = pending_[static_cast<std::size_t>(rank)];
  pending.active = true;
  pending.command = command;
  pending.epoch = nextEpoch_++;
  pending.attempts = 0;
  pending.items = std::move(items);
  pending.body = std::move(body);
  std::vector<std::byte> frame =
      frameCommand(command, pending.epoch, pending.body);
  bytesScattered_ += frame.size();
  if (rank != kRoot) {
    // Injection point for a corrupted/short write on the (future) wire;
    // truncation here makes the worker see a malformed frame and answer
    // status=failed, exercising the retry path end to end.
    runtime::FaultSite site{rank, &frame};
    runtime::fault::hit("mp.send", site);
    team_.root().send(rank, kCommandTag, frame);
  }
}

std::optional<std::vector<std::byte>> MessagePassingExecutor::awaitReply(
    int rank) {
  Pending& pending = pending_[static_cast<std::size_t>(rank)];
  CHISIM_REQUIRE(pending.active, "awaitReply without a pending command");
  if (rank == kRoot) {
    // The root is a worker too: execute its own share inline through the
    // same serialized body, so byte accounting and decode paths match.
    const std::vector<std::byte> reply =
        executeCommand(pending.command, pending.body);
    bytesReturned_ += kReplyHeaderBytes + reply.size();
    pending.active = false;
    return reply;
  }
  runtime::RankHandle& root = team_.root();
  while (true) {
    std::optional<runtime::Message> message;
    if (config_.commandTimeoutMs == 0) {
      message = root.recv(rank, kReplyTag);
    } else {
      message = root.recvFor(
          std::chrono::milliseconds(config_.commandTimeoutMs), rank,
          kReplyTag);
    }
    std::string failure;
    if (message) {
      runtime::FaultSite site{rank, &message->payload};
      runtime::fault::hit("mp.collect", site);
      std::uint32_t status = kStatusFailed;
      std::uint64_t epoch = 0;
      std::span<const std::byte> body;
      bool parsed = false;
      try {
        std::size_t cursor = 0;
        take32(message->payload, cursor);  // command (diagnostic only)
        status = take32(message->payload, cursor);
        epoch = take64(message->payload, cursor);
        body = std::span<const std::byte>(message->payload)
                   .subspan(kReplyHeaderBytes);
        parsed = true;
      } catch (const std::exception&) {
        failure = "malformed reply frame from rank " + std::to_string(rank);
      }
      if (parsed) {
        // Epoch 0 marks a reply to a command too corrupt for the worker to
        // read the epoch back; match it against whatever is outstanding.
        if (epoch != pending.epoch && epoch != 0) {
          continue;  // stale reply from a superseded attempt
        }
        if (status == kStatusOk) {
          bytesReturned_ += message->payload.size();
          pending.active = false;
          return std::vector<std::byte>(body.begin(), body.end());
        }
        failure = std::string(reinterpret_cast<const char*>(body.data()),
                              body.size());
      }
    } else {
      failure = "rank " + std::to_string(rank) + " sent no reply within " +
                std::to_string(config_.commandTimeoutMs) + " ms";
    }

    if (config_.faultPolicy != FaultPolicy::kDegrade) {
      // Fail fast: surface the worker's error as the run's error.
      CHISIM_CHECK(false, "synthesis command failed on rank " +
                              std::to_string(rank) + ": " + failure);
    }
    ++pending.attempts;
    if (pending.attempts >= config_.commandMaxAttempts) {
      team_.markLost(rank);
      FaultEvent event;
      event.kind = FaultEvent::Kind::kRankLost;
      event.rank = rank;
      event.detail = "declared lost after " +
                     std::to_string(pending.attempts) +
                     " attempts; last error: " + failure;
      faultEvents_.push_back(std::move(event));
      return std::nullopt;  // pending.items stays for reassignment
    }
    FaultEvent event;
    event.kind = FaultEvent::Kind::kCommandRetry;
    event.rank = rank;
    event.detail = "attempt " + std::to_string(pending.attempts) +
                   " failed: " + failure;
    faultEvents_.push_back(std::move(event));
    const std::uint64_t backoff = config_.commandBackoffMs
                                  << std::min(pending.attempts - 1, 16);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    pending.epoch = nextEpoch_++;
    std::vector<std::byte> frame =
        frameCommand(pending.command, pending.epoch, pending.body);
    bytesScattered_ += frame.size();
    root.send(rank, kCommandTag, frame);
  }
}

void MessagePassingExecutor::collectStage(
    std::uint32_t command,
    const std::function<std::vector<std::byte>(std::span<const std::size_t>)>&
        buildBody,
    const std::function<void(std::span<const std::byte>)>& onReply) {
  std::vector<std::size_t> orphaned;  // items of ranks declared lost
  for (int rank = 0; rank < ranks_; ++rank) {
    Pending& pending = pending_[static_cast<std::size_t>(rank)];
    if (!pending.active || pending.command != command) {
      continue;
    }
    if (const auto reply = awaitReply(rank)) {
      onReply(*reply);
    } else {
      orphaned.insert(orphaned.end(), pending.items.begin(),
                      pending.items.end());
      pending.active = false;
    }
  }
  // Reassignment rounds: spread orphaned items across the survivors and
  // collect again; a further loss feeds the next round. The root always
  // survives and executes its share inline, so this terminates.
  while (!orphaned.empty()) {
    const std::vector<int> live = liveRanks();
    std::vector<std::vector<std::size_t>> shares(live.size());
    for (std::size_t i = 0; i < orphaned.size(); ++i) {
      shares[i % shares.size()].push_back(orphaned[i]);
    }
    orphaned.clear();
    for (std::size_t slot = 0; slot < live.size(); ++slot) {
      if (shares[slot].empty()) {
        continue;
      }
      std::vector<std::byte> body = buildBody(shares[slot]);
      sendCommand(live[slot], command, std::move(shares[slot]),
                  std::move(body));
    }
    for (const int rank : live) {
      Pending& pending = pending_[static_cast<std::size_t>(rank)];
      if (!pending.active || pending.command != command) {
        continue;
      }
      if (const auto reply = awaitReply(rank)) {
        onReply(*reply);
      } else {
        orphaned.insert(orphaned.end(), pending.items.begin(),
                        pending.items.end());
        pending.active = false;
      }
    }
  }
}

void MessagePassingExecutor::scatterPlaces(const table::EventTable& events,
                                           const table::PlaceIndex& index) {
  events_ = &events;
  index_ = &index;
  // Round-robin place groups across the live ranks: the collocation stage
  // is roughly uniform per event row, and the nnz balancing happens at
  // repartition.
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> groups(live.size());
  for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
    groups[group % live.size()].push_back(group);
  }
  const auto buildBody = [&events,
                          &index](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    put32(body, static_cast<std::uint32_t>(items.size()));
    std::uint64_t totalEvents = 0;
    for (const std::size_t group : items) {
      const auto rows = index.groupRows(group);
      put32(body, static_cast<std::uint32_t>(rows.size()));
      totalEvents += rows.size();
    }
    body.reserve(body.size() + totalEvents * sizeof(table::Event));
    for (const std::size_t group : items) {
      for (const table::RowIndex row : index.groupRows(group)) {
        const table::Event event = events.row(row);
        const auto bytes =
            std::as_bytes(std::span<const table::Event>(&event, 1));
        body.insert(body.end(), bytes.begin(), bytes.end());
      }
    }
    return body;
  };
  for (std::size_t slot = 0; slot < live.size(); ++slot) {
    // Every live rank gets a command (even an empty one): the reply flow
    // and busy accounting stay uniform, and services start building while
    // the driver is still between stage calls.
    sendCommand(live[slot], kCmdCollocation,
                std::vector<std::size_t>(groups[slot]),
                buildBody(groups[slot]));
  }
}

std::vector<sparse::CollocationMatrix>
MessagePassingExecutor::mapCollocation() {
  CHISIM_REQUIRE(events_ != nullptr && index_ != nullptr,
                 "mapCollocation before scatterPlaces");
  const table::EventTable& events = *events_;
  const table::PlaceIndex& index = *index_;
  try {
    std::vector<sparse::CollocationMatrix> all;
    collectStage(
        kCmdCollocation,
        [&events, &index](std::span<const std::size_t> items) {
          std::vector<std::byte> body;
          put32(body, static_cast<std::uint32_t>(items.size()));
          for (const std::size_t group : items) {
            put32(body, static_cast<std::uint32_t>(
                            index.groupRows(group).size()));
          }
          for (const std::size_t group : items) {
            for (const table::RowIndex row : index.groupRows(group)) {
              const table::Event event = events.row(row);
              const auto bytes =
                  std::as_bytes(std::span<const table::Event>(&event, 1));
              body.insert(body.end(), bytes.begin(), bytes.end());
            }
          }
          return body;
        },
        [&all](std::span<const std::byte> reply) {
          for (sparse::CollocationMatrix& matrix : unpackMatrices(reply)) {
            all.push_back(std::move(matrix));
          }
        });
    events_ = nullptr;
    index_ = nullptr;
    return all;
  } catch (...) {
    // A service failure aborts the communicator and surfaces here as a
    // generic "aborted" error; prefer the originating exception.
    events_ = nullptr;
    index_ = nullptr;
    team_.rethrowServiceError();
    throw;
  }
}

runtime::Partition MessagePassingExecutor::repartition(
    std::span<const std::uint64_t> weights) const {
  const std::size_t bins = static_cast<std::size_t>(team_.liveCount());
  return config_.balancedPartition
             ? runtime::partitionGreedyLpt(weights, bins)
             : runtime::partitionContiguous(weights, bins);
}

void MessagePassingExecutor::mapAdjacency(
    const std::vector<sparse::CollocationMatrix>& matrices,
    const runtime::Partition& partition) {
  const std::vector<int> live = liveRanks();
  CHISIM_REQUIRE(partition.assignment.size() == live.size(),
                 "partition bin count must equal live rank count");
  const auto buildBody = [&matrices](std::span<const std::size_t> items) {
    std::vector<sparse::CollocationMatrix> batch;
    batch.reserve(items.size());
    for (const std::size_t item : items) {
      batch.push_back(matrices[item]);
    }
    return packMatrices(batch);
  };
  reduceRuns_.clear();
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  try {
    for (std::size_t bin = 0; bin < live.size(); ++bin) {
      sendCommand(live[bin], kCmdAdjacency,
                  std::vector<std::size_t>(partition.assignment[bin]),
                  buildBody(partition.assignment[bin]));
    }

    // Each rank returns its partial sum as a sorted triplet run; the runs
    // are kept as-is for reduce() to merge pairwise — no per-rank hash
    // rebuild at the root.
    std::vector<double> busySeconds;
    collectStage(kCmdAdjacency, buildBody,
                 [this, &busySeconds](std::span<const std::byte> reply) {
                   std::size_t cursor = 0;
                   busySeconds.push_back(takeDouble(reply, cursor));
                   sparse::AdjacencyKernelStats stats;
                   stats.densePlaces = take64(reply, cursor);
                   stats.hashPlaces = take64(reply, cursor);
                   stats.pairHourUpdates = take64(reply, cursor);
                   stats.globalEmits = take64(reply, cursor);
                   runKernelStats_.merge(stats);
                   reduceRuns_.push_back(takeTriplets(reply, cursor));
                   CHISIM_CHECK(cursor == reply.size(),
                                "malformed adjacency reply");
                 });

    double total = 0.0;
    double peak = 0.0;
    for (const double seconds : busySeconds) {
      total += seconds;
      peak = std::max(peak, seconds);
    }
    busyImbalance_ =
        total > 0.0 && !busySeconds.empty()
            ? peak / (total / static_cast<double>(busySeconds.size()))
            : 1.0;
  } catch (...) {
    team_.rethrowServiceError();
    throw;
  }
}

void MessagePassingExecutor::mergeRunsLevel() {
  // One level of the rank-pair merge tree: adjacent runs (2k, 2k+1) pair
  // up, the pair-merges spread round-robin over the live ranks (rank 0
  // executes its share inline), and an odd leftover run carries to the
  // next level. Work items are pair indices, so sendCommand/collectStage
  // give this level the same retry and lost-rank reassignment semantics as
  // the other stages; the merged sum is identical whichever rank performs
  // it. Runs are only consumed after the level completes, so a reassigned
  // pair can always be rebuilt from reduceRuns_.
  const std::size_t pairCount = reduceRuns_.size() / 2;
  const auto buildBody = [this](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    put32(body, static_cast<std::uint32_t>(items.size()));
    for (const std::size_t pair : items) {
      putTriplets(body, reduceRuns_[2 * pair]);
      putTriplets(body, reduceRuns_[2 * pair + 1]);
    }
    return body;
  };
  std::vector<std::vector<sparse::AdjacencyTriplet>> next;
  next.reserve(pairCount + (reduceRuns_.size() & 1));
  if (reduceRuns_.size() & 1) {
    next.push_back(std::move(reduceRuns_.back()));
  }
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> shares(live.size());
  for (std::size_t pair = 0; pair < pairCount; ++pair) {
    shares[pair % shares.size()].push_back(pair);
  }
  for (std::size_t slot = 0; slot < live.size(); ++slot) {
    if (shares[slot].empty()) {
      continue;
    }
    std::vector<std::byte> body = buildBody(shares[slot]);
    sendCommand(live[slot], kCmdMergeRuns, std::move(shares[slot]),
                std::move(body));
  }
  double levelPeak = 0.0;
  collectStage(kCmdMergeRuns, buildBody,
               [&next, &levelPeak](std::span<const std::byte> reply) {
                 std::size_t cursor = 0;
                 levelPeak = std::max(levelPeak, takeDouble(reply, cursor));
                 const std::uint32_t count = take32(reply, cursor);
                 for (std::uint32_t pair = 0; pair < count; ++pair) {
                   next.push_back(takeTriplets(reply, cursor));
                 }
                 CHISIM_CHECK(cursor == reply.size(),
                              "malformed merge-runs reply");
               });
  reduceRuns_ = std::move(next);
  ++lastReduce_.depth;
  lastReduce_.criticalSeconds += levelPeak;
}

void MessagePassingExecutor::reduce(sparse::SymmetricAdjacency& result) {
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = config_.treeReduce;
  lastReduce_.mergedSums = reduceRuns_.size();
  try {
    if (config_.treeReduce) {
      while (reduceRuns_.size() > 1) {
        mergeRunsLevel();
      }
      // Only the single surviving run crosses into the running result. The
      // root-side insert is on the critical path either way, so it counts.
      util::WallTimer timer;
      for (const auto& run : reduceRuns_) {
        result.reserve(result.edgeCount() + run.size());
        for (const sparse::AdjacencyTriplet& triplet : run) {
          result.add(triplet.i, triplet.j, triplet.weight);
        }
      }
      lastReduce_.criticalSeconds += timer.seconds();
    } else {
      // Serial baseline: insert each rank's run into the root map one at a
      // time (the pre-tree behavior, kept for the ablation bench).
      util::WallTimer timer;
      for (const auto& run : reduceRuns_) {
        for (const sparse::AdjacencyTriplet& triplet : run) {
          result.add(triplet.i, triplet.j, triplet.weight);
        }
      }
      lastReduce_.criticalSeconds = timer.seconds();
    }
  } catch (...) {
    team_.rethrowServiceError();
    throw;
  }
  reduceRuns_.clear();
  result.addKernelStats(runKernelStats_);
  runKernelStats_ = sparse::AdjacencyKernelStats{};
}

std::vector<FaultEvent> MessagePassingExecutor::drainFaultEvents() {
  return std::exchange(faultEvents_, {});
}

}  // namespace chisimnet::net
