#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/mp_protocol.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/process_transport.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

namespace {

mp::StageParams stageParamsOf(const SynthesisConfig& config) {
  mp::StageParams params;
  params.windowStart = config.windowStart;
  params.windowEnd = config.windowEnd;
  params.method = config.method;
  // Each stage-5 worker gets an eighth of its budget share: the cross-batch
  // sink keeps resident bytes under budget/2, and the per-batch worker maps
  // (all live at once) plus their drain transients fit in the rest.
  params.spillThresholdBytes =
      config.memoryBudgetBytes > 0
          ? std::max<std::uint64_t>(
                config.memoryBudgetBytes / (8 * std::max(1u, config.workers)),
                1)
          : 0;
  params.spillDir = config.spillDir.string();
  // Shard-pure worker runs: each stage-5 flush splits at reduce-shard
  // boundaries so the root's merge planner never has to rewrite a run.
  // The serial merge (reduceShards == 1) keeps the legacy layout.
  params.splitRows = resolvedReduceShards(config) > 1
                         ? resolvedMergeRowsPerShard(config)
                         : 0;
  return params;
}

sparse::SpillRunInfo runRefInfo(const mp::RunRef& ref) {
  sparse::SpillRunInfo info;
  info.file = ref.file;
  info.triplets = ref.triplets;
  info.bytes = ref.bytes;
  info.hasKeyRange = ref.hasKeyRange;
  info.firstKey = ref.firstKey;
  info.lastKey = ref.lastKey;
  return info;
}

}  // namespace

MessagePassingExecutor::MessagePassingExecutor(const SynthesisConfig& config)
    : SynthesisExecutor(config),
      ranks_(static_cast<int>(config.workers)),
      pending_(static_cast<std::size_t>(config.workers)) {
  if (config.transport == MpTransport::kProcess) {
    // Worker ranks are separate OS processes behind Unix-domain sockets.
    // The hello payload carries the stage parameters, so a worker (or a
    // respawned replacement) computes with exactly the root's config.
    runtime::ProcessTransportOptions options;
    options.rankCount = ranks_;
    options.heartbeatMs = config.heartbeatMs;
    options.maxRespawns = config.maxRespawns;
    options.executable = config.workerExecutable;
    options.helloPayload = mp::encodeStageParams(stageParamsOf(config));
    auto transport = std::make_unique<runtime::ProcessTransport>(options);
    processTransport_ = transport.get();
    team_ = std::make_unique<runtime::RankTeam>(std::move(transport));
  } else {
    team_ = std::make_unique<runtime::RankTeam>(
        ranks_, [this](runtime::RankHandle& handle) { serviceLoop(handle); });
  }
}

MessagePassingExecutor::~MessagePassingExecutor() {
  // Quiesce first: from here on, worker processes exiting is orderly
  // shutdown, not a crash to respawn. Then a stop command lets idle
  // services return so the team joins without relying on the destructor's
  // abort. (Services wedged mid-stage after a root-side failure are woken
  // by the RankTeam destructor's abort instead. Lost ranks already exited;
  // their stop frame just sits in the mailbox or is dropped by the wire.)
  team_->transport().quiesce();
  for (int dest = 1; dest < ranks_; ++dest) {
    team_->root().send(dest, mp::kCommandTag,
                       mp::frameCommand(mp::kCmdStop, 0, {}));
  }
}

void MessagePassingExecutor::serviceLoop(runtime::RankHandle& handle) const {
  const mp::StageParams params = stageParamsOf(config_);
  while (true) {
    runtime::Message message = handle.recv(mp::kRoot, mp::kCommandTag);
    std::vector<std::byte> reply;
    switch (mp::serviceSynthesisCommand(params, handle.rank(), message.payload,
                                        reply)) {
      case mp::ServiceOutcome::kReply:
        handle.send(mp::kRoot, mp::kReplyTag, reply);
        break;
      case mp::ServiceOutcome::kStop:
        return;
      case mp::ServiceOutcome::kDie:
        return;  // simulate a rank dying silently mid-run
    }
  }
}

std::vector<int> MessagePassingExecutor::liveRanks() const {
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(ranks_));
  for (int rank = 0; rank < ranks_; ++rank) {
    if (team_->isLive(rank)) {
      live.push_back(rank);
    }
  }
  return live;
}

void MessagePassingExecutor::sendCommand(int rank, std::uint32_t command,
                                         std::vector<std::size_t> items,
                                         std::vector<std::byte> body) {
  Pending& pending = pending_[static_cast<std::size_t>(rank)];
  pending.active = true;
  pending.command = command;
  pending.epoch = nextEpoch_++;
  pending.attempts = 0;
  pending.items = std::move(items);
  pending.body = std::move(body);
  std::vector<std::byte> frame =
      mp::frameCommand(command, pending.epoch, pending.body);
  bytesScattered_ += frame.size();
  if (rank != mp::kRoot) {
    // Injection point for a corrupted/short write on the wire; truncation
    // here makes the worker see a malformed frame and answer
    // status=failed, exercising the retry path end to end.
    runtime::FaultSite site{rank, &frame};
    runtime::fault::hit("mp.send", site);
    team_->root().send(rank, mp::kCommandTag, frame);
  }
}

std::optional<std::vector<std::byte>> MessagePassingExecutor::awaitReply(
    int rank) {
  Pending& pending = pending_[static_cast<std::size_t>(rank)];
  CHISIM_REQUIRE(pending.active, "awaitReply without a pending command");
  if (rank == mp::kRoot) {
    // The root is a worker too: execute its own share inline through the
    // same serialized body, so byte accounting and decode paths match.
    const std::vector<std::byte> reply = mp::executeSynthesisCommand(
        stageParamsOf(config_), pending.command, pending.body);
    bytesReturned_ += mp::kReplyHeaderBytes + reply.size();
    pending.active = false;
    return reply;
  }
  runtime::RankHandle& root = team_->root();
  while (true) {
    std::optional<runtime::Message> message;
    if (config_.commandTimeoutMs == 0) {
      message = root.recv(rank, mp::kReplyTag);
    } else {
      message = root.recvFor(
          std::chrono::milliseconds(config_.commandTimeoutMs), rank,
          mp::kReplyTag);
    }
    std::string failure;
    if (message) {
      runtime::FaultSite site{rank, &message->payload};
      runtime::fault::hit("mp.collect", site);
      std::uint32_t status = mp::kStatusFailed;
      std::uint64_t epoch = 0;
      std::span<const std::byte> body;
      bool parsed = false;
      try {
        std::size_t cursor = 0;
        mp::take32(message->payload, cursor);  // command (diagnostic only)
        status = mp::take32(message->payload, cursor);
        epoch = mp::take64(message->payload, cursor);
        body = std::span<const std::byte>(message->payload)
                   .subspan(mp::kReplyHeaderBytes);
        parsed = true;
      } catch (const std::exception&) {
        failure = "malformed reply frame from rank " + std::to_string(rank);
      }
      if (parsed) {
        // Epoch 0 marks a reply to a command too corrupt for the worker to
        // read the epoch back; match it against whatever is outstanding.
        if (epoch != pending.epoch && epoch != 0) {
          continue;  // stale reply from a superseded attempt
        }
        if (status == mp::kStatusOk) {
          bytesReturned_ += message->payload.size();
          pending.active = false;
          return std::vector<std::byte>(body.begin(), body.end());
        }
        failure = std::string(reinterpret_cast<const char*>(body.data()),
                              body.size());
      }
    } else {
      failure = "rank " + std::to_string(rank) + " sent no reply within " +
                std::to_string(config_.commandTimeoutMs) + " ms";
    }

    if (config_.faultPolicy != FaultPolicy::kDegrade) {
      // Fail fast: surface the worker's error as the run's error.
      CHISIM_CHECK(false, "synthesis command failed on rank " +
                              std::to_string(rank) + ": " + failure);
    }
    ++pending.attempts;
    if (pending.attempts >= config_.commandMaxAttempts) {
      team_->markLost(rank);
      FaultEvent event;
      event.kind = FaultEvent::Kind::kRankLost;
      event.rank = rank;
      event.detail = "declared lost after " +
                     std::to_string(pending.attempts) +
                     " attempts; last error: " + failure;
      faultEvents_.push_back(std::move(event));
      return std::nullopt;  // pending.items stays for reassignment
    }
    FaultEvent event;
    event.kind = FaultEvent::Kind::kCommandRetry;
    event.rank = rank;
    event.detail = "attempt " + std::to_string(pending.attempts) +
                   " failed: " + failure;
    faultEvents_.push_back(std::move(event));
    const std::uint64_t backoff = config_.commandBackoffMs
                                  << std::min(pending.attempts - 1, 16);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    pending.epoch = nextEpoch_++;
    std::vector<std::byte> frame =
        mp::frameCommand(pending.command, pending.epoch, pending.body);
    bytesScattered_ += frame.size();
    root.send(rank, mp::kCommandTag, frame);
  }
}

void MessagePassingExecutor::collectStage(
    std::uint32_t command,
    const std::function<std::vector<std::byte>(std::span<const std::size_t>)>&
        buildBody,
    const std::function<void(std::span<const std::byte>)>& onReply) {
  std::vector<std::size_t> orphaned;  // items of ranks declared lost
  for (int rank = 0; rank < ranks_; ++rank) {
    Pending& pending = pending_[static_cast<std::size_t>(rank)];
    if (!pending.active || pending.command != command) {
      continue;
    }
    if (const auto reply = awaitReply(rank)) {
      onReply(*reply);
    } else {
      orphaned.insert(orphaned.end(), pending.items.begin(),
                      pending.items.end());
      pending.active = false;
    }
  }
  // Reassignment rounds: spread orphaned items across the survivors and
  // collect again; a further loss feeds the next round. The root always
  // survives and executes its share inline, so this terminates.
  while (!orphaned.empty()) {
    const std::vector<int> live = liveRanks();
    std::vector<std::vector<std::size_t>> shares(live.size());
    for (std::size_t i = 0; i < orphaned.size(); ++i) {
      shares[i % shares.size()].push_back(orphaned[i]);
    }
    orphaned.clear();
    for (std::size_t slot = 0; slot < live.size(); ++slot) {
      if (shares[slot].empty()) {
        continue;
      }
      std::vector<std::byte> body = buildBody(shares[slot]);
      sendCommand(live[slot], command, std::move(shares[slot]),
                  std::move(body));
    }
    for (const int rank : live) {
      Pending& pending = pending_[static_cast<std::size_t>(rank)];
      if (!pending.active || pending.command != command) {
        continue;
      }
      if (const auto reply = awaitReply(rank)) {
        onReply(*reply);
      } else {
        orphaned.insert(orphaned.end(), pending.items.begin(),
                        pending.items.end());
        pending.active = false;
      }
    }
  }
}

void MessagePassingExecutor::scatterPlaces(const table::EventTable& events,
                                           const table::PlaceIndex& index) {
  events_ = &events;
  index_ = &index;
  // Round-robin place groups across the live ranks: the collocation stage
  // is roughly uniform per event row, and the nnz balancing happens at
  // repartition.
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> groups(live.size());
  for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
    groups[group % live.size()].push_back(group);
  }
  const auto buildBody = [&events,
                          &index](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    mp::put32(body, static_cast<std::uint32_t>(items.size()));
    std::uint64_t totalEvents = 0;
    for (const std::size_t group : items) {
      const auto rows = index.groupRows(group);
      mp::put32(body, static_cast<std::uint32_t>(rows.size()));
      totalEvents += rows.size();
    }
    body.reserve(body.size() + totalEvents * sizeof(table::Event));
    for (const std::size_t group : items) {
      for (const table::RowIndex row : index.groupRows(group)) {
        const table::Event event = events.row(row);
        const auto bytes =
            std::as_bytes(std::span<const table::Event>(&event, 1));
        body.insert(body.end(), bytes.begin(), bytes.end());
      }
    }
    return body;
  };
  for (std::size_t slot = 0; slot < live.size(); ++slot) {
    // Every live rank gets a command (even an empty one): the reply flow
    // and busy accounting stay uniform, and services start building while
    // the driver is still between stage calls.
    sendCommand(live[slot], mp::kCmdCollocation,
                std::vector<std::size_t>(groups[slot]),
                buildBody(groups[slot]));
  }
}

std::vector<sparse::CollocationMatrix>
MessagePassingExecutor::mapCollocation() {
  CHISIM_REQUIRE(events_ != nullptr && index_ != nullptr,
                 "mapCollocation before scatterPlaces");
  const table::EventTable& events = *events_;
  const table::PlaceIndex& index = *index_;
  try {
    std::vector<sparse::CollocationMatrix> all;
    collectStage(
        mp::kCmdCollocation,
        [&events, &index](std::span<const std::size_t> items) {
          std::vector<std::byte> body;
          mp::put32(body, static_cast<std::uint32_t>(items.size()));
          for (const std::size_t group : items) {
            mp::put32(body, static_cast<std::uint32_t>(
                                index.groupRows(group).size()));
          }
          for (const std::size_t group : items) {
            for (const table::RowIndex row : index.groupRows(group)) {
              const table::Event event = events.row(row);
              const auto bytes =
                  std::as_bytes(std::span<const table::Event>(&event, 1));
              body.insert(body.end(), bytes.begin(), bytes.end());
            }
          }
          return body;
        },
        [&all](std::span<const std::byte> reply) {
          for (sparse::CollocationMatrix& matrix : mp::unpackMatrices(reply)) {
            all.push_back(std::move(matrix));
          }
        });
    events_ = nullptr;
    index_ = nullptr;
    return all;
  } catch (...) {
    // A service failure aborts the communicator and surfaces here as a
    // generic "aborted" error; prefer the originating exception.
    events_ = nullptr;
    index_ = nullptr;
    team_->rethrowServiceError();
    throw;
  }
}

runtime::Partition MessagePassingExecutor::repartition(
    std::span<const std::uint64_t> weights) const {
  const std::size_t bins = static_cast<std::size_t>(team_->liveCount());
  return config_.balancedPartition
             ? runtime::partitionGreedyLpt(weights, bins)
             : runtime::partitionContiguous(weights, bins);
}

void MessagePassingExecutor::mapAdjacency(
    const std::vector<sparse::CollocationMatrix>& matrices,
    const runtime::Partition& partition) {
  const std::vector<int> live = liveRanks();
  CHISIM_REQUIRE(partition.assignment.size() == live.size(),
                 "partition bin count must equal live rank count");
  // A fresh token per built body keeps each body's worker-side spill files
  // unique: retries resend the same body (same token, deterministic
  // rewrite); reassignments build a new body and never collide with files
  // a half-dead rank may still be writing.
  const auto buildBody = [this,
                          &matrices](std::span<const std::size_t> items) {
    std::vector<sparse::CollocationMatrix> batch;
    batch.reserve(items.size());
    for (const std::size_t item : items) {
      batch.push_back(matrices[item]);
    }
    std::vector<std::byte> body;
    mp::put64(body, nextRunToken_++);
    const std::vector<std::byte> packed = mp::packMatrices(batch);
    body.insert(body.end(), packed.begin(), packed.end());
    return body;
  };
  reduceRuns_.clear();
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  workerPeakBytes_ = 0;
  try {
    for (std::size_t bin = 0; bin < live.size(); ++bin) {
      sendCommand(live[bin], mp::kCmdAdjacency,
                  std::vector<std::size_t>(partition.assignment[bin]),
                  buildBody(partition.assignment[bin]));
    }

    // Each rank returns its partial sum as one or more sorted runs (inline
    // or spill files); the runs are kept as-is for reduce()/reduceInto() to
    // merge — no per-rank hash rebuild at the root.
    std::vector<double> busySeconds;
    collectStage(mp::kCmdAdjacency, buildBody,
                 [this, &busySeconds](std::span<const std::byte> reply) {
                   std::size_t cursor = 0;
                   busySeconds.push_back(mp::takeDouble(reply, cursor));
                   sparse::AdjacencyKernelStats stats;
                   stats.densePlaces = mp::take64(reply, cursor);
                   stats.hashPlaces = mp::take64(reply, cursor);
                   stats.pairHourUpdates = mp::take64(reply, cursor);
                   stats.globalEmits = mp::take64(reply, cursor);
                   stats.mergeReservedEntries = mp::take64(reply, cursor);
                   runKernelStats_.merge(stats);
                   mp::take64(reply, cursor);  // flushes (in run adoption)
                   mp::take64(reply, cursor);  // spilledTriplets (ditto)
                   mp::take64(reply, cursor);  // spilledBytes (ditto)
                   workerPeakBytes_ += mp::take64(reply, cursor);
                   const std::uint32_t runCount = mp::take32(reply, cursor);
                   for (std::uint32_t run = 0; run < runCount; ++run) {
                     reduceRuns_.push_back(mp::takeRunRef(reply, cursor));
                   }
                   CHISIM_CHECK(cursor == reply.size(),
                                "malformed adjacency reply");
                 });

    double total = 0.0;
    double peak = 0.0;
    for (const double seconds : busySeconds) {
      total += seconds;
      peak = std::max(peak, seconds);
    }
    busyImbalance_ =
        total > 0.0 && !busySeconds.empty()
            ? peak / (total / static_cast<double>(busySeconds.size()))
            : 1.0;
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
}

void MessagePassingExecutor::mergeRunsLevel() {
  // One level of the rank-pair merge tree: adjacent runs (2k, 2k+1) pair
  // up, the pair-merges spread round-robin over the live ranks (rank 0
  // executes its share inline), and an odd leftover run carries to the
  // next level. Work items are pair indices, so sendCommand/collectStage
  // give this level the same retry and lost-rank reassignment semantics as
  // the other stages; the merged sum is identical whichever rank performs
  // it. Runs are only consumed after the level completes, so a reassigned
  // pair can always be rebuilt from reduceRuns_.
  const std::size_t pairCount = reduceRuns_.size() / 2;
  const auto buildBody = [this](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    mp::put64(body, nextRunToken_++);
    mp::put32(body, static_cast<std::uint32_t>(items.size()));
    for (const std::size_t pair : items) {
      mp::putRunRef(body, reduceRuns_[2 * pair]);
      mp::putRunRef(body, reduceRuns_[2 * pair + 1]);
    }
    return body;
  };
  std::vector<mp::RunRef> next;
  next.reserve(pairCount + (reduceRuns_.size() & 1));
  if (reduceRuns_.size() & 1) {
    next.push_back(std::move(reduceRuns_.back()));
    reduceRuns_.back() = mp::RunRef{};  // moved-from; not an input file
  }
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> shares(live.size());
  for (std::size_t pair = 0; pair < pairCount; ++pair) {
    shares[pair % shares.size()].push_back(pair);
  }
  for (std::size_t slot = 0; slot < live.size(); ++slot) {
    if (shares[slot].empty()) {
      continue;
    }
    std::vector<std::byte> body = buildBody(shares[slot]);
    sendCommand(live[slot], mp::kCmdMergeRuns, std::move(shares[slot]),
                std::move(body));
  }
  double levelPeak = 0.0;
  collectStage(mp::kCmdMergeRuns, buildBody,
               [&next, &levelPeak](std::span<const std::byte> reply) {
                 std::size_t cursor = 0;
                 levelPeak =
                     std::max(levelPeak, mp::takeDouble(reply, cursor));
                 const std::uint32_t count = mp::take32(reply, cursor);
                 for (std::uint32_t pair = 0; pair < count; ++pair) {
                   next.push_back(mp::takeRunRef(reply, cursor));
                 }
                 CHISIM_CHECK(cursor == reply.size(),
                              "malformed merge-runs reply");
               });
  // Only now that the level is complete (every pair merged somewhere, the
  // merged outputs in `next`) are the consumed input run files superseded.
  for (const mp::RunRef& run : reduceRuns_) {
    if (run.isFile()) {
      std::error_code ignored;
      std::filesystem::remove(run.file, ignored);
    }
  }
  reduceRuns_ = std::move(next);
  ++lastReduce_.depth;
  lastReduce_.criticalSeconds += levelPeak;
}

void MessagePassingExecutor::reduce(sparse::SymmetricAdjacency& result) {
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = config_.treeReduce;
  lastReduce_.mergedSums = reduceRuns_.size();
  // Inserts one run — inline or streamed off its spill file — into the
  // running result, consuming (deleting) file-backed runs. The reserve is
  // the summed-row-count pre-size (satellite of the sharded merge: sized
  // from run metadata, counted in the kernel stats).
  const auto insertRun = [this, &result](const mp::RunRef& run) {
    if (run.isFile()) {
      result.reserve(result.edgeCount() + run.triplets);
      runKernelStats_.mergeReservedEntries += run.triplets;
      sparse::SpillRunReader reader(run.file);
      sparse::AdjacencyTriplet triplet;
      while (reader.next(triplet)) {
        result.add(triplet.i, triplet.j, triplet.weight);
      }
      std::error_code ignored;
      std::filesystem::remove(run.file, ignored);
    } else {
      result.reserve(result.edgeCount() + run.inlineRun.size());
      runKernelStats_.mergeReservedEntries += run.inlineRun.size();
      for (const sparse::AdjacencyTriplet& triplet : run.inlineRun) {
        result.add(triplet.i, triplet.j, triplet.weight);
      }
    }
  };
  try {
    if (config_.treeReduce) {
      while (reduceRuns_.size() > 1) {
        mergeRunsLevel();
      }
      // Only the single surviving run crosses into the running result. The
      // root-side insert is on the critical path either way, so it counts.
      util::WallTimer timer;
      for (const mp::RunRef& run : reduceRuns_) {
        insertRun(run);
      }
      lastReduce_.criticalSeconds += timer.seconds();
    } else {
      // Serial baseline: insert each rank's run into the root map one at a
      // time (the pre-tree behavior, kept for the ablation bench).
      util::WallTimer timer;
      for (const mp::RunRef& run : reduceRuns_) {
        insertRun(run);
      }
      lastReduce_.criticalSeconds = timer.seconds();
    }
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
  reduceRuns_.clear();
  result.addKernelStats(runKernelStats_);
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  workerPeakBytes_ = 0;
}

void MessagePassingExecutor::reduceInto(sparse::SpillingAccumulator& sink) {
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = false;  // the sink replaces the pairwise tree
  lastReduce_.mergedSums = reduceRuns_.size();
  // The workers' stage-5 maps were alive concurrently with the sink's
  // resident shards — the budget guarantee must account for both.
  sink.noteWorkerPeak(workerPeakBytes_);
  try {
    util::WallTimer timer;
    for (mp::RunRef& run : reduceRuns_) {
      if (run.isFile()) {
        sink.adoptRunFile(runRefInfo(run));  // ownership transfer, no copy
      } else if (!run.inlineRun.empty()) {
        sink.addSortedRun(run.inlineRun);
      }
    }
    lastReduce_.criticalSeconds = timer.seconds();
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
  reduceRuns_.clear();
  sink.addKernelStats(runKernelStats_);
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  workerPeakBytes_ = 0;
}

std::vector<sparse::ShardSegment> MessagePassingExecutor::mergeSpillShards(
    const std::vector<sparse::SpillingAccumulator::ShardRunGroup>& groups,
    const std::function<void(const sparse::ShardSegment&)>& onSegment) {
  CHISIM_REQUIRE(!config_.spillDir.empty(),
                 "sharded merge requires a spill directory");
  // Work items are group indices; shard groups spread round-robin over the
  // live ranks (rank 0 executes its share inline). Each body carries every
  // shard of its rank plus the run references — the files themselves stay
  // on the shared filesystem. A reassigned body gets a fresh token, so a
  // half-dead rank still merging the old body writes different segment
  // names and never corrupts the survivor's output.
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> shares(live.size());
  std::unordered_map<std::uint32_t, unsigned> ownerOfShard;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    shares[g % shares.size()].push_back(g);
    // Modeled owner = the initial assignment; a fault-driven reassignment
    // shifts real work elsewhere but the model keeps the healthy-run shape.
    ownerOfShard[groups[g].shard] =
        static_cast<unsigned>(live[g % live.size()]);
  }
  const auto buildBody = [this, &groups](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    mp::put64(body, nextRunToken_++);
    mp::put32(body, static_cast<std::uint32_t>(config_.mergeReadahead));
    mp::put32(body, static_cast<std::uint32_t>(items.size()));
    for (const std::size_t g : items) {
      const sparse::SpillingAccumulator::ShardRunGroup& group = groups[g];
      mp::put32(body, group.shard);
      mp::put32(body, static_cast<std::uint32_t>(group.runs.size()));
      for (const sparse::SpillRunInfo& run : group.runs) {
        mp::RunRef ref;
        ref.file = run.file.string();
        ref.triplets = run.triplets;
        ref.bytes = run.bytes;
        ref.hasKeyRange = run.hasKeyRange;
        ref.firstKey = run.firstKey;
        ref.lastKey = run.lastKey;
        mp::putRunRef(body, ref);
      }
    }
    return body;
  };
  std::vector<sparse::ShardSegment> segments;
  segments.reserve(groups.size());
  try {
    for (std::size_t slot = 0; slot < live.size(); ++slot) {
      if (shares[slot].empty()) {
        continue;
      }
      std::vector<std::byte> body = buildBody(shares[slot]);
      sendCommand(live[slot], mp::kCmdMergeShard, std::move(shares[slot]),
                  std::move(body));
    }
    collectStage(
        mp::kCmdMergeShard, buildBody,
        [&segments, &ownerOfShard,
         &onSegment](std::span<const std::byte> reply) {
          std::size_t cursor = 0;
          mp::takeDouble(reply, cursor);  // rank busy; per-shard is below
          const std::uint32_t count = mp::take32(reply, cursor);
          for (std::uint32_t s = 0; s < count; ++s) {
            sparse::ShardSegment segment;
            segment.shard = mp::take32(reply, cursor);
            segment.mergeSeconds = mp::takeDouble(reply, cursor);
            segment.file = mp::takeString(reply, cursor);
            segment.triplets = mp::take64(reply, cursor);
            segment.bytes = mp::take64(reply, cursor);
            segment.crc = mp::take32(reply, cursor);
            const auto owner = ownerOfShard.find(segment.shard);
            segment.owner = owner != ownerOfShard.end() ? owner->second : 0;
            segments.push_back(segment);
            onSegment(segment);  // collectStage runs replies serially
          }
          CHISIM_CHECK(cursor == reply.size(),
                       "malformed merge-shard reply");
        });
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
  return segments;
}

std::vector<FaultEvent> MessagePassingExecutor::drainFaultEvents() {
  if (processTransport_ != nullptr) {
    for (runtime::ProcessTransport::WorkerEvent& event :
         processTransport_->drainEvents()) {
      if (event.kind !=
          runtime::ProcessTransport::WorkerEvent::Kind::kRespawn) {
        // Permanent deaths are accounted as kRankLost by the command retry
        // loop (markLost), which owns the live set; double-reporting them
        // here would double-count ranksLost.
        continue;
      }
      FaultEvent mapped;
      mapped.kind = FaultEvent::Kind::kWorkerRespawn;
      mapped.rank = event.rank;
      mapped.detail = std::move(event.detail);
      faultEvents_.push_back(std::move(mapped));
    }
  }
  return std::exchange(faultEvents_, {});
}

std::optional<int> maybeRunSynthesisWorker() {
  if (!runtime::ProcessWorkerLink::isWorkerProcess()) {
    return std::nullopt;
  }
  try {
    // A fault plan shipped by the root arms this process too, so scripted
    // worker-side faults (kThrow in a stage, kKillProcess mid-command)
    // fire with the same seed and specs as in-process runs. Counters start
    // from zero in each exec'd process.
    if (const char* planText = std::getenv(runtime::kWorkerFaultPlanEnv)) {
      static std::unique_ptr<runtime::FaultPlan> plan =
          runtime::FaultPlan::decode(planText);
      runtime::fault::install(plan.get());
    }
    runtime::ProcessWorkerLink link;
    const runtime::ProcessWorkerLink::Hello hello = link.handshake();
    const mp::StageParams params = mp::decodeStageParams(hello.payload);
    while (true) {
      const runtime::Message message = link.recv();
      if (message.tag != mp::kCommandTag) {
        continue;  // not a command frame; nothing to service
      }
      std::vector<std::byte> reply;
      switch (mp::serviceSynthesisCommand(params, link.rank(),
                                          message.payload, reply)) {
        case mp::ServiceOutcome::kReply:
          link.send(mp::kReplyTag, reply);
          break;
        case mp::ServiceOutcome::kStop:
          return 0;
        case mp::ServiceOutcome::kDie:
          // Injected silent death: exit without replying. The root sees
          // the socket close and drives the respawn/loss state machine —
          // the process-transport analogue of the in-process service
          // thread returning mid-run.
          return 0;
      }
    }
  } catch (const std::exception& error) {
    // Includes the orderly "root connection closed" on root teardown
    // without a stop command; either way the worker has nothing left to
    // do. Real errors are logged for the parent's stderr.
    std::fprintf(stderr, "chisim worker: %s\n", error.what());
    return 1;
  }
}

}  // namespace chisimnet::net
