#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/mp_protocol.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/process_transport.hpp"
#include "chisimnet/runtime/tcp_transport.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

namespace {

mp::StageParams stageParamsOf(const SynthesisConfig& config) {
  mp::StageParams params;
  params.windowStart = config.windowStart;
  params.windowEnd = config.windowEnd;
  params.method = config.method;
  // Each stage-5 worker gets an eighth of its budget share: the cross-batch
  // sink keeps resident bytes under budget/2, and the per-batch worker maps
  // (all live at once) plus their drain transients fit in the rest.
  params.spillThresholdBytes =
      config.memoryBudgetBytes > 0
          ? std::max<std::uint64_t>(
                config.memoryBudgetBytes / (8 * std::max(1u, config.workers)),
                1)
          : 0;
  params.spillDir = config.spillDir.string();
  // Shard-pure worker runs: each stage-5 flush splits at reduce-shard
  // boundaries so the root's merge planner never has to rewrite a run.
  // The serial merge (reduceShards == 1) keeps the legacy layout.
  params.splitRows = resolvedReduceShards(config) > 1
                         ? resolvedMergeRowsPerShard(config)
                         : 0;
  // TCP workers may live on other hosts: they spill into private local
  // directories and ship run bytes over the wire instead of returning
  // paths into a filesystem the root may not share.
  params.shipRuns = config.transport == MpTransport::kTcp;
  return params;
}

sparse::SpillRunInfo runRefInfo(const mp::RunRef& ref) {
  sparse::SpillRunInfo info;
  info.file = ref.file;
  info.triplets = ref.triplets;
  info.bytes = ref.bytes;
  info.hasKeyRange = ref.hasKeyRange;
  info.firstKey = ref.firstKey;
  info.lastKey = ref.lastKey;
  return info;
}

/// One "host:port" per line for ranks 1..N-1; blank lines and #-comments
/// are skipped, an empty slot string means "dial the root's listen
/// address".
std::vector<std::string> readTcpJobFile(const std::string& path) {
  std::ifstream in(path);
  CHISIM_CHECK(in.good(), "cannot open tcp job file " + path);
  std::vector<std::string> slots;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') {
      continue;
    }
    const std::size_t end = line.find_last_not_of(" \t\r");
    slots.push_back(line.substr(begin, end - begin + 1));
  }
  return slots;
}

}  // namespace

/// Root-side assembler of in-flight kShipTag run files: chunks append to
/// <spillDir>/<name>.part, offset 0 restarts (a retried command re-ships
/// from scratch), and a completed file is committed via rename — so a
/// reply's shipped refs always resolve to whole files (the chunks precede
/// the reply on the connection and are drained before it is decoded).
class MessagePassingExecutor::RunShipSink {
 public:
  explicit RunShipSink(std::filesystem::path dir) : dir_(std::move(dir)) {}

  void accept(const mp::ShipChunkView& chunk) {
    // The name becomes a path component under the root's spill dir; never
    // let a (buggy or hostile) worker steer it elsewhere.
    CHISIM_CHECK(chunk.name.find('/') == std::string::npos &&
                     chunk.name.find('\\') == std::string::npos &&
                     chunk.name != "." && chunk.name != "..",
                 "shipped run name must be a bare file name");
    Inflight& in = inflight_[chunk.name];
    if (chunk.offset == 0) {
      in.out = std::make_unique<std::ofstream>(
          tmpPath(chunk.name), std::ios::binary | std::ios::trunc);
      CHISIM_CHECK(in.out->good(), "cannot open shipped-run temp file " +
                                       tmpPath(chunk.name).string());
      in.received = 0;
      in.total = chunk.total;
    }
    CHISIM_CHECK(in.out != nullptr && chunk.offset == in.received &&
                     chunk.total == in.total,
                 "shipped run chunk out of sequence for " + chunk.name);
    if (!chunk.data.empty()) {
      in.out->write(reinterpret_cast<const char*>(chunk.data.data()),
                    static_cast<std::streamsize>(chunk.data.size()));
      in.received += chunk.data.size();
    }
    if (in.received == in.total) {
      in.out->flush();
      CHISIM_CHECK(in.out->good(),
                   "failed writing shipped run " + chunk.name);
      in.out.reset();
      std::filesystem::rename(tmpPath(chunk.name), dir_ / chunk.name);
      inflight_.erase(chunk.name);
    }
  }

 private:
  struct Inflight {
    std::unique_ptr<std::ofstream> out;
    std::uint64_t received = 0;
    std::uint64_t total = 0;
  };

  std::filesystem::path tmpPath(const std::string& name) const {
    return dir_ / (name + ".part");
  }

  std::filesystem::path dir_;
  std::unordered_map<std::string, Inflight> inflight_;
};

void MessagePassingExecutor::drainShippedRuns(int rank) {
  if (shipSink_ == nullptr) {
    return;
  }
  runtime::Message message;
  while (team_->root().tryRecv(message, rank, mp::kShipTag)) {
    bytesReturned_ += message.payload.size();
    shipSink_->accept(mp::decodeShipChunk(message.payload));
  }
}

mp::RunRef MessagePassingExecutor::localizeRun(mp::RunRef ref) const {
  if (ref.shipped) {
    ref.file = (config_.spillDir / ref.file).string();
    ref.shipped = false;
  }
  return ref;
}

MessagePassingExecutor::MessagePassingExecutor(const SynthesisConfig& config)
    : SynthesisExecutor(config),
      ranks_(static_cast<int>(config.workers)),
      pending_(static_cast<std::size_t>(config.workers)) {
  if (config.transport == MpTransport::kProcess) {
    // Worker ranks are separate OS processes behind Unix-domain sockets.
    // The hello payload carries the stage parameters, so a worker (or a
    // respawned replacement) computes with exactly the root's config.
    runtime::ProcessTransportOptions options;
    options.rankCount = ranks_;
    options.heartbeatMs = config.heartbeatMs;
    options.maxRespawns = config.maxRespawns;
    options.executable = config.workerExecutable;
    options.helloPayload = mp::encodeStageParams(stageParamsOf(config));
    auto transport = std::make_unique<runtime::ProcessTransport>(options);
    processTransport_ = transport.get();
    team_ = std::make_unique<runtime::RankTeam>(std::move(transport));
  } else if (config.transport == MpTransport::kTcp) {
    // Worker ranks dial rank 0 over TCP. Stage commands run with shipRuns:
    // workers spill locally and ship run bytes on kShipTag, which the sink
    // materializes into the root's spill directory.
    runtime::TcpTransportOptions options;
    options.rankCount = ranks_;
    options.heartbeatMs = config.heartbeatMs;
    options.connectTimeoutMs = config.connectTimeoutMs;
    options.connectRetries = config.connectRetries;
    options.reconnectGraceMs = config.reconnectGraceMs;
    options.executable = config.workerExecutable;
    if (!config.tcpListen.empty()) {
      std::tie(options.listenHost, options.listenPort) =
          runtime::parseHostPort(config.tcpListen);
    }
    if (!config.tcpJob.empty()) {
      // Job mode: workers are launched out-of-band (`chisim worker`)
      // against the addresses listed, one per rank 1..N-1.
      options.spawnWorkers = false;
      options.connectAddresses = readTcpJobFile(config.tcpJob);
    }
    options.helloPayload = mp::encodeStageParams(stageParamsOf(config));
    auto transport = std::make_unique<runtime::TcpTransport>(options);
    tcpTransport_ = transport.get();
    team_ = std::make_unique<runtime::RankTeam>(std::move(transport));
    shipRuns_ = true;
    shipSink_ = std::make_unique<RunShipSink>(config.spillDir);
    // Bound the wait by the workers' own dial budget plus slack, so a
    // worker that is still backing off is not declared missing.
    const std::uint64_t waitMs = std::max<std::uint64_t>(
        10000,
        config.connectTimeoutMs *
                static_cast<std::uint64_t>(config.connectRetries + 1) +
            5000);
    CHISIM_CHECK(
        tcpTransport_->waitForWorkers(std::chrono::milliseconds(waitMs)),
        "tcp transport: not all workers connected within " +
            std::to_string(waitMs) + " ms (listening on " +
            options.listenHost + ":" + std::to_string(tcpTransport_->port()) +
            ")");
  } else {
    team_ = std::make_unique<runtime::RankTeam>(
        ranks_, [this](runtime::RankHandle& handle) { serviceLoop(handle); });
  }
}

MessagePassingExecutor::~MessagePassingExecutor() {
  // Quiesce first: from here on, worker processes exiting is orderly
  // shutdown, not a crash to respawn. Then a stop command lets idle
  // services return so the team joins without relying on the destructor's
  // abort. (Services wedged mid-stage after a root-side failure are woken
  // by the RankTeam destructor's abort instead. Lost ranks already exited;
  // their stop frame just sits in the mailbox or is dropped by the wire.)
  team_->transport().quiesce();
  for (int dest = 1; dest < ranks_; ++dest) {
    team_->root().send(dest, mp::kCommandTag,
                       mp::frameCommand(mp::kCmdStop, 0, {}));
  }
}

void MessagePassingExecutor::serviceLoop(runtime::RankHandle& handle) const {
  const mp::StageParams params = stageParamsOf(config_);
  while (true) {
    runtime::Message message = handle.recv(mp::kRoot, mp::kCommandTag);
    std::vector<std::byte> reply;
    switch (mp::serviceSynthesisCommand(params, handle.rank(), message.payload,
                                        reply)) {
      case mp::ServiceOutcome::kReply:
        handle.send(mp::kRoot, mp::kReplyTag, reply);
        break;
      case mp::ServiceOutcome::kStop:
        return;
      case mp::ServiceOutcome::kDie:
        return;  // simulate a rank dying silently mid-run
    }
  }
}

std::vector<int> MessagePassingExecutor::liveRanks() const {
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(ranks_));
  for (int rank = 0; rank < ranks_; ++rank) {
    if (team_->isLive(rank)) {
      live.push_back(rank);
    }
  }
  return live;
}

void MessagePassingExecutor::sendCommand(int rank, std::uint32_t command,
                                         std::vector<std::size_t> items,
                                         std::vector<std::byte> body) {
  Pending& pending = pending_[static_cast<std::size_t>(rank)];
  pending.active = true;
  pending.command = command;
  pending.epoch = nextEpoch_++;
  pending.attempts = 0;
  pending.items = std::move(items);
  pending.body = std::move(body);
  std::vector<std::byte> frame =
      mp::frameCommand(command, pending.epoch, pending.body);
  bytesScattered_ += frame.size();
  if (rank != mp::kRoot) {
    // Injection point for a corrupted/short write on the wire; truncation
    // here makes the worker see a malformed frame and answer
    // status=failed, exercising the retry path end to end.
    runtime::FaultSite site{rank, &frame};
    runtime::fault::hit("mp.send", site);
    team_->root().send(rank, mp::kCommandTag, frame);
  }
}

std::optional<std::vector<std::byte>> MessagePassingExecutor::awaitReply(
    int rank) {
  Pending& pending = pending_[static_cast<std::size_t>(rank)];
  CHISIM_REQUIRE(pending.active, "awaitReply without a pending command");
  if (rank == mp::kRoot) {
    // The root is a worker too: execute its own share inline through the
    // same serialized body, so byte accounting and decode paths match.
    const std::vector<std::byte> reply = mp::executeSynthesisCommand(
        stageParamsOf(config_), pending.command, pending.body);
    bytesReturned_ += mp::kReplyHeaderBytes + reply.size();
    pending.active = false;
    return reply;
  }
  runtime::RankHandle& root = team_->root();
  while (true) {
    std::optional<runtime::Message> message;
    if (config_.commandTimeoutMs == 0) {
      message = root.recv(rank, mp::kReplyTag);
    } else {
      message = root.recvFor(
          std::chrono::milliseconds(config_.commandTimeoutMs), rank,
          mp::kReplyTag);
    }
    std::string failure;
    if (message) {
      // Any run files this reply references were shipped ahead of it on
      // the same connection, so they are already queued: materialize them
      // before the reply body is decoded.
      drainShippedRuns(rank);
      runtime::FaultSite site{rank, &message->payload};
      runtime::fault::hit("mp.collect", site);
      std::uint32_t status = mp::kStatusFailed;
      std::uint64_t epoch = 0;
      std::span<const std::byte> body;
      bool parsed = false;
      try {
        std::size_t cursor = 0;
        mp::take32(message->payload, cursor);  // command (diagnostic only)
        status = mp::take32(message->payload, cursor);
        epoch = mp::take64(message->payload, cursor);
        body = std::span<const std::byte>(message->payload)
                   .subspan(mp::kReplyHeaderBytes);
        parsed = true;
      } catch (const std::exception&) {
        failure = "malformed reply frame from rank " + std::to_string(rank);
      }
      if (parsed) {
        // Epoch 0 marks a reply to a command too corrupt for the worker to
        // read the epoch back; match it against whatever is outstanding.
        if (epoch != pending.epoch && epoch != 0) {
          continue;  // stale reply from a superseded attempt
        }
        if (status == mp::kStatusOk) {
          bytesReturned_ += message->payload.size();
          pending.active = false;
          return std::vector<std::byte>(body.begin(), body.end());
        }
        failure = std::string(reinterpret_cast<const char*>(body.data()),
                              body.size());
      }
    } else {
      failure = "rank " + std::to_string(rank) + " sent no reply within " +
                std::to_string(config_.commandTimeoutMs) + " ms";
    }

    if (config_.faultPolicy != FaultPolicy::kDegrade) {
      // Fail fast: surface the worker's error as the run's error.
      CHISIM_CHECK(false, "synthesis command failed on rank " +
                              std::to_string(rank) + ": " + failure);
    }
    ++pending.attempts;
    if (pending.attempts >= config_.commandMaxAttempts) {
      team_->markLost(rank);
      FaultEvent event;
      event.kind = FaultEvent::Kind::kRankLost;
      event.rank = rank;
      event.detail = "declared lost after " +
                     std::to_string(pending.attempts) +
                     " attempts; last error: " + failure;
      faultEvents_.push_back(std::move(event));
      return std::nullopt;  // pending.items stays for reassignment
    }
    FaultEvent event;
    event.kind = FaultEvent::Kind::kCommandRetry;
    event.rank = rank;
    event.detail = "attempt " + std::to_string(pending.attempts) +
                   " failed: " + failure;
    faultEvents_.push_back(std::move(event));
    const std::uint64_t backoff = config_.commandBackoffMs
                                  << std::min(pending.attempts - 1, 16);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    pending.epoch = nextEpoch_++;
    std::vector<std::byte> frame =
        mp::frameCommand(pending.command, pending.epoch, pending.body);
    bytesScattered_ += frame.size();
    root.send(rank, mp::kCommandTag, frame);
  }
}

void MessagePassingExecutor::collectStage(
    std::uint32_t command,
    const std::function<std::vector<std::byte>(std::span<const std::size_t>)>&
        buildBody,
    const std::function<void(std::span<const std::byte>)>& onReply) {
  std::vector<std::size_t> orphaned;  // items of ranks declared lost
  for (int rank = 0; rank < ranks_; ++rank) {
    Pending& pending = pending_[static_cast<std::size_t>(rank)];
    if (!pending.active || pending.command != command) {
      continue;
    }
    if (const auto reply = awaitReply(rank)) {
      onReply(*reply);
    } else {
      orphaned.insert(orphaned.end(), pending.items.begin(),
                      pending.items.end());
      pending.active = false;
    }
  }
  // Reassignment rounds: spread orphaned items across the survivors and
  // collect again; a further loss feeds the next round. The root always
  // survives and executes its share inline, so this terminates.
  while (!orphaned.empty()) {
    const std::vector<int> live = liveRanks();
    std::vector<std::vector<std::size_t>> shares(live.size());
    for (std::size_t i = 0; i < orphaned.size(); ++i) {
      shares[i % shares.size()].push_back(orphaned[i]);
    }
    orphaned.clear();
    for (std::size_t slot = 0; slot < live.size(); ++slot) {
      if (shares[slot].empty()) {
        continue;
      }
      std::vector<std::byte> body = buildBody(shares[slot]);
      sendCommand(live[slot], command, std::move(shares[slot]),
                  std::move(body));
    }
    for (const int rank : live) {
      Pending& pending = pending_[static_cast<std::size_t>(rank)];
      if (!pending.active || pending.command != command) {
        continue;
      }
      if (const auto reply = awaitReply(rank)) {
        onReply(*reply);
      } else {
        orphaned.insert(orphaned.end(), pending.items.begin(),
                        pending.items.end());
        pending.active = false;
      }
    }
  }
}

void MessagePassingExecutor::scatterPlaces(const table::EventTable& events,
                                           const table::PlaceIndex& index) {
  events_ = &events;
  index_ = &index;
  // Round-robin place groups across the live ranks: the collocation stage
  // is roughly uniform per event row, and the nnz balancing happens at
  // repartition.
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> groups(live.size());
  for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
    groups[group % live.size()].push_back(group);
  }
  const auto buildBody = [&events,
                          &index](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    mp::put32(body, static_cast<std::uint32_t>(items.size()));
    std::uint64_t totalEvents = 0;
    for (const std::size_t group : items) {
      const auto rows = index.groupRows(group);
      mp::put32(body, static_cast<std::uint32_t>(rows.size()));
      totalEvents += rows.size();
    }
    body.reserve(body.size() + totalEvents * sizeof(table::Event));
    for (const std::size_t group : items) {
      for (const table::RowIndex row : index.groupRows(group)) {
        const table::Event event = events.row(row);
        const auto bytes =
            std::as_bytes(std::span<const table::Event>(&event, 1));
        body.insert(body.end(), bytes.begin(), bytes.end());
      }
    }
    return body;
  };
  for (std::size_t slot = 0; slot < live.size(); ++slot) {
    // Every live rank gets a command (even an empty one): the reply flow
    // and busy accounting stay uniform, and services start building while
    // the driver is still between stage calls.
    sendCommand(live[slot], mp::kCmdCollocation,
                std::vector<std::size_t>(groups[slot]),
                buildBody(groups[slot]));
  }
}

std::vector<sparse::CollocationMatrix>
MessagePassingExecutor::mapCollocation() {
  CHISIM_REQUIRE(events_ != nullptr && index_ != nullptr,
                 "mapCollocation before scatterPlaces");
  const table::EventTable& events = *events_;
  const table::PlaceIndex& index = *index_;
  try {
    std::vector<sparse::CollocationMatrix> all;
    collectStage(
        mp::kCmdCollocation,
        [&events, &index](std::span<const std::size_t> items) {
          std::vector<std::byte> body;
          mp::put32(body, static_cast<std::uint32_t>(items.size()));
          for (const std::size_t group : items) {
            mp::put32(body, static_cast<std::uint32_t>(
                                index.groupRows(group).size()));
          }
          for (const std::size_t group : items) {
            for (const table::RowIndex row : index.groupRows(group)) {
              const table::Event event = events.row(row);
              const auto bytes =
                  std::as_bytes(std::span<const table::Event>(&event, 1));
              body.insert(body.end(), bytes.begin(), bytes.end());
            }
          }
          return body;
        },
        [&all](std::span<const std::byte> reply) {
          for (sparse::CollocationMatrix& matrix : mp::unpackMatrices(reply)) {
            all.push_back(std::move(matrix));
          }
        });
    events_ = nullptr;
    index_ = nullptr;
    return all;
  } catch (...) {
    // A service failure aborts the communicator and surfaces here as a
    // generic "aborted" error; prefer the originating exception.
    events_ = nullptr;
    index_ = nullptr;
    team_->rethrowServiceError();
    throw;
  }
}

runtime::Partition MessagePassingExecutor::repartition(
    std::span<const std::uint64_t> weights) const {
  const std::size_t bins = static_cast<std::size_t>(team_->liveCount());
  return config_.balancedPartition
             ? runtime::partitionGreedyLpt(weights, bins)
             : runtime::partitionContiguous(weights, bins);
}

void MessagePassingExecutor::mapAdjacency(
    const std::vector<sparse::CollocationMatrix>& matrices,
    const runtime::Partition& partition) {
  const std::vector<int> live = liveRanks();
  CHISIM_REQUIRE(partition.assignment.size() == live.size(),
                 "partition bin count must equal live rank count");
  // A fresh token per built body keeps each body's worker-side spill files
  // unique: retries resend the same body (same token, deterministic
  // rewrite); reassignments build a new body and never collide with files
  // a half-dead rank may still be writing.
  const auto buildBody = [this,
                          &matrices](std::span<const std::size_t> items) {
    std::vector<sparse::CollocationMatrix> batch;
    batch.reserve(items.size());
    for (const std::size_t item : items) {
      batch.push_back(matrices[item]);
    }
    std::vector<std::byte> body;
    mp::put64(body, nextRunToken_++);
    const std::vector<std::byte> packed = mp::packMatrices(batch);
    body.insert(body.end(), packed.begin(), packed.end());
    return body;
  };
  reduceRuns_.clear();
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  workerPeakBytes_ = 0;
  try {
    for (std::size_t bin = 0; bin < live.size(); ++bin) {
      sendCommand(live[bin], mp::kCmdAdjacency,
                  std::vector<std::size_t>(partition.assignment[bin]),
                  buildBody(partition.assignment[bin]));
    }

    // Each rank returns its partial sum as one or more sorted runs (inline
    // or spill files); the runs are kept as-is for reduce()/reduceInto() to
    // merge — no per-rank hash rebuild at the root.
    std::vector<double> busySeconds;
    collectStage(mp::kCmdAdjacency, buildBody,
                 [this, &busySeconds](std::span<const std::byte> reply) {
                   std::size_t cursor = 0;
                   busySeconds.push_back(mp::takeDouble(reply, cursor));
                   sparse::AdjacencyKernelStats stats;
                   stats.densePlaces = mp::take64(reply, cursor);
                   stats.hashPlaces = mp::take64(reply, cursor);
                   stats.pairHourUpdates = mp::take64(reply, cursor);
                   stats.globalEmits = mp::take64(reply, cursor);
                   stats.mergeReservedEntries = mp::take64(reply, cursor);
                   runKernelStats_.merge(stats);
                   mp::take64(reply, cursor);  // flushes (in run adoption)
                   mp::take64(reply, cursor);  // spilledTriplets (ditto)
                   mp::take64(reply, cursor);  // spilledBytes (ditto)
                   workerPeakBytes_ += mp::take64(reply, cursor);
                   const std::uint32_t runCount = mp::take32(reply, cursor);
                   for (std::uint32_t run = 0; run < runCount; ++run) {
                     reduceRuns_.push_back(
                         localizeRun(mp::takeRunRef(reply, cursor)));
                   }
                   CHISIM_CHECK(cursor == reply.size(),
                                "malformed adjacency reply");
                 });

    double total = 0.0;
    double peak = 0.0;
    for (const double seconds : busySeconds) {
      total += seconds;
      peak = std::max(peak, seconds);
    }
    busyImbalance_ =
        total > 0.0 && !busySeconds.empty()
            ? peak / (total / static_cast<double>(busySeconds.size()))
            : 1.0;
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
}

void MessagePassingExecutor::mergeRunsLevel() {
  // One level of the rank-pair merge tree: adjacent runs (2k, 2k+1) pair
  // up, the pair-merges spread round-robin over the live ranks (rank 0
  // executes its share inline), and an odd leftover run carries to the
  // next level. Work items are pair indices, so sendCommand/collectStage
  // give this level the same retry and lost-rank reassignment semantics as
  // the other stages; the merged sum is identical whichever rank performs
  // it. Runs are only consumed after the level completes, so a reassigned
  // pair can always be rebuilt from reduceRuns_.
  const std::size_t pairCount = reduceRuns_.size() / 2;
  const auto buildBody = [this](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    mp::put64(body, nextRunToken_++);
    mp::put32(body, static_cast<std::uint32_t>(items.size()));
    for (const std::size_t pair : items) {
      mp::putRunRef(body, reduceRuns_[2 * pair]);
      mp::putRunRef(body, reduceRuns_[2 * pair + 1]);
    }
    return body;
  };
  std::vector<mp::RunRef> next;
  next.reserve(pairCount + (reduceRuns_.size() & 1));
  if (reduceRuns_.size() & 1) {
    next.push_back(std::move(reduceRuns_.back()));
    reduceRuns_.back() = mp::RunRef{};  // moved-from; not an input file
  }
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> shares(live.size());
  for (std::size_t pair = 0; pair < pairCount; ++pair) {
    // Under run shipping the root's run files are local to the root —
    // remote workers cannot open them, so any pair touching a file run is
    // pinned to rank 0 (live[0]; the root is always live) and executes
    // inline. Inline-only pairs still spread across the workers.
    const bool rootOnly = shipRuns_ && (reduceRuns_[2 * pair].isFile() ||
                                        reduceRuns_[2 * pair + 1].isFile());
    shares[rootOnly ? 0 : pair % shares.size()].push_back(pair);
  }
  for (std::size_t slot = 0; slot < live.size(); ++slot) {
    if (shares[slot].empty()) {
      continue;
    }
    std::vector<std::byte> body = buildBody(shares[slot]);
    sendCommand(live[slot], mp::kCmdMergeRuns, std::move(shares[slot]),
                std::move(body));
  }
  double levelPeak = 0.0;
  collectStage(mp::kCmdMergeRuns, buildBody,
               [this, &next, &levelPeak](std::span<const std::byte> reply) {
                 std::size_t cursor = 0;
                 levelPeak =
                     std::max(levelPeak, mp::takeDouble(reply, cursor));
                 const std::uint32_t count = mp::take32(reply, cursor);
                 for (std::uint32_t pair = 0; pair < count; ++pair) {
                   next.push_back(
                       localizeRun(mp::takeRunRef(reply, cursor)));
                 }
                 CHISIM_CHECK(cursor == reply.size(),
                              "malformed merge-runs reply");
               });
  // Only now that the level is complete (every pair merged somewhere, the
  // merged outputs in `next`) are the consumed input run files superseded.
  for (const mp::RunRef& run : reduceRuns_) {
    if (run.isFile()) {
      std::error_code ignored;
      std::filesystem::remove(run.file, ignored);
    }
  }
  reduceRuns_ = std::move(next);
  ++lastReduce_.depth;
  lastReduce_.criticalSeconds += levelPeak;
}

void MessagePassingExecutor::reduce(sparse::SymmetricAdjacency& result) {
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = config_.treeReduce;
  lastReduce_.mergedSums = reduceRuns_.size();
  // Inserts one run — inline or streamed off its spill file — into the
  // running result, consuming (deleting) file-backed runs. The reserve is
  // the summed-row-count pre-size (satellite of the sharded merge: sized
  // from run metadata, counted in the kernel stats).
  const auto insertRun = [this, &result](const mp::RunRef& run) {
    if (run.isFile()) {
      result.reserve(result.edgeCount() + run.triplets);
      runKernelStats_.mergeReservedEntries += run.triplets;
      sparse::SpillRunReader reader(run.file);
      sparse::AdjacencyTriplet triplet;
      while (reader.next(triplet)) {
        result.add(triplet.i, triplet.j, triplet.weight);
      }
      std::error_code ignored;
      std::filesystem::remove(run.file, ignored);
    } else {
      result.reserve(result.edgeCount() + run.inlineRun.size());
      runKernelStats_.mergeReservedEntries += run.inlineRun.size();
      for (const sparse::AdjacencyTriplet& triplet : run.inlineRun) {
        result.add(triplet.i, triplet.j, triplet.weight);
      }
    }
  };
  try {
    if (config_.treeReduce) {
      while (reduceRuns_.size() > 1) {
        mergeRunsLevel();
      }
      // Only the single surviving run crosses into the running result. The
      // root-side insert is on the critical path either way, so it counts.
      util::WallTimer timer;
      for (const mp::RunRef& run : reduceRuns_) {
        insertRun(run);
      }
      lastReduce_.criticalSeconds += timer.seconds();
    } else {
      // Serial baseline: insert each rank's run into the root map one at a
      // time (the pre-tree behavior, kept for the ablation bench).
      util::WallTimer timer;
      for (const mp::RunRef& run : reduceRuns_) {
        insertRun(run);
      }
      lastReduce_.criticalSeconds = timer.seconds();
    }
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
  reduceRuns_.clear();
  result.addKernelStats(runKernelStats_);
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  workerPeakBytes_ = 0;
}

void MessagePassingExecutor::reduceInto(sparse::SpillingAccumulator& sink) {
  lastReduce_ = ReduceStats{};
  lastReduce_.tree = false;  // the sink replaces the pairwise tree
  lastReduce_.mergedSums = reduceRuns_.size();
  // The workers' stage-5 maps were alive concurrently with the sink's
  // resident shards — the budget guarantee must account for both.
  sink.noteWorkerPeak(workerPeakBytes_);
  try {
    util::WallTimer timer;
    for (mp::RunRef& run : reduceRuns_) {
      if (run.isFile()) {
        sink.adoptRunFile(runRefInfo(run));  // ownership transfer, no copy
      } else if (!run.inlineRun.empty()) {
        sink.addSortedRun(run.inlineRun);
      }
    }
    lastReduce_.criticalSeconds = timer.seconds();
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
  reduceRuns_.clear();
  sink.addKernelStats(runKernelStats_);
  runKernelStats_ = sparse::AdjacencyKernelStats{};
  workerPeakBytes_ = 0;
}

std::vector<sparse::ShardSegment> MessagePassingExecutor::mergeSpillShards(
    const std::vector<sparse::SpillingAccumulator::ShardRunGroup>& groups,
    const std::function<void(const sparse::ShardSegment&)>& onSegment) {
  CHISIM_REQUIRE(!config_.spillDir.empty(),
                 "sharded merge requires a spill directory");
  // Work items are group indices; shard groups spread round-robin over the
  // live ranks (rank 0 executes its share inline). Each body carries every
  // shard of its rank plus the run references — the files themselves stay
  // on the shared filesystem. A reassigned body gets a fresh token, so a
  // half-dead rank still merging the old body writes different segment
  // names and never corrupts the survivor's output.
  const std::vector<int> live = liveRanks();
  std::vector<std::vector<std::size_t>> shares(live.size());
  std::unordered_map<std::uint32_t, unsigned> ownerOfShard;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    // Under run shipping the spill runs live only in the root's spill
    // directory, so every shard merge is pinned to rank 0 (live[0]) and
    // executes inline — distributing the shard merge without a shared
    // filesystem would require shipping run files root->worker (see
    // ROADMAP follow-up).
    const std::size_t slot = shipRuns_ ? 0 : g % shares.size();
    shares[slot].push_back(g);
    // Modeled owner = the initial assignment; a fault-driven reassignment
    // shifts real work elsewhere but the model keeps the healthy-run shape.
    ownerOfShard[groups[g].shard] = static_cast<unsigned>(live[slot]);
  }
  const auto buildBody = [this, &groups](std::span<const std::size_t> items) {
    std::vector<std::byte> body;
    mp::put64(body, nextRunToken_++);
    mp::put32(body, static_cast<std::uint32_t>(config_.mergeReadahead));
    mp::put32(body, static_cast<std::uint32_t>(items.size()));
    for (const std::size_t g : items) {
      const sparse::SpillingAccumulator::ShardRunGroup& group = groups[g];
      mp::put32(body, group.shard);
      mp::put32(body, static_cast<std::uint32_t>(group.runs.size()));
      for (const sparse::SpillRunInfo& run : group.runs) {
        mp::RunRef ref;
        ref.file = run.file.string();
        ref.triplets = run.triplets;
        ref.bytes = run.bytes;
        ref.hasKeyRange = run.hasKeyRange;
        ref.firstKey = run.firstKey;
        ref.lastKey = run.lastKey;
        mp::putRunRef(body, ref);
      }
    }
    return body;
  };
  std::vector<sparse::ShardSegment> segments;
  segments.reserve(groups.size());
  try {
    for (std::size_t slot = 0; slot < live.size(); ++slot) {
      if (shares[slot].empty()) {
        continue;
      }
      std::vector<std::byte> body = buildBody(shares[slot]);
      sendCommand(live[slot], mp::kCmdMergeShard, std::move(shares[slot]),
                  std::move(body));
    }
    collectStage(
        mp::kCmdMergeShard, buildBody,
        [&segments, &ownerOfShard,
         &onSegment](std::span<const std::byte> reply) {
          std::size_t cursor = 0;
          mp::takeDouble(reply, cursor);  // rank busy; per-shard is below
          const std::uint32_t count = mp::take32(reply, cursor);
          for (std::uint32_t s = 0; s < count; ++s) {
            sparse::ShardSegment segment;
            segment.shard = mp::take32(reply, cursor);
            segment.mergeSeconds = mp::takeDouble(reply, cursor);
            segment.file = mp::takeString(reply, cursor);
            segment.triplets = mp::take64(reply, cursor);
            segment.bytes = mp::take64(reply, cursor);
            segment.crc = mp::take32(reply, cursor);
            const auto owner = ownerOfShard.find(segment.shard);
            segment.owner = owner != ownerOfShard.end() ? owner->second : 0;
            segments.push_back(segment);
            onSegment(segment);  // collectStage runs replies serially
          }
          CHISIM_CHECK(cursor == reply.size(),
                       "malformed merge-shard reply");
        });
  } catch (...) {
    team_->rethrowServiceError();
    throw;
  }
  return segments;
}

std::vector<FaultEvent> MessagePassingExecutor::drainFaultEvents() {
  if (processTransport_ != nullptr) {
    for (runtime::ProcessTransport::WorkerEvent& event :
         processTransport_->drainEvents()) {
      if (event.kind !=
          runtime::ProcessTransport::WorkerEvent::Kind::kRespawn) {
        // Permanent deaths are accounted as kRankLost by the command retry
        // loop (markLost), which owns the live set; double-reporting them
        // here would double-count ranksLost.
        continue;
      }
      FaultEvent mapped;
      mapped.kind = FaultEvent::Kind::kWorkerRespawn;
      mapped.rank = event.rank;
      mapped.detail = std::move(event.detail);
      faultEvents_.push_back(std::move(mapped));
    }
  }
  if (tcpTransport_ != nullptr) {
    for (runtime::TcpTransport::WorkerEvent& event :
         tcpTransport_->drainEvents()) {
      if (event.kind != runtime::TcpTransport::WorkerEvent::Kind::kReconnect) {
        // Permanent deaths are accounted as kRankLost by the command retry
        // loop (markLost), which owns the live set.
        continue;
      }
      FaultEvent mapped;
      mapped.kind = FaultEvent::Kind::kWorkerReconnect;
      mapped.rank = event.rank;
      mapped.detail = std::move(event.detail);
      faultEvents_.push_back(std::move(mapped));
    }
  }
  return std::exchange(faultEvents_, {});
}

namespace {

/// Worker-side RunShipper over a TcpWorkerLink: streams the file as
/// kShipTag chunks (ahead of the reply that references it) and returns
/// the bare name the reply's shipped ref carries.
class TcpLinkShipper final : public mp::RunShipper {
 public:
  explicit TcpLinkShipper(runtime::TcpWorkerLink& link) : link_(link) {}

  std::string ship(const std::filesystem::path& file,
                   std::uint64_t bytes) override {
    const std::string name = file.filename().string();
    const std::uint64_t cap = runtime::maxPayloadBytes();
    // Keep headroom for the chunk header under the payload ceiling; 8 MiB
    // chunks otherwise (bounded memory, few frames).
    const std::uint64_t chunkBytes = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(8ull << 20, cap > 4096 ? cap - 4096 : 1));
    std::ifstream in(file, std::ios::binary);
    CHISIM_CHECK(in.good(),
                 "cannot open run file for shipping: " + file.string());
    std::vector<std::byte> buffer(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            chunkBytes, std::max<std::uint64_t>(bytes, 1))));
    std::uint64_t offset = 0;
    // A zero-byte file still ships one empty chunk so the root creates it.
    do {
      const std::uint64_t want =
          std::min<std::uint64_t>(chunkBytes, bytes - offset);
      in.read(reinterpret_cast<char*>(buffer.data()),
              static_cast<std::streamsize>(want));
      CHISIM_CHECK(static_cast<std::uint64_t>(in.gcount()) == want,
                   "short read while shipping run file " + file.string());
      link_.send(mp::kShipTag,
                 mp::encodeShipChunk(
                     name, offset, bytes,
                     std::span<const std::byte>(buffer.data(),
                                                static_cast<std::size_t>(
                                                    want))));
      offset += want;
    } while (offset < bytes);
    return name;
  }

 private:
  runtime::TcpWorkerLink& link_;
};

void installWorkerFaultPlan() {
  // A fault plan shipped by the root arms this process too, so scripted
  // worker-side faults fire with the same seed and specs as in-process
  // runs. Counters start from zero in each exec'd process.
  if (const char* planText = std::getenv(runtime::kWorkerFaultPlanEnv)) {
    static std::unique_ptr<runtime::FaultPlan> plan =
        runtime::FaultPlan::decode(planText);
    runtime::fault::install(plan.get());
  }
}

int runTcpSynthesisWorker() {
  std::filesystem::path localSpill;
  const auto cleanup = [&localSpill]() {
    if (!localSpill.empty()) {
      std::error_code ignored;
      std::filesystem::remove_all(localSpill, ignored);
    }
  };
  try {
    installWorkerFaultPlan();
    runtime::TcpWorkerLink link;
    const runtime::TcpWorkerLink::Hello hello = link.handshake();
    mp::StageParams params = mp::decodeStageParams(hello.payload);
    if (params.shipRuns) {
      // No shared filesystem is assumed: spill into a private local
      // directory and ship run bytes to the root over the wire. The
      // root's spillDir in the params is meaningless on this host.
      localSpill = std::filesystem::temp_directory_path() /
                   ("chisim-tcp-worker-" + std::to_string(link.rank()) +
                    "-" + std::to_string(::getpid()));
      std::filesystem::create_directories(localSpill);
      params.spillDir = localSpill.string();
    }
    TcpLinkShipper shipper(link);
    while (true) {
      const runtime::Message message = link.recv();
      if (message.tag != mp::kCommandTag) {
        continue;  // not a command frame; nothing to service
      }
      std::vector<std::byte> reply;
      switch (mp::serviceSynthesisCommand(params, link.rank(),
                                          message.payload, reply, &shipper)) {
        case mp::ServiceOutcome::kReply:
          link.send(mp::kReplyTag, reply);
          break;
        case mp::ServiceOutcome::kStop:
          cleanup();
          return 0;
        case mp::ServiceOutcome::kDie:
          // Injected silent death: exit without replying. The root sees
          // the connection close; the slot machine decides between the
          // reconnect grace and permanent loss.
          cleanup();
          return 0;
      }
    }
  } catch (const std::exception& error) {
    // Includes the orderly "root connection closed" on root teardown and
    // the permanent-down link after an exhausted re-dial budget; either
    // way the worker has nothing left to do.
    cleanup();
    std::fprintf(stderr, "chisim worker: %s\n", error.what());
    return 1;
  }
}

}  // namespace

std::optional<int> maybeRunSynthesisWorker() {
  if (runtime::TcpWorkerLink::isTcpWorkerProcess()) {
    return runTcpSynthesisWorker();
  }
  if (!runtime::ProcessWorkerLink::isWorkerProcess()) {
    return std::nullopt;
  }
  try {
    installWorkerFaultPlan();
    runtime::ProcessWorkerLink link;
    const runtime::ProcessWorkerLink::Hello hello = link.handshake();
    const mp::StageParams params = mp::decodeStageParams(hello.payload);
    while (true) {
      const runtime::Message message = link.recv();
      if (message.tag != mp::kCommandTag) {
        continue;  // not a command frame; nothing to service
      }
      std::vector<std::byte> reply;
      switch (mp::serviceSynthesisCommand(params, link.rank(),
                                          message.payload, reply)) {
        case mp::ServiceOutcome::kReply:
          link.send(mp::kReplyTag, reply);
          break;
        case mp::ServiceOutcome::kStop:
          return 0;
        case mp::ServiceOutcome::kDie:
          // Injected silent death: exit without replying. The root sees
          // the socket close and drives the respawn/loss state machine —
          // the process-transport analogue of the in-process service
          // thread returning mid-run.
          return 0;
      }
    }
  } catch (const std::exception& error) {
    // Includes the orderly "root connection closed" on root teardown
    // without a stop command; either way the worker has nothing left to
    // do. Real errors are logged for the parent's stderr.
    std::fprintf(stderr, "chisim worker: %s\n", error.what());
    return 1;
  }
}

}  // namespace chisimnet::net
