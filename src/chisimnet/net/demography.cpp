#include "chisimnet/net/demography.hpp"

namespace chisimnet::net {

table::EventTable eventsForAgeGroup(const table::EventTable& events,
                                    const pop::SyntheticPopulation& population,
                                    pop::AgeGroup group) {
  return eventsForPersons(events, population,
                          [group](const pop::Person& person) {
                            return person.group == group;
                          });
}

table::EventTable eventsForPersons(
    const table::EventTable& events, const pop::SyntheticPopulation& population,
    const std::function<bool(const pop::Person&)>& predicate) {
  return events.filter([&](const table::Event& event) {
    return predicate(population.person(event.person));
  });
}

table::EventTable eventsForPlaceType(const table::EventTable& events,
                                     const pop::SyntheticPopulation& population,
                                     pop::PlaceType type) {
  return events.filter([&](const table::Event& event) {
    return population.place(event.place).type == type;
  });
}

table::EventTable eventsForActivity(const table::EventTable& events,
                                    table::ActivityId activity) {
  return events.filter([activity](const table::Event& event) {
    return event.activity == activity;
  });
}

}  // namespace chisimnet::net
