#pragma once

#include "chisimnet/pop/population.hpp"
#include "chisimnet/table/event_table.hpp"

/// Demographic sub-setting of log data (paper §III: "unique ID numbers
/// recorded in the log data can be cross-referenced to the model input data
/// ... for filtering simulation results via queries on the input data" and
/// §V.B: within-group networks per age band).

namespace chisimnet::net {

/// Events whose person belongs to the given age group. A collocation
/// network synthesized from this subset is the paper's "within-group"
/// network: only edges between members of the group survive, exactly as if
/// cross-group edges had been removed from the full network.
table::EventTable eventsForAgeGroup(const table::EventTable& events,
                                    const pop::SyntheticPopulation& population,
                                    pop::AgeGroup group);

/// Events matching an arbitrary person predicate.
table::EventTable eventsForPersons(
    const table::EventTable& events, const pop::SyntheticPopulation& population,
    const std::function<bool(const pop::Person&)>& predicate);

/// Events at places of the given type. A network synthesized from this
/// subset is the paper §VI "location type" sub-network (e.g. the work-only
/// or school-only collocation network).
table::EventTable eventsForPlaceType(const table::EventTable& events,
                                     const pop::SyntheticPopulation& population,
                                     pop::PlaceType type);

/// Events with the given activity id (e.g. activity::kWork).
table::EventTable eventsForActivity(const table::EventTable& events,
                                    table::ActivityId activity);

}  // namespace chisimnet::net
