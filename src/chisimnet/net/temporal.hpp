#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "chisimnet/net/synthesis.hpp"

/// Time-sliced collocation networks (paper §II: the event log "contains the
/// complete information required to create a person collocation network
/// with arbitrary time granularity, e.g., hourly, daily, weekly or monthly
/// aggregates").
///
/// synthesizeSlices cuts the window into equal slices and synthesizes one
/// adjacency per slice; slice adjacencies sum to the whole-window network
/// (the additivity the paper's batch workflow relies on). The comparison
/// helpers quantify how the network changes over time — e.g. weekday vs
/// weekend structure.

namespace chisimnet::net {

struct TemporalSlice {
  table::Hour start = 0;
  table::Hour end = 0;
  sparse::SymmetricAdjacency adjacency;
};

/// Synthesizes one network per `sliceHours`-wide slice of
/// [config.windowStart, config.windowEnd). The final slice may be shorter.
std::vector<TemporalSlice> synthesizeSlices(
    const std::vector<std::filesystem::path>& logFiles,
    const SynthesisConfig& config, table::Hour sliceHours);

/// Same, from an in-memory table.
std::vector<TemporalSlice> synthesizeSlices(const table::EventTable& events,
                                            const SynthesisConfig& config,
                                            table::Hour sliceHours);

/// Jaccard similarity of the edge sets (ignoring weights) of two
/// adjacencies: |E_a ∩ E_b| / |E_a ∪ E_b|; 1 when identical, 0 when
/// disjoint (0/0 defined as 1).
double edgeJaccard(const sparse::SymmetricAdjacency& a,
                   const sparse::SymmetricAdjacency& b);

/// Fraction of a's edges that also appear in b (edge persistence).
double edgePersistence(const sparse::SymmetricAdjacency& a,
                       const sparse::SymmetricAdjacency& b);

}  // namespace chisimnet::net
