#include "chisimnet/net/synthesis.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/elog/prefetch.hpp"
#include "chisimnet/runtime/cluster.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

NetworkSynthesizer::NetworkSynthesizer(SynthesisConfig config)
    : config_(config) {
  CHISIM_REQUIRE(config.windowStart < config.windowEnd,
                 "time window must be non-empty");
  CHISIM_REQUIRE(config.workers >= 1, "need at least one worker");
  CHISIM_REQUIRE(!config.prefetch || config.prefetchDepth >= 1,
                 "prefetch depth must be >= 1");
}

void NetworkSynthesizer::processBatch(const table::EventTable& events,
                                      sparse::SymmetricAdjacency& result) {
  util::WallTimer timer;

  // Stage 2: subset the slice and index places. The input table has already
  // been window-filtered on load; the place index is the per-place grouping
  // workers consume.
  const table::PlaceIndex placeIndex = events.buildPlaceIndex();
  report_.subsetSeconds += timer.seconds();
  timer.reset();

  runtime::Cluster cluster(config_.workers);

  // Stage 3: per-place collocation matrices, workers pulling places
  // dynamically (matches SNOW's dispatch of place-id subsets).
  std::vector<sparse::CollocationMatrix> matrices(placeIndex.placeIds.size());
  cluster.applyDynamic(
      placeIndex.placeIds.size(), [&](std::size_t group, unsigned) {
        matrices[group] = sparse::buildCollocationMatrix(
            events, placeIndex, group, config_.windowStart, config_.windowEnd);
      });
  // Drop empty matrices (places with no presence inside the window).
  std::erase_if(matrices,
                [](const sparse::CollocationMatrix& m) { return m.nnz() == 0; });
  report_.collocationSeconds += timer.seconds();
  timer.reset();

  report_.placesProcessed += matrices.size();
  std::uint64_t batchNnz = 0;
  for (const sparse::CollocationMatrix& matrix : matrices) {
    batchNnz += matrix.nnz();
  }
  report_.collocationNnz += batchNnz;

  // Stage 4: partition the matrix list across workers. The balanced scheme
  // weighs each matrix by its adjacency cost; nnz alone underestimates hub
  // places, so the weight is nnz times mean simultaneous occupancy
  // (nnz² / sliceHours would overshoot sparse-attendance places).
  std::vector<std::uint64_t> weights;
  weights.reserve(matrices.size());
  for (const sparse::CollocationMatrix& matrix : matrices) {
    weights.push_back(matrix.nnz());
  }
  const runtime::Partition partition =
      config_.balancedPartition
          ? runtime::partitionGreedyLpt(weights, config_.workers)
          : runtime::partitionContiguous(weights, config_.workers);
  report_.partitionSeconds += timer.seconds();
  report_.partitionImbalance = partition.imbalance();
  report_.partitionLoads = partition.loads;
  timer.reset();

  // Stage 5: per-worker adjacency accumulation (no shared state).
  std::vector<sparse::SymmetricAdjacency> workerSums;
  workerSums.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workerSums.emplace_back(1024);
  }
  cluster.applyPartitioned(partition, [&](std::size_t item, unsigned worker) {
    workerSums[worker].addCollocation(matrices[item], config_.method);
  });
  report_.adjacencySeconds += timer.seconds();
  report_.adjacencyBusyImbalance = cluster.busyImbalance();
  timer.reset();

  // Stage 6: reduce worker sums into the running result.
  for (const sparse::SymmetricAdjacency& workerSum : workerSums) {
    result.merge(workerSum);
  }
  report_.reduceSeconds += timer.seconds();
}

sparse::SymmetricAdjacency NetworkSynthesizer::synthesizeAdjacency(
    const std::vector<std::filesystem::path>& logFiles) {
  CHISIM_REQUIRE(!logFiles.empty(), "no log files given");
  report_ = SynthesisReport{};
  util::WallTimer total;

  sparse::SymmetricAdjacency result(1024);
  if (config_.prefetch) {
    // Two-stage pipeline: a background loader decodes batch k+1 while this
    // thread runs stages 2-6 on batch k.
    elog::PrefetchingLoader::Options options;
    options.windowStart = config_.windowStart;
    options.windowEnd = config_.windowEnd;
    options.filesPerBatch = config_.filesPerBatch;
    options.depth = config_.prefetchDepth;
    options.decodeWorkers =
        config_.decodeWorkers == 0 ? config_.workers : config_.decodeWorkers;
    elog::PrefetchingLoader loader(logFiles, options);
    while (std::optional<table::EventTable> events = loader.next()) {
      report_.logEntriesLoaded += events->size();
      processBatch(*events, result);
      ++report_.batches;
    }
    const elog::PrefetchStats stats = loader.stats();
    report_.prefetchEnabled = true;
    report_.loadSeconds = stats.decodeSeconds;
    report_.loadExposedSeconds = stats.exposedSeconds;
    report_.loadOverlappedSeconds =
        std::max(0.0, stats.decodeSeconds - stats.exposedSeconds);
    report_.prefetchMeanOccupancy = stats.meanOccupancy;
    report_.prefetchPeakOccupancy = stats.peakOccupancy;
  } else {
    const std::size_t batchSize =
        config_.filesPerBatch == 0 ? logFiles.size() : config_.filesPerBatch;
    for (std::size_t begin = 0; begin < logFiles.size(); begin += batchSize) {
      const std::size_t end = std::min(logFiles.size(), begin + batchSize);
      const std::vector<std::filesystem::path> batch(logFiles.begin() + begin,
                                                     logFiles.begin() + end);
      util::WallTimer loadTimer;
      table::EventTable events =
          elog::loadEvents(batch, config_.windowStart, config_.windowEnd);
      report_.loadSeconds += loadTimer.seconds();
      report_.logEntriesLoaded += events.size();

      processBatch(events, result);
      ++report_.batches;
    }
    report_.loadExposedSeconds = report_.loadSeconds;
  }
  report_.edges = result.edgeCount();
  report_.totalSeconds = total.seconds();
  return result;
}

sparse::SymmetricAdjacency NetworkSynthesizer::synthesizeAdjacency(
    const table::EventTable& events) {
  report_ = SynthesisReport{};
  util::WallTimer total;
  report_.logEntriesLoaded = events.size();

  sparse::SymmetricAdjacency result(1024);
  processBatch(events, result);
  report_.batches = 1;
  report_.edges = result.edgeCount();
  report_.totalSeconds = total.seconds();
  return result;
}

graph::Graph NetworkSynthesizer::synthesizeGraph(
    const std::vector<std::filesystem::path>& logFiles) {
  const sparse::SymmetricAdjacency adjacency = synthesizeAdjacency(logFiles);
  return graph::Graph::fromTriplets(adjacency.toTriplets());
}

graph::Graph NetworkSynthesizer::synthesizeGraph(
    const table::EventTable& events) {
  const sparse::SymmetricAdjacency adjacency = synthesizeAdjacency(events);
  return graph::Graph::fromTriplets(adjacency.toTriplets());
}

sparse::SymmetricAdjacency bruteForceAdjacency(const table::EventTable& events,
                                               table::Hour windowStart,
                                               table::Hour windowEnd) {
  // (place, hour) -> set of persons present; dedup handled by the set.
  std::map<std::pair<table::PlaceId, table::Hour>, std::set<table::PersonId>>
      presence;
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const table::Event event = events.row(row);
    const table::Hour from = std::max(event.start, windowStart);
    const table::Hour to = std::min(event.end, windowEnd);
    for (table::Hour hour = from; hour < to; ++hour) {
      presence[{event.place, hour}].insert(event.person);
    }
  }
  sparse::SymmetricAdjacency adjacency;
  for (const auto& [key, persons] : presence) {
    for (auto a = persons.begin(); a != persons.end(); ++a) {
      for (auto b = std::next(a); b != persons.end(); ++b) {
        adjacency.add(*a, *b, 1);
      }
    }
  }
  return adjacency;
}

}  // namespace chisimnet::net
