#include "chisimnet/net/synthesis.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <system_error>

#include <unistd.h>

#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/elog/prefetch.hpp"
#include "chisimnet/net/checkpoint.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::net {

namespace {

/// Unique-per-instance suffix for auto-resolved temp spill directories
/// (several synthesizers can coexist in one test process).
std::uint64_t nextSpillDirSerial() {
  static std::atomic<std::uint64_t> serial{0};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

sparse::SpillingAccumulator::Options sinkOptions(
    const SynthesisConfig& config) {
  sparse::SpillingAccumulator::Options options;
  options.dir = config.spillDir;
  options.budgetBytes = config.memoryBudgetBytes;
  // Checkpoint manifests reference live run files by name, so compaction
  // inputs must stay on disk until the next manifest stops naming them.
  options.deferDeletes = !config.checkpointDir.empty();
  // Sharded merges align the sink's row-range shards with the reduce
  // shards, so sink spills are shard-pure too. The serial merge keeps the
  // legacy width (identical behavior to pre-shard builds).
  if (config.mergeRowsPerShard != 0 || resolvedReduceShards(config) > 1) {
    options.rowsPerShard = resolvedMergeRowsPerShard(config);
  }
  return options;
}

void foldSpillStats(SynthesisReport& report, const sparse::SpillStats& stats) {
  report.spillRunsWritten = stats.runsWritten;
  report.spilledTriplets = stats.spilledTriplets;
  report.spilledBytes = stats.spilledBytes;
  report.spillCompactions = stats.compactions;
  report.peakAccumulatorBytes = stats.peakResidentBytes;
  report.peakStage5Bytes = stats.peakWorkerBytes;
  report.spillRunsSplit = stats.runsSplit;
}

}  // namespace

unsigned resolvedReduceShards(const SynthesisConfig& config) noexcept {
  return config.reduceShards != 0 ? config.reduceShards
                                  : std::max(1u, config.workers);
}

std::uint32_t resolvedMergeRowsPerShard(
    const SynthesisConfig& config) noexcept {
  if (config.mergeRowsPerShard != 0) {
    return config.mergeRowsPerShard;
  }
  // The legacy shard width divided across the owners: every owner gets
  // multiple fine shards to balance over once the population crosses one
  // legacy shard, while small runs still collapse to a single shard.
  constexpr std::uint32_t kLegacyRowsPerShard = 1u << 18;
  return std::max<std::uint32_t>(
      1, kLegacyRowsPerShard / std::max(1u, resolvedReduceShards(config)));
}

NetworkSynthesizer::NetworkSynthesizer(SynthesisConfig config)
    : config_(config) {
  CHISIM_REQUIRE(config.windowStart < config.windowEnd,
                 "time window must be non-empty");
  CHISIM_REQUIRE(config.workers >= 1, "need at least one worker");
  CHISIM_REQUIRE(!config.prefetch || config.prefetchDepth >= 1,
                 "prefetch depth must be >= 1");
  // No silent ignores: a config that asks for behavior the pipeline will
  // not deliver is an error, not a no-op.
  CHISIM_REQUIRE(config.prefetch || config.decodeWorkers == 0,
                 "decodeWorkers requires prefetch; drop --decode-workers or "
                 "enable prefetching");
  CHISIM_REQUIRE(config.commandMaxAttempts >= 1,
                 "commandMaxAttempts must be >= 1");
  CHISIM_REQUIRE(
      config.faultPolicy == FaultPolicy::kDegrade ||
          config.maxQuarantinedFiles == 0,
      "a quarantine limit requires --fault-policy degrade; under failfast "
      "the first corrupt file aborts the run anyway");
  CHISIM_REQUIRE(!config.resume || !config.checkpointDir.empty(),
                 "resume requires a checkpoint directory");
  CHISIM_REQUIRE(config.transport == MpTransport::kInProcess ||
                     config.backend == SynthesisBackend::kMessagePassing,
                 "--transport process/tcp requires --backend mp");
  CHISIM_REQUIRE(config.maxRespawns >= 0, "maxRespawns must be >= 0");
  CHISIM_REQUIRE(config.transport == MpTransport::kInProcess ||
                     config.heartbeatMs >= 1,
                 "heartbeatMs must be >= 1");
  CHISIM_REQUIRE(config.transport == MpTransport::kInProcess ||
                     config.faultPolicy != FaultPolicy::kDegrade ||
                     config.commandTimeoutMs > 0,
                 "the process/tcp transport under --fault-policy degrade "
                 "requires --command-timeout-ms > 0: a crashed worker never "
                 "replies, so without a deadline the root hangs instead of "
                 "recovering");
  CHISIM_REQUIRE(config.connectRetries >= 0, "connectRetries must be >= 0");
  CHISIM_REQUIRE(config.transport != MpTransport::kTcp ||
                     config.connectTimeoutMs >= 1,
                 "connectTimeoutMs must be >= 1");
  CHISIM_REQUIRE(config.tcpListen.empty() ||
                     config.transport == MpTransport::kTcp,
                 "--tcp-listen requires --transport tcp");
  CHISIM_REQUIRE(config.tcpJob.empty() || !config.tcpListen.empty(),
                 "--tcp-job requires --tcp-listen (external workers need a "
                 "known address to dial)");
  // Resolve the spill directory. A checkpointing run pins it under the
  // checkpoint directory so a resumed run (possibly a different process,
  // possibly a different budget) finds the manifest's run files without
  // extra flags. Otherwise a budgeted run — or any MP run, whose replies
  // auto-spill when they would exceed the payload cap — gets a private
  // temp directory that this instance removes on destruction.
  if (config_.spillDir.empty()) {
    if (!config_.checkpointDir.empty()) {
      config_.spillDir = config_.checkpointDir / "spill";
    } else if (config_.memoryBudgetBytes > 0 ||
               config_.backend == SynthesisBackend::kMessagePassing) {
      ownedSpillDir_ =
          std::filesystem::temp_directory_path() /
          ("chisim-spill-" + std::to_string(::getpid()) + "-" +
           std::to_string(nextSpillDirSerial()));
      config_.spillDir = ownedSpillDir_;
    }
  }
  executor_ = makeExecutor(config_);
}

NetworkSynthesizer::~NetworkSynthesizer() {
  if (!ownedSpillDir_.empty()) {
    std::error_code ignored;
    std::filesystem::remove_all(ownedSpillDir_, ignored);
  }
}

std::uint64_t NetworkSynthesizer::partitionWeight(
    const sparse::CollocationMatrix& matrix) const {
  if (!config_.occupancyWeight) {
    // The paper's §IV.A.3 scheme: plain nonzero (person-hour) count.
    return matrix.nnz();
  }
  // Occupancy-scaled: nnz times mean simultaneous occupancy
  // (nnz / occupied hours). The x·xᵀ cost of a hub place grows with how
  // many people overlap per hour, which nnz alone underestimates; dividing
  // by occupied hours rather than sliceHours keeps sparse-attendance
  // places from being undercounted into the bargain.
  const std::uint64_t occupied = std::max<std::uint64_t>(
      1, matrix.occupiedHours());
  return std::max<std::uint64_t>(1, matrix.nnz() * matrix.nnz() / occupied);
}

void NetworkSynthesizer::processBatch(const table::EventTable& events,
                                      sparse::SymmetricAdjacency* dense,
                                      sparse::SpillingAccumulator* sink) {
  CHISIM_REQUIRE((dense != nullptr) != (sink != nullptr),
                 "processBatch needs exactly one accumulation target");
  util::WallTimer timer;

  // Stage 2: subset the slice, index places, and hand the groups to the
  // executor's workers. The input table has already been window-filtered on
  // load; the place index is the per-place grouping workers consume.
  runtime::fault::hit("driver.subset");
  const table::PlaceIndex placeIndex = events.buildPlaceIndex();
  executor_->scatterPlaces(events, placeIndex);
  report_.subsetSeconds += timer.seconds();
  timer.reset();

  // Stage 3: per-place collocation matrices, returned to the driver (the
  // paper's "returned to the root process").
  runtime::fault::hit("driver.collocation");
  const std::vector<sparse::CollocationMatrix> matrices =
      executor_->mapCollocation();
  report_.collocationSeconds += timer.seconds();
  timer.reset();

  report_.placesProcessed += matrices.size();
  for (const sparse::CollocationMatrix& matrix : matrices) {
    report_.collocationNnz += matrix.nnz();
  }

  // Stage 4: re-partition the matrix list across workers by adjacency-cost
  // weight (nnz, or occupancy-scaled behind config.occupancyWeight) — the
  // step §IV.A.3 calls crucial for even load balance.
  runtime::fault::hit("driver.partition");
  std::vector<std::uint64_t> weights;
  weights.reserve(matrices.size());
  for (const sparse::CollocationMatrix& matrix : matrices) {
    weights.push_back(partitionWeight(matrix));
  }
  const runtime::Partition partition = executor_->repartition(weights);
  report_.partitionSeconds += timer.seconds();
  report_.partitionImbalance = partition.imbalance();
  report_.partitionLoads = partition.loads;
  timer.reset();

  // Stage 5: per-worker adjacency accumulation (no shared state); the
  // sums stay inside the executor until the reduce.
  runtime::fault::hit("driver.adjacency");
  executor_->mapAdjacency(matrices, partition);
  report_.adjacencySeconds += timer.seconds();
  report_.adjacencyBusyImbalance = executor_->adjacencyBusyImbalance();
  timer.reset();

  // Stage 6: fold the worker sums into the running result — into the dense
  // map (log-depth merge tree by default, serial root merge behind
  // config.treeReduce), or under a memory budget into the spilling
  // accumulator, which adopts worker run files in place of merging maps.
  runtime::fault::hit("driver.reduce");
  if (dense != nullptr) {
    executor_->reduce(*dense);
  } else {
    executor_->reduceInto(*sink);
  }
  report_.reduceSeconds += timer.seconds();
  const ReduceStats& reduceStats = executor_->lastReduceStats();
  report_.treeReduceEnabled = reduceStats.tree;
  report_.reduceTreeDepth =
      std::max(report_.reduceTreeDepth, reduceStats.depth);
  report_.reduceMergedSums += reduceStats.mergedSums;
  report_.reduceCriticalSeconds += reduceStats.criticalSeconds;

  // Kernel counters ride on the result (merged up the reduce alongside the
  // weights), so they are cumulative across batches: copy, don't add.
  const sparse::AdjacencyKernelStats& kernel =
      dense != nullptr ? dense->kernelStats() : sink->kernelStats();
  report_.kernelDensePlaces = kernel.densePlaces;
  report_.kernelHashPlaces = kernel.hashPlaces;
  report_.kernelPairHourUpdates = kernel.pairHourUpdates;
  report_.kernelGlobalEmits = kernel.globalEmits;
  report_.mergeReservedEntries = kernel.mergeReservedEntries;
}

void NetworkSynthesizer::runFilePipeline(
    const std::vector<std::filesystem::path>& logFiles,
    sparse::SymmetricAdjacency* dense, sparse::SpillingAccumulator* sink) {
  CHISIM_REQUIRE(!logFiles.empty(), "no log files given");
  report_ = SynthesisReport{};
  report_.backend = config_.backend;
  report_.memoryBudgetBytes = config_.memoryBudgetBytes;
  restoredSegments_.clear();
  executor_->resetTransferCounters();

  const bool degrade = config_.faultPolicy == FaultPolicy::kDegrade;
  const bool checkpointing = !config_.checkpointDir.empty();

  std::uint64_t filesConsumed = 0;
  std::optional<InflightBatch> inflight;
  if (config_.resume) {
    // Adjacency summation is order-independent u64 addition, and both
    // snapshot forms round-trip exactly (CADJ is a lossless dump; spill
    // runs are the accumulated state itself), so restoring the checkpoint
    // and replaying only the remaining batches reproduces the
    // uninterrupted run bit for bit — in either accumulation mode,
    // regardless of which mode wrote the checkpoint (the budget is a perf
    // knob outside the config hash).
    const auto manifest = loadCheckpointManifest(config_.checkpointDir);
    CHISIM_CHECK(manifest.has_value(), "no checkpoint to resume from in " +
                                           config_.checkpointDir.string());
    CHISIM_CHECK(
        manifest->configHash == checkpointConfigHash(config_, logFiles),
        "checkpoint in " + config_.checkpointDir.string() +
            " was written by a different config or file list; refusing to "
            "resume into a corrupted result");
    CHISIM_CHECK(manifest->filesConsumed <= logFiles.size(),
                 "checkpoint cursor is beyond the given file list");
    if (manifest->spillMode) {
      // The checkpointed sum is the manifest's set of live spill runs.
      for (const SpillRunEntry& entry : manifest->spillRuns) {
        sparse::SpillRunInfo info;
        info.file = config_.spillDir / entry.file;
        info.triplets = entry.triplets;
        info.bytes = entry.bytes;
        info.hasKeyRange = entry.hasKeyRange;
        info.firstKey = entry.firstKey;
        info.lastKey = entry.lastKey;
        if (sink != nullptr) {
          // Keep the manifest's file names: renaming would break a second
          // resume if this run dies before its first checkpoint.
          sink->restoreRunFile(info);
        } else {
          // Spill checkpoint resumed without a budget: fold the runs into
          // the dense map (duplicate pairs across runs sum on add).
          sparse::SpillRunReader reader(info.file);
          sparse::AdjacencyTriplet triplet;
          while (reader.next(triplet)) {
            dense->add(triplet.i, triplet.j, triplet.weight);
          }
        }
      }
      // Merge segments completed by a previous life (killed during the
      // sharded merge): remembered so synthesizeToFile can splice the
      // validated segment instead of re-merging its shard. Processing any
      // further batch invalidates them (finishBatch clears the list).
      if (sink != nullptr) {
        for (const MergeSegmentEntry& segment : manifest->mergeSegments) {
          restoredSegments_.push_back(RestoredSegment{segment.shard,
                                                      segment.file,
                                                      segment.triplets,
                                                      segment.bytes,
                                                      segment.crc});
        }
      }
    } else if (dense != nullptr) {
      *dense = loadCheckpointAdjacency(config_.checkpointDir, *manifest);
    } else {
      // Dense checkpoint resumed under a budget: the snapshot is one
      // sorted run (CADJ rows are written in packed-key order).
      sink->addSortedRun(
          sparse::loadTriplets(config_.checkpointDir / manifest->adjacencyFile));
    }
    filesConsumed = manifest->filesConsumed;
    report_.batches = manifest->batchesDone;
    report_.quarantined = manifest->quarantined;
    report_.resumed = true;
    report_.filesSkippedByResume = filesConsumed;
    FaultEvent event;
    event.kind = FaultEvent::Kind::kResume;
    event.batch = manifest->batchesDone;
    event.detail = "resumed after file " + std::to_string(filesConsumed) +
                   " of " + std::to_string(logFiles.size());
    report_.faults.push_back(std::move(event));
    // The checkpoint may carry the batch that was decoded but unprocessed
    // when the run died; restoring it skips one batch of re-decode. Its
    // contents equal what re-decoding those files would produce, so the
    // output is bit-identical either way.
    inflight = loadCheckpointInflight(config_.checkpointDir, *manifest);
    if (inflight) {
      CHISIM_CHECK(
          filesConsumed + inflight->filesInBatch <= logFiles.size(),
          "checkpoint in-flight batch is beyond the given file list");
      report_.inflightRestored = true;
      FaultEvent restored;
      restored.kind = FaultEvent::Kind::kResume;
      restored.batch = manifest->batchesDone;
      restored.detail = "restored in-flight batch of " +
                        std::to_string(inflight->filesInBatch) +
                        " files (decode skipped)";
      report_.faults.push_back(std::move(restored));
    }
  }
  // The restored in-flight batch covers the first files after the cursor;
  // the disk loaders take over from just past it.
  const std::size_t skipFiles =
      static_cast<std::size_t>(filesConsumed) +
      static_cast<std::size_t>(inflight ? inflight->filesInBatch : 0);
  const std::vector<std::filesystem::path> remaining(
      logFiles.begin() + static_cast<std::ptrdiff_t>(skipFiles),
      logFiles.end());

  // Bookkeeping shared by both load paths, run after each batch: fold in
  // quarantine entries and executor recovery events, enforce the
  // quarantine limit, and persist the checkpoint. The driver.batch fault
  // site fires last, i.e. after the checkpoint — a kThrow there models a
  // crash between batches, which the kill-and-resume test exploits.
  const auto finishBatch = [this, &logFiles, &filesConsumed, dense, sink,
                            checkpointing](
                               std::vector<elog::QuarantinedFile> quarantined,
                               std::size_t filesInBatch,
                               const InflightBatch* nextInflight) {
    filesConsumed += filesInBatch;
    ++report_.batches;
    // New data supersedes any merge segments restored from a checkpoint:
    // their shards' run sets just changed.
    restoredSegments_.clear();
    for (elog::QuarantinedFile& entry : quarantined) {
      FaultEvent event;
      event.kind = FaultEvent::Kind::kFileQuarantined;
      event.batch = report_.batches;
      event.detail = entry.file.string() + ": " + entry.reason;
      report_.faults.push_back(std::move(event));
      report_.quarantined.push_back(std::move(entry));
    }
    CHISIM_CHECK(
        config_.maxQuarantinedFiles == 0 ||
            report_.quarantined.size() <= config_.maxQuarantinedFiles,
        std::to_string(report_.quarantined.size()) +
            " input files quarantined, more than the configured limit of " +
            std::to_string(config_.maxQuarantinedFiles));
    for (FaultEvent& event : executor_->drainFaultEvents()) {
      event.batch = report_.batches;
      if (event.kind == FaultEvent::Kind::kCommandRetry) {
        ++report_.commandRetries;
      } else if (event.kind == FaultEvent::Kind::kRankLost) {
        ++report_.ranksLost;
      } else if (event.kind == FaultEvent::Kind::kWorkerRespawn) {
        ++report_.workersRespawned;
      } else if (event.kind == FaultEvent::Kind::kWorkerReconnect) {
        ++report_.workersReconnected;
      }
      report_.faults.push_back(std::move(event));
    }
    if (checkpointing) {
      CheckpointManifest manifest;
      manifest.filesConsumed = filesConsumed;
      manifest.batchesDone = report_.batches;
      manifest.configHash = checkpointConfigHash(config_, logFiles);
      manifest.quarantined = report_.quarantined;
      if (sink != nullptr) {
        // Persist the accumulated sum as the set of live run files: spill
        // everything resident (each run lands via tmp+rename, so every
        // file the manifest will name is already durable), then write the
        // manifest naming them.
        sink->spillAll();
        manifest.spillMode = true;
        for (const sparse::SpillRunInfo& run : sink->liveRuns()) {
          manifest.spillRuns.push_back(
              SpillRunEntry{run.file.filename().string(), run.triplets,
                            run.bytes, run.hasKeyRange, run.firstKey,
                            run.lastKey});
        }
        saveSpillCheckpoint(config_.checkpointDir, manifest, config_.spillDir,
                            nextInflight);
        // Compaction inputs superseded by this manifest can go only now;
        // deleting them earlier would break resume from the previous one.
        for (const std::filesystem::path& retired :
             sink->takeRetiredFiles()) {
          std::error_code ignored;
          std::filesystem::remove(retired, ignored);
        }
      } else {
        saveCheckpoint(config_.checkpointDir, manifest, *dense, nextInflight);
      }
      ++report_.checkpointsWritten;
      FaultEvent event;
      event.kind = FaultEvent::Kind::kCheckpoint;
      event.batch = report_.batches;
      event.detail =
          "checkpoint after file " + std::to_string(filesConsumed);
      if (nextInflight != nullptr) {
        event.detail += " with in-flight batch of " +
                        std::to_string(nextInflight->filesInBatch) + " files";
      }
      report_.faults.push_back(std::move(event));
    }
    runtime::fault::hit("driver.batch");
  };

  if (config_.prefetch) {
    // Two-stage pipeline: a background loader decodes batch k+1 while this
    // thread runs stages 2-6 on batch k.
    elog::PrefetchingLoader::Options options;
    options.windowStart = config_.windowStart;
    options.windowEnd = config_.windowEnd;
    options.filesPerBatch = config_.filesPerBatch;
    options.depth = config_.prefetchDepth;
    options.decodeWorkers =
        config_.decodeWorkers == 0 ? config_.workers : config_.decodeWorkers;
    options.quarantineCorrupt = degrade;
    elog::PrefetchingLoader loader(remaining, options);
    // Checkpointing captures the loader's head batch (decoded, not yet
    // processed) so a killed run resumes without re-decoding it.
    const auto peekInflight = [&loader,
                               checkpointing]() -> std::optional<InflightBatch> {
      if (!checkpointing) {
        return std::nullopt;
      }
      std::optional<elog::LoadedBatch> peeked = loader.peekReady();
      if (!peeked) {
        return std::nullopt;
      }
      InflightBatch next;
      next.events = std::move(peeked->table);
      next.quarantined = std::move(peeked->quarantined);
      next.filesInBatch = peeked->filesInBatch;
      return next;
    };
    if (inflight) {
      // The batch restored from the checkpoint runs first, before any
      // disk load: its decode already happened in the previous life.
      report_.logEntriesLoaded += inflight->events.size();
      processBatch(inflight->events, dense, sink);
      const std::optional<InflightBatch> next = peekInflight();
      finishBatch(std::move(inflight->quarantined),
                  static_cast<std::size_t>(inflight->filesInBatch),
                  next ? &*next : nullptr);
      inflight.reset();
    }
    while (std::optional<elog::LoadedBatch> batch = loader.next()) {
      report_.logEntriesLoaded += batch->table.size();
      processBatch(batch->table, dense, sink);
      const std::optional<InflightBatch> next = peekInflight();
      finishBatch(std::move(batch->quarantined), batch->filesInBatch,
                  next ? &*next : nullptr);
    }
    const elog::PrefetchStats stats = loader.stats();
    report_.prefetchEnabled = true;
    report_.loadSeconds = stats.decodeSeconds;
    report_.loadExposedSeconds = stats.exposedSeconds;
    report_.loadOverlappedSeconds =
        std::max(0.0, stats.decodeSeconds - stats.exposedSeconds);
    report_.prefetchMeanOccupancy = stats.meanOccupancy;
    report_.prefetchPeakOccupancy = stats.peakOccupancy;
  } else {
    if (inflight) {
      // A checkpoint written by a prefetching run can still be resumed
      // with prefetch off: the snapshot is just a decoded batch.
      report_.logEntriesLoaded += inflight->events.size();
      processBatch(inflight->events, dense, sink);
      finishBatch(std::move(inflight->quarantined),
                  static_cast<std::size_t>(inflight->filesInBatch), nullptr);
      inflight.reset();
    }
    const std::size_t batchSize =
        config_.filesPerBatch == 0 ? logFiles.size() : config_.filesPerBatch;
    for (std::size_t begin = 0; begin < remaining.size(); begin += batchSize) {
      const std::size_t end = std::min(remaining.size(), begin + batchSize);
      const std::vector<std::filesystem::path> batch(remaining.begin() + begin,
                                                     remaining.begin() + end);
      util::WallTimer loadTimer;
      runtime::fault::hit("driver.load");
      std::vector<elog::QuarantinedFile> batchQuarantine;
      table::EventTable events =
          degrade ? elog::loadEventsQuarantining(batch, config_.windowStart,
                                                 config_.windowEnd,
                                                 batchQuarantine)
                  : elog::loadEvents(batch, config_.windowStart,
                                     config_.windowEnd);
      report_.loadSeconds += loadTimer.seconds();
      report_.logEntriesLoaded += events.size();

      processBatch(events, dense, sink);
      finishBatch(std::move(batchQuarantine), batch.size(), nullptr);
    }
    report_.loadExposedSeconds = report_.loadSeconds;
  }
  report_.bytesScattered = executor_->bytesScattered();
  report_.bytesReturned = executor_->bytesReturned();
}

sparse::SymmetricAdjacency NetworkSynthesizer::synthesizeAdjacency(
    const std::vector<std::filesystem::path>& logFiles) {
  util::WallTimer total;
  sparse::SymmetricAdjacency result(1024);
  if (config_.memoryBudgetBytes == 0) {
    runFilePipeline(logFiles, &result, nullptr);
  } else {
    // Budgeted accumulation with an in-memory materialization at the end:
    // the convenient form for tests and modest inputs. City-scale runs
    // should use synthesizeToFile, which streams the merge to disk.
    sparse::SpillingAccumulator sink(sinkOptions(config_));
    runFilePipeline(logFiles, nullptr, &sink);
    const std::unique_ptr<sparse::TripletSource> merged = sink.finishMerge();
    // Pre-size the result from the summed run row counts (an upper bound:
    // duplicate pairs across runs collapse) so the drain never rehashes.
    result.reserve(result.edgeCount() + merged->sizeHint());
    report_.mergeReservedEntries += merged->sizeHint();
    sparse::AdjacencyTriplet triplet;
    while (merged->next(triplet)) {
      result.add(triplet.i, triplet.j, triplet.weight);
    }
    result.addKernelStats(sink.kernelStats());
    foldSpillStats(report_, sink.stats());
  }
  report_.edges = result.edgeCount();
  report_.totalSeconds = total.seconds();
  return result;
}

std::uint64_t NetworkSynthesizer::synthesizeToFile(
    const std::vector<std::filesystem::path>& logFiles,
    const std::filesystem::path& outPath) {
  CHISIM_REQUIRE(config_.memoryBudgetBytes > 0,
                 "synthesizeToFile requires a memory budget (it exists so "
                 "the result never has to fit in memory)");
  util::WallTimer total;
  sparse::SpillingAccumulator sink(sinkOptions(config_));
  runFilePipeline(logFiles, nullptr, &sink);
  const unsigned owners = resolvedReduceShards(config_);
  report_.reduceShardsUsed = owners;
  std::uint64_t edges = 0;
  if (owners <= 1) {
    // Serial external finish: spill whatever is resident and k-way merge
    // all runs straight into the CADJ writer. The writer's output is
    // byte-identical to saveTriplets of the equivalent in-memory map
    // because both emit the same sorted rows through the same framing.
    const std::unique_ptr<sparse::TripletSource> merged = sink.finishMerge();
    sparse::StreamingTripletWriter writer(outPath);
    sparse::AdjacencyTriplet triplet;
    while (merged->next(triplet)) {
      writer.append(triplet);
    }
    edges = writer.finish();
  } else {
    edges = mergeShardsToFile(logFiles, sink, outPath);
  }
  foldSpillStats(report_, sink.stats());
  report_.edges = edges;
  report_.totalSeconds = total.seconds();
  return edges;
}

std::uint64_t NetworkSynthesizer::mergeShardsToFile(
    const std::vector<std::filesystem::path>& logFiles,
    sparse::SpillingAccumulator& sink, const std::filesystem::path& outPath) {
  const bool checkpointing = !config_.checkpointDir.empty();
  // The plan routes every live run to its row-range shard, splitting
  // straddlers; under deferDeletes the split inputs stay on disk so the
  // previous manifest remains resumable until the next one is written.
  std::vector<sparse::SpillingAccumulator::ShardRunGroup> plan =
      sink.buildShardMergePlan();

  // Segments completed by a previous life: splice them instead of
  // re-merging their shards. Validation here is existence plus recorded
  // size; content integrity is re-verified by CRC at splice time.
  std::map<std::uint32_t, sparse::ShardSegment> completed;
  for (const RestoredSegment& restored : restoredSegments_) {
    const std::filesystem::path file = config_.spillDir / restored.file;
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(file, ec);
    if (ec || size != restored.bytes) {
      continue;  // half-written husk: its shard re-merges from the runs
    }
    sparse::ShardSegment segment;
    segment.shard = restored.shard;
    segment.file = file;
    segment.triplets = restored.triplets;
    segment.bytes = restored.bytes;
    segment.crc = restored.crc;
    completed.emplace(restored.shard, std::move(segment));
  }
  report_.mergeSegmentsReused = completed.size();
  restoredSegments_.clear();

  std::vector<sparse::SpillingAccumulator::ShardRunGroup> todo;
  todo.reserve(plan.size());
  for (sparse::SpillingAccumulator::ShardRunGroup& group : plan) {
    if (!completed.contains(group.shard)) {
      todo.push_back(std::move(group));
    }
  }

  const auto buildManifest = [&]() {
    CheckpointManifest manifest;
    manifest.filesConsumed = logFiles.size();
    manifest.batchesDone = report_.batches;
    manifest.configHash = checkpointConfigHash(config_, logFiles);
    manifest.quarantined = report_.quarantined;
    manifest.spillMode = true;
    for (const sparse::SpillRunInfo& run : sink.liveRuns()) {
      manifest.spillRuns.push_back(SpillRunEntry{run.file.filename().string(),
                                                 run.triplets, run.bytes,
                                                 run.hasKeyRange, run.firstKey,
                                                 run.lastKey});
    }
    for (const auto& [shard, done] : completed) {
      manifest.mergeSegments.push_back(
          MergeSegmentEntry{shard, done.file.filename().string(),
                            done.triplets, done.bytes, done.crc});
    }
    return manifest;
  };

  // Pre-merge checkpoint, written at this serial point so the spill-dir GC
  // cannot race owner threads: it references the post-split runs and the
  // reused segments, and sweeps everything else — previous-life merge
  // husks, superseded segments, and the split straddler originals the
  // previous manifest needed. Mid-merge checkpoints below skip the sweep
  // (gcSpillDir=false): a GC there would delete other owners' in-flight
  // .cseg.tmp files and freshly renamed segments its manifest predates.
  if (checkpointing) {
    saveSpillCheckpoint(config_.checkpointDir, buildManifest(),
                        config_.spillDir);
    ++report_.checkpointsWritten;
  }
  // The new manifest (or, without checkpointing, nothing) references the
  // split originals no longer — drop them now.
  for (const std::filesystem::path& retired : sink.takeRetiredFiles()) {
    std::error_code ignored;
    std::filesystem::remove(retired, ignored);
  }

  // Per-segment checkpoint: after each shard lands, persist the manifest
  // so a killed merge resumes with only the unfinished shards. The runs
  // stay listed (and on disk) even for finished shards — a resume
  // re-validates segments against them and re-merges any that fail. The
  // spill.shard fault site fires after the checkpoint, modeling a crash
  // between segments.
  const auto onSegment = [&](const sparse::ShardSegment& segment) {
    completed.emplace(segment.shard, segment);
    ++report_.mergeSegmentsWritten;
    report_.mergeSeconds += segment.mergeSeconds;
    if (checkpointing) {
      saveSpillCheckpoint(config_.checkpointDir, buildManifest(),
                          config_.spillDir, nullptr, /*gcSpillDir=*/false);
      ++report_.checkpointsWritten;
    }
    runtime::fault::hit("spill.shard");
  };

  std::vector<sparse::ShardSegment> merged;
  if (!todo.empty()) {
    merged = executor_->mergeSpillShards(todo, onSegment);
  }
  // Modeled parallel merge time: the busiest owner's summed thread-CPU
  // seconds (reused segments cost nothing this run, so they don't count).
  std::map<unsigned, double> perOwner;
  for (const sparse::ShardSegment& segment : merged) {
    perOwner[segment.owner] += segment.mergeSeconds;
  }
  for (const auto& [owner, seconds] : perOwner) {
    report_.mergeCriticalSeconds =
        std::max(report_.mergeCriticalSeconds, seconds);
  }

  // Splice: ascending shard order over disjoint ascending key ranges is
  // the globally sorted stream, so the concatenation is byte-identical to
  // the serial merge's CADJ (same rows, same framing). appendSegmentFile
  // re-verifies each segment's CRC as it copies.
  sparse::StreamingTripletWriter writer(outPath);
  for (const auto& [shard, segment] : completed) {
    const sparse::TripletSegmentInfo info{segment.triplets, segment.bytes,
                                          segment.crc};
    writer.appendSegmentFile(segment.file, info);
  }
  return writer.finish();
}

sparse::SymmetricAdjacency NetworkSynthesizer::synthesizeAdjacency(
    const table::EventTable& events) {
  report_ = SynthesisReport{};
  report_.backend = config_.backend;
  report_.memoryBudgetBytes = config_.memoryBudgetBytes;
  executor_->resetTransferCounters();
  util::WallTimer total;
  report_.logEntriesLoaded = events.size();

  sparse::SymmetricAdjacency result(1024);
  if (config_.memoryBudgetBytes == 0) {
    processBatch(events, &result, nullptr);
  } else {
    sparse::SpillingAccumulator sink(sinkOptions(config_));
    processBatch(events, nullptr, &sink);
    const std::unique_ptr<sparse::TripletSource> merged = sink.finishMerge();
    result.reserve(result.edgeCount() + merged->sizeHint());
    report_.mergeReservedEntries += merged->sizeHint();
    sparse::AdjacencyTriplet triplet;
    while (merged->next(triplet)) {
      result.add(triplet.i, triplet.j, triplet.weight);
    }
    result.addKernelStats(sink.kernelStats());
    foldSpillStats(report_, sink.stats());
  }
  report_.batches = 1;
  for (FaultEvent& event : executor_->drainFaultEvents()) {
    event.batch = 1;
    if (event.kind == FaultEvent::Kind::kCommandRetry) {
      ++report_.commandRetries;
    } else if (event.kind == FaultEvent::Kind::kRankLost) {
      ++report_.ranksLost;
    } else if (event.kind == FaultEvent::Kind::kWorkerRespawn) {
      ++report_.workersRespawned;
    } else if (event.kind == FaultEvent::Kind::kWorkerReconnect) {
      ++report_.workersReconnected;
    }
    report_.faults.push_back(std::move(event));
  }
  report_.edges = result.edgeCount();
  report_.bytesScattered = executor_->bytesScattered();
  report_.bytesReturned = executor_->bytesReturned();
  report_.totalSeconds = total.seconds();
  return result;
}

graph::Graph NetworkSynthesizer::synthesizeGraph(
    const std::vector<std::filesystem::path>& logFiles) {
  const sparse::SymmetricAdjacency adjacency = synthesizeAdjacency(logFiles);
  return graph::Graph::fromTriplets(adjacency.toTriplets());
}

graph::Graph NetworkSynthesizer::synthesizeGraph(
    const table::EventTable& events) {
  const sparse::SymmetricAdjacency adjacency = synthesizeAdjacency(events);
  return graph::Graph::fromTriplets(adjacency.toTriplets());
}

sparse::SymmetricAdjacency bruteForceAdjacency(const table::EventTable& events,
                                               table::Hour windowStart,
                                               table::Hour windowEnd) {
  // (place, hour) -> set of persons present; dedup handled by the set.
  std::map<std::pair<table::PlaceId, table::Hour>, std::set<table::PersonId>>
      presence;
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const table::Event event = events.row(row);
    const table::Hour from = std::max(event.start, windowStart);
    const table::Hour to = std::min(event.end, windowEnd);
    for (table::Hour hour = from; hour < to; ++hour) {
      presence[{event.place, hour}].insert(event.person);
    }
  }
  sparse::SymmetricAdjacency adjacency;
  for (const auto& [key, persons] : presence) {
    for (auto a = persons.begin(); a != persons.end(); ++a) {
      for (auto b = std::next(a); b != persons.end(); ++b) {
        adjacency.add(*a, *b, 1);
      }
    }
  }
  return adjacency;
}

}  // namespace chisimnet::net
