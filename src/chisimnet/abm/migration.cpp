#include "chisimnet/abm/migration.hpp"

#include <cstring>

#include "chisimnet/util/error.hpp"

namespace chisimnet::abm {

namespace {

// v2 ("CMB2") added the flags word for the shutdown agreement; the magic
// doubles as the version so a mixed-build mismatch fails loudly.
constexpr std::uint32_t kBatchMagic = 0x32424D43;  // "CMB2"

template <typename T>
void appendRaw(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T readRaw(std::span<const std::byte> payload, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  CHISIM_CHECK(offset + sizeof(T) <= payload.size(),
               "migration batch truncated");
  T value;
  std::memcpy(&value, payload.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::byte> encodeMigrationBatch(const MigrationBatch& batch) {
  std::size_t bytes = 5 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  for (const MigrantRecord& record : batch.migrants) {
    bytes += 4 * sizeof(std::uint32_t) +
             record.stints.size() * sizeof(pop::PackedStint);
  }
  std::vector<std::byte> out;
  out.reserve(bytes);
  appendRaw(out, kBatchMagic);
  appendRaw(out, batch.hour);
  appendRaw(out, batch.nextEventHint);
  appendRaw(out, batch.flags);
  appendRaw(out, static_cast<std::uint32_t>(batch.migrants.size()));
  for (const MigrantRecord& record : batch.migrants) {
    appendRaw(out, record.person);
    appendRaw(out, record.weekIndex);
    appendRaw(out, record.stintIndex);
    appendRaw(out, static_cast<std::uint32_t>(record.stints.size()));
    for (const pop::PackedStint& stint : record.stints) {
      appendRaw(out, stint);
    }
  }
  return out;
}

MigrationBatch decodeMigrationBatch(std::span<const std::byte> payload,
                                    table::Hour expectedHour) {
  std::size_t offset = 0;
  CHISIM_CHECK(readRaw<std::uint32_t>(payload, offset) == kBatchMagic,
               "migration batch has a bad magic");
  MigrationBatch batch;
  batch.hour = readRaw<table::Hour>(payload, offset);
  CHISIM_CHECK(batch.hour == expectedHour,
               "migration batch timestamp does not match the current hour");
  batch.nextEventHint = readRaw<std::uint64_t>(payload, offset);
  batch.flags = readRaw<std::uint32_t>(payload, offset);
  const auto count = readRaw<std::uint32_t>(payload, offset);
  // Each record is at least 16 bytes of header plus one stint.
  CHISIM_CHECK(count <= payload.size() / 16, "migration batch count implausible");
  batch.migrants.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MigrantRecord record;
    record.person = readRaw<table::PersonId>(payload, offset);
    record.weekIndex = readRaw<std::uint32_t>(payload, offset);
    record.stintIndex = readRaw<std::uint32_t>(payload, offset);
    const auto stintCount = readRaw<std::uint32_t>(payload, offset);
    CHISIM_CHECK(stintCount >= 1 && stintCount <= pop::kHoursPerWeek,
                 "migrant stint count out of range");
    CHISIM_CHECK(record.stintIndex < stintCount,
                 "migrant stint index out of range");
    record.stints.reserve(stintCount);
    for (std::uint32_t s = 0; s < stintCount; ++s) {
      record.stints.push_back(readRaw<pop::PackedStint>(payload, offset));
    }
    batch.migrants.push_back(std::move(record));
  }
  CHISIM_CHECK(offset == payload.size(), "migration batch has trailing bytes");
  return batch;
}

}  // namespace chisimnet::abm
