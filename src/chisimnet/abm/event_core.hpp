#pragma once

#include <cstdint>
#include <vector>

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/model.hpp"
#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/schedule.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/table/event.hpp"

/// The event-driven ABM core (ModelCore::kEventDriven).
///
/// Instead of ticking every agent every hour, each rank keeps a calendar
/// queue of activity-change events: an agent schedules its next stint end
/// at adoption and lies dormant in between. The ranks walk an identical
/// sequence of *active* hours — hours where some rank has a scheduled
/// event — agreed on through conservative next-event hints piggybacked on
/// the timestamped migration exchange (abm/migration.hpp), so globally
/// quiet hours cost nothing and no per-hour barrier is needed. Per-hour
/// processing order (FIFO calendar buckets, arrival order by source rank)
/// reproduces the hourly core's order exactly, which is what makes the
/// CLG5/CLX5 output byte-identical between the two cores at any rank
/// count; DESIGN.md §3.7 gives the full argument.

namespace chisimnet::abm {

/// Per-hour FIFO buckets of agent activity-change events over a bounded
/// horizon. Bucket order is push order, mirroring the hourly core's agenda.
class CalendarQueue {
 public:
  explicit CalendarQueue(table::Hour totalHours)
      : buckets_(static_cast<std::size_t>(totalHours) + 1) {}

  void push(table::Hour due, table::PersonId person);

  std::vector<table::PersonId>& bucket(table::Hour hour) {
    return buckets_.at(hour);
  }

  /// Releases a processed bucket and its accounting.
  void clearBucket(table::Hour hour);

  /// First occupied hour strictly after `after`; the horizon (totalHours)
  /// when nothing is pending.
  table::Hour nextOccupiedHour(table::Hour after) const;

  /// Events currently scheduled.
  std::size_t pending() const noexcept { return pending_; }

 private:
  std::vector<std::vector<table::PersonId>> buckets_;
  std::size_t pending_ = 0;
};

/// Per-rank totals a core run reports back to runModel.
struct RankOutcome {
  std::uint64_t events = 0;
  std::uint64_t migrationsOut = 0;
  std::uint64_t localMoves = 0;
  std::uint64_t initialAgents = 0;
  std::uint64_t logBytes = 0;
  std::uint64_t infections = 0;
  std::uint64_t hoursProcessed = 0;   ///< hours this core actually visited
  std::uint64_t peakQueueDepth = 0;   ///< max pending events on this rank
  // Not serialized into checkpoints (run-local, not campaign state):
  std::uint64_t checkpointsWritten = 0;  ///< checkpoints THIS run committed
  bool interrupted = false;  ///< exited early on a shutdown request
};

/// Inputs shared (read-only, or rank-sliced as documented on
/// DiseaseShared) by every rank of an event-core run.
struct EventCoreContext {
  const pop::SyntheticPopulation* population = nullptr;
  const ModelConfig* config = nullptr;
  const std::vector<int>* placeRank = nullptr;
  const pop::ScheduleGenerator* generator = nullptr;
  DiseaseShared* disease = nullptr;
  table::Hour totalHours = 0;
  /// Loaded checkpoint set when resuming; nullptr for a fresh run. Declared
  /// opaque here to avoid an include cycle with abm/sim_checkpoint.hpp.
  const struct SimResume* resume = nullptr;
  /// simConfigHash of this run — stamped into manifests it commits.
  std::uint32_t configHash = 0;
  /// manifest.checkpointsWritten at resume (0 fresh): committed manifests
  /// record checkpointsBase + this run's count so the total is cumulative.
  std::uint64_t checkpointsBase = 0;
};

/// Runs one rank of the event-driven core to completion.
void runEventCoreRank(runtime::RankHandle& rank,
                      const EventCoreContext& context, RankOutcome& outcome);

}  // namespace chisimnet::abm
