#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chisimnet/pop/population.hpp"

/// Place-to-rank assignment (paper §II: "A spatially partitioned set of
/// locations is developed that assigns locations to compute processes with
/// the objective of minimizing person agent movement between processes").

namespace chisimnet::abm {

enum class PartitionStrategy {
  /// Spatial: whole neighborhoods go to ranks, balanced by resident count
  /// (greedy LPT). Most daily movement is within-neighborhood, so most
  /// location changes stay on-rank.
  kNeighborhood,
  /// Naive baseline for the ablation: place id modulo rank count, which
  /// scatters a neighborhood across all ranks and maximizes migration.
  kRoundRobin,
};

std::string partitionStrategyName(PartitionStrategy strategy);

/// placeRank[p] is the rank that owns place p.
std::vector<int> assignPlacesToRanks(const pop::SyntheticPopulation& population,
                                     int rankCount,
                                     PartitionStrategy strategy);

}  // namespace chisimnet::abm
