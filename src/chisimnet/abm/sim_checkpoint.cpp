#include "chisimnet/abm/sim_checkpoint.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::abm {

namespace {

using table::Hour;
using table::PersonId;

/// Rank state file header: magic u32 "ABMC" | version u32 | crc32 u32 over
/// the body | body.
constexpr std::uint32_t kRankMagic = 0x434D4241u;  // "ABMC"
constexpr std::uint32_t kRankVersion = 1;
constexpr const char* kManifestMagic = "SCKP1";

void put32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>(value >> shift));
  }
}

void put64(std::vector<std::byte>& out, std::uint64_t value) {
  put32(out, static_cast<std::uint32_t>(value));
  put32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t take32(std::span<const std::byte> bytes, std::size_t& cursor) {
  CHISIM_CHECK(cursor + 4 <= bytes.size(), "truncated rank checkpoint");
  const std::uint32_t value =
      static_cast<std::uint32_t>(bytes[cursor]) |
      (static_cast<std::uint32_t>(bytes[cursor + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[cursor + 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[cursor + 3]) << 24);
  cursor += 4;
  return value;
}

std::uint64_t take64(std::span<const std::byte> bytes, std::size_t& cursor) {
  const std::uint64_t low = take32(bytes, cursor);
  const std::uint64_t high = take32(bytes, cursor);
  return low | (high << 32);
}

void putBuckets(std::vector<std::byte>& out,
                const std::vector<HourBucket>& buckets) {
  put32(out, static_cast<std::uint32_t>(buckets.size()));
  for (const HourBucket& bucket : buckets) {
    put32(out, bucket.hour);
    put32(out, static_cast<std::uint32_t>(bucket.persons.size()));
    for (PersonId person : bucket.persons) {
      put32(out, person);
    }
  }
}

std::vector<HourBucket> takeBuckets(std::span<const std::byte> bytes,
                                    std::size_t& cursor) {
  const std::uint32_t count = take32(bytes, cursor);
  std::vector<HourBucket> buckets;
  buckets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    HourBucket bucket;
    bucket.hour = take32(bytes, cursor);
    const std::uint32_t persons = take32(bytes, cursor);
    CHISIM_CHECK(persons <= (bytes.size() - cursor) / 4,
                 "rank checkpoint declares more bucket entries than its "
                 "bytes can hold");
    bucket.persons.reserve(persons);
    for (std::uint32_t p = 0; p < persons; ++p) {
      bucket.persons.push_back(take32(bytes, cursor));
    }
    buckets.push_back(std::move(bucket));
  }
  return buckets;
}

void putEvents(std::vector<std::byte>& out,
               const std::vector<table::Event>& events) {
  put32(out, static_cast<std::uint32_t>(events.size()));
  for (const table::Event& event : events) {
    put32(out, event.start);
    put32(out, event.end);
    put32(out, event.person);
    put32(out, event.activity);
    put32(out, event.place);
  }
}

std::vector<table::Event> takeEvents(std::span<const std::byte> bytes,
                                     std::size_t& cursor) {
  const std::uint32_t count = take32(bytes, cursor);
  CHISIM_CHECK(count <= (bytes.size() - cursor) / 20,
               "rank checkpoint declares more cached events than its bytes "
               "can hold");
  std::vector<table::Event> events(count);
  for (table::Event& event : events) {
    event.start = take32(bytes, cursor);
    event.end = take32(bytes, cursor);
    event.person = take32(bytes, cursor);
    event.activity = take32(bytes, cursor);
    event.place = take32(bytes, cursor);
  }
  return events;
}

std::string rankFileName(int rank, Hour hour) {
  char name[48];
  std::snprintf(name, sizeof(name), "rank_%04d.%u.abmc", rank,
                static_cast<unsigned>(hour));
  return name;
}

std::filesystem::path manifestPath(const std::filesystem::path& dir) {
  return dir / kSimManifestName;
}

}  // namespace

std::uint32_t simConfigHash(std::size_t personCount, std::size_t placeCount,
                            const ModelConfig& config,
                            const DiseaseConfig* disease) {
  // Everything that determines the log bytes and the checkpoint layout; a
  // resume against a run with any of these changed must be rejected. The
  // core is included even though both cores emit the same bytes — the
  // checkpointed calendar shapes differ.
  std::string text;
  text += std::to_string(personCount) + "|";
  text += std::to_string(placeCount) + "|";
  text += std::to_string(config.scheduleSeed) + "|";
  text += std::to_string(config.weeks) + "|";
  text += std::to_string(config.rankCount) + "|";
  text += std::to_string(static_cast<int>(config.strategy)) + "|";
  text += std::to_string(static_cast<int>(config.core)) + "|";
  text += std::to_string(static_cast<int>(config.logCompression)) + "|";
  text += std::to_string(config.logCacheEntries) + "|";
  if (disease != nullptr) {
    char beta[32];
    std::snprintf(beta, sizeof(beta), "%.17g", disease->beta);
    text += std::string(beta) + "|";
    text += std::to_string(disease->latentHours) + "|";
    text += std::to_string(disease->infectiousHours) + "|";
    text += std::to_string(disease->seedCount) + "|";
    text += std::to_string(disease->seed) + "|";
  }
  return util::crc32(
      std::as_bytes(std::span<const char>(text.data(), text.size())));
}

std::vector<std::byte> encodeRankCheckpoint(const RankCheckpoint& checkpoint) {
  std::vector<std::byte> body;
  body.reserve(64 + checkpoint.residents.size() * 20);
  put32(body, checkpoint.hour);
  put32(body, checkpoint.diseaseEnabled ? 1 : 0);
  put64(body, checkpoint.outcome.events);
  put64(body, checkpoint.outcome.migrationsOut);
  put64(body, checkpoint.outcome.localMoves);
  put64(body, checkpoint.outcome.initialAgents);
  put64(body, checkpoint.outcome.logBytes);
  put64(body, checkpoint.outcome.infections);
  put64(body, checkpoint.outcome.hoursProcessed);
  put64(body, checkpoint.outcome.peakQueueDepth);
  put32(body, static_cast<std::uint32_t>(checkpoint.residents.size()));
  for (const AgentSnapshot& agent : checkpoint.residents) {
    put32(body, agent.person);
    put32(body, agent.weekIndex);
    put32(body, agent.stintIndex);
    if (checkpoint.diseaseEnabled) {
      put32(body, agent.state);
      put32(body, agent.since);
    }
  }
  putBuckets(body, checkpoint.calendar);
  put64(body, checkpoint.logBytes);
  put64(body, checkpoint.logEntries);
  put64(body, checkpoint.logFlushCount);
  putEvents(body, checkpoint.logCache);
  if (checkpoint.diseaseEnabled) {
    put64(body, checkpoint.clxBytes);
    put64(body, checkpoint.clxEntries);
    put32(body, static_cast<std::uint32_t>(checkpoint.clxBuffer.size()));
    for (const elog::ExtendedEvent& entry : checkpoint.clxBuffer) {
      CHISIM_CHECK(entry.extras.size() == 2,
                   "disease buffer entry must carry two extras");
      put32(body, entry.base.start);
      put32(body, entry.base.end);
      put32(body, entry.base.person);
      put32(body, entry.base.activity);
      put32(body, entry.base.place);
      put32(body, entry.extras[0]);
      put32(body, entry.extras[1]);
    }
    putBuckets(body, checkpoint.progressions);
    put32(body, static_cast<std::uint32_t>(checkpoint.hourlyInfectious.size()));
    for (std::uint32_t value : checkpoint.hourlyInfectious) {
      put32(body, value);
    }
  }
  return body;
}

RankCheckpoint decodeRankCheckpoint(std::span<const std::byte> bytes) {
  std::size_t cursor = 0;
  RankCheckpoint checkpoint;
  checkpoint.hour = take32(bytes, cursor);
  checkpoint.diseaseEnabled = take32(bytes, cursor) != 0;
  checkpoint.outcome.events = take64(bytes, cursor);
  checkpoint.outcome.migrationsOut = take64(bytes, cursor);
  checkpoint.outcome.localMoves = take64(bytes, cursor);
  checkpoint.outcome.initialAgents = take64(bytes, cursor);
  checkpoint.outcome.logBytes = take64(bytes, cursor);
  checkpoint.outcome.infections = take64(bytes, cursor);
  checkpoint.outcome.hoursProcessed = take64(bytes, cursor);
  checkpoint.outcome.peakQueueDepth = take64(bytes, cursor);
  const std::uint32_t residents = take32(bytes, cursor);
  const std::size_t residentBytes = checkpoint.diseaseEnabled ? 20 : 12;
  CHISIM_CHECK(residents <= (bytes.size() - cursor) / residentBytes,
               "rank checkpoint declares more residents than its bytes can "
               "hold");
  checkpoint.residents.reserve(residents);
  for (std::uint32_t i = 0; i < residents; ++i) {
    AgentSnapshot agent;
    agent.person = take32(bytes, cursor);
    agent.weekIndex = take32(bytes, cursor);
    agent.stintIndex = take32(bytes, cursor);
    if (checkpoint.diseaseEnabled) {
      agent.state = take32(bytes, cursor);
      agent.since = take32(bytes, cursor);
    }
    checkpoint.residents.push_back(agent);
  }
  checkpoint.calendar = takeBuckets(bytes, cursor);
  checkpoint.logBytes = take64(bytes, cursor);
  checkpoint.logEntries = take64(bytes, cursor);
  checkpoint.logFlushCount = take64(bytes, cursor);
  checkpoint.logCache = takeEvents(bytes, cursor);
  if (checkpoint.diseaseEnabled) {
    checkpoint.clxBytes = take64(bytes, cursor);
    checkpoint.clxEntries = take64(bytes, cursor);
    const std::uint32_t buffered = take32(bytes, cursor);
    CHISIM_CHECK(buffered <= (bytes.size() - cursor) / 28,
                 "rank checkpoint declares more buffered transitions than "
                 "its bytes can hold");
    checkpoint.clxBuffer.reserve(buffered);
    for (std::uint32_t i = 0; i < buffered; ++i) {
      elog::ExtendedEvent entry;
      entry.base.start = take32(bytes, cursor);
      entry.base.end = take32(bytes, cursor);
      entry.base.person = take32(bytes, cursor);
      entry.base.activity = take32(bytes, cursor);
      entry.base.place = take32(bytes, cursor);
      entry.extras = {take32(bytes, cursor), take32(bytes, cursor)};
      checkpoint.clxBuffer.push_back(std::move(entry));
    }
    checkpoint.progressions = takeBuckets(bytes, cursor);
    const std::uint32_t hours = take32(bytes, cursor);
    CHISIM_CHECK(hours <= (bytes.size() - cursor) / 4,
                 "rank checkpoint declares more prevalence rows than its "
                 "bytes can hold");
    checkpoint.hourlyInfectious.reserve(hours);
    for (std::uint32_t h = 0; h < hours; ++h) {
      checkpoint.hourlyInfectious.push_back(take32(bytes, cursor));
    }
  }
  CHISIM_CHECK(cursor == bytes.size(), "rank checkpoint has trailing bytes");
  return checkpoint;
}

void saveRankCheckpoint(const std::filesystem::path& dir, int rank,
                        const RankCheckpoint& checkpoint) {
  if (runtime::fault::armed()) {
    runtime::FaultSite site;
    site.rank = rank;
    site.ordinal = checkpoint.hour;
    runtime::fault::hit("abm.ckpt.write", site);
  }
  std::filesystem::create_directories(dir);
  const std::vector<std::byte> body = encodeRankCheckpoint(checkpoint);
  const std::filesystem::path final =
      dir / rankFileName(rank, checkpoint.hour);
  const std::filesystem::path tmp = final.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CHISIM_CHECK(out.good(),
                 "cannot write rank checkpoint: " + tmp.string());
    util::writeU32(out, kRankMagic);
    util::writeU32(out, kRankVersion);
    util::writeU32(out, util::crc32(body));
    util::writeBytes(out, body);
    out.flush();
    CHISIM_CHECK(out.good(), "rank checkpoint write failed: " + tmp.string());
  }
  std::filesystem::rename(tmp, final);
}

void commitSimManifest(const std::filesystem::path& dir,
                       const SimManifest& manifest) {
  const std::filesystem::path tmp = dir / "sim_manifest.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    CHISIM_CHECK(out.good(),
                 "cannot write simulation manifest: " + tmp.string());
    out << kManifestMagic << "\n";
    out << "hour " << manifest.hour << "\n";
    out << "rank_count " << manifest.rankCount << "\n";
    out << "config_hash " << manifest.configHash << "\n";
    out << "checkpoints_written " << manifest.checkpointsWritten << "\n";
    out.flush();
    CHISIM_CHECK(out.good(),
                 "simulation manifest write failed: " + tmp.string());
  }
  std::filesystem::rename(tmp, manifestPath(dir));

  // Garbage-collect rank files from superseded checkpoints (and .tmp
  // orphans of crashed saves). The new manifest's hour names the live set.
  const std::string liveSuffix =
      "." + std::to_string(static_cast<unsigned>(manifest.hour)) + ".abmc";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const bool rankFile = name.starts_with("rank_") &&
                          (name.ends_with(".abmc") || name.ends_with(".tmp"));
    if (rankFile && !name.ends_with(liveSuffix)) {
      std::error_code ignored;
      std::filesystem::remove(entry.path(), ignored);
    }
  }
}

std::optional<SimManifest> loadSimManifest(const std::filesystem::path& dir) {
  std::ifstream in(manifestPath(dir));
  if (!in.good()) {
    return std::nullopt;
  }
  std::string magic;
  CHISIM_CHECK(std::getline(in, magic) && magic == kManifestMagic,
               "unrecognized simulation manifest: " +
                   manifestPath(dir).string());
  SimManifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "hour") {
      fields >> manifest.hour;
    } else if (key == "rank_count") {
      fields >> manifest.rankCount;
    } else if (key == "config_hash") {
      fields >> manifest.configHash;
    } else if (key == "checkpoints_written") {
      fields >> manifest.checkpointsWritten;
    }
    CHISIM_CHECK(!fields.fail(), "malformed simulation manifest line: " + line);
  }
  return manifest;
}

RankCheckpoint loadRankCheckpoint(const std::filesystem::path& dir, int rank,
                                  Hour hour) {
  const std::filesystem::path path = dir / rankFileName(rank, hour);
  std::ifstream in(path, std::ios::binary);
  CHISIM_CHECK(in.good(), "cannot open rank checkpoint: " + path.string());
  CHISIM_CHECK(util::readU32(in) == kRankMagic,
               "not a rank checkpoint file: " + path.string());
  CHISIM_CHECK(util::readU32(in) == kRankVersion,
               "unsupported rank checkpoint version: " + path.string());
  const std::uint32_t storedCrc = util::readU32(in);
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto body =
      std::as_bytes(std::span<const char>(raw.data(), raw.size()));
  CHISIM_CHECK(storedCrc == util::crc32(body),
               "rank checkpoint CRC mismatch: " + path.string());
  RankCheckpoint checkpoint = decodeRankCheckpoint(body);
  CHISIM_CHECK(checkpoint.hour == hour,
               "rank checkpoint hour does not match the manifest: " +
                   path.string());
  return checkpoint;
}

std::optional<SimResume> loadSimResume(const std::filesystem::path& dir,
                                       int rankCount,
                                       std::uint32_t configHash) {
  std::optional<SimManifest> manifest = loadSimManifest(dir);
  if (!manifest.has_value()) {
    return std::nullopt;
  }
  CHISIM_CHECK(manifest->rankCount == rankCount,
               "checkpoint was written with " +
                   std::to_string(manifest->rankCount) +
                   " ranks; resume requested " + std::to_string(rankCount));
  CHISIM_CHECK(manifest->configHash == configHash,
               "checkpoint does not match this run's configuration "
               "(population/seed/horizon/core/log settings changed)");
  SimResume resume;
  resume.manifest = *manifest;
  resume.ranks.reserve(static_cast<std::size_t>(rankCount));
  for (int rank = 0; rank < rankCount; ++rank) {
    resume.ranks.push_back(loadRankCheckpoint(dir, rank, manifest->hour));
  }
  return resume;
}

namespace {

std::atomic<bool> g_shutdownRequested{false};

extern "C" void chisimShutdownSignalHandler(int) {
  // Only an async-signal-safe atomic store; the rank loops poll the flag
  // at the top of each hour.
  g_shutdownRequested.store(true, std::memory_order_relaxed);
}

}  // namespace

bool shutdownRequested() noexcept {
  return g_shutdownRequested.load(std::memory_order_relaxed);
}

void requestShutdown() noexcept {
  g_shutdownRequested.store(true, std::memory_order_relaxed);
}

void clearShutdownRequest() noexcept {
  g_shutdownRequested.store(false, std::memory_order_relaxed);
}

struct ScopedShutdownHandler::State {
  struct sigaction previousTerm;
  struct sigaction previousInt;
};

ScopedShutdownHandler::ScopedShutdownHandler()
    : state_(std::make_unique<State>()) {
  struct sigaction action = {};
  action.sa_handler = chisimShutdownSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, &state_->previousTerm);
  ::sigaction(SIGINT, &action, &state_->previousInt);
}

ScopedShutdownHandler::~ScopedShutdownHandler() {
  ::sigaction(SIGTERM, &state_->previousTerm, nullptr);
  ::sigaction(SIGINT, &state_->previousInt, nullptr);
}

}  // namespace chisimnet::abm
