#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/place_partition.hpp"
#include "chisimnet/elog/event_logger.hpp"
#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/schedule.hpp"

/// The distributed social-interaction model (the chiSIM substitute,
/// paper §II).
///
/// Places are partitioned across ranks; an agent resides on the rank that
/// owns its current location. At each one-hour step every agent whose
/// activity stint ends decides its next activity from its schedule and
/// moves to the new location — crossing ranks via a migration message when
/// the new place lives elsewhere. Each rank runs its own event logger
/// (paper §III), so a run with R ranks emits R CLG5 files whose union is
/// the complete activity history of the population.

namespace chisimnet::abm {

/// Which simulation core drives the run. Both cores produce byte-identical
/// CLG5/CLX5 logs for the same (population, scheduleSeed, disease.seed) at
/// any rank count (enforced by the differential grid in tests/abm_test.cpp);
/// they differ only in how time advances.
enum class ModelCore : std::uint8_t {
  /// Tick every hour; each hour touches agents in transition plus a full
  /// per-hour epidemic scan. The reference implementation.
  kHourly = 0,
  /// Calendar queue of activity-change events per rank; agents lie dormant
  /// between events, epidemic work is interval-scheduled, and globally
  /// quiet hours are skipped (abm/event_core.hpp). Scales with activity
  /// changes (~5/day) instead of person-hours (24/day).
  kEventDriven = 1,
};

struct ModelConfig {
  std::filesystem::path logDirectory;  ///< created if missing; must be writable
  int rankCount = 4;
  std::uint32_t weeks = 1;
  std::size_t logCacheEntries = elog::kDefaultCacheEntries;
  /// kRaw preserves the paper's 20 bytes/entry layout; kPacked enables the
  /// column-split varint chunk encoding (2-3x smaller files).
  elog::LogCompression logCompression = elog::LogCompression::kRaw;
  std::uint64_t scheduleSeed = 7;
  PartitionStrategy strategy = PartitionStrategy::kNeighborhood;
  ModelCore core = ModelCore::kEventDriven;
  /// Non-empty enables crash-safe checkpointing (abm/sim_checkpoint.hpp):
  /// periodic rank-state snapshots land here, and a SIGTERM/SIGINT (when
  /// the caller installed ScopedShutdownHandler or called requestShutdown)
  /// checkpoints and exits gracefully at the top of the next hour.
  std::filesystem::path checkpointDir;
  /// Checkpoint every N simulated hours (0 = only on shutdown request).
  /// Requires checkpointDir.
  std::uint32_t checkpointEveryHours = 0;
  /// Resume from the manifest in checkpointDir when one exists; falls back
  /// to a fresh start when the directory holds no committed checkpoint.
  /// The resumed run's CLG5/CLX5 logs are byte-identical to an
  /// uninterrupted run (files truncate to the checkpointed offsets).
  bool resume = false;
};

struct ModelStats {
  std::uint64_t simulatedHours = 0;
  std::uint64_t eventsLogged = 0;      ///< total log entries across ranks
  std::uint64_t migrations = 0;        ///< cross-rank agent moves
  std::uint64_t localMoves = 0;        ///< location changes that stayed on-rank
  std::uint64_t agentHours = 0;        ///< persons x hours simulated
  std::uint64_t logBytes = 0;          ///< total CLG5 bytes written
  /// Hours the step loop actually visited: always simulatedHours for the
  /// hourly core; for the event core, the number of globally active hours
  /// (quiet hours are skipped entirely).
  std::uint64_t hoursActive = 0;
  /// Max simultaneously pending calendar events (activity changes plus
  /// scheduled disease progressions) on any rank; 0 for the hourly core.
  std::uint64_t peakQueueDepth = 0;
  /// Checkpoints committed over the campaign (cumulative across resumes).
  std::uint64_t checkpointsWritten = 0;
  /// True when this run started from a committed checkpoint.
  bool resumed = false;
  /// Hours already on disk at resume (the checkpoint hour); 0 fresh runs.
  std::uint64_t hoursReplayed = 0;
  /// True when the run checkpointed and exited early on a shutdown
  /// request instead of reaching the horizon.
  bool interrupted = false;
  double wallSeconds = 0.0;
  std::vector<std::uint64_t> perRankEvents;
  std::vector<std::uint64_t> perRankMigrationsOut;
  std::vector<std::uint64_t> perRankInitialAgents;

  /// Fraction of location changes that crossed ranks.
  double migrationFraction() const noexcept {
    const std::uint64_t moves = migrations + localMoves;
    return moves == 0 ? 0.0
                      : static_cast<double>(migrations) /
                            static_cast<double>(moves);
  }
};

/// Runs the model over `weeks` simulated weeks and writes one CLG5 log file
/// per rank into config.logDirectory. Deterministic in
/// (population seed, scheduleSeed); the emitted set of log entries is
/// independent of rankCount and partition strategy (only their distribution
/// over files changes).
ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config);

/// Same, with the SEIR disease layer enabled: transmission happens at
/// collocations each hour and every state transition is written to a
/// per-rank CLX5 extended log (rank_NNNN.clx5, extras = {new state,
/// infector id}) alongside the activity logs. The epidemic realization is
/// deterministic in (population, scheduleSeed, disease.seed) and — like the
/// activity log — independent of rankCount.
ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config, const DiseaseConfig& disease,
                    DiseaseStats& diseaseStats);

}  // namespace chisimnet::abm
