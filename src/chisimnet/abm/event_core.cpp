#include "chisimnet/abm/event_core.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "chisimnet/abm/migration.hpp"
#include "chisimnet/abm/sim_checkpoint.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::abm {

namespace {

using pop::kHoursPerWeek;
using table::Hour;
using table::PersonId;

/// Same tag window the hourly core uses, offset so the two schemes can
/// never collide, plus a one-shot tag for the initial residency scatter.
constexpr int kEventMigrationTagBase = (1 << 20) + (1 << 19);
constexpr int kInitScatterTag = (1 << 20) + (1 << 19) + (1 << 19);

std::vector<pop::PackedStint> copyStints(const pop::PackedWeek& week) {
  return {week.stints().begin(), week.stints().end()};
}

}  // namespace

void CalendarQueue::push(Hour due, PersonId person) {
  buckets_.at(due).push_back(person);
  ++pending_;
}

void CalendarQueue::clearBucket(Hour hour) {
  auto& bucket = buckets_.at(hour);
  CHISIM_CHECK(pending_ >= bucket.size(), "calendar accounting out of sync");
  pending_ -= bucket.size();
  bucket.clear();
  bucket.shrink_to_fit();
}

Hour CalendarQueue::nextOccupiedHour(Hour after) const {
  for (std::size_t h = after + 1; h < buckets_.size(); ++h) {
    if (!buckets_[h].empty()) {
      return static_cast<Hour>(h);
    }
  }
  return static_cast<Hour>(buckets_.size() - 1);
}

void runEventCoreRank(runtime::RankHandle& rank,
                      const EventCoreContext& context, RankOutcome& outcome) {
  const int self = rank.rank();
  const int rankCount = rank.size();
  const ModelConfig& config = *context.config;
  const pop::ScheduleGenerator& generator = *context.generator;
  const std::vector<int>& placeRank = *context.placeRank;
  const Hour totalHours = context.totalHours;

  const RankCheckpoint* resumePoint =
      context.resume != nullptr
          ? &context.resume->ranks.at(static_cast<std::size_t>(self))
          : nullptr;

  auto writer =
      resumePoint != nullptr
          ? std::make_unique<elog::ChunkedLogWriter>(
                elog::logFilePath(config.logDirectory, self),
                config.logCompression,
                elog::ChunkedLogWriter::ResumeAt{resumePoint->logBytes})
          : std::make_unique<elog::ChunkedLogWriter>(
                elog::logFilePath(config.logDirectory, self),
                config.logCompression);
  elog::EventLogger logger(std::move(writer), config.logCacheEntries);
  logger.setFaultRank(self);

  std::unique_ptr<DiseaseRank> epidemic;
  if (context.disease->enabled()) {
    epidemic = std::make_unique<DiseaseRank>(
        *context.disease, self, config.logDirectory, totalHours,
        /*eventCore=*/true, resumePoint != nullptr ? resumePoint->clxBytes : 0);
  }

  // A rank failing (fault injection, I/O error, a peer's abort waking our
  // recv) must leave crash-shaped logs — no footer — so readers and the
  // synthesis quarantine treat them exactly like a SIGKILL's torn files.
  try {
  std::unordered_map<PersonId, pop::StintCursor> residents;
  CalendarQueue calendar(totalHours);

  const auto adopt = [&](pop::StintCursor cursor, Hour now) {
    const pop::ScheduleEntry entry = cursor.current();
    calendar.push(std::min<Hour>(entry.end, totalHours), cursor.person());
    if (epidemic) {
      epidemic->arrive(cursor.person(), entry.activity, entry.place, now);
    }
    residents.emplace(cursor.person(), std::move(cursor));
  };

  Hour globalNext = 0;
  if (resumePoint == nullptr) {
    // ---- initial residency -----------------------------------------------
    // The hourly core regenerates every person's week on every rank and
    // keeps the owned ones. Here each rank generates only its 1/R slice of
    // persons and scatters the packed cursors to the owning ranks; owners
    // adopt the merged batches in ascending person id, which IS population
    // order, so initial calendar and occupancy order match the hourly core
    // exactly.
    const auto personCount =
        static_cast<PersonId>(context.population->persons().size());
    if (rankCount == 1) {
      for (PersonId person = 0; person < personCount; ++person) {
        adopt(pop::StintCursor(generator, person, 0), 0);
      }
    } else {
      std::vector<std::vector<MigrantRecord>> slices(
          static_cast<std::size_t>(rankCount));
      for (PersonId person = static_cast<PersonId>(self); person < personCount;
           person += static_cast<PersonId>(rankCount)) {
        pop::PackedWeek week = generator.packedWeek(person, 0);
        const auto dest =
            static_cast<std::size_t>(placeRank[week.entry(0).place]);
        slices[dest].push_back(MigrantRecord{person, 0, 0, copyStints(week)});
      }
      for (int dest = 0; dest < rankCount; ++dest) {
        if (dest != self) {
          rank.send(dest, kInitScatterTag,
                    encodeMigrationBatch(MigrationBatch{
                        0, 0, 0, slices[static_cast<std::size_t>(dest)]}));
        }
      }
      std::vector<MigrantRecord> owned =
          std::move(slices[static_cast<std::size_t>(self)]);
      for (int source = 0; source < rankCount; ++source) {
        if (source == self) {
          continue;
        }
        MigrationBatch batch = decodeMigrationBatch(
            rank.recv(source, kInitScatterTag).payload, 0);
        for (MigrantRecord& record : batch.migrants) {
          owned.push_back(std::move(record));
        }
      }
      std::sort(owned.begin(), owned.end(),
                [](const MigrantRecord& a, const MigrantRecord& b) {
                  return a.person < b.person;
                });
      for (MigrantRecord& record : owned) {
        adopt(pop::StintCursor(
                  record.person,
                  pop::PackedWeek(record.weekIndex, std::move(record.stints)),
                  record.stintIndex),
              0);
      }
    }
    outcome.initialAgents = residents.size();

    if (epidemic) {
      epidemic->logSeeds();
      epidemic->stepEvent(0, outcome.infections);
    }

    // First globally active hour: every rank knows its exact local next
    // event only after adopting its residents and running the hour-0
    // epidemic step, so this one agreement is an explicit min-reduction;
    // every later hour is agreed through hints carried on the migration
    // exchange itself.
    Hour localNext = calendar.nextOccupiedHour(0);
    if (epidemic) {
      localNext =
          std::min(localNext, epidemic->conservativeNextEvent(0, totalHours));
    }
    globalNext = rankCount == 1
                     ? localNext
                     : static_cast<Hour>(rank.allReduceMinU64(localNext));
  } else {
    // ---- resume ----------------------------------------------------------
    // Counters, cursor coordinates, calendar buckets and the unflushed log
    // caches come from the checkpoint; schedules regenerate exactly from
    // (person, weekIndex). restoreResident rebuilds occupancy and
    // infectious accounting WITHOUT rescheduling progressions — the
    // progression calendar is restored verbatim below. No scatter, no
    // hour-0 step, no min-reduction: every rank resumes at the manifest
    // hour, which all ranks had agreed on when the checkpoint was written.
    outcome = resumePoint->outcome;
    logger.restoreCache(resumePoint->logCache, resumePoint->logEntries,
                        resumePoint->logFlushCount);
    for (const AgentSnapshot& agent : resumePoint->residents) {
      pop::StintCursor cursor(
          agent.person, generator.packedWeek(agent.person, agent.weekIndex),
          agent.stintIndex);
      if (epidemic) {
        const pop::ScheduleEntry entry = cursor.current();
        epidemic->restoreResident(agent.person, entry.activity, entry.place);
      }
      residents.emplace(agent.person, std::move(cursor));
    }
    for (const HourBucket& bucket : resumePoint->calendar) {
      for (PersonId person : bucket.persons) {
        calendar.push(bucket.hour, person);
      }
    }
    if (epidemic) {
      for (const HourBucket& bucket : resumePoint->progressions) {
        DiseaseRank::CalendarBucket restored;
        restored.hour = bucket.hour;
        restored.persons = bucket.persons;
        epidemic->restoreCalendar(restored);
      }
      epidemic->restoreBuffer(resumePoint->clxBuffer);
      CHISIM_CHECK(epidemic->writerEntries() == resumePoint->clxEntries,
                   "resumed CLX5 entry count does not match the checkpoint");
    }
    globalNext = resumePoint->hour;
  }

  const bool checkpointing = !config.checkpointDir.empty();
  Hour nextCheckpointDue = static_cast<Hour>(
      (resumePoint != nullptr ? resumePoint->hour : 0) +
      config.checkpointEveryHours);
  bool shutdownAgreed = false;

  const auto writeCheckpoint = [&](Hour now) {
    // Push buffered file bytes to the OS so everything below the recorded
    // offsets survives a kill right after the manifest commit. The
    // unflushed caches travel INSIDE the checkpoint instead of being
    // flushed — a flush here would move chunk boundaries relative to an
    // uninterrupted run and break byte-identity.
    logger.sync();
    if (epidemic) {
      epidemic->sync();
    }
    RankCheckpoint ckpt;
    ckpt.hour = now;
    ckpt.diseaseEnabled = epidemic != nullptr;
    ckpt.outcome = outcome;
    ckpt.residents.reserve(residents.size());
    for (const auto& [person, cursor] : residents) {
      AgentSnapshot agent;
      agent.person = person;
      agent.weekIndex = cursor.weekIndex();
      agent.stintIndex = cursor.index();
      if (epidemic) {
        agent.state = context.disease->state[person];
        agent.since = context.disease->since[person];
      }
      ckpt.residents.push_back(agent);
    }
    std::sort(ckpt.residents.begin(), ckpt.residents.end(),
              [](const AgentSnapshot& a, const AgentSnapshot& b) {
                return a.person < b.person;
              });
    for (Hour h = now; h <= totalHours; ++h) {
      const auto& bucket = calendar.bucket(h);
      if (!bucket.empty()) {
        ckpt.calendar.push_back(HourBucket{h, bucket});
      }
    }
    ckpt.logBytes = logger.writer().bytesWritten();
    ckpt.logEntries = logger.entriesLogged();
    ckpt.logFlushCount = logger.flushCount();
    ckpt.logCache = logger.cacheSnapshot();
    if (epidemic) {
      ckpt.clxBytes = epidemic->writerBytes();
      ckpt.clxEntries = epidemic->writerEntries();
      ckpt.clxBuffer = epidemic->bufferSnapshot();
      for (const DiseaseRank::CalendarBucket& bucket :
           epidemic->calendarSnapshot(now)) {
        ckpt.progressions.push_back(HourBucket{bucket.hour, bucket.persons});
      }
      const std::vector<std::uint32_t>& rows =
          context.disease->hourlyInfectious[static_cast<std::size_t>(self)];
      ckpt.hourlyInfectious.assign(rows.begin(), rows.begin() + now);
    }
    saveRankCheckpoint(config.checkpointDir, self, ckpt);
    ++outcome.checkpointsWritten;
    rank.barrier();
    if (self == 0) {
      commitSimManifest(config.checkpointDir,
                        SimManifest{now, rankCount, context.configHash,
                                    context.checkpointsBase +
                                        outcome.checkpointsWritten});
    }
    rank.barrier();
  };

  std::vector<std::vector<MigrantRecord>> outbound(
      static_cast<std::size_t>(rankCount));

  while (true) {
    const Hour now = globalNext;
    if (runtime::fault::armed()) {
      runtime::FaultSite site;
      site.rank = self;
      site.ordinal = now;
      runtime::fault::hit("abm.step", site);
    }
    // Quiet-hour barrier: `now` is the same on every rank (the agreed
    // active-hour sequence), so "first active hour >= the due hour" and
    // "shutdown agreed last hour" evaluate identically everywhere — the
    // checkpoint needs no extra collective beyond its commit barriers.
    if (checkpointing && now < totalHours) {
      const bool stopNow =
          shutdownAgreed || (rankCount == 1 && shutdownRequested());
      if (stopNow ||
          (config.checkpointEveryHours > 0 && now >= nextCheckpointDue)) {
        writeCheckpoint(now);
        if (stopNow) {
          // Graceful shutdown: an ordinary close. The footer (and any
          // chunk the close flushes) sits ABOVE the checkpointed offsets,
          // so the resume truncation discards it and the final bytes still
          // match an uninterrupted run.
          outcome.interrupted = true;
          logger.close();
          if (epidemic) {
            epidemic->close();
          }
          outcome.logBytes = logger.writer().bytesWritten();
          return;
        }
        nextCheckpointDue =
            static_cast<Hour>(now + config.checkpointEveryHours);
      }
    }
    ++outcome.hoursProcessed;
    const std::size_t depth =
        calendar.pending() + (epidemic ? epidemic->pendingProgressions() : 0);
    outcome.peakQueueDepth = std::max<std::uint64_t>(outcome.peakQueueDepth, depth);
    for (auto& batch : outbound) {
      batch.clear();
    }

    // Movement phase: identical traversal to the hourly core's agenda.
    auto& bucket = calendar.bucket(now);
    for (PersonId person : bucket) {
      auto it = residents.find(person);
      CHISIM_CHECK(it != residents.end(), "calendar references missing agent");
      pop::StintCursor& cursor = it->second;
      const pop::ScheduleEntry ending = cursor.current();
      CHISIM_CHECK(ending.end == now || now == totalHours,
                   "calendar hour mismatch");

      logger.log(table::Event{ending.start,
                              std::min<Hour>(ending.end, totalHours), person,
                              ending.activity, ending.place});
      ++outcome.events;

      if (now == totalHours) {
        residents.erase(it);
        continue;  // simulation over; no further movement
      }

      const pop::ScheduleEntry next = cursor.advance(generator, now);
      const int dest = placeRank[next.place];
      if (dest == self) {
        ++outcome.localMoves;
        if (epidemic) {
          epidemic->move(person, next.activity, next.place);
        }
        calendar.push(std::min<Hour>(next.end, totalHours), person);
      } else {
        ++outcome.migrationsOut;
        if (epidemic) {
          epidemic->depart(person);
        }
        outbound[static_cast<std::size_t>(dest)].push_back(
            MigrantRecord{person, cursor.weekIndex(), cursor.index(),
                          copyStints(cursor.week())});
        residents.erase(it);
      }
    }
    calendar.clearBucket(now);

    if (now == totalHours) {
      break;  // horizon reached: no exchange, no epidemic step
    }

    if (rankCount > 1) {
      // Conservative lookahead hint from what this rank knows BEFORE the
      // exchange: its remaining calendar, its scheduled progressions (plus
      // "next hour" whenever this hour could create or sustain
      // infectiousness), and — crucially — the next event of every migrant
      // it is sending away, so the union of all hints bounds every rank's
      // true next event from below. All ranks then take the same min over
      // the same hint multiset, which keeps them in lockstep without a
      // barrier or a second collective.
      Hour hint = calendar.nextOccupiedHour(now);
      if (epidemic) {
        hint = std::min(hint, epidemic->conservativeNextEvent(now, totalHours));
      }
      for (const auto& batch : outbound) {
        for (const MigrantRecord& record : batch) {
          const pop::PackedStint& stint = record.stints[record.stintIndex];
          hint = std::min(
              hint, std::min<Hour>(
                        record.weekIndex * kHoursPerWeek + stint.endHour,
                        totalHours));
          if (epidemic) {
            hint = std::min(hint, epidemic->migrantNextEvent(record.person,
                                                             now, totalHours));
          }
        }
      }

      // Shutdown agreement rides on the same exchange: each rank samples
      // its signal flag once per hour, the flags OR together across ranks,
      // and a set bit makes EVERY rank checkpoint-and-exit at the top of
      // the next agreed hour.
      const std::uint32_t flags = checkpointing && shutdownRequested()
                                      ? kBatchFlagShutdown
                                      : 0;
      const int tag =
          kEventMigrationTagBase + static_cast<int>(now % (1 << 19));
      for (int dest = 0; dest < rankCount; ++dest) {
        if (dest != self) {
          if (runtime::fault::armed()) {
            runtime::FaultSite site;
            site.rank = self;
            site.ordinal = now;
            runtime::fault::hit("abm.migrate.send", site);
          }
          rank.send(dest, tag,
                    encodeMigrationBatch(MigrationBatch{
                        now, hint, flags,
                        outbound[static_cast<std::size_t>(dest)]}));
        }
      }
      Hour candidate = hint;
      std::uint32_t combinedFlags = flags;
      for (int source = 0; source < rankCount; ++source) {
        if (source == self) {
          continue;
        }
        MigrationBatch batch =
            decodeMigrationBatch(rank.recv(source, tag).payload, now);
        CHISIM_CHECK(batch.nextEventHint > now &&
                         batch.nextEventHint <= totalHours,
                     "migration hint outside the open horizon");
        combinedFlags |= batch.flags;
        for (MigrantRecord& record : batch.migrants) {
          adopt(pop::StintCursor(record.person,
                                 pop::PackedWeek(record.weekIndex,
                                                 std::move(record.stints)),
                                 record.stintIndex),
                now);
        }
        candidate = std::min(candidate, static_cast<Hour>(batch.nextEventHint));
      }
      globalNext = candidate;
      if ((combinedFlags & kBatchFlagShutdown) != 0) {
        shutdownAgreed = true;
      }
    }

    if (epidemic) {
      epidemic->stepEvent(now, outcome.infections);
    }

    if (rankCount == 1) {
      globalNext = calendar.nextOccupiedHour(now);
      if (epidemic) {
        globalNext =
            std::min(globalNext, epidemic->conservativeNextEvent(now, totalHours));
      }
    } else {
      // The agreed hour must never land past this rank's next real event —
      // that would silently drop scheduled work.
      Hour exact = calendar.nextOccupiedHour(now);
      if (epidemic) {
        exact = std::min(exact, epidemic->conservativeNextEvent(now, totalHours));
      }
      CHISIM_CHECK(globalNext > now && globalNext <= exact,
                   "event-core lookahead would skip a scheduled event");
    }
  }

  CHISIM_CHECK(residents.empty(), "agents left after the final hour");
  logger.close();
  if (epidemic) {
    epidemic->close();
  }
  outcome.logBytes = logger.writer().bytesWritten();
  } catch (...) {
    logger.abandon();
    if (epidemic) {
      epidemic->abandon();
    }
    throw;
  }
}

}  // namespace chisimnet::abm
