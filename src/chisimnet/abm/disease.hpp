#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chisimnet/pop/types.hpp"

/// SEIR disease layer for the distributed model (paper §II: chiSIM "is an
/// extension of an infectious disease transmission model that was
/// generalized to model any kind of social interaction"; §III: the log
/// schema is extended with integer columns such as disease state).
///
/// Transmission happens per (place, hour): each susceptible occupant of a
/// place with I infectious occupants becomes exposed with probability
/// 1 - (1-beta)^I. The random draw is a hash of (seed, person, hour), so an
/// epidemic realization is *identical for any rank count* — like the
/// activity log, only its distribution over rank log files changes. State
/// transitions are recorded to per-rank CLX5 extended logs with two extra
/// columns: the new disease state and the infector person id (or
/// kNoInfector for seeds and E->I->R progressions).

namespace chisimnet::abm {

enum class SeirState : std::uint8_t {
  kSusceptible = 0,
  kExposed = 1,
  kInfectious = 2,
  kRecovered = 3,
};

std::string seirStateName(SeirState state);

inline constexpr std::uint32_t kNoInfector = static_cast<std::uint32_t>(-1);

struct DiseaseConfig {
  double beta = 0.002;               ///< per infectious contact-hour
  table::Hour latentHours = 24;      ///< E -> I
  table::Hour infectiousHours = 96;  ///< I -> R
  std::uint32_t seedCount = 5;       ///< initial infectious persons
  std::uint64_t seed = 99;           ///< transmission randomness
};

struct DiseaseStats {
  std::uint64_t seeded = 0;
  std::uint64_t infections = 0;       ///< transmission events (S -> E)
  std::uint64_t recovered = 0;        ///< completed courses by horizon
  std::uint32_t peakInfectious = 0;   ///< max simultaneous I
  table::Hour peakHour = 0;
  std::vector<std::uint32_t> hourlyInfectious;  ///< prevalence per hour
  std::vector<std::uint8_t> finalStates;        ///< per person (SeirState)

  /// Fraction of the population ever infected (excluding seeds).
  double attackRate() const noexcept {
    return finalStates.empty()
               ? 0.0
               : static_cast<double>(infections + seeded) /
                     static_cast<double>(finalStates.size());
  }
};

}  // namespace chisimnet::abm
