#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chisimnet/elog/extended.hpp"
#include "chisimnet/pop/types.hpp"

/// SEIR disease layer for the distributed model (paper §II: chiSIM "is an
/// extension of an infectious disease transmission model that was
/// generalized to model any kind of social interaction"; §III: the log
/// schema is extended with integer columns such as disease state).
///
/// Transmission happens per (place, hour): each susceptible occupant of a
/// place with I infectious occupants becomes exposed with probability
/// 1 - (1-beta)^I. The random draw is a hash of (seed, person, hour), so an
/// epidemic realization is *identical for any rank count* — like the
/// activity log, only its distribution over rank log files changes. State
/// transitions are recorded to per-rank CLX5 extended logs with two extra
/// columns: the new disease state and the infector person id (or
/// kNoInfector for seeds and E->I->R progressions).

namespace chisimnet::abm {

enum class SeirState : std::uint8_t {
  kSusceptible = 0,
  kExposed = 1,
  kInfectious = 2,
  kRecovered = 3,
};

std::string seirStateName(SeirState state);

inline constexpr std::uint32_t kNoInfector = static_cast<std::uint32_t>(-1);

struct DiseaseConfig {
  double beta = 0.002;               ///< per infectious contact-hour
  table::Hour latentHours = 24;      ///< E -> I
  table::Hour infectiousHours = 96;  ///< I -> R
  std::uint32_t seedCount = 5;       ///< initial infectious persons
  std::uint64_t seed = 99;           ///< transmission randomness
};

struct DiseaseStats {
  std::uint64_t seeded = 0;
  std::uint64_t infections = 0;       ///< transmission events (S -> E)
  std::uint64_t recovered = 0;        ///< completed courses by horizon
  std::uint32_t peakInfectious = 0;   ///< max simultaneous I
  table::Hour peakHour = 0;
  std::vector<std::uint32_t> hourlyInfectious;  ///< prevalence per hour
  std::vector<std::uint8_t> finalStates;        ///< per person (SeirState)

  /// Fraction of the population ever infected (excluding seeds).
  double attackRate() const noexcept {
    return finalStates.empty()
               ? 0.0
               : static_cast<double>(infections + seeded) /
                     static_cast<double>(finalStates.size());
  }
};

// ---------------------------------------------------------------------------
// Runtime machinery shared by the hourly and event-driven model cores. Both
// cores drive the same DiseaseRank engine through the same hooks, and the
// engine emits transitions in a canonical order (within each hour:
// progressions sorted by person id, then exposures sorted by person id), so
// the per-rank CLX5 files are byte-identical across cores AND rank counts.
// ---------------------------------------------------------------------------

/// Uniform double in [0, 1) from a hash of (seed, a, b) — rank-count
/// invariant randomness for transmission draws.
double diseaseUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

/// Shared (cross-rank) epidemic state. Each agent resides on exactly one
/// rank and only that rank reads/writes its entries; the mailbox hand-off
/// at migration provides the required happens-before ordering.
struct DiseaseShared {
  const DiseaseConfig* config = nullptr;
  std::vector<std::uint8_t> state;  ///< SeirState per person
  std::vector<table::Hour> since;   ///< hour the current state was entered
  /// hourlyInfectious[rank][hour]: I residents of that rank at that hour.
  std::vector<std::vector<std::uint32_t>> hourlyInfectious;

  bool enabled() const noexcept { return config != nullptr; }
};

/// Seeds `config->seedCount` distinct infectious persons (deterministic in
/// config->seed); returns the number seeded. Call before any rank starts.
std::uint64_t seedInfections(DiseaseShared& shared, std::size_t personCount);

/// Per-rank SEIR engine. Tracks this rank's residents (current activity and
/// place), per-place occupancy, and the infectious head-count, and writes
/// state transitions to the rank's CLX5 log.
///
/// The hourly core calls stepHourly() every hour: progression is a full
/// scan over residents and transmission a scan over all occupied places —
/// O(residents + occupied places) per hour regardless of epidemic size.
/// The event-driven core calls stepEvent() only on *active* hours:
/// progression comes from a calendar of pre-scheduled due hours (stale
/// entries are skipped) and transmission visits only places that currently
/// hold an infectious occupant — interval-based exposure accounting that
/// costs nothing while the epidemic is quiet. Both orderings produce the
/// same transitions; see stepEvent() for the equivalence argument.
class DiseaseRank {
 public:
  /// `eventCore` enables the progression calendar (sized totalHours + 1).
  /// `resumeWriterAtBytes` nonzero reopens the rank's CLX5 file for
  /// appending at that checkpoint offset instead of truncating it.
  DiseaseRank(DiseaseShared& shared, int rank,
              const std::filesystem::path& directory, table::Hour totalHours,
              bool eventCore, std::uint64_t resumeWriterAtBytes = 0);

  // ---- residency hooks (called by the model core) ----

  /// Initial adoption or migration arrival. In event mode also schedules
  /// the person's pending progression (if any) on the calendar.
  void arrive(table::PersonId person, table::ActivityId activity,
              table::PlaceId place, table::Hour now);

  /// Local move to a new place on this rank.
  void move(table::PersonId person, table::ActivityId activity,
            table::PlaceId place);

  /// Migration departure (or end-of-simulation removal).
  void depart(table::PersonId person);

  // ---- epidemic steps ----

  /// Logs this rank's seed infections (state I at hour 0), sorted by
  /// person id. Call once before the hour-0 step.
  void logSeeds();

  /// One epidemic hour in hourly mode: full progression scan, then
  /// transmission over all occupied places.
  void stepHourly(table::Hour now, std::uint64_t& infections);

  /// One epidemic hour in event mode: progression from the calendar bucket
  /// for `now`, then transmission over infectious places only.
  void stepEvent(table::Hour now, std::uint64_t& infections);

  // ---- event-core scheduling queries ----

  /// Earliest hour > `now` at which this rank's epidemic may act, from
  /// local knowledge available *before* the hour-`now` transmission phase:
  /// the next scheduled progression, plus `now + 1` when anything this
  /// hour could create or sustain infectiousness (an infectious resident
  /// now, or a progression due this hour). Conservative: may name an hour
  /// with no actual work, never misses one. Returns `limit` when idle.
  table::Hour conservativeNextEvent(table::Hour now, table::Hour limit) const;

  /// Contribution of a departing migrant to the sender's lookahead hint:
  /// earliest hour > `now` the migrant could make its destination act.
  table::Hour migrantNextEvent(table::PersonId person, table::Hour now,
                               table::Hour limit) const;

  std::size_t pendingProgressions() const noexcept {
    return pendingProgressions_;
  }
  std::uint32_t infectiousResidents() const noexcept {
    return infectiousResidents_;
  }

  void close();

  // ---- checkpoint/restart hooks (abm/sim_checkpoint) ----

  /// One non-empty progression-calendar bucket, persons in FIFO order.
  struct CalendarBucket {
    table::Hour hour = 0;
    std::vector<table::PersonId> persons;
  };

  /// All non-empty calendar buckets at hours >= `fromHour`, ascending.
  /// Bucket order is serialized verbatim: the FIFO order feeds the
  /// sort+unique in stepEvent, and pendingProgressions_ is exactly the sum
  /// of bucket sizes, so restoreCalendar rebuilds both.
  std::vector<CalendarBucket> calendarSnapshot(table::Hour fromHour) const;

  /// Unflushed CLX5 entries (checkpointing must not flush the buffer —
  /// that would move chunk boundaries vs an uninterrupted run).
  const std::vector<elog::ExtendedEvent>& bufferSnapshot() const noexcept {
    return buffer_;
  }

  std::uint64_t writerBytes() const noexcept { return writer_->bytesWritten(); }
  std::uint64_t writerEntries() const noexcept {
    return writer_->entriesWritten();
  }

  /// Resume-time residency rebuild: occupancy + infectious accounting only.
  /// Unlike arrive(), schedules NOTHING — the progression calendar is
  /// restored verbatim by restoreCalendar, and re-scheduling here would
  /// duplicate (or subtly reorder) entries the checkpoint already carries.
  void restoreResident(table::PersonId person, table::ActivityId activity,
                       table::PlaceId place);

  /// Reinstates one checkpointed calendar bucket (event core only).
  void restoreCalendar(const CalendarBucket& bucket);

  /// Reinstates the unflushed CLX5 buffer.
  void restoreBuffer(std::vector<elog::ExtendedEvent> entries);

  /// Flushes the writer's buffered bytes to the OS (called before a
  /// checkpoint records writerBytes()).
  void sync();

  /// Crash-shaped close: drops the buffer, leaves the CLX5 file without a
  /// footer so readers detect the torn file.
  void abandon();

 private:
  struct StintInfo {
    table::ActivityId activity = 0;
    table::PlaceId place = 0;
  };
  struct Transition {
    table::PersonId person = 0;
    SeirState newState = SeirState::kSusceptible;
    std::uint32_t infector = kNoInfector;
  };

  std::uint8_t stateOf(table::PersonId person) const {
    return shared_.state[person];
  }
  void occupy(table::PersonId person, table::PlaceId place);
  void vacate(table::PersonId person, table::PlaceId place);
  void addInfectiousAt(table::PlaceId place);
  void removeInfectiousAt(table::PlaceId place);
  /// First hour this person's current state progresses, given the hourly
  /// core's scan semantics (threshold floor of one hour for states entered
  /// during a scan; exact threshold for hour-0 seeds).
  table::Hour progressionDue(table::PersonId person) const;
  void scheduleProgression(table::PersonId person, table::Hour due);
  void logTransition(table::Hour now, table::PersonId person,
                     SeirState newState, std::uint32_t infector);
  /// Collects S->E exposures at one place into `out` (no state mutation).
  void collectExposures(table::Hour now,
                        const std::vector<table::PersonId>& persons,
                        std::vector<Transition>& out) const;
  /// Sorts by person id, applies and logs progressions (E->I / I->R).
  void applyProgressions(table::Hour now, std::vector<Transition>& transitions);
  /// Sorts by person id, applies and logs exposures (S->E).
  void applyExposures(table::Hour now, std::vector<Transition>& exposures,
                      std::uint64_t& infections);

  DiseaseShared& shared_;
  int rank_;
  table::Hour totalHours_;
  bool eventCore_;
  std::unique_ptr<elog::ExtendedLogWriter> writer_;
  std::vector<elog::ExtendedEvent> buffer_;
  std::unordered_map<table::PersonId, StintInfo> residents_;
  std::unordered_map<table::PlaceId, std::vector<table::PersonId>> occupants_;
  /// occupantSlot_[person]: position within occupants_[place of person] —
  /// makes vacate() an O(1) swap-remove with no hash lookups (flat array,
  /// sized to the population). Occupant order is free to permute: exposure
  /// draws key on (person, hour) and the infector argmin is
  /// order-canonical, so a swap never changes the emitted transitions.
  std::vector<std::uint32_t> occupantSlot_;
  /// Places with at least one infectious occupant -> infectious count.
  std::unordered_map<table::PlaceId, std::uint32_t> infectiousAt_;
  std::uint32_t infectiousResidents_ = 0;
  /// Event mode: progressionCalendar_[hour] -> persons possibly due then.
  std::vector<std::vector<table::PersonId>> progressionCalendar_;
  std::size_t pendingProgressions_ = 0;
};

}  // namespace chisimnet::abm
