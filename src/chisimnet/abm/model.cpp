#include "chisimnet/abm/model.hpp"

#include <fstream>
#include <memory>
#include <unordered_map>

#include "chisimnet/abm/event_core.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/scheduler.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::abm {

namespace {

using pop::kHoursPerWeek;
using pop::PersonId;
using pop::ScheduleEntry;
using table::Hour;

constexpr int kMigrationTagBase = 1 << 20;  // below the reserved collective tags

/// A resident agent in the hourly core: its current week's schedule and
/// position within it.
struct AgentCursor {
  PersonId person = 0;
  std::uint32_t week = 0;
  std::vector<ScheduleEntry> schedule;
  std::size_t index = 0;

  const ScheduleEntry& current() const { return schedule[index]; }
};

/// Loads the stint that covers hour `now` (regenerating the weekly schedule
/// as needed). Cold loads binary-search to the covering stint instead of
/// scanning from the start of the week.
AgentCursor makeCursor(PersonId person, Hour now,
                       const pop::ScheduleGenerator& generator) {
  AgentCursor cursor;
  cursor.person = person;
  cursor.week = now / kHoursPerWeek;
  cursor.schedule = generator.weeklySchedule(person, cursor.week);
  cursor.index = pop::coveringStintIndex(cursor.schedule, now);
  return cursor;
}

/// Advances past the stint ending at `now`; rolls into the next week when
/// the week is exhausted. Returns the new current stint.
const ScheduleEntry& advanceCursor(AgentCursor& cursor, Hour now,
                                   const pop::ScheduleGenerator& generator) {
  CHISIM_CHECK(cursor.current().end == now, "advance called off-boundary");
  ++cursor.index;
  if (cursor.index >= cursor.schedule.size()) {
    ++cursor.week;
    cursor.schedule = generator.weeklySchedule(cursor.person, cursor.week);
    cursor.index = 0;
  }
  CHISIM_CHECK(cursor.current().start == now, "schedule has a gap");
  return cursor.current();
}

/// Rejects unusable configurations up front, before any rank starts: a bad
/// week count, rank count, or an unusable log directory should fail as
/// std::invalid_argument at the API boundary rather than as a confusing
/// mid-run I/O error on some rank.
void validateModelConfig(const ModelConfig& config) {
  CHISIM_REQUIRE(config.rankCount >= 1, "need at least one rank");
  CHISIM_REQUIRE(config.weeks >= 1, "need at least one week");
  CHISIM_REQUIRE(!config.logDirectory.empty(), "logDirectory must be set");
  std::error_code ec;
  std::filesystem::create_directories(config.logDirectory, ec);
  CHISIM_REQUIRE(!ec && std::filesystem::is_directory(config.logDirectory),
                 "logDirectory is not a creatable directory: " +
                     config.logDirectory.string());
  // Probe writability directly: permissions are only half the story (ACLs,
  // read-only mounts), so try to create a file.
  const auto probe = config.logDirectory / ".chisim_write_probe";
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    CHISIM_REQUIRE(out.good(), "logDirectory is not writable: " +
                                   config.logDirectory.string());
  }
  std::filesystem::remove(probe, ec);
}

/// One rank of the hourly (reference) core: tick every hour, agents in
/// transition move, the epidemic layer scans every resident and occupied
/// place each hour.
void runHourlyRank(runtime::RankHandle& rank, const EventCoreContext& context,
                   RankOutcome& outcome) {
  const int self = rank.rank();
  const ModelConfig& config = *context.config;
  const pop::ScheduleGenerator& generator = *context.generator;
  const std::vector<int>& placeRank = *context.placeRank;
  const Hour totalHours = context.totalHours;

  elog::EventLogger logger(
      std::make_unique<elog::ChunkedLogWriter>(
          elog::logFilePath(config.logDirectory, self), config.logCompression),
      config.logCacheEntries);

  std::unique_ptr<DiseaseRank> epidemic;
  if (context.disease->enabled()) {
    epidemic = std::make_unique<DiseaseRank>(*context.disease, self,
                                             config.logDirectory, totalHours,
                                             /*eventCore=*/false);
  }

  // Agents whose current place this rank owns, plus an agenda of stint
  // end hours -> persons, so each step touches only agents in transition.
  std::unordered_map<PersonId, AgentCursor> residents;
  std::vector<std::vector<PersonId>> agenda(totalHours + 1);

  const auto adopt = [&](AgentCursor cursor, Hour now) {
    const Hour due = std::min<Hour>(cursor.current().end, totalHours);
    agenda[due].push_back(cursor.person);
    if (epidemic) {
      epidemic->arrive(cursor.person, cursor.current().activity,
                       cursor.current().place, now);
    }
    residents.emplace(cursor.person, std::move(cursor));
  };

  // Initial residency from the first stint of week 0.
  for (const pop::Person& person : context.population->persons()) {
    AgentCursor cursor = makeCursor(person.id, 0, generator);
    if (placeRank[cursor.current().place] == self) {
      adopt(std::move(cursor), 0);
    }
  }
  outcome.initialAgents = residents.size();

  if (epidemic) {
    // Record the seed infections owned by this rank, then run hour 0.
    epidemic->logSeeds();
    epidemic->stepHourly(0, outcome.infections);
  }

  std::vector<std::vector<std::uint32_t>> outbound(
      static_cast<std::size_t>(rank.size()));

  // Each rank drives its hour loop from a Repast-style tick schedule: the
  // movement/logging action runs at normal priority each hour, the
  // epidemic action late in the same tick (after migrants have arrived).
  runtime::Scheduler scheduler;
  const auto hourAction = [&](runtime::Tick tick) {
    const Hour now = static_cast<Hour>(tick);
    ++outcome.hoursProcessed;
    for (auto& bucket : outbound) {
      bucket.clear();
    }

    for (PersonId personId : agenda[now]) {
      auto it = residents.find(personId);
      CHISIM_CHECK(it != residents.end(), "agenda references missing agent");
      AgentCursor& cursor = it->second;
      const ScheduleEntry ending = cursor.current();
      CHISIM_CHECK(ending.end == now || now == totalHours,
                   "agenda hour mismatch");

      // Event-based logging: the stint is recorded when it ends
      // (clipped to the simulation horizon).
      logger.log(table::Event{ending.start,
                              std::min<Hour>(ending.end, totalHours),
                              personId, ending.activity, ending.place});
      ++outcome.events;

      if (now == totalHours) {
        residents.erase(it);
        continue;  // simulation over; no further movement
      }

      const ScheduleEntry& next = advanceCursor(cursor, now, generator);
      const int dest = placeRank[next.place];
      if (dest == self) {
        ++outcome.localMoves;
        if (epidemic) {
          epidemic->move(personId, next.activity, next.place);
        }
        agenda[std::min<Hour>(next.end, totalHours)].push_back(personId);
      } else {
        ++outcome.migrationsOut;
        if (epidemic) {
          epidemic->depart(personId);
        }
        outbound[static_cast<std::size_t>(dest)].push_back(personId);
        residents.erase(it);
      }
    }

    if (now == totalHours) {
      scheduler.stop();  // simulation horizon: skip exchange and epidemic
      return;
    }

    // Exchange migrants: every rank sends to every other rank each step
    // (possibly empty), so receive counts are deterministic.
    const int tag = kMigrationTagBase + static_cast<int>(now % (1 << 19));
    for (int dest = 0; dest < rank.size(); ++dest) {
      if (dest != self) {
        rank.sendVector<std::uint32_t>(
            dest, tag, outbound[static_cast<std::size_t>(dest)]);
      }
    }
    for (int source = 0; source < rank.size(); ++source) {
      if (source == self) {
        continue;
      }
      const runtime::Message message = rank.recv(source, tag);
      for (std::uint32_t personId : message.as<std::uint32_t>()) {
        adopt(makeCursor(personId, now, generator), now);
      }
    }
  };
  scheduler.scheduleRepeating(1, 1, hourAction, runtime::Scheduler::kNormal);
  if (epidemic) {
    scheduler.scheduleRepeating(
        1, 1,
        [&](runtime::Tick tick) {
          epidemic->stepHourly(static_cast<Hour>(tick), outcome.infections);
        },
        runtime::Scheduler::kLate);
  }
  scheduler.run(totalHours);

  CHISIM_CHECK(residents.empty(), "agents left after the final hour");
  logger.close();
  if (epidemic) {
    epidemic->close();
  }
  outcome.logBytes = logger.writer().bytesWritten();
}

ModelStats runModelImpl(const pop::SyntheticPopulation& population,
                        const ModelConfig& config, DiseaseShared& disease,
                        DiseaseStats* diseaseStats) {
  validateModelConfig(config);

  const std::vector<int> placeRank =
      assignPlacesToRanks(population, config.rankCount, config.strategy);
  const pop::ScheduleGenerator generator(population, config.scheduleSeed);
  const Hour totalHours = config.weeks * kHoursPerWeek;

  std::uint64_t seeded = 0;
  if (disease.enabled()) {
    const std::size_t personCount = population.persons().size();
    disease.state.assign(personCount,
                         static_cast<std::uint8_t>(SeirState::kSusceptible));
    disease.since.assign(personCount, 0);
    disease.hourlyInfectious.assign(
        static_cast<std::size_t>(config.rankCount),
        std::vector<std::uint32_t>(totalHours + 1, 0));
    seeded = seedInfections(disease, personCount);
  }

  EventCoreContext context;
  context.population = &population;
  context.config = &config;
  context.placeRank = &placeRank;
  context.generator = &generator;
  context.disease = &disease;
  context.totalHours = totalHours;

  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(config.rankCount));
  util::WallTimer wall;

  runtime::Communicator::run(config.rankCount, [&](runtime::RankHandle& rank) {
    RankOutcome& outcome = outcomes[static_cast<std::size_t>(rank.rank())];
    if (config.core == ModelCore::kEventDriven) {
      runEventCoreRank(rank, context, outcome);
    } else {
      runHourlyRank(rank, context, outcome);
    }
  });

  ModelStats stats;
  stats.simulatedHours = totalHours;
  stats.wallSeconds = wall.seconds();
  stats.agentHours =
      static_cast<std::uint64_t>(population.persons().size()) * totalHours;
  stats.perRankEvents.reserve(outcomes.size());
  stats.perRankMigrationsOut.reserve(outcomes.size());
  stats.perRankInitialAgents.reserve(outcomes.size());
  for (const RankOutcome& outcome : outcomes) {
    stats.eventsLogged += outcome.events;
    stats.migrations += outcome.migrationsOut;
    stats.localMoves += outcome.localMoves;
    stats.logBytes += outcome.logBytes;
    stats.hoursActive = std::max(stats.hoursActive, outcome.hoursProcessed);
    stats.peakQueueDepth = std::max(stats.peakQueueDepth, outcome.peakQueueDepth);
    stats.perRankEvents.push_back(outcome.events);
    stats.perRankMigrationsOut.push_back(outcome.migrationsOut);
    stats.perRankInitialAgents.push_back(outcome.initialAgents);
  }

  if (disease.enabled() && diseaseStats != nullptr) {
    DiseaseStats& out = *diseaseStats;
    out = DiseaseStats{};
    out.seeded = seeded;
    for (const RankOutcome& outcome : outcomes) {
      out.infections += outcome.infections;
    }
    out.hourlyInfectious.assign(totalHours + 1, 0);
    for (const auto& perRank : disease.hourlyInfectious) {
      for (Hour h = 0; h <= totalHours; ++h) {
        out.hourlyInfectious[h] += perRank[h];
      }
    }
    for (Hour h = 0; h <= totalHours; ++h) {
      if (out.hourlyInfectious[h] > out.peakInfectious) {
        out.peakInfectious = out.hourlyInfectious[h];
        out.peakHour = h;
      }
    }
    out.finalStates = disease.state;
    for (std::uint8_t state : out.finalStates) {
      out.recovered +=
          state == static_cast<std::uint8_t>(SeirState::kRecovered) ? 1 : 0;
    }
  }
  return stats;
}

}  // namespace

ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config) {
  DiseaseShared noDisease;
  return runModelImpl(population, config, noDisease, nullptr);
}

ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config, const DiseaseConfig& disease,
                    DiseaseStats& diseaseStats) {
  DiseaseShared shared;
  shared.config = &disease;
  return runModelImpl(population, config, shared, &diseaseStats);
}

}  // namespace chisimnet::abm
