#include "chisimnet/abm/model.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <unordered_map>

#include "chisimnet/abm/event_core.hpp"
#include "chisimnet/abm/migration.hpp"
#include "chisimnet/abm/sim_checkpoint.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/scheduler.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::abm {

namespace {

using pop::kHoursPerWeek;
using pop::PersonId;
using pop::ScheduleEntry;
using table::Hour;

constexpr int kMigrationTagBase = 1 << 20;  // below the reserved collective tags

/// A resident agent in the hourly core: its current week's schedule and
/// position within it.
struct AgentCursor {
  PersonId person = 0;
  std::uint32_t week = 0;
  std::vector<ScheduleEntry> schedule;
  std::size_t index = 0;

  const ScheduleEntry& current() const { return schedule[index]; }
};

/// Loads the stint that covers hour `now` (regenerating the weekly schedule
/// as needed). Cold loads binary-search to the covering stint instead of
/// scanning from the start of the week.
AgentCursor makeCursor(PersonId person, Hour now,
                       const pop::ScheduleGenerator& generator) {
  AgentCursor cursor;
  cursor.person = person;
  cursor.week = now / kHoursPerWeek;
  cursor.schedule = generator.weeklySchedule(person, cursor.week);
  cursor.index = pop::coveringStintIndex(cursor.schedule, now);
  return cursor;
}

/// Advances past the stint ending at `now`; rolls into the next week when
/// the week is exhausted. Returns the new current stint.
const ScheduleEntry& advanceCursor(AgentCursor& cursor, Hour now,
                                   const pop::ScheduleGenerator& generator) {
  CHISIM_CHECK(cursor.current().end == now, "advance called off-boundary");
  ++cursor.index;
  if (cursor.index >= cursor.schedule.size()) {
    ++cursor.week;
    cursor.schedule = generator.weeklySchedule(cursor.person, cursor.week);
    cursor.index = 0;
  }
  CHISIM_CHECK(cursor.current().start == now, "schedule has a gap");
  return cursor.current();
}

/// Rejects unusable configurations up front, before any rank starts: a bad
/// week count, rank count, or an unusable log directory should fail as
/// std::invalid_argument at the API boundary rather than as a confusing
/// mid-run I/O error on some rank.
void validateModelConfig(const ModelConfig& config) {
  CHISIM_REQUIRE(config.rankCount >= 1, "need at least one rank");
  CHISIM_REQUIRE(config.weeks >= 1, "need at least one week");
  CHISIM_REQUIRE(!config.logDirectory.empty(), "logDirectory must be set");
  std::error_code ec;
  std::filesystem::create_directories(config.logDirectory, ec);
  CHISIM_REQUIRE(!ec && std::filesystem::is_directory(config.logDirectory),
                 "logDirectory is not a creatable directory: " +
                     config.logDirectory.string());
  // Probe writability directly: permissions are only half the story (ACLs,
  // read-only mounts), so try to create a file.
  const auto probe = config.logDirectory / ".chisim_write_probe";
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    CHISIM_REQUIRE(out.good(), "logDirectory is not writable: " +
                                   config.logDirectory.string());
  }
  std::filesystem::remove(probe, ec);
  CHISIM_REQUIRE(config.checkpointEveryHours == 0 ||
                     !config.checkpointDir.empty(),
                 "checkpointEveryHours requires checkpointDir");
  CHISIM_REQUIRE(!config.resume || !config.checkpointDir.empty(),
                 "resume requires checkpointDir");
}

/// One rank of the hourly (reference) core: tick every hour, agents in
/// transition move, the epidemic layer scans every resident and occupied
/// place each hour.
void runHourlyRank(runtime::RankHandle& rank, const EventCoreContext& context,
                   RankOutcome& outcome) {
  const int self = rank.rank();
  const ModelConfig& config = *context.config;
  const pop::ScheduleGenerator& generator = *context.generator;
  const std::vector<int>& placeRank = *context.placeRank;
  const Hour totalHours = context.totalHours;

  const RankCheckpoint* resumePoint =
      context.resume != nullptr
          ? &context.resume->ranks.at(static_cast<std::size_t>(self))
          : nullptr;

  auto writer =
      resumePoint != nullptr
          ? std::make_unique<elog::ChunkedLogWriter>(
                elog::logFilePath(config.logDirectory, self),
                config.logCompression,
                elog::ChunkedLogWriter::ResumeAt{resumePoint->logBytes})
          : std::make_unique<elog::ChunkedLogWriter>(
                elog::logFilePath(config.logDirectory, self),
                config.logCompression);
  elog::EventLogger logger(std::move(writer), config.logCacheEntries);
  logger.setFaultRank(self);

  std::unique_ptr<DiseaseRank> epidemic;
  if (context.disease->enabled()) {
    epidemic = std::make_unique<DiseaseRank>(
        *context.disease, self, config.logDirectory, totalHours,
        /*eventCore=*/false,
        resumePoint != nullptr ? resumePoint->clxBytes : 0);
  }

  // A failing rank (fault injection, I/O error, a peer's abort waking our
  // recv) must leave crash-shaped logs — no footer — so readers treat them
  // exactly like a SIGKILL's torn files.
  try {
  // Agents whose current place this rank owns, plus an agenda of stint
  // end hours -> persons, so each step touches only agents in transition.
  std::unordered_map<PersonId, AgentCursor> residents;
  std::vector<std::vector<PersonId>> agenda(totalHours + 1);

  const auto adopt = [&](AgentCursor cursor, Hour now) {
    const Hour due = std::min<Hour>(cursor.current().end, totalHours);
    agenda[due].push_back(cursor.person);
    if (epidemic) {
      epidemic->arrive(cursor.person, cursor.current().activity,
                       cursor.current().place, now);
    }
    residents.emplace(cursor.person, std::move(cursor));
  };

  if (resumePoint == nullptr) {
    // Initial residency from the first stint of week 0.
    for (const pop::Person& person : context.population->persons()) {
      AgentCursor cursor = makeCursor(person.id, 0, generator);
      if (placeRank[cursor.current().place] == self) {
        adopt(std::move(cursor), 0);
      }
    }
    outcome.initialAgents = residents.size();

    if (epidemic) {
      // Record the seed infections owned by this rank, then run hour 0.
      epidemic->logSeeds();
      epidemic->stepHourly(0, outcome.infections);
    }
  } else {
    // Resume: counters, cursors, agenda buckets and the unflushed log
    // caches come from the checkpoint; weekly schedules regenerate exactly
    // from (person, weekIndex). No seeding replay, no hour-0 step — the
    // hours below the checkpoint are already on disk.
    outcome = resumePoint->outcome;
    logger.restoreCache(resumePoint->logCache, resumePoint->logEntries,
                        resumePoint->logFlushCount);
    for (const AgentSnapshot& agent : resumePoint->residents) {
      AgentCursor cursor;
      cursor.person = agent.person;
      cursor.week = agent.weekIndex;
      cursor.schedule = generator.weeklySchedule(agent.person, agent.weekIndex);
      cursor.index = agent.stintIndex;
      if (epidemic) {
        epidemic->restoreResident(agent.person, cursor.current().activity,
                                  cursor.current().place);
      }
      residents.emplace(agent.person, std::move(cursor));
    }
    for (const HourBucket& bucket : resumePoint->calendar) {
      for (PersonId person : bucket.persons) {
        agenda[bucket.hour].push_back(person);
      }
    }
    if (epidemic) {
      // The hourly engine has no progression calendar; only the unflushed
      // CLX5 buffer needs reinstating.
      epidemic->restoreBuffer(resumePoint->clxBuffer);
      CHISIM_CHECK(epidemic->writerEntries() == resumePoint->clxEntries,
                   "resumed CLX5 entry count does not match the checkpoint");
    }
  }

  const bool checkpointing = !config.checkpointDir.empty();
  Hour nextCheckpointDue = static_cast<Hour>(
      (resumePoint != nullptr ? resumePoint->hour : 0) +
      config.checkpointEveryHours);
  bool shutdownAgreed = false;

  const auto writeCheckpoint = [&](Hour now) {
    // Buffered file bytes go to the OS so everything below the recorded
    // offsets survives a kill right after the manifest commit; the
    // unflushed caches travel inside the checkpoint (a flush here would
    // move chunk boundaries vs an uninterrupted run).
    logger.sync();
    if (epidemic) {
      epidemic->sync();
    }
    RankCheckpoint ckpt;
    ckpt.hour = now;
    ckpt.diseaseEnabled = epidemic != nullptr;
    ckpt.outcome = outcome;
    ckpt.residents.reserve(residents.size());
    for (const auto& [person, cursor] : residents) {
      AgentSnapshot agent;
      agent.person = person;
      agent.weekIndex = cursor.week;
      agent.stintIndex = static_cast<std::uint32_t>(cursor.index);
      if (epidemic) {
        agent.state = context.disease->state[person];
        agent.since = context.disease->since[person];
      }
      ckpt.residents.push_back(agent);
    }
    std::sort(ckpt.residents.begin(), ckpt.residents.end(),
              [](const AgentSnapshot& a, const AgentSnapshot& b) {
                return a.person < b.person;
              });
    for (Hour h = now; h <= totalHours; ++h) {
      if (!agenda[h].empty()) {
        ckpt.calendar.push_back(HourBucket{h, agenda[h]});
      }
    }
    ckpt.logBytes = logger.writer().bytesWritten();
    ckpt.logEntries = logger.entriesLogged();
    ckpt.logFlushCount = logger.flushCount();
    ckpt.logCache = logger.cacheSnapshot();
    if (epidemic) {
      ckpt.clxBytes = epidemic->writerBytes();
      ckpt.clxEntries = epidemic->writerEntries();
      ckpt.clxBuffer = epidemic->bufferSnapshot();
      const std::vector<std::uint32_t>& rows =
          context.disease->hourlyInfectious[static_cast<std::size_t>(self)];
      ckpt.hourlyInfectious.assign(rows.begin(), rows.begin() + now);
    }
    saveRankCheckpoint(config.checkpointDir, self, ckpt);
    ++outcome.checkpointsWritten;
    rank.barrier();
    if (self == 0) {
      commitSimManifest(config.checkpointDir,
                        SimManifest{now, rank.size(), context.configHash,
                                    context.checkpointsBase +
                                        outcome.checkpointsWritten});
    }
    rank.barrier();
  };

  std::vector<std::vector<std::uint32_t>> outbound(
      static_cast<std::size_t>(rank.size()));

  // Each rank drives its hour loop from a Repast-style tick schedule: the
  // movement/logging action runs at normal priority each hour, the
  // epidemic action late in the same tick (after migrants have arrived).
  runtime::Scheduler scheduler;
  const auto hourAction = [&](runtime::Tick tick) {
    const Hour now = static_cast<Hour>(tick);
    if (runtime::fault::armed()) {
      runtime::FaultSite site;
      site.rank = self;
      site.ordinal = now;
      runtime::fault::hit("abm.step", site);
    }
    // Checkpoint at the top of the hour, before this hour's movement and
    // epidemic actions touch any state — exactly what the resumed loop
    // will redo.
    if (checkpointing && now < totalHours) {
      const bool stopNow =
          shutdownAgreed || (rank.size() == 1 && shutdownRequested());
      if (stopNow ||
          (config.checkpointEveryHours > 0 && now >= nextCheckpointDue)) {
        writeCheckpoint(now);
        if (stopNow) {
          // Graceful shutdown: ordinary close. The footer lands above the
          // checkpointed offsets; resume truncation removes it. stop()
          // also cancels this tick's kLate epidemic action.
          outcome.interrupted = true;
          logger.close();
          if (epidemic) {
            epidemic->close();
          }
          outcome.logBytes = logger.writer().bytesWritten();
          scheduler.stop();
          return;
        }
        nextCheckpointDue =
            static_cast<Hour>(now + config.checkpointEveryHours);
      }
    }
    ++outcome.hoursProcessed;
    for (auto& bucket : outbound) {
      bucket.clear();
    }

    for (PersonId personId : agenda[now]) {
      auto it = residents.find(personId);
      CHISIM_CHECK(it != residents.end(), "agenda references missing agent");
      AgentCursor& cursor = it->second;
      const ScheduleEntry ending = cursor.current();
      CHISIM_CHECK(ending.end == now || now == totalHours,
                   "agenda hour mismatch");

      // Event-based logging: the stint is recorded when it ends
      // (clipped to the simulation horizon).
      logger.log(table::Event{ending.start,
                              std::min<Hour>(ending.end, totalHours),
                              personId, ending.activity, ending.place});
      ++outcome.events;

      if (now == totalHours) {
        residents.erase(it);
        continue;  // simulation over; no further movement
      }

      const ScheduleEntry& next = advanceCursor(cursor, now, generator);
      const int dest = placeRank[next.place];
      if (dest == self) {
        ++outcome.localMoves;
        if (epidemic) {
          epidemic->move(personId, next.activity, next.place);
        }
        agenda[std::min<Hour>(next.end, totalHours)].push_back(personId);
      } else {
        ++outcome.migrationsOut;
        if (epidemic) {
          epidemic->depart(personId);
        }
        outbound[static_cast<std::size_t>(dest)].push_back(personId);
        residents.erase(it);
      }
    }

    if (now == totalHours) {
      scheduler.stop();  // simulation horizon: skip exchange and epidemic
      return;
    }

    // Exchange migrants: every rank sends to every other rank each step
    // (possibly empty), so receive counts are deterministic. Word 0 of the
    // payload carries the shutdown-agreement flags (kBatchFlagShutdown);
    // person ids follow. The flags OR together across ranks, so a signal
    // on any rank makes EVERY rank checkpoint-and-exit at the top of the
    // next hour.
    const std::uint32_t flags =
        checkpointing && shutdownRequested() ? kBatchFlagShutdown : 0;
    const int tag = kMigrationTagBase + static_cast<int>(now % (1 << 19));
    for (int dest = 0; dest < rank.size(); ++dest) {
      if (dest != self) {
        if (runtime::fault::armed()) {
          runtime::FaultSite site;
          site.rank = self;
          site.ordinal = now;
          runtime::fault::hit("abm.migrate.send", site);
        }
        std::vector<std::uint32_t> wire;
        wire.reserve(1 + outbound[static_cast<std::size_t>(dest)].size());
        wire.push_back(flags);
        wire.insert(wire.end(),
                    outbound[static_cast<std::size_t>(dest)].begin(),
                    outbound[static_cast<std::size_t>(dest)].end());
        rank.sendVector<std::uint32_t>(dest, tag, wire);
      }
    }
    std::uint32_t combinedFlags = flags;
    for (int source = 0; source < rank.size(); ++source) {
      if (source == self) {
        continue;
      }
      const runtime::Message message = rank.recv(source, tag);
      const std::vector<std::uint32_t> wire = message.as<std::uint32_t>();
      CHISIM_CHECK(!wire.empty(), "migration payload missing the flags word");
      combinedFlags |= wire[0];
      for (std::size_t i = 1; i < wire.size(); ++i) {
        adopt(makeCursor(wire[i], now, generator), now);
      }
    }
    if ((combinedFlags & kBatchFlagShutdown) != 0) {
      shutdownAgreed = true;
    }
  };
  // A fresh run ticks from hour 1; a resumed run from the checkpoint hour
  // (hours below it are already on disk).
  const runtime::Tick firstTick =
      resumePoint != nullptr ? resumePoint->hour : 1;
  scheduler.scheduleRepeating(firstTick, 1, hourAction,
                              runtime::Scheduler::kNormal);
  if (epidemic) {
    scheduler.scheduleRepeating(
        firstTick, 1,
        [&](runtime::Tick tick) {
          epidemic->stepHourly(static_cast<Hour>(tick), outcome.infections);
        },
        runtime::Scheduler::kLate);
  }
  scheduler.run(totalHours);

  if (outcome.interrupted) {
    return;  // checkpointed and closed inside the stopping hour action
  }
  CHISIM_CHECK(residents.empty(), "agents left after the final hour");
  logger.close();
  if (epidemic) {
    epidemic->close();
  }
  outcome.logBytes = logger.writer().bytesWritten();
  } catch (...) {
    logger.abandon();
    if (epidemic) {
      epidemic->abandon();
    }
    throw;
  }
}

ModelStats runModelImpl(const pop::SyntheticPopulation& population,
                        const ModelConfig& config, DiseaseShared& disease,
                        DiseaseStats* diseaseStats) {
  validateModelConfig(config);

  const std::vector<int> placeRank =
      assignPlacesToRanks(population, config.rankCount, config.strategy);
  const pop::ScheduleGenerator generator(population, config.scheduleSeed);
  const Hour totalHours = config.weeks * kHoursPerWeek;

  std::uint64_t seeded = 0;
  if (disease.enabled()) {
    const std::size_t personCount = population.persons().size();
    disease.state.assign(personCount,
                         static_cast<std::uint8_t>(SeirState::kSusceptible));
    disease.since.assign(personCount, 0);
    disease.hourlyInfectious.assign(
        static_cast<std::size_t>(config.rankCount),
        std::vector<std::uint32_t>(totalHours + 1, 0));
    seeded = seedInfections(disease, personCount);
  }

  const std::uint32_t configHash =
      simConfigHash(population.persons().size(), population.places().size(),
                    config, disease.config);

  // Resume: a committed checkpoint in checkpointDir restarts the run at the
  // manifest hour; no manifest means a fresh start (first launch with
  // --resume already set, or a run killed before its first checkpoint).
  std::optional<SimResume> resume;
  if (config.resume) {
    resume = loadSimResume(config.checkpointDir, config.rankCount, configHash);
  }
  if (resume.has_value() && disease.enabled()) {
    // Seeding already ran (deterministically); overwrite with the
    // checkpointed epidemic. The rank records partition the population —
    // every person resides on exactly one rank — so together they cover
    // every (state, since) entry; each rank also restores its own
    // prevalence rows below the checkpoint hour.
    for (std::size_t rankIndex = 0; rankIndex < resume->ranks.size();
         ++rankIndex) {
      const RankCheckpoint& ckpt = resume->ranks[rankIndex];
      CHISIM_CHECK(ckpt.diseaseEnabled,
                   "checkpoint was written without the disease layer");
      for (const AgentSnapshot& agent : ckpt.residents) {
        disease.state[agent.person] = static_cast<std::uint8_t>(agent.state);
        disease.since[agent.person] = agent.since;
      }
      std::vector<std::uint32_t>& rows = disease.hourlyInfectious[rankIndex];
      CHISIM_CHECK(ckpt.hourlyInfectious.size() <= rows.size(),
                   "checkpoint prevalence rows exceed the horizon");
      std::copy(ckpt.hourlyInfectious.begin(), ckpt.hourlyInfectious.end(),
                rows.begin());
    }
  }
  if (resume.has_value()) {
    for (const RankCheckpoint& ckpt : resume->ranks) {
      CHISIM_CHECK(ckpt.diseaseEnabled == disease.enabled(),
                   "checkpoint disease layer does not match this run");
    }
  }

  EventCoreContext context;
  context.population = &population;
  context.config = &config;
  context.placeRank = &placeRank;
  context.generator = &generator;
  context.disease = &disease;
  context.totalHours = totalHours;
  context.resume = resume.has_value() ? &*resume : nullptr;
  context.configHash = configHash;
  context.checkpointsBase =
      resume.has_value() ? resume->manifest.checkpointsWritten : 0;

  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(config.rankCount));
  util::WallTimer wall;

  runtime::Communicator::run(config.rankCount, [&](runtime::RankHandle& rank) {
    RankOutcome& outcome = outcomes[static_cast<std::size_t>(rank.rank())];
    if (config.core == ModelCore::kEventDriven) {
      runEventCoreRank(rank, context, outcome);
    } else {
      runHourlyRank(rank, context, outcome);
    }
  });

  ModelStats stats;
  stats.simulatedHours = totalHours;
  stats.wallSeconds = wall.seconds();
  stats.resumed = resume.has_value();
  stats.hoursReplayed = resume.has_value() ? resume->manifest.hour : 0;
  // Every rank writes each checkpoint (the commit barriers keep them in
  // lockstep), so rank 0's count is THE count; the base carries totals
  // from before the resume.
  stats.checkpointsWritten =
      context.checkpointsBase + outcomes[0].checkpointsWritten;
  stats.agentHours =
      static_cast<std::uint64_t>(population.persons().size()) * totalHours;
  stats.perRankEvents.reserve(outcomes.size());
  stats.perRankMigrationsOut.reserve(outcomes.size());
  stats.perRankInitialAgents.reserve(outcomes.size());
  for (const RankOutcome& outcome : outcomes) {
    stats.eventsLogged += outcome.events;
    stats.migrations += outcome.migrationsOut;
    stats.localMoves += outcome.localMoves;
    stats.logBytes += outcome.logBytes;
    stats.interrupted = stats.interrupted || outcome.interrupted;
    stats.hoursActive = std::max(stats.hoursActive, outcome.hoursProcessed);
    stats.peakQueueDepth = std::max(stats.peakQueueDepth, outcome.peakQueueDepth);
    stats.perRankEvents.push_back(outcome.events);
    stats.perRankMigrationsOut.push_back(outcome.migrationsOut);
    stats.perRankInitialAgents.push_back(outcome.initialAgents);
  }

  if (disease.enabled() && diseaseStats != nullptr) {
    DiseaseStats& out = *diseaseStats;
    out = DiseaseStats{};
    out.seeded = seeded;
    for (const RankOutcome& outcome : outcomes) {
      out.infections += outcome.infections;
    }
    out.hourlyInfectious.assign(totalHours + 1, 0);
    for (const auto& perRank : disease.hourlyInfectious) {
      for (Hour h = 0; h <= totalHours; ++h) {
        out.hourlyInfectious[h] += perRank[h];
      }
    }
    for (Hour h = 0; h <= totalHours; ++h) {
      if (out.hourlyInfectious[h] > out.peakInfectious) {
        out.peakInfectious = out.hourlyInfectious[h];
        out.peakHour = h;
      }
    }
    out.finalStates = disease.state;
    for (std::uint8_t state : out.finalStates) {
      out.recovered +=
          state == static_cast<std::uint8_t>(SeirState::kRecovered) ? 1 : 0;
    }
  }
  return stats;
}

}  // namespace

ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config) {
  DiseaseShared noDisease;
  return runModelImpl(population, config, noDisease, nullptr);
}

ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config, const DiseaseConfig& disease,
                    DiseaseStats& diseaseStats) {
  DiseaseShared shared;
  shared.config = &disease;
  return runModelImpl(population, config, shared, &diseaseStats);
}

}  // namespace chisimnet::abm
