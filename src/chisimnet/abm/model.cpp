#include "chisimnet/abm/model.hpp"

#include <cmath>
#include <memory>
#include <unordered_map>

#include "chisimnet/elog/extended.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/scheduler.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/rng.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::abm {

namespace {

using pop::kHoursPerWeek;
using pop::PersonId;
using pop::PlaceId;
using pop::ScheduleEntry;
using table::Hour;

constexpr int kMigrationTagBase = 1 << 20;  // below the reserved collective tags

/// A resident agent: its current week's schedule and position within it.
struct AgentCursor {
  PersonId person = 0;
  std::uint32_t week = 0;
  std::vector<ScheduleEntry> schedule;
  std::size_t index = 0;

  const ScheduleEntry& current() const { return schedule[index]; }
};

/// Loads the stint that covers hour `now` (regenerating the weekly schedule
/// as needed).
AgentCursor makeCursor(PersonId person, Hour now,
                       const pop::ScheduleGenerator& generator) {
  AgentCursor cursor;
  cursor.person = person;
  cursor.week = now / kHoursPerWeek;
  cursor.schedule = generator.weeklySchedule(person, cursor.week);
  cursor.index = 0;
  while (cursor.current().end <= now) {
    ++cursor.index;
    CHISIM_CHECK(cursor.index < cursor.schedule.size(),
                 "schedule does not cover the requested hour");
  }
  return cursor;
}

/// Advances past the stint ending at `now`; rolls into the next week when
/// the week is exhausted. Returns the new current stint.
const ScheduleEntry& advanceCursor(AgentCursor& cursor, Hour now,
                                   const pop::ScheduleGenerator& generator) {
  CHISIM_CHECK(cursor.current().end == now, "advance called off-boundary");
  ++cursor.index;
  if (cursor.index >= cursor.schedule.size()) {
    ++cursor.week;
    cursor.schedule = generator.weeklySchedule(cursor.person, cursor.week);
    cursor.index = 0;
  }
  CHISIM_CHECK(cursor.current().start == now, "schedule has a gap");
  return cursor.current();
}

struct RankOutcome {
  std::uint64_t events = 0;
  std::uint64_t migrationsOut = 0;
  std::uint64_t localMoves = 0;
  std::uint64_t initialAgents = 0;
  std::uint64_t logBytes = 0;
  std::uint64_t infections = 0;
};

/// Uniform double in [0, 1) from a hash of (seed, a, b) — rank-count
/// invariant randomness for transmission draws.
double hashUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t state =
      seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xbf58476d1ce4e5b9ULL);
  return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Shared (cross-rank) epidemic state. Each agent resides on exactly one
/// rank and only that rank reads/writes its entries; the mailbox hand-off
/// at migration provides the required happens-before ordering.
struct DiseaseShared {
  const DiseaseConfig* config = nullptr;
  std::vector<std::uint8_t> state;  ///< SeirState per person
  std::vector<Hour> since;          ///< hour the current state was entered
  /// hourlyInfectious[rank][hour]: I residents of that rank at that hour.
  std::vector<std::vector<std::uint32_t>> hourlyInfectious;

  bool enabled() const noexcept { return config != nullptr; }
};

/// Per-rank epidemic bookkeeping: who is at which owned place right now,
/// and the extended log of state transitions.
class DiseaseRank {
 public:
  DiseaseRank(DiseaseShared& shared, int rank,
              const std::filesystem::path& directory)
      : shared_(shared), rank_(rank) {
    char name[32];
    std::snprintf(name, sizeof(name), "rank_%04d.clx5", rank);
    writer_ = std::make_unique<elog::ExtendedLogWriter>(directory / name, 2);
  }

  void occupy(PersonId person, PlaceId place) {
    occupants_[place].push_back(person);
  }

  void vacate(PersonId person, PlaceId place) {
    auto& list = occupants_[place];
    for (auto& occupant : list) {
      if (occupant == person) {
        occupant = list.back();
        list.pop_back();
        return;
      }
    }
    CHISIM_CHECK(false, "vacate: person not present at place");
  }

  void logTransition(Hour now, const AgentCursor& cursor, SeirState newState,
                     std::uint32_t infector, RankOutcome& outcome) {
    elog::ExtendedEvent entry;
    entry.base = table::Event{now, now + 1, cursor.person,
                              cursor.current().activity,
                              cursor.current().place};
    entry.extras = {static_cast<std::uint32_t>(newState), infector};
    buffer_.push_back(std::move(entry));
    if (buffer_.size() >= 4096) {
      writer_->writeChunk(buffer_);
      buffer_.clear();
    }
    if (newState == SeirState::kExposed && infector != kNoInfector) {
      ++outcome.infections;
    }
  }

  /// One epidemic hour covering [now, now+1): progress E->I->R for this
  /// rank's residents, then transmit within each owned place.
  void step(Hour now, std::unordered_map<PersonId, AgentCursor>& residents,
            RankOutcome& outcome) {
    const DiseaseConfig& config = *shared_.config;

    // Progression.
    std::uint32_t infectiousCount = 0;
    for (auto& [person, cursor] : residents) {
      auto& state = shared_.state[person];
      if (state == static_cast<std::uint8_t>(SeirState::kExposed) &&
          now - shared_.since[person] >= config.latentHours) {
        state = static_cast<std::uint8_t>(SeirState::kInfectious);
        shared_.since[person] = now;
        logTransition(now, cursor, SeirState::kInfectious, kNoInfector,
                      outcome);
      } else if (state == static_cast<std::uint8_t>(SeirState::kInfectious) &&
                 now - shared_.since[person] >= config.infectiousHours) {
        state = static_cast<std::uint8_t>(SeirState::kRecovered);
        shared_.since[person] = now;
        logTransition(now, cursor, SeirState::kRecovered, kNoInfector, outcome);
      }
      if (state == static_cast<std::uint8_t>(SeirState::kInfectious)) {
        ++infectiousCount;
      }
    }
    shared_.hourlyInfectious[static_cast<std::size_t>(rank_)][now] =
        infectiousCount;

    // Transmission per owned place.
    for (auto& [place, persons] : occupants_) {
      if (persons.size() < 2) {
        continue;
      }
      std::uint32_t infectious = 0;
      for (PersonId person : persons) {
        if (shared_.state[person] ==
            static_cast<std::uint8_t>(SeirState::kInfectious)) {
          ++infectious;
        }
      }
      if (infectious == 0) {
        continue;
      }
      const double escape =
          std::pow(1.0 - config.beta, static_cast<double>(infectious));
      const double infectionProbability = 1.0 - escape;
      for (PersonId person : persons) {
        if (shared_.state[person] !=
            static_cast<std::uint8_t>(SeirState::kSusceptible)) {
          continue;
        }
        if (hashUniform(config.seed, person, now) >= infectionProbability) {
          continue;
        }
        shared_.state[person] = static_cast<std::uint8_t>(SeirState::kExposed);
        shared_.since[person] = now;
        // Deterministic, rank-invariant infector choice: the infectious
        // occupant minimizing a pair hash.
        std::uint32_t infector = kNoInfector;
        double best = 2.0;
        for (PersonId candidate : persons) {
          if (shared_.state[candidate] !=
              static_cast<std::uint8_t>(SeirState::kInfectious)) {
            continue;
          }
          const double score =
              hashUniform(config.seed ^ 0xD15EA5Eull,
                          static_cast<std::uint64_t>(person) * 2654435761ull + now,
                          candidate);
          if (score < best) {
            best = score;
            infector = candidate;
          }
        }
        logTransition(now, residents.at(person), SeirState::kExposed, infector,
                      outcome);
      }
    }
  }

  void close() {
    if (!buffer_.empty()) {
      writer_->writeChunk(buffer_);
      buffer_.clear();
    }
    writer_->close();
  }

 private:
  DiseaseShared& shared_;
  int rank_;
  std::unique_ptr<elog::ExtendedLogWriter> writer_;
  std::vector<elog::ExtendedEvent> buffer_;
  std::unordered_map<PlaceId, std::vector<PersonId>> occupants_;
};

ModelStats runModelImpl(const pop::SyntheticPopulation& population,
                        const ModelConfig& config, DiseaseShared& disease,
                        DiseaseStats* diseaseStats) {
  CHISIM_REQUIRE(config.rankCount >= 1, "need at least one rank");
  CHISIM_REQUIRE(config.weeks >= 1, "need at least one week");
  std::filesystem::create_directories(config.logDirectory);

  const std::vector<int> placeRank =
      assignPlacesToRanks(population, config.rankCount, config.strategy);
  const pop::ScheduleGenerator generator(population, config.scheduleSeed);
  const Hour totalHours = config.weeks * kHoursPerWeek;

  std::uint64_t seeded = 0;
  if (disease.enabled()) {
    const std::size_t personCount = population.persons().size();
    disease.state.assign(personCount,
                         static_cast<std::uint8_t>(SeirState::kSusceptible));
    disease.since.assign(personCount, 0);
    disease.hourlyInfectious.assign(
        static_cast<std::size_t>(config.rankCount),
        std::vector<std::uint32_t>(totalHours + 1, 0));
    util::Rng seedRng(disease.config->seed);
    while (seeded < disease.config->seedCount && seeded < personCount) {
      const auto person =
          static_cast<PersonId>(seedRng.uniformBelow(personCount));
      if (disease.state[person] ==
          static_cast<std::uint8_t>(SeirState::kSusceptible)) {
        disease.state[person] =
            static_cast<std::uint8_t>(SeirState::kInfectious);
        ++seeded;
      }
    }
  }

  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(config.rankCount));
  util::WallTimer wall;

  runtime::Communicator::run(config.rankCount, [&](runtime::RankHandle& rank) {
    const int self = rank.rank();
    RankOutcome& outcome = outcomes[static_cast<std::size_t>(self)];

    elog::EventLogger logger(
        std::make_unique<elog::ChunkedLogWriter>(
            elog::logFilePath(config.logDirectory, self),
            config.logCompression),
        config.logCacheEntries);

    std::unique_ptr<DiseaseRank> epidemic;
    if (disease.enabled()) {
      epidemic =
          std::make_unique<DiseaseRank>(disease, self, config.logDirectory);
    }

    // Agents whose current place this rank owns, plus an agenda of stint
    // end hours -> persons, so each step touches only agents in transition.
    std::unordered_map<PersonId, AgentCursor> residents;
    std::vector<std::vector<PersonId>> agenda(totalHours + 1);

    const auto adopt = [&](AgentCursor cursor) {
      const Hour due = std::min<Hour>(cursor.current().end, totalHours);
      agenda[due].push_back(cursor.person);
      if (epidemic) {
        epidemic->occupy(cursor.person, cursor.current().place);
      }
      residents.emplace(cursor.person, std::move(cursor));
    };

    // Initial residency from the first stint of week 0.
    for (const pop::Person& person : population.persons()) {
      AgentCursor cursor = makeCursor(person.id, 0, generator);
      if (placeRank[cursor.current().place] == self) {
        adopt(std::move(cursor));
      }
    }
    outcome.initialAgents = residents.size();

    if (epidemic) {
      // Record the seed infections owned by this rank, then run hour 0.
      for (auto& [person, cursor] : residents) {
        if (disease.state[person] ==
            static_cast<std::uint8_t>(SeirState::kInfectious)) {
          epidemic->logTransition(0, cursor, SeirState::kInfectious,
                                  kNoInfector, outcome);
        }
      }
      epidemic->step(0, residents, outcome);
    }

    std::vector<std::vector<std::uint32_t>> outbound(
        static_cast<std::size_t>(rank.size()));

    // Each rank drives its hour loop from a Repast-style tick schedule: the
    // movement/logging action runs at normal priority each hour, the
    // epidemic action late in the same tick (after migrants have arrived).
    runtime::Scheduler scheduler;
    const auto hourAction = [&](runtime::Tick tick) {
      const Hour now = static_cast<Hour>(tick);
      for (auto& bucket : outbound) {
        bucket.clear();
      }

      for (PersonId personId : agenda[now]) {
        auto it = residents.find(personId);
        CHISIM_CHECK(it != residents.end(), "agenda references missing agent");
        AgentCursor& cursor = it->second;
        const ScheduleEntry ending = cursor.current();
        CHISIM_CHECK(ending.end == now || now == totalHours,
                     "agenda hour mismatch");

        // Event-based logging: the stint is recorded when it ends
        // (clipped to the simulation horizon).
        logger.log(table::Event{ending.start,
                                std::min<Hour>(ending.end, totalHours),
                                personId, ending.activity, ending.place});
        ++outcome.events;

        if (now == totalHours) {
          residents.erase(it);
          continue;  // simulation over; no further movement
        }

        const ScheduleEntry& next = advanceCursor(cursor, now, generator);
        const int dest = placeRank[next.place];
        if (epidemic) {
          epidemic->vacate(personId, ending.place);
        }
        if (dest == self) {
          ++outcome.localMoves;
          if (epidemic) {
            epidemic->occupy(personId, next.place);
          }
          agenda[std::min<Hour>(next.end, totalHours)].push_back(personId);
        } else {
          ++outcome.migrationsOut;
          outbound[static_cast<std::size_t>(dest)].push_back(personId);
          residents.erase(it);
        }
      }

      if (now == totalHours) {
        scheduler.stop();  // simulation horizon: skip exchange and epidemic
        return;
      }

      // Exchange migrants: every rank sends to every other rank each step
      // (possibly empty), so receive counts are deterministic.
      const int tag = kMigrationTagBase + static_cast<int>(now % (1 << 19));
      for (int dest = 0; dest < rank.size(); ++dest) {
        if (dest != self) {
          rank.sendVector<std::uint32_t>(
              dest, tag, outbound[static_cast<std::size_t>(dest)]);
        }
      }
      for (int source = 0; source < rank.size(); ++source) {
        if (source == self) {
          continue;
        }
        const runtime::Message message = rank.recv(source, tag);
        for (std::uint32_t personId : message.as<std::uint32_t>()) {
          adopt(makeCursor(personId, now, generator));
        }
      }
    };
    scheduler.scheduleRepeating(1, 1, hourAction, runtime::Scheduler::kNormal);
    if (epidemic) {
      scheduler.scheduleRepeating(
          1, 1,
          [&](runtime::Tick tick) {
            epidemic->step(static_cast<Hour>(tick), residents, outcome);
          },
          runtime::Scheduler::kLate);
    }
    scheduler.run(totalHours);

    CHISIM_CHECK(residents.empty(), "agents left after the final hour");
    logger.close();
    if (epidemic) {
      epidemic->close();
    }
    outcome.logBytes = logger.writer().bytesWritten();
  });

  ModelStats stats;
  stats.simulatedHours = totalHours;
  stats.wallSeconds = wall.seconds();
  stats.agentHours =
      static_cast<std::uint64_t>(population.persons().size()) * totalHours;
  stats.perRankEvents.reserve(outcomes.size());
  stats.perRankMigrationsOut.reserve(outcomes.size());
  stats.perRankInitialAgents.reserve(outcomes.size());
  for (const RankOutcome& outcome : outcomes) {
    stats.eventsLogged += outcome.events;
    stats.migrations += outcome.migrationsOut;
    stats.localMoves += outcome.localMoves;
    stats.logBytes += outcome.logBytes;
    stats.perRankEvents.push_back(outcome.events);
    stats.perRankMigrationsOut.push_back(outcome.migrationsOut);
    stats.perRankInitialAgents.push_back(outcome.initialAgents);
  }

  if (disease.enabled() && diseaseStats != nullptr) {
    DiseaseStats& out = *diseaseStats;
    out = DiseaseStats{};
    out.seeded = seeded;
    for (const RankOutcome& outcome : outcomes) {
      out.infections += outcome.infections;
    }
    out.hourlyInfectious.assign(totalHours + 1, 0);
    for (const auto& perRank : disease.hourlyInfectious) {
      for (Hour h = 0; h <= totalHours; ++h) {
        out.hourlyInfectious[h] += perRank[h];
      }
    }
    for (Hour h = 0; h <= totalHours; ++h) {
      if (out.hourlyInfectious[h] > out.peakInfectious) {
        out.peakInfectious = out.hourlyInfectious[h];
        out.peakHour = h;
      }
    }
    out.finalStates = disease.state;
    for (std::uint8_t state : out.finalStates) {
      out.recovered +=
          state == static_cast<std::uint8_t>(SeirState::kRecovered) ? 1 : 0;
    }
  }
  return stats;
}

}  // namespace

ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config) {
  DiseaseShared noDisease;
  return runModelImpl(population, config, noDisease, nullptr);
}

ModelStats runModel(const pop::SyntheticPopulation& population,
                    const ModelConfig& config, const DiseaseConfig& disease,
                    DiseaseStats& diseaseStats) {
  DiseaseShared shared;
  shared.config = &disease;
  return runModelImpl(population, config, shared, &diseaseStats);
}

}  // namespace chisimnet::abm
