#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/event_core.hpp"
#include "chisimnet/abm/model.hpp"
#include "chisimnet/elog/extended.hpp"
#include "chisimnet/table/event.hpp"

/// Crash-safe simulation: ABM checkpoint/restart with bit-identical resume.
///
/// Every config.checkpointEveryHours simulated hours — or at the top of the
/// first hour after a SIGTERM/SIGINT — each rank serializes its full state
/// into a CRC-framed binary file (rank_NNNN.<hour>.abmc, written via
/// tmp+rename), and rank 0 commits the set by atomically renaming a text
/// manifest over sim_manifest.chkp. A kill at ANY point leaves either the
/// previous consistent checkpoint or the new one, and `--resume` replays
/// from the manifest's hour with byte-identical CLG5/CLX5 output.
///
/// The quiet-hour barrier: both cores agree on the sequence of active hours
/// in lockstep (the hourly core trivially, the event core through the
/// hint-piggybacked exchange of DESIGN.md §3.7), so "checkpoint at the
/// first agreed hour >= N" evaluates identically on every rank with ZERO
/// extra communication — and at the top of an hour every in-flight CMB2
/// migration batch has already been adopted, so no wire state needs
/// serializing. What a rank checkpoints:
///
///   - its residents as (person, weekIndex, stintIndex[, state, since]):
///     schedules are deterministic in (person, week), so the packed week
///     regenerates exactly on resume — cursors travel as coordinates
///   - its calendar/agenda buckets >= the checkpoint hour, FIFO order
///     preserved verbatim (bucket order IS log order)
///   - the CLG5 write offset, unflushed logger cache and flush counters —
///     the cache is checkpointed instead of flushed, so chunk boundaries
///     after a resume match the uninterrupted run byte for byte
///   - with disease: the CLX5 offset + unflushed transition buffer, the
///     progression-calendar buckets >= the hour (restored verbatim, never
///     re-derived), and this rank's hourlyInfectious prefix
///
/// On resume the log files are truncated to the recorded offsets (torn
/// tails, post-checkpoint chunks and any graceful-close footer all
/// discarded), which is what makes the final bytes match a run that was
/// never killed. Config/seed changes are rejected through simConfigHash.

namespace chisimnet::abm {

inline constexpr const char* kSimManifestName = "sim_manifest.chkp";

/// One FIFO calendar/agenda bucket (activity changes or progressions).
struct HourBucket {
  table::Hour hour = 0;
  std::vector<table::PersonId> persons;
};

/// One resident agent's cursor (and disease state) at the checkpoint hour.
/// The schedule itself is NOT stored: ScheduleGenerator::packedWeek(person,
/// weekIndex) regenerates it exactly on resume.
struct AgentSnapshot {
  table::PersonId person = 0;
  std::uint32_t weekIndex = 0;
  std::uint32_t stintIndex = 0;
  std::uint32_t state = 0;   ///< SeirState raw; 0 when disease is off
  table::Hour since = 0;     ///< hour the state was entered; 0 when off
};

/// Everything one rank needs to resume at `hour`.
struct RankCheckpoint {
  table::Hour hour = 0;
  bool diseaseEnabled = false;
  /// Counters as of the TOP of `hour` (before that hour's increments), so
  /// the resumed loop re-processes the hour exactly like a clean run.
  RankOutcome outcome;
  std::vector<AgentSnapshot> residents;  ///< sorted by person id
  std::vector<HourBucket> calendar;      ///< activity buckets >= hour
  // CLG5 logger state.
  std::uint64_t logBytes = 0;
  std::uint64_t logEntries = 0;
  std::uint64_t logFlushCount = 0;
  std::vector<table::Event> logCache;    ///< unflushed cache, oldest first
  // Disease extras (valid only when diseaseEnabled).
  std::uint64_t clxBytes = 0;
  std::uint64_t clxEntries = 0;
  std::vector<elog::ExtendedEvent> clxBuffer;  ///< unflushed transitions
  std::vector<HourBucket> progressions;        ///< calendar buckets >= hour
  std::vector<std::uint32_t> hourlyInfectious; ///< this rank's rows [0, hour)
};

/// The committed-checkpoint descriptor rank 0 renames into place.
struct SimManifest {
  table::Hour hour = 0;
  int rankCount = 0;
  std::uint32_t configHash = 0;
  /// Cumulative across resumes, so a twice-resumed run still reports the
  /// total number of checkpoints the campaign wrote.
  std::uint64_t checkpointsWritten = 0;
};

/// A loaded, validated checkpoint set handed to the cores.
struct SimResume {
  SimManifest manifest;
  std::vector<RankCheckpoint> ranks;  ///< indexed by rank
};

/// Hash of everything that determines the log bytes (and the checkpoint
/// layout): population shape, schedule seed, horizon, rank count, core,
/// log format knobs, and the full disease parameterization when enabled.
std::uint32_t simConfigHash(std::size_t personCount, std::size_t placeCount,
                            const ModelConfig& config,
                            const DiseaseConfig* disease);

/// CRC-framed binary round trip for one rank's state (exposed for the
/// property tests; save/load wrap these with tmp+rename files).
std::vector<std::byte> encodeRankCheckpoint(const RankCheckpoint& checkpoint);
RankCheckpoint decodeRankCheckpoint(std::span<const std::byte> bytes);

/// Writes rank_NNNN.<hour>.abmc via tmp+rename. Fires the abm.ckpt.write
/// fault site (ordinal = hour) before touching the filesystem.
void saveRankCheckpoint(const std::filesystem::path& dir, int rank,
                        const RankCheckpoint& checkpoint);

/// Rank 0 only, after every rank's state file landed (barrier between):
/// renames the manifest into place, then garbage-collects .abmc files from
/// superseded checkpoints.
void commitSimManifest(const std::filesystem::path& dir,
                       const SimManifest& manifest);

/// Reads the manifest; nullopt when none exists (fresh start).
std::optional<SimManifest> loadSimManifest(const std::filesystem::path& dir);

/// Loads one rank's state file for the manifest's hour. Throws on a
/// missing file or CRC/structure mismatch.
RankCheckpoint loadRankCheckpoint(const std::filesystem::path& dir, int rank,
                                  table::Hour hour);

/// Loads and validates the full checkpoint set: manifest present, rank
/// count and config hash match, every rank file consistent with the
/// manifest hour. nullopt when no manifest exists.
std::optional<SimResume> loadSimResume(const std::filesystem::path& dir,
                                       int rankCount,
                                       std::uint32_t configHash);

// ---------------------------------------------------------------------------
// Graceful shutdown. A SIGTERM/SIGINT sets an async-signal-safe flag; the
// rank loops OR the flag across ranks through the hourly exchange (see
// kBatchFlagShutdown) so every rank agrees to checkpoint-and-exit at the
// top of the same hour.
// ---------------------------------------------------------------------------

/// True once a shutdown signal (or requestShutdown) was seen.
bool shutdownRequested() noexcept;

/// Sets the flag programmatically (tests, embedding applications).
void requestShutdown() noexcept;

/// Clears the flag (start of a fresh run).
void clearShutdownRequest() noexcept;

/// RAII SIGTERM/SIGINT handler installer: handlers set the shutdown flag;
/// previous dispositions are restored on destruction. Install only around
/// checkpoint-enabled runs — without a checkpoint directory the default
/// dispositions (terminate) are the right behavior.
class ScopedShutdownHandler {
 public:
  ScopedShutdownHandler();
  ~ScopedShutdownHandler();

  ScopedShutdownHandler(const ScopedShutdownHandler&) = delete;
  ScopedShutdownHandler& operator=(const ScopedShutdownHandler&) = delete;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace chisimnet::abm
