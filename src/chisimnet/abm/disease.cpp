#include "chisimnet/abm/disease.hpp"

namespace chisimnet::abm {

std::string seirStateName(SeirState state) {
  switch (state) {
    case SeirState::kSusceptible:
      return "susceptible";
    case SeirState::kExposed:
      return "exposed";
    case SeirState::kInfectious:
      return "infectious";
    case SeirState::kRecovered:
      return "recovered";
  }
  return "unknown";
}

}  // namespace chisimnet::abm
